// Command experiments regenerates the paper's tables and figures:
//
//	experiments -fig 5        # one artifact
//	experiments -fig all      # everything (figures 3-9, scalability, ablations)
//
// Node-scale artifacts run on the discrete-event simulator; accuracy
// artifacts (figures 7-8 and the early-stopping ablation) train for real.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	fig := flag.String("fig", "all", "3|4|5|6|7|8|9|scaling|gpucmp|algocmp|sched|earlystop|tracing|faults|all")
	flag.Parse()
	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig string) error {
	type artifact struct {
		key string
		fn  func() (fmt.Stringer, error)
	}
	artifacts := []artifact{
		{"3", wrap(figure3)},
		{"4", wrap(figure4)},
		{"5", wrap(figure5)},
		{"6", wrap(figure6)},
		{"7", wrap(figure7)},
		{"8", wrap(figure8)},
		{"9", wrap(figure9)},
		{"scaling", wrap(scalability)},
		{"gpucmp", wrap(gpuComparison)},
		{"algocmp", wrap(algoComparison)},
		{"sched", wrap(ablationScheduler)},
		{"earlystop", wrap(ablationEarlyStopping)},
		{"tracing", wrap(ablationTracing)},
		{"faults", wrap(ablationFaults)},
	}
	ran := false
	for _, a := range artifacts {
		if fig != "all" && fig != a.key {
			continue
		}
		ran = true
		r, err := a.fn()
		if err != nil {
			return fmt.Errorf("artifact %s: %w", a.key, err)
		}
		fmt.Println(r)
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown artifact %q", fig)
	}
	return nil
}

func wrap[T fmt.Stringer](fn func() (T, error)) func() (fmt.Stringer, error) {
	return func() (fmt.Stringer, error) {
		r, err := fn()
		return r, err
	}
}
