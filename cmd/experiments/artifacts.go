package main

import "repro/internal/paperrepro"

// Thin aliases keep main.go's table readable.

func figure3() (paperrepro.Fig3Result, error)   { return paperrepro.Figure3() }
func figure4() (paperrepro.Fig4Result, error)   { return paperrepro.Figure4() }
func figure5() (paperrepro.Fig5Result, error)   { return paperrepro.Figure5() }
func figure6() (paperrepro.Fig6Result, error)   { return paperrepro.Figure6() }
func figure7() (paperrepro.FigAccResult, error) { return paperrepro.Figure7() }
func figure8() (paperrepro.FigAccResult, error) { return paperrepro.Figure8() }
func figure9() (paperrepro.Fig9Result, error)   { return paperrepro.Figure9() }

func scalability() (paperrepro.ScalResult, error) { return paperrepro.Scalability() }

func gpuComparison() (paperrepro.GPUCompareResult, error) { return paperrepro.GPUComparison() }

func algoComparison() (paperrepro.AlgoCompareResult, error) {
	return paperrepro.AlgorithmComparison()
}

func ablationScheduler() (paperrepro.SchedAblationResult, error) {
	return paperrepro.AblationScheduler()
}

func ablationEarlyStopping() (paperrepro.EarlyStopAblationResult, error) {
	return paperrepro.AblationEarlyStopping()
}

func ablationTracing() (paperrepro.TraceOverheadResult, error) {
	return paperrepro.AblationTracing()
}

func ablationFaults() (paperrepro.FaultAblationResult, error) {
	return paperrepro.AblationFaultTolerance()
}
