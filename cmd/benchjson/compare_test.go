package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaselinePassesWithinLimit(t *testing.T) {
	base := writeBaseline(t, `{"epochs_per_sec": 100, "journal_appends_per_sec": 1000}`)
	snap := snapshot{EpochsPerSec: 80, JournalAppendsPerSec: 990}
	if err := compareBaseline(base, snap, 25); err != nil {
		t.Fatalf("20%% drop within a 25%% limit must pass: %v", err)
	}
}

func TestCompareBaselineFailsOnEpochRegression(t *testing.T) {
	base := writeBaseline(t, `{"epochs_per_sec": 100, "journal_appends_per_sec": 1000}`)
	snap := snapshot{EpochsPerSec: 70, JournalAppendsPerSec: 1000}
	if err := compareBaseline(base, snap, 25); err == nil {
		t.Fatal("30% epochs_per_sec drop must fail the 25% gate")
	}
}

func TestCompareBaselineFailsOnAppendRegression(t *testing.T) {
	base := writeBaseline(t, `{"epochs_per_sec": 100, "journal_appends_per_sec": 1000}`)
	snap := snapshot{EpochsPerSec: 100, JournalAppendsPerSec: 500}
	if err := compareBaseline(base, snap, 25); err == nil {
		t.Fatal("50% append-throughput drop must fail the 25% gate")
	}
}

func TestCompareBaselineSkipsAbsentMeasures(t *testing.T) {
	// Older snapshots may predate a measure; zero/absent baselines don't gate.
	base := writeBaseline(t, `{"epochs_per_sec": 0}`)
	snap := snapshot{EpochsPerSec: 50, JournalAppendsPerSec: 10}
	if err := compareBaseline(base, snap, 25); err != nil {
		t.Fatalf("absent baseline measures must not gate: %v", err)
	}
}

func TestCompareBaselineBadFile(t *testing.T) {
	if err := compareBaseline(filepath.Join(t.TempDir(), "missing.json"), snapshot{}, 25); err == nil {
		t.Fatal("missing baseline file must error")
	}
	base := writeBaseline(t, `not json`)
	if err := compareBaseline(base, snapshot{}, 25); err == nil {
		t.Fatal("unparseable baseline must error")
	}
}

func TestBestOfReturnsMax(t *testing.T) {
	vals := []float64{3, 9, 5}
	i := 0
	got, err := bestOf(3, func() (float64, error) { v := vals[i]; i++; return v, nil })
	if err != nil || got != 9 {
		t.Fatalf("bestOf = %v, %v; want 9, nil", got, err)
	}
}
