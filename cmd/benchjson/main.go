// Command benchjson measures the repo's three load-bearing performance
// numbers and emits them as one machine-readable JSON object:
//
//   - epochs_per_sec: synthetic-MNIST MLP training throughput, the unit of
//     work every study is made of;
//   - journal_appends_per_sec: per-epoch metric append throughput on a
//     NoSync journal (the streaming-report hot path);
//   - boot_replay_ns_op: OpenJournal over a 50-terminal-study journal,
//     compacted and not — the daemon restart cost.
//
// CI runs it per push and archives BENCH_<stamp>.json so regressions are
// diffable across commits; checked-in snapshots under BENCH_*.json give
// the baseline. The measurements use testing.Benchmark, so they self-scale
// to a stable iteration count like `go test -bench` would.
//
// Throughput measures (epochs_per_sec, journal_appends_per_sec) take the
// best of -best runs (default 3): on shared CI boxes the max is far more
// stable than a single sample, because interference only ever slows a run
// down. With -baseline pointing at a committed BENCH_*.json, the command
// exits non-zero when either throughput regresses more than -max-regress
// percent — the CI regression gate.
//
// Usage:
//
//	benchjson [-o BENCH_2026-08-07.json] [-stamp 2026-08-07]
//	          [-best 3] [-baseline BENCH_prev.json] [-max-regress 25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/nn"
	"repro/internal/store"
	"repro/internal/tensor"
)

type snapshot struct {
	Stamp                string             `json:"stamp"`
	GoVersion            string             `json:"go_version"`
	EpochsPerSec         float64            `json:"epochs_per_sec"`
	JournalAppendsPerSec float64            `json:"journal_appends_per_sec"`
	BootReplayNsOp       map[string]int64   `json:"boot_replay_ns_op"`
	MatMulGFLOPS         map[string]float64 `json:"matmul_gflops"`
	Conv2D               convStats          `json:"conv2d"`
}

// convStats records the Conv2D hot-path cost: time and steady-state
// allocations per forward and per backward call (batch 32, 8×8×3 input,
// 3×3×8 kernels — the shape BenchmarkConv2D* uses).
type convStats struct {
	ForwardNsOp      int64 `json:"forward_ns_op"`
	ForwardAllocsOp  int64 `json:"forward_allocs_op"`
	BackwardNsOp     int64 `json:"backward_ns_op"`
	BackwardAllocsOp int64 `json:"backward_allocs_op"`
}

func main() {
	var out, stamp, baseline string
	var best int
	var maxRegress float64
	flag.StringVar(&out, "o", "", "write the JSON snapshot here (default stdout)")
	flag.StringVar(&stamp, "stamp", time.Now().UTC().Format("2006-01-02"), "snapshot date stamp")
	flag.IntVar(&best, "best", 3, "take the best of this many runs for throughput measures")
	flag.StringVar(&baseline, "baseline", "", "committed BENCH_*.json to compare against")
	flag.Float64Var(&maxRegress, "max-regress", 25, "fail if a throughput measure regresses more than this percent vs -baseline")
	flag.Parse()
	if best < 1 {
		best = 1
	}

	snap := snapshot{
		Stamp:          stamp,
		GoVersion:      goruntime.Version(),
		BootReplayNsOp: map[string]int64{},
		MatMulGFLOPS:   map[string]float64{},
	}
	var err error
	if snap.EpochsPerSec, err = bestOf(best, benchEpochs); err != nil {
		fatal(err)
	}
	if snap.JournalAppendsPerSec, err = bestOf(best, benchAppends); err != nil {
		fatal(err)
	}
	for _, compact := range []bool{false, true} {
		key := "uncompacted"
		if compact {
			key = "compacted"
		}
		ns, err := benchBootReplay(compact)
		if err != nil {
			fatal(err)
		}
		snap.BootReplayNsOp[key] = ns
	}
	snap.MatMulGFLOPS["serial"], err = bestOf(best, func() (float64, error) { return benchMatMul(1), nil })
	if err != nil {
		fatal(err)
	}
	snap.MatMulGFLOPS["units4"], err = bestOf(best, func() (float64, error) { return benchMatMul(4), nil })
	if err != nil {
		fatal(err)
	}
	snap.Conv2D = benchConv2D()

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: wrote %s\n", out)
	}

	if baseline != "" {
		if err := compareBaseline(baseline, snap, maxRegress); err != nil {
			fatal(err)
		}
	}
}

// bestOf runs fn n times and returns the highest value. Throughputs on a
// shared box are only ever depressed by interference, so the max across a
// few runs estimates the machine's true capability far more stably than any
// single sample.
func bestOf(n int, fn func() (float64, error)) (float64, error) {
	bestVal := 0.0
	for i := 0; i < n; i++ {
		v, err := fn()
		if err != nil {
			return 0, err
		}
		if v > bestVal {
			bestVal = v
		}
	}
	return bestVal, nil
}

// compareBaseline fails (returns an error) when a throughput measure in snap
// falls more than maxRegress percent below the baseline snapshot. Only
// throughputs gate: the ns/op measures are informational because testing
// .Benchmark's auto-scaling makes single-digit-iteration numbers too noisy
// to gate on a shared box.
func compareBaseline(path string, snap snapshot, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	check := func(name string, baseV, newV float64) error {
		if baseV <= 0 {
			return nil // measure absent from older snapshots
		}
		drop := (baseV - newV) / baseV * 100
		fmt.Printf("benchjson: %s baseline=%.3f new=%.3f (%+.1f%%)\n", name, baseV, newV, -drop)
		if drop > maxRegress {
			return fmt.Errorf("%s regressed %.1f%% (limit %.0f%%): %.3f -> %.3f",
				name, drop, maxRegress, baseV, newV)
		}
		return nil
	}
	if err := check("epochs_per_sec", base.EpochsPerSec, snap.EpochsPerSec); err != nil {
		return err
	}
	return check("journal_appends_per_sec", base.JournalAppendsPerSec, snap.JournalAppendsPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// benchEpochs measures training epochs per second: a small MLP over
// synthetic MNIST, the same objective the studies run.
func benchEpochs() (float64, error) {
	ds, err := datasets.ByName("mnist", 256, 1)
	if err != nil {
		return 0, err
	}
	obj := &hpo.MLObjective{Dataset: ds}
	const epochs = 5
	cfg := hpo.Config{
		"optimizer": "Adam", "num_epochs": epochs,
		"batch_size": 32, "learning_rate": 0.001,
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := obj.Run(hpo.ObjectiveContext{Config: cfg, Parallelism: 1, Seed: 1})
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			if m.Epochs != epochs {
				runErr = fmt.Errorf("trained %d epochs, want %d", m.Epochs, epochs)
				b.Fatal(runErr)
			}
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return float64(res.N*epochs) / res.T.Seconds(), nil
}

// benchAppends measures AppendMetric throughput on a NoSync journal — the
// per-epoch streaming-report hot path.
func benchAppends() (float64, error) {
	dir, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		j, err := store.OpenJournal(filepath.Join(dir, fmt.Sprintf("j%d", b.N)), store.JournalOptions{NoSync: true})
		if err != nil {
			runErr = err
			b.Fatal(err)
		}
		if err := j.CreateStudy(store.StudyMeta{ID: "bench"}); err != nil {
			runErr = err
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := j.AppendMetric("bench", 0, i, 0.5); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := j.Close(); err != nil {
			runErr = err
			b.Fatal(err)
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return float64(res.N) / res.T.Seconds(), nil
}

// benchBootReplay measures OpenJournal over a 50-terminal-study journal
// with 100 per-epoch metrics per trial — mirroring BenchmarkBootReplay's
// mid-size case so the JSON snapshot and the Go benchmark stay comparable.
func benchBootReplay(compact bool) (int64, error) {
	dir, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "j")
	j, err := store.OpenJournal(path, store.JournalOptions{NoSync: true})
	if err != nil {
		return 0, err
	}
	const studies, trialsPer, metricsPer = 50, 4, 100
	for s := 0; s < studies; s++ {
		id := fmt.Sprintf("done-%03d", s)
		if err := j.CreateStudy(store.StudyMeta{ID: id}); err != nil {
			return 0, err
		}
		for tr := 0; tr < trialsPer; tr++ {
			for e := 0; e < metricsPer; e++ {
				if err := j.AppendMetric(id, tr, e, 0.5); err != nil {
					return 0, err
				}
			}
			trial := store.Trial{
				ID:     tr,
				Config: map[string]interface{}{"num_epochs": metricsPer},
				Epochs: metricsPer, FinalAcc: 0.5, BestAcc: 0.5,
			}
			if err := j.AppendTrials(id, []store.Trial{trial}); err != nil {
				return 0, err
			}
		}
		if err := j.SetStudyState(id, store.StateDone, "", &store.Summary{Trials: trialsPer}); err != nil {
			return 0, err
		}
	}
	if compact {
		if _, err := j.Compact(); err != nil {
			return 0, err
		}
	}
	if err := j.Close(); err != nil {
		return 0, err
	}

	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := store.OpenJournal(path, store.JournalOptions{NoSync: true})
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			if n := len(j.ListStudies()); n != studies {
				runErr = fmt.Errorf("replayed %d studies, want %d", n, studies)
				b.Fatal(runErr)
			}
			if err := j.Close(); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return res.NsPerOp(), nil
}

// benchMatMul measures the blocked GEMM kernel in GFLOP/s on a 128³ product
// (2·n³ floating-point operations per multiply).
func benchMatMul(units int) float64 {
	r := tensor.NewRNG(1)
	const size = 128
	a := tensor.Randn(r, size, size)
	bm := tensor.Randn(r, size, size)
	dst := tensor.New(size, size)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dst, a, bm, units)
		}
	})
	flops := 2 * float64(size) * float64(size) * float64(size)
	return flops * float64(res.N) / res.T.Seconds() / 1e9
}

// benchConv2D measures the Conv2D forward and backward hot paths: ns/op and
// steady-state allocs/op (scratch is warmed before timing, so allocs/op
// reports what a mid-training step pays).
func benchConv2D() convStats {
	r := tensor.NewRNG(1)
	c := nn.NewConv2D(r, 8, 8, 3, 3, 3, 8)
	x := tensor.Randn(r, 32, 8*8*3)
	out := c.Forward(x, true)
	grad := tensor.Randn(r, out.Dim(0), out.Dim(1))
	c.Backward(grad)

	fwd := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Forward(x, true)
		}
	})
	bwd := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Backward(grad)
		}
	})
	return convStats{
		ForwardNsOp:      fwd.NsPerOp(),
		ForwardAllocsOp:  fwd.AllocsPerOp(),
		BackwardNsOp:     bwd.NsPerOp(),
		BackwardAllocsOp: bwd.AllocsPerOp(),
	}
}
