// Command benchjson measures the repo's three load-bearing performance
// numbers and emits them as one machine-readable JSON object:
//
//   - epochs_per_sec: synthetic-MNIST MLP training throughput, the unit of
//     work every study is made of;
//   - journal_appends_per_sec: per-epoch metric append throughput on a
//     NoSync journal (the streaming-report hot path);
//   - boot_replay_ns_op: OpenJournal over a 50-terminal-study journal,
//     compacted and not — the daemon restart cost.
//
// CI runs it per push and archives BENCH_<stamp>.json so regressions are
// diffable across commits; checked-in snapshots under BENCH_*.json give
// the baseline. The measurements use testing.Benchmark, so they self-scale
// to a stable iteration count like `go test -bench` would.
//
// Usage:
//
//	benchjson [-o BENCH_2026-08-07.json] [-stamp 2026-08-07]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/store"
)

type snapshot struct {
	Stamp                string           `json:"stamp"`
	GoVersion            string           `json:"go_version"`
	EpochsPerSec         float64          `json:"epochs_per_sec"`
	JournalAppendsPerSec float64          `json:"journal_appends_per_sec"`
	BootReplayNsOp       map[string]int64 `json:"boot_replay_ns_op"`
}

func main() {
	var out, stamp string
	flag.StringVar(&out, "o", "", "write the JSON snapshot here (default stdout)")
	flag.StringVar(&stamp, "stamp", time.Now().UTC().Format("2006-01-02"), "snapshot date stamp")
	flag.Parse()

	snap := snapshot{
		Stamp:          stamp,
		GoVersion:      goruntime.Version(),
		BootReplayNsOp: map[string]int64{},
	}
	var err error
	if snap.EpochsPerSec, err = benchEpochs(); err != nil {
		fatal(err)
	}
	if snap.JournalAppendsPerSec, err = benchAppends(); err != nil {
		fatal(err)
	}
	for _, compact := range []bool{false, true} {
		key := "uncompacted"
		if compact {
			key = "compacted"
		}
		ns, err := benchBootReplay(compact)
		if err != nil {
			fatal(err)
		}
		snap.BootReplayNsOp[key] = ns
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// benchEpochs measures training epochs per second: a small MLP over
// synthetic MNIST, the same objective the studies run.
func benchEpochs() (float64, error) {
	ds, err := datasets.ByName("mnist", 256, 1)
	if err != nil {
		return 0, err
	}
	obj := &hpo.MLObjective{Dataset: ds}
	const epochs = 5
	cfg := hpo.Config{
		"optimizer": "Adam", "num_epochs": epochs,
		"batch_size": 32, "learning_rate": 0.001,
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := obj.Run(hpo.ObjectiveContext{Config: cfg, Parallelism: 1, Seed: 1})
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			if m.Epochs != epochs {
				runErr = fmt.Errorf("trained %d epochs, want %d", m.Epochs, epochs)
				b.Fatal(runErr)
			}
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return float64(res.N*epochs) / res.T.Seconds(), nil
}

// benchAppends measures AppendMetric throughput on a NoSync journal — the
// per-epoch streaming-report hot path.
func benchAppends() (float64, error) {
	dir, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		j, err := store.OpenJournal(filepath.Join(dir, fmt.Sprintf("j%d", b.N)), store.JournalOptions{NoSync: true})
		if err != nil {
			runErr = err
			b.Fatal(err)
		}
		if err := j.CreateStudy(store.StudyMeta{ID: "bench"}); err != nil {
			runErr = err
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := j.AppendMetric("bench", 0, i, 0.5); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := j.Close(); err != nil {
			runErr = err
			b.Fatal(err)
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return float64(res.N) / res.T.Seconds(), nil
}

// benchBootReplay measures OpenJournal over a 50-terminal-study journal
// with 100 per-epoch metrics per trial — mirroring BenchmarkBootReplay's
// mid-size case so the JSON snapshot and the Go benchmark stay comparable.
func benchBootReplay(compact bool) (int64, error) {
	dir, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "j")
	j, err := store.OpenJournal(path, store.JournalOptions{NoSync: true})
	if err != nil {
		return 0, err
	}
	const studies, trialsPer, metricsPer = 50, 4, 100
	for s := 0; s < studies; s++ {
		id := fmt.Sprintf("done-%03d", s)
		if err := j.CreateStudy(store.StudyMeta{ID: id}); err != nil {
			return 0, err
		}
		for tr := 0; tr < trialsPer; tr++ {
			for e := 0; e < metricsPer; e++ {
				if err := j.AppendMetric(id, tr, e, 0.5); err != nil {
					return 0, err
				}
			}
			trial := store.Trial{
				ID:     tr,
				Config: map[string]interface{}{"num_epochs": metricsPer},
				Epochs: metricsPer, FinalAcc: 0.5, BestAcc: 0.5,
			}
			if err := j.AppendTrials(id, []store.Trial{trial}); err != nil {
				return 0, err
			}
		}
		if err := j.SetStudyState(id, store.StateDone, "", &store.Summary{Trials: trialsPer}); err != nil {
			return 0, err
		}
	}
	if compact {
		if _, err := j.Compact(); err != nil {
			return 0, err
		}
	}
	if err := j.Close(); err != nil {
		return 0, err
	}

	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j, err := store.OpenJournal(path, store.JournalOptions{NoSync: true})
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			if n := len(j.ListStudies()); n != studies {
				runErr = fmt.Errorf("replayed %d studies, want %d", n, studies)
				b.Fatal(runErr)
			}
			if err := j.Close(); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return res.NsPerOp(), nil
}
