package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hpo"
	"repro/internal/server"
)

// testOptions builds a daemon config on an ephemeral port over a temp
// journal.
func testOptions(journal string) options {
	return options{
		addr:       "127.0.0.1:0",
		journal:    journal,
		backend:    "local",
		parallel:   2,
		workers:    0,
		maxStudies: 2,
		drain:      10 * time.Millisecond,
	}
}

// slowObjectives injects a per-trial delay so the test can kill the daemon
// mid-study, and counts actual executions to prove restored trials never
// re-run.
func slowObjectives(delay time.Duration, calls *atomic.Int32) func(server.StudySpec) (hpo.Objective, error) {
	return func(server.StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "slow", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			calls.Add(1)
			time.Sleep(delay)
			acc := 0.3 + 0.05*float64(ctx.Config.Int("num_epochs", 0)%8)
			return hpo.TrialMetrics{BestAcc: acc, FinalAcc: acc, Epochs: 1, ValAccHistory: []float64{acc}}, nil
		}}, nil
	}
}

func httpJSON(t *testing.T, method, url, body string) (int, map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func trialCount(t *testing.T, base, id string) int {
	t.Helper()
	code, out := httpJSON(t, "GET", base+"/v1/studies/"+id+"/trials", "")
	if code != http.StatusOK {
		t.Fatalf("trials = HTTP %d", code)
	}
	trials, _ := out["trials"].([]interface{})
	return len(trials)
}

// TestDaemonKillRestartResume is the service's end-to-end crash story:
// create a study over HTTP, run it on the local backend, kill the daemon
// mid-study, restart it over the same journal, and observe the finished
// trials restored without re-execution while the remainder completes.
func TestDaemonKillRestartResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "hpod.journal")

	// --- First daemon: start a slow 8-trial study and kill it mid-flight.
	var calls1 atomic.Int32
	d1, err := newDaemon(testOptions(journal))
	if err != nil {
		t.Fatal(err)
	}
	d1.srv.Runner().Objectives = slowObjectives(150*time.Millisecond, &calls1)
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d1.Addr()

	// batch_size 2 bounds each Ask/Tell round so finished rounds journal
	// while later ones still run — the window the kill lands in.
	spec := `{"name":"crashy","algo":"grid","space":{"num_epochs":[1,2,3,4,5,6,7,8]},` +
		`"batch_size":2,"start":true}`
	code, created := httpJSON(t, "POST", base+"/v1/studies", spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)

	deadline := time.Now().Add(20 * time.Second)
	for trialCount(t, base, id) < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	recordedBeforeKill := trialCount(t, base, id)
	if recordedBeforeKill < 2 || recordedBeforeKill >= 8 {
		t.Fatalf("kill window missed: %d trials recorded", recordedBeforeKill)
	}
	// Stop with a tiny drain: the running study is abandoned exactly like a
	// crash — its journal handle closes underneath it.
	if err := d1.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// --- Second daemon over the same journal: the study resumes.
	var calls2 atomic.Int32
	d2, err := newDaemon(testOptions(journal))
	if err != nil {
		t.Fatal(err)
	}
	d2.srv.Runner().Objectives = slowObjectives(10*time.Millisecond, &calls2)
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer d2.Stop()
	base = "http://" + d2.Addr()

	// The interrupted study was re-queued from the journal automatically.
	var study map[string]interface{}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, s := httpJSON(t, "GET", base+"/v1/studies/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("get resumed study = %d", code)
		}
		if s["state"] == "done" {
			study = s
			break
		}
		if s["state"] == "failed" {
			t.Fatalf("resumed study failed: %v", s["error"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	if study == nil {
		t.Fatal("resumed study never finished")
	}

	if got := int(study["trials"].(float64)); got != 8 {
		t.Fatalf("final trials = %d, want 8", got)
	}
	resumed := int(study["resumed"].(float64))
	if resumed < recordedBeforeKill {
		t.Fatalf("resumed = %d, want >= %d restored from the journal", resumed, recordedBeforeKill)
	}
	// The restart executed only the remainder: restored trials never re-ran.
	if executed := int(calls2.Load()); executed != 8-resumed {
		t.Fatalf("second run executed %d trials, want %d (8 minus %d resumed)",
			executed, 8-resumed, resumed)
	}
	if trialCount(t, base, id) != 8 {
		t.Fatalf("journal trial count = %d", trialCount(t, base, id))
	}

	// Healthz reflects the drained service.
	code, health := httpJSON(t, "GET", base+"/healthz", "")
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}
}

// haltingObjectives injects an objective whose trials run many short
// epochs and honour Halt, so an HTTP cancel can land mid-trial.
func haltingObjectives(executed *atomic.Int32) func(server.StudySpec) (hpo.Objective, error) {
	return func(server.StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "halting", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			var m hpo.TrialMetrics
			for e := 0; e < 100; e++ {
				if ctx.Halt != nil {
					if reason := ctx.Halt(); reason != "" {
						m.Stopped, m.StopReason = true, reason
						return m, nil
					}
				}
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, 0.5, 0.5
				executed.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
			return m, nil
		}}, nil
	}
}

// TestDaemonCancelIsTerminalAcrossRestart: POST /cancel stops a running
// study cleanly (terminal "canceled" in the journal) and a restarted daemon
// does not re-queue it.
func TestDaemonCancelIsTerminalAcrossRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "hpod.journal")

	var executed atomic.Int32
	d1, err := newDaemon(testOptions(journal))
	if err != nil {
		t.Fatal(err)
	}
	d1.srv.Runner().Objectives = haltingObjectives(&executed)
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d1.Addr()

	spec := `{"name":"cancelme","algo":"grid","space":{"num_epochs":[1,2,3,4,5,6]},"start":true}`
	code, created := httpJSON(t, "POST", base+"/v1/studies", spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)

	deadline := time.Now().Add(20 * time.Second)
	for executed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if executed.Load() == 0 {
		t.Fatal("study never started")
	}
	code, view := httpJSON(t, "POST", base+"/v1/studies/"+id+"/cancel", "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel = %d %v", code, view)
	}
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		code, s := httpJSON(t, "GET", base+"/v1/studies/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("get = %d", code)
		}
		if s["state"] == "canceled" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d1.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// Restarted daemon over the same journal: the canceled study must stay
	// terminal — no resume, no new executions.
	before := executed.Load()
	d2, err := newDaemon(testOptions(journal))
	if err != nil {
		t.Fatal(err)
	}
	d2.srv.Runner().Objectives = haltingObjectives(&executed)
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer d2.Stop()
	base = "http://" + d2.Addr()

	time.Sleep(150 * time.Millisecond)
	code, s := httpJSON(t, "GET", base+"/v1/studies/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("get after restart = %d", code)
	}
	if s["state"] != "canceled" {
		t.Fatalf("state after restart = %v, want canceled", s["state"])
	}
	if s["job"] != nil {
		t.Fatalf("canceled study has a live job after restart: %v", s["job"])
	}
	if after := executed.Load(); after != before {
		t.Fatalf("restart re-executed a canceled study: %d → %d epochs", before, after)
	}
}

// TestDaemonCompactionSurvivesRestart: finish studies, compact the journal
// over the admin endpoint, kill the daemon, restart over the same journal
// — every acknowledged trial result and final metric must still be served,
// with zero re-executions, and the compacted studies must not re-queue.
func TestDaemonCompactionSurvivesRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "hpod.journal")

	var calls1 atomic.Int32
	d1, err := newDaemon(testOptions(journal))
	if err != nil {
		t.Fatal(err)
	}
	d1.srv.Runner().Objectives = slowObjectives(time.Millisecond, &calls1)
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d1.Addr()

	spec := `{"name":"compactme","algo":"grid","space":{"num_epochs":[1,2,3,4]},"start":true}`
	code, created := httpJSON(t, "POST", base+"/v1/studies", spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, s := httpJSON(t, "GET", base+"/v1/studies/"+id, ""); s["state"] == "done" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	wantAccs := trialAccs(t, base, id)
	if len(wantAccs) != 4 {
		t.Fatalf("study did not finish: %d trials", len(wantAccs))
	}

	code, out := httpJSON(t, "POST", base+"/v1/admin/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact = %d %v", code, out)
	}
	if delta, _ := out["compacted"].(map[string]interface{}); delta == nil || delta["studies_compacted"].(float64) < 1 {
		t.Fatalf("nothing compacted: %v", out)
	}
	if err := d1.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	var calls2 atomic.Int32
	d2, err := newDaemon(testOptions(journal))
	if err != nil {
		t.Fatal(err)
	}
	d2.srv.Runner().Objectives = slowObjectives(time.Millisecond, &calls2)
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer d2.Stop()
	base = "http://" + d2.Addr()

	code, s := httpJSON(t, "GET", base+"/v1/studies/"+id, "")
	if code != http.StatusOK || s["state"] != "done" {
		t.Fatalf("compacted study after restart = %d %v", code, s)
	}
	gotAccs := trialAccs(t, base, id)
	if len(gotAccs) != len(wantAccs) {
		t.Fatalf("trials after compaction+restart = %d, want %d", len(gotAccs), len(wantAccs))
	}
	for k, v := range wantAccs {
		if gotAccs[k] != v {
			t.Fatalf("trial %d final acc drifted: %v → %v", k, v, gotAccs[k])
		}
	}
	if calls2.Load() != 0 {
		t.Fatalf("restart re-executed %d trials of a compacted done study", calls2.Load())
	}
}

// trialAccs maps trial id → final accuracy as served by the API.
func trialAccs(t *testing.T, base, id string) map[int]float64 {
	t.Helper()
	code, out := httpJSON(t, "GET", base+"/v1/studies/"+id+"/trials", "")
	if code != http.StatusOK {
		t.Fatalf("trials = HTTP %d", code)
	}
	accs := make(map[int]float64)
	for _, raw := range out["trials"].([]interface{}) {
		tr := raw.(map[string]interface{})
		accs[int(tr["id"].(float64))] = tr["final_acc"].(float64)
	}
	return accs
}

// TestDaemonMigrateFlag imports a legacy checkpoint on boot.
func TestDaemonMigrateFlag(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "study.json")
	legacy := `{"version":1,"trials":[{"id":0,"config":{"num_epochs":3},"final_acc":0.6,"best_acc":0.6,"final_loss":0.4,"epochs":3,"duration_ns":5}]}`
	if err := os.WriteFile(ckpt, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	o := testOptions(filepath.Join(dir, "hpod.journal"))
	o.migrate = ckpt
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	base := "http://" + d.Addr()
	if n := trialCount(t, base, "migrated"); n != 1 {
		t.Fatalf("migrated trials = %d", n)
	}
}

// TestDaemonValidatesRungModeAtBoot: a mistyped -rung-mode (like -pruner
// and -scheduler) must fail the boot, not every future study.
func TestDaemonValidatesRungModeAtBoot(t *testing.T) {
	o := testOptions(filepath.Join(t.TempDir(), "hpod.journal"))
	o.rungMode = "bogus"
	if _, err := newDaemon(o); err == nil {
		t.Fatal("daemon booted with an unknown -rung-mode")
	}
	o.rungMode = "async"
	o.scheduler = "hyperband"
	d, err := newDaemon(o)
	if err != nil {
		t.Fatalf("async rung-mode default rejected: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if got := d.srv.Runner().DefaultRungMode; got != "async" {
		t.Fatalf("DefaultRungMode = %q, want async", got)
	}
}
