// Command hpod is the HPO-as-a-service daemon: it exposes the study
// runtime behind a persistent HTTP control plane. Studies are created via
// JSON specs, executed asynchronously on the task runtime (local threads or
// TCP workers), and every finished trial is journaled — killing the daemon
// mid-study and restarting it resumes exactly where it stopped, with no
// re-execution of finished trials. Identical trial configs across studies
// are answered from the journal's memo index instead of retraining.
//
// Usage:
//
//	hpod -addr :8080 -journal hpod.journal [-backend local] [-parallel 8]
//	     [-workers 3] [-max-studies 2] [-drain 30s] [-migrate study.json]
//	     [-token secret] [-tenants tenants.json] [-queue-depth 16]
//	     [-retry-after 1s] [-pruner median] [-scheduler hyperband]
//	     [-rung-mode async]
//	     [-retain-events 1024] [-max-open-segments 128]
//	     [-compact-interval 10m] [-verify-on-compact=true]
//
// With -tenants the daemon is multi-tenant (docs/TENANCY.md): each
// registered bearer token maps to a tenant namespace with its own study
// ids, listings, and quota envelope (concurrent studies, total epoch
// budget, SSE subscribers, fair-share weight). Starts beyond quota are
// rejected 429, a full waiting room 503 — both with a Retry-After hint.
//
// The journal is a sharded directory store (docs/JOURNAL.md): terminal
// studies are compacted down to their summary records on -compact-interval
// (or on demand via POST /v1/admin/compact), so boot replay stays fast no
// matter how much per-epoch telemetry history the daemon has served. A
// pre-shard single-file journal passed as -journal is migrated in place on
// boot.
//
// The daemon is observable without auth on two endpoints: GET /healthz
// (liveness + journal stats) and GET /metrics (Prometheus text exposition
// of the runtime/store/scheduler/HTTP instrument registry —
// docs/OBSERVABILITY.md). Per-study execution timelines are served on
// GET /v1/studies/{id}/timeline (JSON gantt) and .../timeline.prv
// (Paraver trace).
//
// See the README's "hpod HTTP API" section for the endpoint reference and
// an example curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	goruntime "runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	rt "repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/store"
)

type options struct {
	addr            string
	journal         string
	backend         string
	parallel        int
	workers         int
	maxStudies      int
	drain           time.Duration
	migrate         string
	noResume        bool
	token           string
	tenants         string
	queueDepth      int
	retryAfter      time.Duration
	pruner          string
	scheduler       string
	rungMode        string
	retainEvents    int
	maxOpenSegments int
	compactInterval time.Duration
	verifyOnCompact bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	flag.StringVar(&o.journal, "journal", "hpod.journal", "append-only study journal path")
	flag.StringVar(&o.backend, "backend", "local", "study execution backend: local | remote")
	flag.IntVar(&o.parallel, "parallel", goruntime.NumCPU(), "cores of the local node (or per remote worker)")
	flag.IntVar(&o.workers, "workers", 2, "TCP workers per study for -backend remote")
	flag.IntVar(&o.maxStudies, "max-studies", 2, "studies executing concurrently")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "max wait for running studies on shutdown")
	flag.StringVar(&o.migrate, "migrate", "", "import a legacy -checkpoint JSON file into the journal, then continue")
	flag.BoolVar(&o.noResume, "no-resume", false, "do not re-queue studies left running by a previous daemon")
	flag.StringVar(&o.token, "token", "", "bearer token required on every endpoint except /healthz (empty = no auth)")
	flag.StringVar(&o.tenants, "tenants", "",
		"tenant registry JSON file (docs/TENANCY.md): per-tenant bearer tokens, namespaces and quotas; supersedes -token")
	flag.IntVar(&o.queueDepth, "queue-depth", 0,
		"max studies waiting for an execution slot before starts are rejected 503 (0 = unbounded)")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second,
		"Retry-After hint attached to 429/503 admission rejections")
	flag.StringVar(&o.pruner, "pruner", "", "default trial pruner for specs that set none: none | median | asha")
	flag.StringVar(&o.scheduler, "scheduler", "",
		"default rung-driven scheduler for specs that set none: none | hyperband | asha (supersedes -pruner when active)")
	flag.StringVar(&o.rungMode, "rung-mode", "",
		"default rung mode for specs that set none: sync (barrier rungs; default) | async (non-barrier, runs on any capacity) — use async when the backend is smaller than a Hyperband bracket")
	flag.IntVar(&o.retainEvents, "retain-events", 0,
		"per-study in-memory event window for SSE resume (0 = default, negative = unbounded)")
	flag.IntVar(&o.maxOpenSegments, "max-open-segments", 0,
		"open segment file-handle ceiling across studies (0 = default 128, negative = unbounded)")
	flag.DurationVar(&o.compactInterval, "compact-interval", 10*time.Minute,
		"how often terminal studies' journal segments are compacted in the background (0 = only on POST /v1/admin/compact)")
	flag.BoolVar(&o.verifyOnCompact, "verify-on-compact", true,
		"replay-verify each study before compaction drops its decision stream; failing studies are left uncompacted")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hpod:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	d, err := newDaemon(o)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.Start(); err != nil {
		return err
	}
	fmt.Printf("hpod: serving on http://%s (journal %s, %s backend, %d concurrent studies, metrics on /metrics)\n",
		d.Addr(), o.journal, o.backend, o.maxStudies)
	<-ctx.Done()
	fmt.Println("hpod: shutting down")
	return d.Stop()
}

// daemon owns the store, control plane and HTTP listener; tests drive it
// in-process to exercise kill/restart behaviour.
type daemon struct {
	opts    options
	journal *store.Journal
	srv     *server.Server
	http    *http.Server
	ln      net.Listener
	served  chan error
}

// newDaemon opens the journal (replaying it) and wires the control plane;
// nothing listens until Start.
func newDaemon(o options) (*daemon, error) {
	// A mistyped -pruner or -scheduler must fail the boot, not every
	// future study.
	if _, err := hpo.NewPruner(o.pruner, 0, 0); err != nil {
		return nil, err
	}
	if !hpo.KnownScheduler(o.scheduler) {
		return nil, fmt.Errorf("unknown -scheduler %q (want none, hyperband or asha)", o.scheduler)
	}
	if !hpo.KnownRungMode(o.rungMode) {
		return nil, fmt.Errorf("unknown -rung-mode %q (want sync or async)", o.rungMode)
	}
	// The registry must parse before the journal opens: a bad tenants file
	// fails the boot, it does not run the daemon open to everyone.
	var registry *server.TenantRegistry
	if o.tenants != "" {
		if o.token != "" {
			return nil, fmt.Errorf("-token and -tenants are mutually exclusive (the registry carries the tokens)")
		}
		reg, err := server.LoadTenantRegistry(o.tenants)
		if err != nil {
			return nil, err
		}
		registry = reg
	}
	journal, err := store.OpenJournal(o.journal, store.JournalOptions{
		RetainEvents:    o.retainEvents,
		MaxOpenSegments: o.maxOpenSegments,
		CompactInterval: o.compactInterval,
	})
	if err != nil {
		return nil, err
	}
	if o.migrate != "" {
		n, err := store.MigrateCheckpoint(journal, "migrated", o.migrate)
		if err != nil {
			journal.Close()
			return nil, err
		}
		fmt.Printf("hpod: migrated %d trials from %s\n", n, o.migrate)
	}
	srv := server.New(journal, runtimeFactory(o), o.maxStudies)
	srv.SetAuthToken(o.token)
	if registry != nil {
		srv.SetTenantRegistry(registry)
	}
	srv.Runner().SetQueueDepth(o.queueDepth)
	srv.SetRetryAfter(o.retryAfter)
	srv.Runner().DefaultPruner = o.pruner
	srv.Runner().DefaultScheduler = o.scheduler
	srv.Runner().DefaultRungMode = o.rungMode
	if !o.verifyOnCompact {
		journal.SetCompactVerify(nil)
	}
	d := &daemon{
		opts:    o,
		journal: journal,
		srv:     srv,
		http:    &http.Server{Handler: srv.Handler()},
		served:  make(chan error, 1),
	}
	return d, nil
}

// Start binds the listener, re-queues interrupted studies and serves HTTP
// in the background.
func (d *daemon) Start() error {
	ln, err := net.Listen("tcp", d.opts.addr)
	if err != nil {
		d.journal.Close()
		return err
	}
	d.ln = ln
	if !d.opts.noResume {
		jobs, err := d.srv.Runner().Resume()
		if err != nil {
			d.journal.Close()
			ln.Close()
			return fmt.Errorf("resuming journaled studies: %w", err)
		}
		if len(jobs) > 0 {
			fmt.Printf("hpod: resumed %d interrupted stud(y/ies) from the journal\n", len(jobs))
		}
	}
	go func() { d.served <- d.http.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address.
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// Stop shuts down gracefully: stop accepting HTTP, drain running studies up
// to the configured timeout, then close the journal. Studies abandoned by
// the drain timeout resume from the journal on the next Start.
func (d *daemon) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = d.http.Shutdown(ctx)
	if drained := d.srv.Runner().Close(d.opts.drain); !drained {
		fmt.Fprintln(os.Stderr, "hpod: drain timeout — abandoning running studies (journal will resume them)")
	}
	err := d.journal.Close()
	select {
	case serr := <-d.served:
		if serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
	default:
	}
	return err
}

// runtimeFactory builds per-study runtimes for the configured backend.
func runtimeFactory(o options) server.RuntimeFactory {
	switch o.backend {
	case "remote":
		return remoteFactory(o)
	default:
		return localFactory(o)
	}
}

// localFactory executes trials on goroutines against a single simulated
// node with -parallel cores.
func localFactory(o options) server.RuntimeFactory {
	return func(spec server.StudySpec) (*rt.Runtime, func(), error) {
		runtime, err := rt.New(rt.Options{
			Cluster: cluster.Local(o.parallel),
			Backend: rt.Real,
		})
		if err != nil {
			return nil, nil, err
		}
		return runtime, runtime.Shutdown, nil
	}
}

// remoteFactory spins up -workers in-process TCP workers per study — the
// paper's scale-out path behind the service API. Each worker holds its own
// objective copy, like COMPSs workers reading from the parallel filesystem.
func remoteFactory(o options) server.RuntimeFactory {
	return func(spec server.StudySpec) (*rt.Runtime, func(), error) {
		runtime, err := rt.New(rt.Options{Backend: rt.Remote})
		if err != nil {
			return nil, nil, err
		}
		// The daemon is long-lived and builds one of these per study
		// execution, so the bootstrap (and this error path) must release
		// everything acquired.
		err = hpo.ServeWorkers(runtime, spec.BuildObjective, rt.Constraint{Cores: spec.Cores},
			spec.Seed, spec.Target, o.workers, o.parallel, func(err error) {
				fmt.Fprintln(os.Stderr, "hpod: worker exited:", err)
			})
		if err != nil {
			runtime.Shutdown()
			return nil, nil, err
		}
		return runtime, runtime.Shutdown, nil
	}
}
