package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hpo"
	"repro/internal/server"
	"repro/internal/store"
)

// Daemon-level tenancy drives: the acceptance scenario (two tenants, one
// daemon — quota 429s, weighted fair-share that a FCFS regression would
// fail, zero cross-tenant visibility, no token leaks into the journal or
// the metrics exposition) and the restart contract (per-tenant epoch
// usage re-derived exactly from journal replay, total-epoch budget
// enforced across kill-restart and compaction).

// writeTenants writes a registry file and returns its path.
func writeTenants(t *testing.T, dir, doc string) string {
	t.Helper()
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// tenantJSON issues a bearer-authenticated request, returning status,
// headers and decoded body.
func tenantJSON(t *testing.T, method, url, token, body string) (int, http.Header, map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// daemonGate blocks each study's single trial until released and records
// execution order — the observable admission order.
type daemonGate struct {
	mu    sync.Mutex
	order []string
	ch    map[string]chan struct{}
}

func newDaemonGate() *daemonGate { return &daemonGate{ch: make(map[string]chan struct{})} }

func (g *daemonGate) chanFor(name string) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ch[name] == nil {
		g.ch[name] = make(chan struct{})
	}
	return g.ch[name]
}

func (g *daemonGate) objectives(spec server.StudySpec) (hpo.Objective, error) {
	name := spec.Name
	ch := g.chanFor(name)
	return &hpo.FuncObjective{ObjName: "gated", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
		g.mu.Lock()
		g.order = append(g.order, name)
		g.mu.Unlock()
		<-ch
		return hpo.TrialMetrics{BestAcc: 0.5, FinalAcc: 0.5, Epochs: 1, ValAccHistory: []float64{0.5}}, nil
	}}, nil
}

func (g *daemonGate) release(name string) { close(g.chanFor(name)) }

func (g *daemonGate) started() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

func (g *daemonGate) waitStarted(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if len(g.started()) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("only %d studies started executing, want %d", len(g.started()), n)
}

const driveTokenA, driveTokenB, driveTokenZ = "secret-drive-a", "secret-drive-b", "secret-drive-z"

// TestDaemonTwoTenantDrive is the acceptance drive: tenant A's third
// concurrent study 429s while its quota is 2, admission interleaves B
// between A's burst (failing if admission falls back to FCFS), tenants
// cannot see each other's studies, and bearer tokens never reach the
// journal directory or the metrics exposition.
func TestDaemonTwoTenantDrive(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "hpod.journal")
	o := testOptions(journal)
	o.maxStudies = 1
	o.tenants = writeTenants(t, dir, fmt.Sprintf(`{"tenants": [
		{"id": "drv-a", "token": %q, "max_concurrent_studies": 2},
		{"id": "drv-b", "token": %q},
		{"id": "drv-z", "token": %q}
	]}`, driveTokenA, driveTokenB, driveTokenZ))
	d, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	g := newDaemonGate()
	d.srv.Runner().Objectives = g.objectives
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	base := "http://" + d.Addr()

	spec := func(name string) string {
		return fmt.Sprintf(`{"name":%q,"algo":"grid","space":{"num_epochs":[1]},"start":true,"memoize":false}`, name)
	}
	// z1 occupies the single execution slot; then A bursts two studies
	// before B submits one — all three wait for admission.
	if code, _, body := tenantJSON(t, "POST", base+"/v1/studies", driveTokenZ, spec("z1")); code != http.StatusCreated {
		t.Fatalf("create z1 = %d %v", code, body)
	}
	g.waitStarted(t, 1)
	ids := map[string]string{}
	for _, c := range []struct{ token, name string }{
		{driveTokenA, "a1"}, {driveTokenA, "a2"}, {driveTokenB, "b1"},
	} {
		code, _, body := tenantJSON(t, "POST", base+"/v1/studies", c.token, spec(c.name))
		if code != http.StatusCreated {
			t.Fatalf("create %s = %d %v", c.name, code, body)
		}
		ids[c.name] = body["id"].(string)
	}

	// Tenant A is at its concurrency quota (2 in flight, waiting counts):
	// the third submission is 429 with Retry-After, and the study exists
	// for a later start.
	code, hdr, body := tenantJSON(t, "POST", base+"/v1/studies", driveTokenA, spec("a3"))
	if code != http.StatusTooManyRequests {
		t.Fatalf("tenant A 3rd concurrent study = %d %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if msg := body["error"].(string); !strings.Contains(msg, "concurrent_studies") {
		t.Fatalf("429 body %q does not name the concurrency quota", msg)
	}
	a3 := body["id"].(string)

	// Zero cross-tenant visibility: B lists only its own study and reads
	// A's as not-found.
	code, _, listed := tenantJSON(t, "GET", base+"/v1/studies", driveTokenB, "")
	if code != http.StatusOK {
		t.Fatalf("B list = %d", code)
	}
	if studies := listed["studies"].([]interface{}); len(studies) != 1 {
		t.Fatalf("B sees %d studies, want exactly its own 1", len(studies))
	}
	if code, _, _ := tenantJSON(t, "GET", base+"/v1/studies/"+ids["a1"], driveTokenB, ""); code != http.StatusNotFound {
		t.Fatalf("B reading A's study = %d, want 404", code)
	}

	// Drain the slot one study at a time: fair share interleaves B
	// between A's burst. FCFS would run a1 a2 b1.
	g.release("z1")
	g.waitStarted(t, 2)
	g.release(g.started()[1])
	g.waitStarted(t, 3)
	g.release(g.started()[2])
	g.waitStarted(t, 4)
	g.release(g.started()[3])
	if got, want := strings.Join(g.started(), " "), "z1 a1 b1 a2"; got != want {
		t.Fatalf("admission order = %q, want %q (FCFS gives \"z1 a1 a2 b1\")", got, want)
	}

	// With A's burst finished, the rejected study is admitted on retry.
	deadline := time.Now().Add(20 * time.Second)
	for {
		code, _, _ = tenantJSON(t, "POST", base+"/v1/studies/"+a3+"/start", driveTokenA, "")
		if code == http.StatusAccepted {
			break
		}
		if code != http.StatusTooManyRequests || !time.Now().Before(deadline) {
			t.Fatalf("a3 restart = %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.release("a3")
	for _, name := range []string{"a1", "a2", "b1", "a3"} {
		token := driveTokenA
		if name == "b1" {
			token = driveTokenB
		}
		id := ids[name]
		if name == "a3" {
			id = a3
		}
		waitTenantState(t, base, id, token, "done")
	}

	// Leak pin: bearer tokens appear nowhere in the metrics exposition or
	// in any journal file — tenant ids do (they tag study metadata).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, token := range []string{driveTokenA, driveTokenB, driveTokenZ} {
		if strings.Contains(string(metrics), token) {
			t.Fatalf("bearer token %q leaked into /metrics", token)
		}
	}
	var journalBytes []byte
	err = filepath.Walk(journal, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		journalBytes = append(journalBytes, raw...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, token := range []string{driveTokenA, driveTokenB, driveTokenZ} {
		if strings.Contains(string(journalBytes), token) {
			t.Fatalf("bearer token %q leaked into the journal", token)
		}
	}
	if !strings.Contains(string(journalBytes), `"tenant":"drv-a"`) {
		t.Fatal("journal carries no tenant tag on study metadata")
	}
}

// waitTenantState polls an authenticated study read until it reaches want.
func waitTenantState(t *testing.T, base, id, token, want string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		code, _, study := tenantJSON(t, "GET", base+"/v1/studies/"+id, token, "")
		if code != http.StatusOK {
			t.Fatalf("get %s = %d", id, code)
		}
		switch study["state"].(string) {
		case want:
			return
		case "failed":
			t.Fatalf("study %s failed: %v", id, study["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("study %s never reached %s", id, want)
}

// reportingObjectives reports `epochs` per-epoch metrics per trial (each
// becomes a journal metric record — the epoch-accounting unit) with a
// per-epoch delay so the daemon can be killed mid-run.
func reportingObjectives(epochs int, delay time.Duration) func(server.StudySpec) (hpo.Objective, error) {
	return func(server.StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "reporting", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			var m hpo.TrialMetrics
			for e := 0; e < epochs; e++ {
				acc := 0.2 + 0.1*float64(e+1)
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, acc, acc
				m.ValAccHistory = append(m.ValAccHistory, acc)
				if ctx.Report != nil {
					ctx.Report(e, acc)
				}
				time.Sleep(delay)
			}
			return m, nil
		}}, nil
	}
}

// scrapeGauge reads one gauge sample from the daemon's /metrics.
func scrapeGauge(t *testing.T, base, sample string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

const budgetTokenA, budgetTokenAdmin = "secret-budget-a", "secret-budget-admin"

// TestDaemonTenantEpochBudgetAcrossRestart: kill the daemon mid-burst,
// and the per-tenant epoch usage re-derived from journal replay matches
// the journal's own accounting exactly; once the study finishes, the
// tenant's lifetime epoch budget rejects further starts with 429 — and
// keeps rejecting them across compaction and another restart.
func TestDaemonTenantEpochBudgetAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "hpod.journal")
	tenants := writeTenants(t, dir, fmt.Sprintf(`{"tenants": [
		{"id": "bud-a", "token": %q, "max_total_epochs": 8},
		{"id": "bud-admin", "token": %q, "admin": true}
	]}`, budgetTokenA, budgetTokenAdmin))
	o := testOptions(journal)
	o.tenants = tenants

	// Daemon 1: a 4-trial study, 2 reported epochs per trial; killed once
	// at least two trials are journaled (mid-burst).
	d1, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	d1.srv.Runner().Objectives = reportingObjectives(2, 60*time.Millisecond)
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d1.Addr()
	spec := `{"name":"burst","algo":"grid","space":{"num_epochs":[1,2,3,4]},"start":true,"memoize":false}`
	code, _, created := tenantJSON(t, "POST", base+"/v1/studies", budgetTokenA, spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		code, _, out := tenantJSON(t, "GET", base+"/v1/studies/"+id+"/trials", budgetTokenA, "")
		if code != http.StatusOK {
			t.Fatalf("trials = %d", code)
		}
		if trials, _ := out["trials"].([]interface{}); len(trials) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d1.Stop(); err != nil {
		t.Fatal(err)
	}

	// The journal's own replay-derived accounting is the truth the next
	// daemon must reproduce.
	j, err := store.OpenJournal(journal, store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	usedAtKill := j.TenantEpochs("bud-a")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if usedAtKill < 2 {
		t.Fatalf("kill landed before any epochs were journaled (%d)", usedAtKill)
	}

	// Daemon 2 (no resume, so nothing new runs): the scraped per-tenant
	// usage gauge equals the journal-derived count exactly.
	o2 := o
	o2.noResume = true
	d2, err := newDaemon(o2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	base = "http://" + d2.Addr()
	got, ok := scrapeGauge(t, base, `hpo_tenant_epochs_used{tenant="bud-a"}`)
	if !ok {
		t.Fatal("hpo_tenant_epochs_used{tenant=\"bud-a\"} not exported")
	}
	if int(got) != usedAtKill {
		t.Fatalf("re-derived epoch usage = %v, want %d (journal replay)", got, usedAtKill)
	}
	if err := d2.Stop(); err != nil {
		t.Fatal(err)
	}

	// Daemon 3 resumes and finishes the study (resume bypasses the budget
	// check — the study was already admitted once). The finished total
	// reaches the 8-epoch budget, so the tenant's next start is 429 with
	// the total_epochs quota; the admin tenant is unaffected.
	d3, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	d3.srv.Runner().Objectives = reportingObjectives(2, 0)
	if err := d3.Start(); err != nil {
		t.Fatal(err)
	}
	defer d3.Stop()
	base = "http://" + d3.Addr()
	waitTenantState(t, base, id, budgetTokenA, "done")

	spec2 := `{"name":"over","algo":"grid","space":{"num_epochs":[1]},"start":true,"memoize":false}`
	code, hdr, body := tenantJSON(t, "POST", base+"/v1/studies", budgetTokenA, spec2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget start = %d %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if msg := body["error"].(string); !strings.Contains(msg, "total_epochs") {
		t.Fatalf("429 body %q does not name the epoch budget", msg)
	}
	if code, _, _ := tenantJSON(t, "POST", base+"/v1/studies", budgetTokenAdmin,
		`{"name":"ok","algo":"grid","space":{"num_epochs":[1]},"start":true,"memoize":false}`); code != http.StatusCreated {
		t.Fatalf("other tenant start = %d, want 201", code)
	}

	// Compaction drops the metric records; the budget verdict must not
	// move — then prove it once more across a final restart.
	if code, _, _ := tenantJSON(t, "POST", base+"/v1/admin/compact", budgetTokenAdmin, ""); code != http.StatusOK {
		t.Fatal("compact failed")
	}
	if code, _, _ := tenantJSON(t, "POST", base+"/v1/studies/"+id+"/start", budgetTokenA, ""); code != http.StatusTooManyRequests {
		t.Fatalf("post-compaction re-run = %d, want 429 (budget spent)", code)
	}
	if err := d3.Stop(); err != nil {
		t.Fatal(err)
	}
	d4, err := newDaemon(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := d4.Start(); err != nil {
		t.Fatal(err)
	}
	defer d4.Stop()
	base = "http://" + d4.Addr()
	if code, _, _ := tenantJSON(t, "POST", base+"/v1/studies/"+id+"/start", budgetTokenA, ""); code != http.StatusTooManyRequests {
		t.Fatalf("post-compaction-restart re-run = %d, want 429 (budget re-derived)", code)
	}
}

// TestDaemonRejectsTokenWithTenants: -token and -tenants are mutually
// exclusive at boot, and a broken registry file fails the boot.
func TestDaemonRejectsTokenWithTenants(t *testing.T) {
	dir := t.TempDir()
	o := testOptions(filepath.Join(dir, "hpod.journal"))
	o.token = "x"
	o.tenants = writeTenants(t, dir, `{"tenants":[{"id":"a","token":"ta"}]}`)
	if _, err := newDaemon(o); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("boot with -token and -tenants: err = %v", err)
	}
	o.token = ""
	o.tenants = writeTenants(t, dir, `{"tenants":[{"id":"has.dot","token":"ta"}]}`)
	if _, err := newDaemon(o); err == nil || !strings.Contains(err.Error(), "letters, digits") {
		t.Fatalf("boot with dotted tenant id: err = %v", err)
	}
}
