// Command traceview renders a Paraver .prv trace (as written by the runtime
// or cmd/hpo) as an ASCII Gantt chart plus utilisation statistics — a
// terminal-sized stand-in for the Paraver views in the paper's Figures 4-6.
//
//	traceview -width 100 run.prv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	width := flag.Int("width", 96, "chart width in columns")
	maxRows := flag.Int("rows", 64, "maximum core rows to draw (0 = all)")
	events := flag.Bool("events", true, "overlay task-start event flags")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-width N] [-rows N] file.prv")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *width, *maxRows, *events); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(path string, width, maxRows int, events bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := trace.ReadParaver(f)
	if err != nil {
		return err
	}
	fmt.Print(trace.RenderGantt(rec, trace.GanttOptions{
		Width: width, MaxRows: maxRows, ShowEvents: events,
	}))
	fmt.Println()
	fmt.Print(trace.RenderSummary(rec))
	return nil
}
