// Command simulate runs an HPO workload on the discrete-event cluster
// simulator and reports the makespan, per-node utilisation and an ASCII
// Gantt view — the what-if tool for sizing a reservation before burning
// real node hours:
//
//	simulate -preset marenostrum4 -nodes 14 -cores 48 -dataset cifar
//	simulate -cluster mycluster.json -cores 4 -gpus 1 -algo random -budget 64
//
// The workload is the paper's grid (27 configs) by default, or a random
// sample of the same space with -algo random -budget N.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/perfmodel"
	rt "repro/internal/runtime"
	"repro/internal/trace"
)

func main() {
	var (
		preset      = flag.String("preset", "marenostrum4", "machine preset: marenostrum4 | minotauro | power9")
		nodes       = flag.Int("nodes", 1, "node count for the preset")
		clusterFile = flag.String("cluster", "", "cluster spec JSON (overrides -preset/-nodes)")
		cores       = flag.Int("cores", 1, "cores per task")
		gpus        = flag.Int("gpus", 0, "GPUs per task")
		dataset     = flag.String("dataset", "mnist", "mnist | cifar (cost model)")
		algo        = flag.String("algo", "grid", "grid | random")
		budget      = flag.Int("budget", 27, "trial count for -algo random")
		policy      = flag.String("policy", "fifo", "fifo | priority | lifo | locality")
		seed        = flag.Uint64("seed", 1, "random-search seed")
		width       = flag.Int("width", 80, "gantt width")
		rows        = flag.Int("rows", 32, "max gantt rows")
	)
	flag.Parse()
	if err := run(*preset, *nodes, *clusterFile, *cores, *gpus, *dataset, *algo,
		*budget, *policy, *seed, *width, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(preset string, nodes int, clusterFile string, cores, gpus int,
	dataset, algo string, budget int, policyName string, seed uint64, width, rows int) error {

	var spec cluster.Spec
	var err error
	if clusterFile != "" {
		raw, err := os.ReadFile(clusterFile)
		if err != nil {
			return err
		}
		spec, err = cluster.ParseSpecJSON(raw)
		if err != nil {
			return err
		}
	} else {
		spec, err = cluster.Preset(preset, nodes)
		if err != nil {
			return err
		}
	}
	policy, err := rt.ParsePolicy(policyName)
	if err != nil {
		return err
	}

	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [20, 50, 100],
	  "batch_size": [32, 64, 128]
	}`))
	if err != nil {
		return err
	}
	var configs []hpo.Config
	switch algo {
	case "grid":
		configs = hpo.NewGridSearch(space).Ask(0)
	case "random":
		configs = hpo.NewRandomSearch(space, budget, seed).Ask(0)
	default:
		return fmt.Errorf("unknown algo %q (grid or random)", algo)
	}

	rec := trace.NewRecorder()
	runtime, err := rt.New(rt.Options{
		Cluster:  spec,
		Backend:  rt.Sim,
		Policy:   policy,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	err = runtime.Register(rt.TaskDef{
		Name:       "experiment",
		Constraint: rt.Constraint{Cores: cores, GPUs: gpus},
		Cost: func(args []interface{}, res rt.SimResources) time.Duration {
			cfg := args[0].(hpo.Config)
			var c perfmodel.TaskCost
			if dataset == "cifar" || dataset == "cifar10" {
				c = perfmodel.CIFARCost(cfg.Int("num_epochs", 50), cfg.Int("batch_size", 64))
			} else {
				c = perfmodel.MNISTCost(cfg.Int("num_epochs", 50), cfg.Int("batch_size", 64))
			}
			return c.Duration(perfmodel.Resources{
				Cores: res.Cores, GPUs: res.GPUs,
				CoreSpeed: res.CoreSpeed, GPUSpeed: res.GPUSpeed,
			})
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulate: %d %s tasks (%dc/%dg each) on %s, %s policy\n",
		len(configs), dataset, cores, gpus, spec, policy)
	for _, cfg := range configs {
		if _, err := runtime.Submit("experiment", cfg); err != nil {
			return err
		}
	}
	runtime.Barrier()
	st := runtime.Stats()
	runtime.Shutdown()

	fmt.Printf("makespan: %.1f min (%.2f h)\n\n", st.Makespan.Minutes(), st.Makespan.Hours())
	fmt.Print(trace.RenderGantt(rec, trace.GanttOptions{Width: width, MaxRows: rows, ShowEvents: true}))
	fmt.Println()
	fmt.Print(trace.RenderSummary(rec))
	return nil
}
