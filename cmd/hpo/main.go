// Command hpo is the analogue of the paper's `runcompss application.py
// json_file`: it loads a hyperparameter search space from a JSON config
// (Listing 1 format), runs the chosen HPO algorithm as parallel tasks on the
// runtime, and prints the accuracy leaderboard and curves. Optionally it
// writes a Paraver trace and a DOT task graph.
//
// Scaling out is the paper's one-flag story: `-workers 3` starts three
// worker processes (in-process goroutines over real TCP) and the identical
// study runs distributed, no code changes.
//
// Usage:
//
//	hpo -space space.json [-algo grid] [-dataset mnist] [-samples 800]
//	    [-model mlp] [-cores 1] [-parallel 8] [-workers 0] [-budget 20]
//	    [-target 0] [-seed 1] [-pruner median] [-scheduler hyperband]
//	    [-rung-mode async]
//	    [-checkpoint study.json] [-visualise]
//	    [-journal hpod.journal -study cli] [-trace out.prv] [-graph out.dot]
//	    [-policy fifo] [-metrics-addr 127.0.0.1:9090]
//
// The replay verb verifies a journal offline: it re-derives the study's
// scheduler/pruner decisions from the record stream and checks the
// recorded decisions byte-match (docs/JOURNAL.md, "Replay contract"):
//
//	hpo replay -journal hpod.journal -study <id>   (daemon journals: spec on record)
//	hpo replay -journal j -study cli -scheduler hyperband -rung-mode async \
//	    -space space.json -budget 9 -seed 42       (CLI journals: repeat the run's flags)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	goruntime "runtime"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/obs"
	rt "repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/trace"
)

type options struct {
	spaceFile   string
	algo        string
	dataset     string
	samples     int
	model       string
	cores       int
	parallel    int
	workers     int
	budget      int
	target      float64
	seed        uint64
	checkpoint  string
	journal     string
	studyID     string
	visualise   bool
	traceOut    string
	graphOut    string
	policy      string
	quiet       bool
	cvFolds     int
	reportOut   string
	pruner      string
	scheduler   string
	rungMode    string
	metricsAddr string
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		if err := replayMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "hpo replay:", err)
			os.Exit(1)
		}
		return
	}
	var o options
	flag.StringVar(&o.spaceFile, "space", "", "search-space JSON file (required; paper Listing 1 format)")
	flag.StringVar(&o.algo, "algo", "grid", "grid | random | bayes | tpe | hyperband")
	flag.StringVar(&o.dataset, "dataset", "mnist", "mnist | cifar10")
	flag.IntVar(&o.samples, "samples", 800, "dataset size (synthetic substitute)")
	flag.StringVar(&o.model, "model", "mlp", "mlp | cnn (unless the space sets 'model')")
	flag.IntVar(&o.cores, "cores", 1, "computing units per experiment task (@constraint)")
	flag.IntVar(&o.parallel, "parallel", goruntime.NumCPU(), "cores of the local 'node' (or per worker with -workers)")
	flag.IntVar(&o.workers, "workers", 0, "run distributed on this many TCP workers (0 = local)")
	flag.IntVar(&o.budget, "budget", 20, "trial budget for random/bayes/tpe (grid ignores; hyperband: max epochs)")
	flag.Float64Var(&o.target, "target", 0, "stop the study at this validation accuracy (0 = off)")
	flag.Uint64Var(&o.seed, "seed", 1, "experiment seed")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "persist/resume finished trials at this JSON path")
	flag.StringVar(&o.journal, "journal", "", "record trials into this hpod study journal instead of -checkpoint (enables cross-study memoization)")
	flag.StringVar(&o.studyID, "study", "cli", "study id within the -journal")
	flag.BoolVar(&o.visualise, "visualise", false, "add visualisation + plot tasks (Figure-3 pipeline)")
	flag.StringVar(&o.traceOut, "trace", "", "write a Paraver .prv trace here")
	flag.StringVar(&o.graphOut, "graph", "", "write the task graph DOT here")
	flag.StringVar(&o.policy, "policy", "fifo", "scheduler policy: fifo | priority | lifo | locality")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress per-epoch progress lines")
	flag.IntVar(&o.cvFolds, "cv", 0, "evaluate with k-fold cross-validation (0 = single split)")
	flag.StringVar(&o.reportOut, "report", "", "write a Markdown study report here")
	flag.StringVar(&o.pruner, "pruner", "", "prune losing trials mid-training: none | median | asha")
	flag.StringVar(&o.scheduler, "scheduler", "",
		"rung-driven successive halving over the live report stream: none | hyperband | asha (hyperband replaces -algo; promotes winners past their budget instead of re-submitting)")
	flag.StringVar(&o.rungMode, "rung-mode", "",
		"how -scheduler hyperband settles rungs: sync (barrier rungs, needs slots for a whole bracket; default) | async (non-barrier ASHA-style decisions, runs on any capacity, brackets in parallel)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve the Prometheus /metrics exposition on this address for the duration of the run (e.g. 127.0.0.1:9090)")
	flag.Parse()
	// -scheduler hyperband replaces the sampler, as its help says: an -algo
	// left at the default follows it; an explicitly conflicting one errors.
	if o.scheduler == "hyperband" {
		algoSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if !algoSet {
			o.algo = "hyperband"
		}
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hpo:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.spaceFile == "" {
		return fmt.Errorf("-space is required (see configs/ for examples)")
	}
	// The CLI has no control plane, so -metrics-addr is the escape hatch
	// for scraping the same instrument registry hpod exposes: a side
	// listener alive for the duration of the run.
	if o.metricsAddr != "" {
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = obs.Default().WritePrometheus(w)
		})
		go func() { _ = http.Serve(ln, mux) }()
		if !o.quiet {
			fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
		}
	}
	raw, err := os.ReadFile(o.spaceFile)
	if err != nil {
		return err
	}
	space, err := hpo.ParseSpaceJSON(raw)
	if err != nil {
		return err
	}
	sampler, err := hpo.NewSampler(o.algo, space, o.budget, o.seed)
	if err != nil {
		return err
	}
	policy, err := rt.ParsePolicy(o.policy)
	if err != nil {
		return err
	}
	makeObjective := func() (hpo.Objective, error) {
		ds, err := datasets.ByName(o.dataset, o.samples, o.seed)
		if err != nil {
			return nil, err
		}
		if o.cvFolds > 1 {
			return &hpo.CVObjective{Dataset: ds, Folds: o.cvFolds, Hidden: hpo.DefaultHidden()}, nil
		}
		return &hpo.MLObjective{Dataset: ds, Hidden: hpo.DefaultHidden()}, nil
	}
	objective, err := makeObjective()
	if err != nil {
		return err
	}

	var rec *trace.Recorder
	if o.traceOut != "" {
		rec = trace.NewRecorder()
	}
	constraint := rt.Constraint{Cores: o.cores}

	var runtime *rt.Runtime
	if o.workers > 0 {
		runtime, err = startDistributed(o, constraint, makeObjective, rec)
	} else {
		runtime, err = rt.New(rt.Options{
			Cluster:  cluster.Local(o.parallel),
			Backend:  rt.Real,
			Policy:   policy,
			Recorder: rec,
			Graph:    o.graphOut != "",
		})
	}
	if err != nil {
		return err
	}

	mode := fmt.Sprintf("%d-core node", o.parallel)
	if o.workers > 0 {
		mode = fmt.Sprintf("%d TCP workers × %d cores", o.workers, o.parallel)
	}
	fmt.Printf("hpo: %s search, %s model, %d-core tasks on %s\n", o.algo, o.model, o.cores, mode)
	if o.algo == "grid" {
		fmt.Printf("hpo: grid size %d\n", space.Size())
	}

	pruner, err := hpo.NewPruner(o.pruner, 0, 0)
	if err != nil {
		return err
	}
	schedSampler, scheduler, err := hpo.NewTrialScheduler(o.scheduler, o.algo, space, o.budget, 0, 0, o.seed, o.rungMode)
	if err != nil {
		return err
	}
	if scheduler != nil && o.cvFolds > 1 {
		return fmt.Errorf("-scheduler requires -cv 0 (cross-validated objectives cannot continue past their budget)")
	}
	if schedSampler != nil {
		// Rung-driven Hyperband owns both the sampler and scheduler roles.
		sampler = schedSampler
	}
	studyOpts := hpo.StudyOptions{
		Space:          space,
		Sampler:        sampler,
		Objective:      objective,
		Runtime:        runtime,
		Constraint:     constraint,
		TargetAccuracy: o.target,
		Seed:           o.seed,
		Pruner:         pruner,
		Scheduler:      scheduler,
		Visualise:      o.visualise && o.workers == 0,
		CheckpointPath: o.checkpoint,
	}
	if o.journal != "" {
		journal, err := store.OpenJournal(o.journal, store.JournalOptions{})
		if err != nil {
			return err
		}
		defer journal.Close()
		if _, err := journal.GetStudy(o.studyID); err != nil {
			if err := journal.CreateStudy(store.StudyMeta{ID: o.studyID, Name: o.studyID}); err != nil {
				return err
			}
		}
		scope := store.MemoScope(o.dataset, o.samples, o.cvFolds, hpo.DefaultHidden(), o.seed, o.target)
		studyOpts.Recorder = journal.Recorder(o.studyID, scope)
	}
	if !o.quiet {
		// Epoch reports stream from remote workers too, so the progress
		// lines (and pruning) no longer need a local backend.
		studyOpts.OnEpoch = func(trial, epoch int, acc float64) {
			fmt.Printf("  trial %2d epoch %2d: val_acc %.4f\n", trial, epoch, acc)
		}
	}
	if o.workers > 0 {
		// Distributed rounds must return to the master so it can detect the
		// target accuracy from results.
		studyOpts.BatchSize = o.workers * maxInt(1, o.parallel/o.cores)
	}

	study, err := hpo.NewStudy(studyOpts)
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}
	stats := runtime.Stats()

	fmt.Println()
	fmt.Print(hpo.RenderCurves(res.Trials, 72, 16))
	fmt.Println()
	fmt.Print(hpo.RenderTable(res.Trials))
	fmt.Printf("\nstudy: %d trials (%d resumed, %d memoized, %d pruned), best %.4f, wall %v, runtime completed=%d retried=%d canceled=%d\n",
		len(res.Trials), res.Resumed, res.Memoized, res.Pruned, res.BestAccuracy(), res.Duration.Round(1e7),
		stats.Completed, stats.Retried, stats.Canceled)
	if res.Stopped {
		fmt.Println("study: stopped early — target accuracy reached")
	}
	if res.Plot != "" {
		fmt.Println()
		fmt.Println(res.Plot)
	}

	if o.reportOut != "" {
		f, err := os.Create(o.reportOut)
		if err != nil {
			return err
		}
		if err := hpo.WriteReport(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("report written to", o.reportOut)
	}
	if o.traceOut != "" {
		if err := writeTrace(o.traceOut, rec); err != nil {
			return err
		}
		fmt.Println("trace written to", o.traceOut)
	}
	if o.graphOut != "" && o.workers == 0 {
		dot, err := runtime.ExportDOT("hpo")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.graphOut, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Println("task graph written to", o.graphOut)
	}
	runtime.Shutdown()
	return nil
}

// startDistributed builds a Remote-backend runtime with o.workers in-process
// workers connected over real TCP, each holding its own objective copy —
// the paper's "the user just has to request more nodes" path.
func startDistributed(o options, constraint rt.Constraint,
	makeObjective func() (hpo.Objective, error), rec *trace.Recorder) (*rt.Runtime, error) {

	runtime, err := rt.New(rt.Options{Backend: rt.Remote, Recorder: rec})
	if err != nil {
		return nil, err
	}
	err = hpo.ServeWorkers(runtime, makeObjective, constraint, o.seed, o.target,
		o.workers, o.parallel, func(err error) {
			fmt.Fprintln(os.Stderr, "hpo: worker exited:", err)
		})
	if err != nil {
		runtime.Shutdown()
		return nil, err
	}
	return runtime, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteParaver(f, rec); err != nil {
		return err
	}
	rowPath := path + ".row"
	rf, err := os.Create(rowPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	return trace.WriteParaverRow(rf, rec)
}
