// The `hpo replay` verb: offline verification that a study journal's
// recorded scheduler/pruner decisions byte-match a fresh replay of the
// decision logic (docs/JOURNAL.md, "Replay contract"). Reads the journal
// through the lock-free snapshot reader, so it works against a live
// daemon's directory without stopping it.
//
// Daemon-created studies carry their spec in the journal, so
//
//	hpo replay -journal hpod.journal -study <id>
//
// needs nothing else; CLI-created studies journal no spec, so the decision
// flags (-scheduler, -rung-mode, -algo, -space, -budget, -eta, -seed,
// -pruner, ...) must repeat what the original run was given.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/hpo"
	"repro/internal/replay"
	"repro/internal/server"
	"repro/internal/store"
)

type replayOptions struct {
	journal      string
	studyID      string
	scheduler    string
	rungMode     string
	algo         string
	spaceFile    string
	budget       int
	eta          int
	minResource  int
	seed         uint64
	pruner       string
	prunerEta    int
	prunerWarmup int
	target       float64
	baseBudget   int
	quiet        bool
}

func replayMain(args []string) error {
	var o replayOptions
	fs := flag.NewFlagSet("hpo replay", flag.ExitOnError)
	fs.StringVar(&o.journal, "journal", "", "journal directory to verify (required)")
	fs.StringVar(&o.studyID, "study", "cli", "study id within the journal")
	fs.StringVar(&o.scheduler, "scheduler", "", "rung scheduler the study ran with: none | hyperband | asha")
	fs.StringVar(&o.rungMode, "rung-mode", "", "rung mode for -scheduler hyperband: sync | async")
	fs.StringVar(&o.algo, "algo", "grid", "sampler the study ran with (hyperband selects batch-conformance replay)")
	fs.StringVar(&o.spaceFile, "space", "", "search-space JSON file (required for hyperband replays: regenerates sampled configs from -seed)")
	fs.IntVar(&o.budget, "budget", 20, "trial budget of the original run (hyperband: max epochs R)")
	fs.IntVar(&o.eta, "eta", 0, "halving factor of the original run (0 = default 3)")
	fs.IntVar(&o.minResource, "min-resource", 0, "asha first-rung resource of the original run (0 = default)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed of the original run")
	fs.StringVar(&o.pruner, "pruner", "", "pruner the study ran with: none | median | asha")
	fs.IntVar(&o.prunerEta, "pruner-eta", 0, "pruner halving factor of the original run")
	fs.IntVar(&o.prunerWarmup, "pruner-warmup", 0, "pruner warmup of the original run")
	fs.Float64Var(&o.target, "target", 0, "target accuracy of the original run (0 = off)")
	fs.IntVar(&o.baseBudget, "base-budget", 0, "initial num_epochs to assume for trials whose config never reached the journal (asha replay)")
	fs.BoolVar(&o.quiet, "quiet", false, "print only the verdict")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.journal == "" {
		return fmt.Errorf("-journal is required")
	}
	// -scheduler hyperband replaces the sampler, exactly as in `hpo` runs:
	// an -algo left at the default follows it.
	if o.scheduler == "hyperband" {
		algoSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if !algoSet {
			o.algo = "hyperband"
		}
	}

	meta, recs, err := store.SnapshotStudyRecords(o.journal, o.studyID)
	if err != nil {
		return err
	}
	params, src, err := replayParams(o, fs, meta)
	if err != nil {
		return err
	}

	rep, verr := replay.Verify(o.studyID, recs, params)
	if !o.quiet && rep != nil {
		fmt.Printf("study %s (%s): %d journal records, params from %s\n",
			o.studyID, meta.State, rep.Records, src)
		fmt.Printf("  mode %s, %d run(s), %d trial(s), %d epoch(s) streamed\n",
			rep.Mode, rep.Runs, rep.Trials, rep.Epochs)
		fmt.Printf("  decisions: %d recorded, %d replayed\n", len(rep.Recorded), len(rep.Replayed))
		for _, w := range rep.Warnings {
			fmt.Printf("  warning: %s\n", w)
		}
	}
	if verr != nil {
		var div *replay.DivergenceError
		if errors.As(verr, &div) && !o.quiet {
			fmt.Print(div.Diff())
		}
		return verr
	}
	fmt.Printf("verified: decision stream replays byte-identically\n")
	return nil
}

// replayParams resolves the decision parameters: explicit decision flags
// win; otherwise a daemon-journaled spec is authoritative; bare CLI
// journals fall back to the flag defaults (matching `hpo` run defaults).
func replayParams(o replayOptions, fs *flag.FlagSet, meta store.StudyMeta) (replay.Params, string, error) {
	flagged := false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "journal", "study", "quiet":
		default:
			flagged = true
		}
	})
	if !flagged && len(meta.Spec) > 0 {
		spec, err := server.ParseSpec(meta.Spec)
		if err != nil {
			return replay.Params{}, "", fmt.Errorf("journaled spec: %w", err)
		}
		p, err := spec.ReplayParams("", "", "")
		if err != nil {
			return replay.Params{}, "", err
		}
		return p, "journaled spec", nil
	}

	p := replay.Params{
		Scheduler:    o.scheduler,
		RungMode:     o.rungMode,
		Algo:         o.algo,
		Budget:       o.budget,
		Eta:          o.eta,
		MinResource:  o.minResource,
		Seed:         o.seed,
		Pruner:       o.pruner,
		PrunerEta:    o.prunerEta,
		PrunerWarmup: o.prunerWarmup,
		Target:       o.target,
		BaseBudget:   o.baseBudget,
	}
	if o.spaceFile != "" {
		raw, err := os.ReadFile(o.spaceFile)
		if err != nil {
			return replay.Params{}, "", err
		}
		space, err := hpo.ParseSpaceJSON(raw)
		if err != nil {
			return replay.Params{}, "", fmt.Errorf("%s: %w", o.spaceFile, err)
		}
		p.Space = space
	}
	return p, "flags", nil
}
