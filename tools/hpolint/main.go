// Command hpolint is the repo's contract checker: a vettool that
// machine-enforces the normative invariants documented in docs/JOURNAL.md,
// docs/OBSERVABILITY.md, and docs/STATIC_ANALYSIS.md.
//
// It speaks the `go vet -vettool` unitchecker protocol:
//
//	go build -o /tmp/hpolint repro/tools/hpolint
//	go vet -vettool=/tmp/hpolint ./...
//
// and also supports a standalone mode for ad-hoc runs without cmd/go:
//
//	hpolint -module /path/to/repo
//
// Suppress a finding with a justified directive on (or one line above) the
// offending line:
//
//	//lint:ignore <analyzer> <why this occurrence is safe>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/tools/hpolint/analyzers/confighygiene"
	"repro/tools/hpolint/analyzers/fsyncpath"
	"repro/tools/hpolint/analyzers/obsregister"
	"repro/tools/hpolint/analyzers/recordexhaustive"
	"repro/tools/hpolint/analyzers/replaydet"
	"repro/tools/hpolint/analyzers/sentinelis"
	"repro/tools/hpolint/internal/lintkit"
)

var analyzers = []*lintkit.Analyzer{
	confighygiene.Analyzer,
	fsyncpath.Analyzer,
	obsregister.Analyzer,
	recordexhaustive.Analyzer,
	replaydet.Analyzer,
	sentinelis.Analyzer,
}

func main() {
	// cmd/go probes the tool before handing it work: `-V=full` must print a
	// line ending in a content-addressed buildID, and `-flags` must answer
	// with a JSON array of extra flags the driver may pass (none).
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
				os.Args[0], "hpolint-v1")
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(lintkit.RunUnit(os.Args[1], analyzers, os.Stderr))
	}

	os.Exit(standalone(os.Args[1:]))
}

// standalone loads a whole module from source (no cmd/go driver, no export
// data) and runs every analyzer over every package. Diagnostics go to
// stdout; exit 1 when any were reported.
func standalone(args []string) int {
	fs := flag.NewFlagSet("hpolint", flag.ExitOnError)
	moduleDir := fs.String("module", ".", "module root to lint (directory containing go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hpolint [-module dir]   (standalone)\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=hpolint ./...   (as a vettool)\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modPath, err := lintkit.ReadModulePath(filepath.Join(*moduleDir, "go.mod"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpolint: %v\n", err)
		return 2
	}
	pkgDirs, err := lintkit.ModulePackages(*moduleDir, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpolint: %v\n", err)
		return 2
	}
	loader := lintkit.NewLoader(*moduleDir)
	loader.ModulePath = modPath
	found := 0
	for _, importPath := range pkgDirs {
		pkg, err := loader.Load(importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpolint: %s: %v\n", importPath, err)
			return 2
		}
		diags, err := lintkit.Analyze(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpolint: %s: %v\n", importPath, err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d.String())
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}
