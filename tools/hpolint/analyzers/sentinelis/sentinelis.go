// Package sentinelis enforces the typed-sentinel contract: exported Err*
// sentinel values (ErrQuotaExceeded, ErrBackpressure, ErrCanceled, ...)
// must be matched with errors.Is, never compared with == or != — raw
// comparison silently stops matching the moment anyone wraps the sentinel
// with fmt.Errorf("...: %w", err), which the HTTP error mapping and the
// admission queue both rely on.
package sentinelis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/hpolint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "sentinelis",
	Doc:  "forbid ==/!= comparison against exported Err* sentinels; use errors.Is",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := sentinelName(pass, side); ok {
						pass.Reportf(n.Pos(),
							"%s compared with %s: use errors.Is so wrapped sentinels still match", name, n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSwitch flags `switch err { case ErrFoo: }` — the same raw identity
// comparison spelled as a switch.
func checkSwitch(pass *lintkit.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelName(pass, e); ok {
				pass.Reportf(e.Pos(),
					"switch case compares %s by identity: use errors.Is so wrapped sentinels still match", name)
			}
		}
	}
}

// sentinelName reports whether the expression names an exported
// package-level Err* variable of error type, and returns its display name.
func sentinelName(pass *lintkit.Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	var id *ast.Ident
	display := ""
	switch e := e.(type) {
	case *ast.Ident:
		id, display = e, e.Name
	case *ast.SelectorExpr:
		id = e.Sel
		if x, ok := e.X.(*ast.Ident); ok {
			display = x.Name + "." + e.Sel.Name
		} else {
			display = e.Sel.Name
		}
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	// Package-level sentinels only: locals named ErrX are somebody else's
	// problem, and fields are not sentinels.
	if obj.Parent() != obj.Pkg().Scope() || obj.IsField() {
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !obj.Exported() || len(obj.Name()) <= len("Err") {
		return "", false
	}
	if !isErrorType(obj.Type()) {
		return "", false
	}
	return display, true
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errIface == nil {
		return false
	}
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}
