package sentinelis_test

import (
	"testing"

	"repro/tools/hpolint/analyzers/sentinelis"
	"repro/tools/hpolint/internal/lintkit"
)

func TestGolden(t *testing.T) {
	lintkit.RunGolden(t, "testdata/src", sentinelis.Analyzer,
		"repro/internal/sent",
		"repro/internal/sent2",
	)
}
