package sent2

import (
	"errors"

	"repro/internal/sent"
)

func classify(err error) int {
	if err == sent.ErrBoom { // want `sent\.ErrBoom compared with ==`
		return 1
	}
	if errors.Is(err, sent.ErrBoom) { // ok
		return 2
	}
	return 0
}
