package sent

import "errors"

var ErrBoom = errors.New("boom")

var errInternal = errors.New("internal") // unexported: not a public sentinel

func check(err error) bool {
	if err == ErrBoom { // want `ErrBoom compared with ==`
		return true
	}
	if err != ErrBoom { // want `ErrBoom compared with !=`
		return false
	}
	if errors.Is(err, ErrBoom) { // ok: the sanctioned matcher
		return true
	}
	if err == errInternal { // ok: unexported, identity is this package's business
		return true
	}
	switch err {
	case ErrBoom: // want `switch case compares ErrBoom by identity`
		return true
	case nil:
		return false
	}
	return err == nil // ok: nil check is not a sentinel comparison
}
