package replaydet_test

import (
	"testing"

	"repro/tools/hpolint/analyzers/replaydet"
	"repro/tools/hpolint/internal/lintkit"
)

func TestGolden(t *testing.T) {
	lintkit.RunGolden(t, "testdata/src", replaydet.Analyzer,
		"repro/internal/replay",
		"repro/internal/hpo",
		"repro/internal/other",
	)
}
