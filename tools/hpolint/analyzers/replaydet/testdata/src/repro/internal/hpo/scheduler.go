package hpo

import "time"

func promoteAt() int64 {
	return time.Now().Unix() // want `time\.Now on the replay decision path`
}
