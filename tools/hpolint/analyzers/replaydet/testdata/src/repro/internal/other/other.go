package other

import "time"

// The analyzer is scoped to internal/replay and internal/hpo decision
// files; everything else may read the clock.
func uptime(start time.Time) time.Duration {
	return time.Since(start)
}
