package replay

import (
	"math/rand"
	"sort"
	"time"
)

func decide(seed int64, scores map[string]float64) []string {
	start := time.Now()   // want `time\.Now on the replay decision path`
	_ = time.Since(start) // want `time\.Since on the replay decision path`
	_ = rand.Intn(3)      // want `global math/rand\.Intn`

	rng := rand.New(rand.NewSource(seed)) // ok: seeded local source
	_ = rng.Intn(3)                       // ok: method on the seeded source

	var ids []string
	for id := range scores { // ok: collect-then-sort single append
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for id, s := range scores { // want `range over map on the replay decision path`
		if s > 0 {
			ids = append(ids, id)
		}
	}

	total := 0.0
	//lint:ignore replaydet order-insensitive sum over the pool
	for _, s := range scores {
		total += s
	}
	_ = total

	for _, id := range ids { // ok: slices iterate deterministically
		_ = id
	}
	return ids
}
