package hpo

import "time"

// api.go is not a decision-path file: wall-clock reads here are fine.
func stamp() int64 {
	return time.Now().Unix()
}
