// Package replaydet enforces the replay contract's determinism clause
// (docs/JOURNAL.md §8): code on the scheduler/pruner decision path must be
// a pure function of the journal record stream, so wall-clock reads, the
// process-global math/rand source, and order-sensitive iteration over maps
// are forbidden there.
//
// Scope: every file of internal/replay, and the decision-path files of
// internal/hpo (decide.go, scheduler.go, pruner.go, hyperband.go). A map
// range whose body is exactly one append into a slice is allowed — the
// collect-then-sort idiom; anything else needs a sort or a justified
// //lint:ignore.
package replaydet

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/tools/hpolint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "replaydet",
	Doc:  "forbid wall-clock, global math/rand and unsorted map iteration on the replay decision path",
	Run:  run,
}

// decisionFiles are the internal/hpo files on the decision path: the pure
// decision core plus the scheduler and pruner state machines the replay
// engine re-drives.
var decisionFiles = map[string]bool{
	"decide.go":    true,
	"scheduler.go": true,
	"pruner.go":    true,
	"hyperband.go": true,
}

// randAllowed lists the math/rand functions that do not touch the
// process-global source.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *lintkit.Pass) error {
	inReplay := strings.HasSuffix(pass.ImportPath, "internal/replay")
	inHPO := strings.HasSuffix(pass.ImportPath, "internal/hpo")
	if !inReplay && !inHPO {
		return nil
	}
	for _, f := range pass.Files {
		if inHPO && !decisionFiles[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSelector flags wall-clock reads and global math/rand use.
func checkSelector(pass *lintkit.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if name := obj.Name(); name == "Now" || name == "Since" || name == "Until" {
			pass.Reportf(sel.Pos(),
				"time.%s on the replay decision path: decisions must be a pure function of the record stream (docs/JOURNAL.md §8)", name)
		}
	case "math/rand", "math/rand/v2":
		// Methods on a *rand.Rand use whatever source built it; only the
		// package-level functions (nil receiver) touch the global source.
		fn, isFunc := obj.(*types.Func)
		if isFunc && fn.Type().(*types.Signature).Recv() == nil && !randAllowed[obj.Name()] {
			pass.Reportf(sel.Pos(),
				"global math/rand.%s on the replay decision path: use a rand.New(rand.NewSource(seed)) source derived from the study seed", obj.Name())
		}
	}
}

// checkRange flags ranges over maps unless the body is the canonical
// collect-into-a-slice single append (sorted or reduced order-insensitively
// by the caller).
func checkRange(pass *lintkit.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if isSingleAppend(rs.Body) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map on the replay decision path iterates in nondeterministic order: collect and sort the keys, or suppress with a justification if the loop is order-insensitive")
}

// isSingleAppend reports whether the block is exactly one
// `xs = append(xs, ...)` statement.
func isSingleAppend(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	assign, ok := body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	return ok && fn.Name == "append"
}
