package fsyncpath_test

import (
	"testing"

	"repro/tools/hpolint/analyzers/fsyncpath"
	"repro/tools/hpolint/internal/lintkit"
)

func TestGolden(t *testing.T) {
	lintkit.RunGolden(t, "testdata/src", fsyncpath.Analyzer,
		"repro/internal/store",
		"repro/internal/other",
	)
}
