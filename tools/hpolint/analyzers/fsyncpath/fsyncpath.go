// Package fsyncpath enforces the group-commit durability rule: os.File
// fsyncs are expensive and ordering-sensitive, so every File.Sync must go
// through internal/store's sanctioned commit path — the group-commit pass
// (Journal.commit), segment rotation/teardown, and the write-then-sync
// helpers. A Sync anywhere else either stalls a hot path (the PR 2/PR 4
// "telemetry must not stall the read loop" incidents) or advances
// durability outside the synced high-water protocol.
package fsyncpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/hpolint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "fsyncpath",
	Doc:  "os.File.Sync only inside internal/store's group-commit path",
	Run:  run,
}

// sanctioned are the internal/store functions allowed to call File.Sync:
// the group-commit pass, rotation sealing, shutdown, and the
// write-everything-then-sync helpers used by manifest swaps and
// compaction.
var sanctioned = map[string]bool{
	"commit":        true, // Journal.commit — the group-commit fsync pass
	"rotateLocked":  true, // seals the active segment before rotation
	"Close":         true, // journal teardown
	"writeFileSync": true, // atomic write helper (manifest, compacted segments)
	"syncDir":       true, // directory entry durability after rename
}

func run(pass *lintkit.Pass) error {
	inStore := strings.HasSuffix(pass.ImportPath, "internal/store")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, isFunc := decl.(*ast.FuncDecl)
			allowed := inStore && isFunc && sanctioned[fn.Name.Name]
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Sync" || len(call.Args) != 0 {
					return true
				}
				if !isOSFile(pass, sel.X) || allowed {
					return true
				}
				if inStore {
					pass.Reportf(call.Pos(),
						"File.Sync outside the sanctioned group-commit path (Journal.commit/rotateLocked/Close, writeFileSync, syncDir): route durability through the group commit")
				} else {
					pass.Reportf(call.Pos(),
						"File.Sync outside internal/store: fsync policy is owned by the journal's group-commit path (docs/JOURNAL.md)")
				}
				return true
			})
		}
	}
	return nil
}

// isOSFile reports whether the expression has type *os.File.
func isOSFile(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "File" && named.Obj().Pkg().Path() == "os"
}
