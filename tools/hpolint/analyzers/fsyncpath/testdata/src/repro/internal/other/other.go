package other

import "os"

type flusher struct{}

func (flusher) Sync() error { return nil }

func save(f *os.File) error {
	return f.Sync() // want `File\.Sync outside internal/store`
}

func flush(fl flusher) error {
	return fl.Sync() // ok: not an os.File
}
