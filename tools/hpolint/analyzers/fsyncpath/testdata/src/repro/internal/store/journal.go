package store

import "os"

type segment struct{ f *os.File }

func commit(segs []*segment) error {
	for _, s := range segs {
		if err := s.f.Sync(); err != nil { // ok: the group-commit fsync pass
			return err
		}
	}
	return nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil { // ok: sanctioned write-then-sync helper
		f.Close()
		return err
	}
	return f.Close()
}

func appendRecord(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync() // want `File\.Sync outside the sanctioned group-commit path`
}
