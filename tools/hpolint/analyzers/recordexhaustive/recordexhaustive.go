// Package recordexhaustive enforces conscious handling of journal record
// types: a switch over record-type strings must either cover every member
// of store.recordTypes or carry an explicit default clause. The docs pin
// (TestJournalDocSpecCoversRecordTypes) keeps the SPEC in sync with
// recordTypes; this analyzer keeps the CODE in sync — adding a record type
// breaks every switch that silently assumed the old closed set.
//
// The authoritative member list is parsed out of the repository's own
// internal/store sources (the `recordTypes` slice), resolved relative to
// the analyzed package's module root, so the checker never drifts from the
// store.
package recordexhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/tools/hpolint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "recordexhaustive",
	Doc:  "switches over journal record types must cover every store.recordTypes member or declare a default",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	if pass.ModuleRoot == "" {
		return nil
	}
	members, err := loadRecordTypes(pass.ModuleRoot)
	if err != nil || len(members) == 0 {
		// A module without internal/store (or without the slice) has no
		// record-type contract to enforce.
		return nil
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw, members, set)
			return true
		})
	}
	return nil
}

// checkSwitch flags a default-less switch whose cases are all record-type
// strings but do not cover the full set.
func checkSwitch(pass *lintkit.Pass, sw *ast.SwitchStmt, members []string, set map[string]bool) {
	covered := map[string]bool{}
	caseCount := 0
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			return // explicit default: conscious handling of the rest
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return // not a constant-string switch
			}
			v := constant.StringVal(tv.Value)
			if !set[v] {
				return // switches over some other string domain
			}
			covered[v] = true
			caseCount++
		}
	}
	// One-case switches are idiomatic guards, not type dispatches; require
	// at least two distinct record types before treating the switch as "a
	// switch over journal record types".
	if len(covered) < 2 {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over journal record types misses %s: cover every store.recordTypes member or add an explicit default clause",
		strings.Join(missing, ", "))
}

// recordTypesCache memoizes the per-module-root member list: vet runs the
// analyzer once per package, but the store sources only need parsing once.
var recordTypesCache sync.Map // module root → []string

// loadRecordTypes parses <root>/internal/store for
// `var recordTypes = []string{...}`, resolving identifier elements against
// the package's string constants.
func loadRecordTypes(root string) ([]string, error) {
	if v, ok := recordTypesCache.Load(root); ok {
		return v.([]string), nil
	}
	dir := filepath.Join(root, "internal", "store")
	entries, err := os.ReadDir(dir)
	if err != nil {
		recordTypesCache.Store(root, []string(nil))
		return nil, nil
	}
	fset := token.NewFileSet()
	consts := map[string]string{}
	var elems []ast.Expr
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if s, err := strconv.Unquote(lit.Value); err == nil {
							consts[id.Name] = s
						}
					}
					if id.Name == "recordTypes" {
						if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
							elems = cl.Elts
						}
					}
				}
			}
		}
	}
	var members []string
	for _, e := range elems {
		switch e := e.(type) {
		case *ast.Ident:
			if s, ok := consts[e.Name]; ok {
				members = append(members, s)
			} else {
				return nil, fmt.Errorf("recordexhaustive: unresolved recordTypes member %s", e.Name)
			}
		case *ast.BasicLit:
			if s, err := strconv.Unquote(e.Value); err == nil {
				members = append(members, s)
			}
		}
	}
	recordTypesCache.Store(root, members)
	return members, nil
}
