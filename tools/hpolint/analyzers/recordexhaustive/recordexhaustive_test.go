package recordexhaustive_test

import (
	"testing"

	"repro/tools/hpolint/analyzers/recordexhaustive"
	"repro/tools/hpolint/internal/lintkit"
)

func TestGolden(t *testing.T) {
	lintkit.RunGolden(t, "testdata/src", recordexhaustive.Analyzer,
		"repro/internal/store",
	)
}
