package store

const (
	recStudy  = "study"
	recState  = "state"
	recTrial  = "trial"
	recMetric = "metric"
)

var recordTypes = []string{recStudy, recState, recTrial, recMetric}

func dispatch(t string) int {
	switch t { // ok: covers every member
	case recStudy:
		return 0
	case recState:
		return 1
	case recTrial:
		return 2
	case recMetric:
		return 3
	}
	return -1
}

func partial(t string) bool {
	switch t { // want `switch over journal record types misses metric, trial`
	case recStudy:
		return true
	case recState:
		return true
	}
	return false
}

func partialWithDefault(t string) bool {
	switch t { // ok: explicit default is conscious handling of the rest
	case recStudy, recState:
		return true
	default:
		return false
	}
}

func guard(t string) bool {
	switch t { // ok: a single-type guard, not a record dispatch
	case recStudy:
		return true
	}
	return false
}

func otherDomain(s string) bool {
	switch s { // ok: some other string domain
	case "alpha", "beta":
		return true
	}
	return false
}
