package confighygiene_test

import (
	"testing"

	"repro/tools/hpolint/analyzers/confighygiene"
	"repro/tools/hpolint/internal/lintkit"
)

func TestGolden(t *testing.T) {
	lintkit.RunGolden(t, "testdata/src", confighygiene.Analyzer,
		"repro/internal/store",
		"repro/internal/server",
		"repro/internal/hpo",
	)
}
