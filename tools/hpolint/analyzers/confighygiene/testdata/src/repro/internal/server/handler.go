package server

func render(cfg map[string]string) string {
	return cfg["_hb_max"] // want `hidden config key "_hb_max"`
}

func sanitize(cfg map[string]string) {
	delete(cfg, "_hb") // ok: sanctioned sanitize choke point
}
