package hpo

// internal/hpo is outside the persistence/API scope: the scheduler is
// allowed to mint hidden coordination keys.
func heartbeatKey() string {
	return "_hb"
}
