package store

const hiddenHeartbeat = "_hb" // want `hidden config key "_hb"`

func PublicConfig(cfg map[string]string) map[string]string {
	out := map[string]string{}
	for k, v := range cfg {
		if k == "_hb" || k == "_hb_max" { // ok: the sanctioned strip choke point
			continue
		}
		out[k] = v
	}
	return out
}

func leak(cfg map[string]string) string {
	return cfg["_hb"] // want `hidden config key "_hb"`
}

func prefixCheck(k string) bool {
	return len(k) > 0 && k[:1] == "_" // ok: bare underscore is not a key
}
