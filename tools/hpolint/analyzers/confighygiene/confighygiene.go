// Package confighygiene enforces the hidden-key hygiene clause
// (docs/JOURNAL.md "config hygiene"): underscore-prefixed scheduler keys
// ("_hb", "_hb_max", and any future "_"-key) are in-memory coordination
// state and must never reach the persistence or API layers. The sanctioned
// choke points — store.PublicConfig and the sanitize helpers — are the
// only places in internal/store and internal/server allowed to spell such
// a key; anywhere else, a literal like "_hb" in those packages is a sign
// someone is about to encode one past the boundary.
package confighygiene

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"repro/tools/hpolint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "confighygiene",
	Doc:  "forbid underscore-prefixed config-key literals in the persistence/API layers outside PublicConfig/sanitize",
	Run:  run,
}

// sanctioned are the function names allowed to manipulate hidden keys in
// scope: the strip choke points themselves.
var sanctioned = map[string]bool{
	"PublicConfig": true,
	"sanitize":     true,
}

// hiddenKey matches underscore-prefixed config keys ("_hb", "_hb_max",
// "_anything"); the bare "_" string (used by the HasPrefix hygiene checks
// themselves) is not a key.
var hiddenKey = regexp.MustCompile(`^_[A-Za-z]`)

func run(pass *lintkit.Pass) error {
	if !strings.HasSuffix(pass.ImportPath, "internal/store") &&
		!strings.HasSuffix(pass.ImportPath, "internal/server") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			inSanctioned := ok && sanctioned[fn.Name.Name]
			ast.Inspect(decl, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !hiddenKey.MatchString(s) {
					return true
				}
				if inSanctioned {
					return true
				}
				pass.Reportf(lit.Pos(),
					"hidden config key %q in the persistence/API layer: underscore keys must be stripped at PublicConfig/sanitize, not handled here", s)
				return true
			})
		}
	}
	return nil
}
