// Package obsregister enforces the metric-registry conventions of
// docs/OBSERVABILITY.md §2: instruments are registered once, at package
// init (package-level var initializers or init functions) so handles are
// pre-resolved off the hot path and the two-way docs pin sees a complete
// registry at import time; family names follow
// `hpo_<subsystem>_<what>[_total]` (library) or `hpod_<what>` (daemon HTTP
// plane); `_total` marks counters and only counters.
package obsregister

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/hpolint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "obsregister",
	Doc:  "metric registration only at package init, with doc-pinned family naming",
	Run:  run,
}

// registerMethods are the *obs.Registry constructors; the value marks
// counter kinds (which must carry the _total suffix).
var registerMethods = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"Gauge":        false,
	"GaugeVec":     false,
	"Histogram":    false,
	"HistogramVec": false,
}

var (
	libName    = regexp.MustCompile(`^hpo_[a-z0-9]+(_[a-z0-9]+)+$`)
	daemonName = regexp.MustCompile(`^hpod_[a-z0-9]+(_[a-z0-9]+)*$`)
)

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			atInit := declIsInitScope(decl)
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				isCounter, isRegister := registerMethods[sel.Sel.Name]
				if !isRegister || !isRegistryRecv(pass, sel) {
					return true
				}
				if !atInit {
					pass.Reportf(call.Pos(),
						"obs.Registry.%s outside a package-level var or init: register instruments at package init so handles are pre-resolved and the docs pin sees the full registry", sel.Sel.Name)
				}
				checkName(pass, call, sel.Sel.Name, isCounter)
				return true
			})
		}
	}
	return nil
}

// checkName validates the family-name argument against the documented
// conventions.
func checkName(pass *lintkit.Pass, call *ast.CallExpr, method string, isCounter bool) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"obs.Registry.%s family name is not a constant string: names must be statically checkable against docs/OBSERVABILITY.md", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !libName.MatchString(name) && !daemonName.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric family %q does not match the hpo_<subsystem>_<what>[_total] / hpod_<what> convention (docs/OBSERVABILITY.md §2)", name)
		return
	}
	if isCounter && !strings.HasSuffix(name, "_total") {
		pass.Reportf(call.Args[0].Pos(),
			"counter family %q must end in _total (docs/OBSERVABILITY.md §2)", name)
	}
	if !isCounter && strings.HasSuffix(name, "_total") {
		pass.Reportf(call.Args[0].Pos(),
			"%s family %q must not end in _total — the suffix marks monotonic counters (docs/OBSERVABILITY.md §2)", strings.ToLower(strings.TrimSuffix(method, "Vec")), name)
	}
}

// declIsInitScope reports whether a top-level declaration runs at package
// init: a var block or an init function. Function literals inside a var
// initializer (the build-a-map-then-return idiom) still count — they run
// during package initialization.
func declIsInitScope(decl ast.Decl) bool {
	switch d := decl.(type) {
	case *ast.GenDecl:
		return d.Tok.String() == "var"
	case *ast.FuncDecl:
		return d.Name.Name == "init" && d.Recv == nil
	}
	return false
}

// isRegistryRecv reports whether the selector's receiver is an
// *obs.Registry from this repo's internal/obs package.
func isRegistryRecv(pass *lintkit.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Registry" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}
