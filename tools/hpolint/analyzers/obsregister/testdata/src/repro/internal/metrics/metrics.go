package metrics

import "repro/internal/obs"

var (
	goodCounter = obs.Default().Counter("hpo_store_appends_total", "ok")
	goodGauge   = obs.Default().Gauge("hpo_queue_depth", "ok")
	goodDaemon  = obs.Default().Counter("hpod_requests_total", "ok: daemon plane")
	goodVec     = obs.Default().CounterVec("hpo_server_errors_total", "ok", "code")

	badName    = obs.Default().Counter("storeAppends_total", "x")  // want `does not match`
	noTotal    = obs.Default().Counter("hpo_store_appends", "x")   // want `must end in _total`
	gaugeTotal = obs.Default().Gauge("hpo_queue_depth_total", "x") // want `must not end in _total`

	// The build-a-map-in-a-func-literal idiom still runs at package init.
	lazy = func() *obs.Counter {
		return obs.Default().Counter("hpo_lazy_bumps_total", "ok")
	}()
)

func init() {
	obs.Default().Counter("hpo_init_registrations_total", "ok: init scope")
}

func late() *obs.Counter {
	return obs.Default().Counter("hpo_late_registrations_total", "x") // want `outside a package-level var or init`
}

func dynamic(name string) *obs.Gauge {
	return obs.Default().Gauge(name, "x") // want `outside a package-level var or init` `not a constant string`
}
