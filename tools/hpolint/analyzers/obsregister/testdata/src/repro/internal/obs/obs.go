// Package obs is a minimal stand-in for the repository's metric registry:
// the analyzer matches by receiver type name and import-path suffix only.
package obs

type Registry struct{}

type Counter struct{}
type CounterVec struct{}
type Gauge struct{}
type Histogram struct{}

var def = &Registry{}

func Default() *Registry { return def }

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
