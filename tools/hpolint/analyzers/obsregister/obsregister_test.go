package obsregister_test

import (
	"testing"

	"repro/tools/hpolint/analyzers/obsregister"
	"repro/tools/hpolint/internal/lintkit"
)

func TestGolden(t *testing.T) {
	lintkit.RunGolden(t, "testdata/src", obsregister.Analyzer,
		"repro/internal/metrics",
	)
}
