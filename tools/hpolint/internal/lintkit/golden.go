package lintkit

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the expectation strings from a `// want "rx" "rx"`
// comment — the analysistest golden-diagnostic convention: each quoted
// regexp must match exactly one diagnostic reported on that line.
var wantRe = regexp.MustCompile(`(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `)`)

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunGolden loads each package (import paths under srcRoot), runs the
// analyzer alone, and checks the diagnostics against `// want` comments:
// every diagnostic must be expected, every expectation must fire.
func RunGolden(t *testing.T, srcRoot string, a *Analyzer, paths ...string) {
	t.Helper()
	loader := NewLoader(srcRoot)
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := Analyze(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			if !claimWant(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", path, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", path, w.file, w.line, w.re)
			}
		}
	}
}

// collectWants parses the `// want` comments of every file in the package.
func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					var lit string
					var err error
					if strings.HasPrefix(q, "`") {
						lit = strings.Trim(q, "`")
					} else {
						lit, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// claimWant marks the first unclaimed expectation on the diagnostic's line
// that matches it.
func claimWant(wants []*wantExpectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Pos renders a token.Position compactly for test failure messages.
func Pos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
