package lintkit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON `go vet` writes for each analysis unit (the
// cmd/go ↔ vettool protocol; see x/tools' unitchecker for the reference
// implementation). Only the fields this driver consumes are declared.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	// VetxOnly units exist purely to produce dependency facts; this suite
	// keeps no cross-package facts, so they are answered with an empty
	// facts file and no analysis.
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one `go vet -vettool` analysis unit: parse the package
// named by the cfg file, type-check it against the export data cmd/go
// supplies, run the analyzers, and print diagnostics. The returned exit
// code follows the unitchecker convention: 0 clean, 1 driver failure, 2
// diagnostics reported.
func RunUnit(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "hpolint: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(b, &cfg); err != nil {
		fmt.Fprintf(stderr, "hpolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even when empty — cmd/go stats it to
	// decide whether the unit succeeded.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "hpolint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Contract analyzers police production code; test files routinely
		// (and legitimately) use wall clocks, raw literals and direct fds.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "hpolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	info := NewInfo()
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hpolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &Package{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		ModuleRoot: FindModuleRoot(cfg.Dir),
	}
	diags, err := Analyze(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "hpolint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
