package lintkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages from source: import paths under the source
// root resolve to root-relative directories (GOPATH-style, the layout the
// golden testdata trees use, and — with the module path stripped — the
// real repository); everything else falls back to the standard library via
// the stdlib source importer. No go command, no network, no export data.
type Loader struct {
	Fset *token.FileSet
	// Root is the source directory paths resolve under: Load("a/b") parses
	// Root/a/b.
	Root string
	// ModulePath, when set, additionally maps "ModulePath/x" → Root/x so a
	// module tree loads under its declared import paths.
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader builds a Loader over one source root.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		Root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
	}
}

// dirFor maps an import path to a directory under the root, or "" when the
// path does not resolve locally.
func (l *Loader) dirFor(path string) string {
	rel := path
	if l.ModulePath != "" {
		if path == l.ModulePath {
			rel = "."
		} else if strings.HasPrefix(path, l.ModulePath+"/") {
			rel = strings.TrimPrefix(path, l.ModulePath+"/")
		}
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer: local packages load recursively, the
// rest come from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the import path, memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lintkit: package %q not under %s", path, l.Root)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lintkit: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{Importer: l, Sizes: types.SizesFor("gc", "amd64")}
	info := NewInfo()
	tpkg, err := tc.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: typechecking %s: %v", path, err)
	}
	pkg := &Package{
		Fset:       l.Fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		ImportPath: path,
		Dir:        dir,
		ModuleRoot: FindModuleRoot(dir),
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ModulePackages enumerates the import paths of every package in the
// module rooted at root (declared module path modPath), skipping testdata,
// hidden directories, and nested modules.
func ModulePackages(root, modPath string) ([]string, error) {
	var paths []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if p != root {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	compact := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			compact = append(compact, p)
		}
	}
	return compact, nil
}

// ReadModulePath reads the module declaration from a go.mod file.
func ReadModulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}
