// Package lintkit is a dependency-free miniature of the golang.org/x/tools
// go/analysis framework: just enough Analyzer/Pass surface to write
// repo-specific contract checkers, a `go vet -vettool` unitchecker
// protocol driver, a source-mode package loader for tests, and an
// analysistest-style golden-diagnostic harness.
//
// The container this repo builds in has no module proxy access, so the
// real x/tools dependency is out of reach; the shapes here mirror it
// closely enough that swapping back is a mechanical change.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one contract checker: a name (used in diagnostics and
// //lint:ignore directives), a doc string, and the per-package Run hook.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the package's canonical import path; analyzers scope
	// themselves by suffix (e.g. "internal/replay").
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// ModuleRoot is the nearest ancestor of Dir containing go.mod ("" when
	// none was found); repo-pinned analyzers resolve contract sources (like
	// internal/store's recordTypes) relative to it.
	ModuleRoot string

	diags   *[]Diagnostic
	ignores map[string]map[int][]string // filename → line → analyzer names ignored
}

// Reportf records a diagnostic unless a //lint:ignore directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	for _, name := range p.ignores[position.Filename][position.Line] {
		if name == p.Analyzer.Name || name == "*" {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreRe matches suppression directives:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// A directive suppresses matching diagnostics on its own line and on the
// line directly below it (so it can trail a statement or precede one). The
// justification is mandatory — a bare directive does not suppress.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+(.+)$`)

// collectIgnores builds the per-file suppression table for a package.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					out[pos.Filename] = byLine
				}
				for _, name := range strings.Split(m[1], ",") {
					byLine[pos.Line] = append(byLine[pos.Line], name)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], name)
				}
			}
		}
	}
	return out
}

// Package is one loaded, type-checked package ready to be analyzed.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
	Dir        string
	ModuleRoot string
}

// Analyze runs the analyzers over the package and returns their combined
// diagnostics sorted by position.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Pkg,
			TypesInfo:  pkg.Info,
			ImportPath: pkg.ImportPath,
			Dir:        pkg.Dir,
			ModuleRoot: pkg.ModuleRoot,
			diags:      &diags,
			ignores:    ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod; it returns "" when none exists.
func FindModuleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
