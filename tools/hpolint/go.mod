module repro/tools/hpolint

go 1.24
