// mnist_grid reproduces the paper's single-node MNIST experiment at laptop
// scale (§5, Figures 5 and 7): a full 27-configuration grid search runs as
// parallel tasks with one computing unit each, real training included. It
// writes the Paraver trace and the task graph next to the binary so
// `traceview mnist_grid.prv` shows the Figure-5 picture.
//
// Run: go run ./examples/mnist_grid
package main

import (
	"fmt"
	"log"
	"os"
	gort "runtime"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/trace"
)

func main() {
	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [3, 6, 9],
	  "batch_size": [16, 32, 64]
	}`))
	if err != nil {
		log.Fatal(err)
	}

	rec := trace.NewRecorder()
	cores := gort.NumCPU()
	rt, err := runtime.New(runtime.Options{
		Cluster:  cluster.Local(cores),
		Backend:  runtime.Real,
		Recorder: rec,
		Graph:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d experiments on a %d-core node (1 unit each)\n", space.Size(), cores)
	study, err := hpo.NewStudy(hpo.StudyOptions{
		Sampler:    hpo.NewGridSearch(space),
		Objective:  &hpo.MLObjective{Dataset: datasets.MNISTLike(800, 7), Hidden: []int{32}},
		Runtime:    rt,
		Constraint: runtime.Constraint{Cores: 1},
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 7: all accuracy curves on one chart.
	fmt.Print(hpo.RenderCurves(res.Trials, 72, 16))
	fmt.Println()
	fmt.Print(hpo.RenderTable(res.Trials))

	above := 0
	for _, t := range res.Trials {
		if t.BestAcc > 0.9 {
			above++
		}
	}
	fmt.Printf("\n%d/%d configurations exceed 90%% validation accuracy (paper: 'most')\n",
		above, len(res.Trials))

	// Figure 5: the per-core execution trace.
	fmt.Println()
	fmt.Print(trace.RenderGantt(rec, trace.GanttOptions{Width: 72, MaxRows: 16, ShowEvents: true}))

	if f, err := os.Create("mnist_grid.prv"); err == nil {
		if err := trace.WriteParaver(f, rec); err != nil {
			log.Printf("writing trace: %v", err)
		}
		f.Close()
		fmt.Println("\nParaver trace written to mnist_grid.prv")
	}
	if dot, err := rt.ExportDOT("mnist_grid"); err == nil {
		if err := os.WriteFile("mnist_grid.dot", []byte(dot), 0o644); err == nil {
			fmt.Println("task graph written to mnist_grid.dot")
		}
	}
	rt.Shutdown()
}
