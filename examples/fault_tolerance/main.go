// fault_tolerance demonstrates the paper's §3 fault-tolerance behaviour on
// the distributed (Remote) backend with real TCP transports: three workers
// serve training tasks, one worker's connection is severed mid-run, and the
// runtime resubmits its tasks to the survivors — every experiment still
// completes.
//
// Run: go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/runtime"
)

func main() {
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	def := runtime.TaskDef{
		Name: "experiment", Returns: 1, MaxRetries: 2,
		Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
			// Stand-in for training: a short busy wait keeps tasks in
			// flight long enough for the failure to land mid-run.
			time.Sleep(50 * time.Millisecond)
			return []interface{}{fmt.Sprintf("trial %v trained on worker %d (attempt %d)",
				args[0], ctx.Node, ctx.Attempt)}, nil
		},
	}

	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Register(def); err != nil {
		log.Fatal(err)
	}

	// Three workers connect over TCP, like COMPSs workers on three nodes.
	for i := 0; i < 3; i++ {
		go func() {
			w := runtime.NewWorker(2, 0)
			if err := w.Register(def); err != nil {
				log.Fatal(err)
			}
			if err := w.ConnectAndServe(ln.Addr()); err != nil {
				log.Printf("worker exited: %v", err)
			}
		}()
	}
	victim := make(chan comm.Transport, 3)
	for i := 0; i < 3; i++ {
		tr, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.AttachWorker(tr); err != nil {
			log.Fatal(err)
		}
		victim <- tr
	}
	fmt.Println("3 workers attached")

	var futs []*runtime.Future
	for i := 0; i < 18; i++ {
		f, err := rt.Submit1("experiment", i)
		if err != nil {
			log.Fatal(err)
		}
		futs = append(futs, f)
	}

	// Sever the first worker's link while tasks are in flight.
	go func() {
		time.Sleep(60 * time.Millisecond)
		tr := <-victim
		fmt.Println(">>> killing worker 0's connection mid-run")
		tr.Close()
	}()

	vals, err := rt.WaitOn(futs...)
	if err != nil {
		log.Fatal(err)
	}
	var resubmitted int64
	for _, v := range vals {
		s := v.(string)
		fmt.Println(" ", s)
		if len(s) > 0 && s[len(s)-2] != '0' { // attempt > 0
			atomic.AddInt64(&resubmitted, 1)
		}
	}
	st := rt.Stats()
	fmt.Printf("\nall %d experiments completed; %d resubmissions after the node failure\n",
		st.Completed, st.Retried)
	rt.Shutdown()
}
