// cifar_multinode reproduces the paper's multi-node CIFAR-10 experiment
// (§5, Figure 6) on the discrete-event simulator: 27 whole-node training
// tasks on a 27-node MareNostrum 4 reservation versus a 13-node one. The
// point the paper makes — halving the nodes costs far less than 2× because
// finished nodes would otherwise idle — falls out of the trace.
//
// Run: go run ./examples/cifar_multinode
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/trace"
)

func main() {
	full, fullRec := run(27)
	half, halfRec := run(13)

	fmt.Println("Figure 6(a) — 27 nodes (one task per node):")
	fmt.Print(trace.RenderGantt(fullRec, trace.GanttOptions{Width: 64, MaxRows: 14}))
	fmt.Println("\nFigure 6(b) — 13 nodes (two waves, backfilled):")
	fmt.Print(trace.RenderGantt(halfRec, trace.GanttOptions{Width: 64, MaxRows: 14}))

	fmt.Printf("\nmakespan 27 nodes: %.1f min\n", full.Minutes())
	fmt.Printf("makespan 13 nodes: %.1f min (%.2f× — 'almost the same amount of time')\n",
		half.Minutes(), float64(half)/float64(full))
}

func run(nodes int) (time.Duration, *trace.Recorder) {
	rec := trace.NewRecorder()
	rt, err := runtime.New(runtime.Options{
		Cluster:  cluster.MareNostrum4(nodes),
		Backend:  runtime.Sim,
		Recorder: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.MustRegister(runtime.TaskDef{
		Name:       "experiment",
		Constraint: runtime.Constraint{Cores: 48}, // a whole node per task
		Cost: func(args []interface{}, res runtime.SimResources) time.Duration {
			cfg := args[0].(hpo.Config)
			c := perfmodel.CIFARCost(cfg.Int("num_epochs", 50), cfg.Int("batch_size", 64))
			return c.Duration(perfmodel.Resources{
				Cores: res.Cores, GPUs: res.GPUs,
				CoreSpeed: res.CoreSpeed, GPUSpeed: res.GPUSpeed,
			})
		},
	})

	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [20, 50, 100],
	  "batch_size": [32, 64, 128]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range hpo.NewGridSearch(space).Ask(0) {
		if _, err := rt.Submit("experiment", cfg); err != nil {
			log.Fatal(err)
		}
	}
	rt.Barrier()
	ms := rt.Stats().Makespan
	rt.Shutdown()
	return ms, rec
}
