// Quickstart: the smallest complete HPO run — a 2×2×1 grid trained for real
// on the local "node", mirroring the paper's Listing 2 structure:
//
//	register the experiment task  (@task + @constraint)
//	submit one task per config    (the for-loop over configurations)
//	wait on all results           (compss_wait_on)
//	print the best configuration
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
)

func main() {
	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD"],
	  "num_epochs": [3, 5],
	  "batch_size": [32]
	}`))
	if err != nil {
		log.Fatal(err)
	}

	rt, err := runtime.New(runtime.Options{
		Cluster: cluster.Local(4), // a 4-core "node"
		Backend: runtime.Real,
	})
	if err != nil {
		log.Fatal(err)
	}

	study, err := hpo.NewStudy(hpo.StudyOptions{
		Sampler:    hpo.NewGridSearch(space),
		Objective:  &hpo.MLObjective{Dataset: datasets.MNISTLike(400, 1), Hidden: []int{16}},
		Runtime:    rt,
		Constraint: runtime.Constraint{Cores: 1}, // each experiment gets 1 computing unit
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	rt.Shutdown()

	fmt.Print(hpo.RenderTable(res.Trials))
	fmt.Printf("\nbest config: %s (val_acc %.3f)\n", res.Best.Config, res.Best.BestAcc)
}
