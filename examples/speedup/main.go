// speedup demonstrates the paper's core pitch on real hardware: the same
// HPO application, unchanged, run on 1, 2, 4 and 8 computing units — the
// only difference is the resource request, exactly like asking SLURM for
// more nodes ("no code changes are required to run across multiple nodes",
// §6.1). Training is real; wall-clock speedup is printed.
//
// Run: go run ./examples/speedup
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
)

func main() {
	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD"],
	  "num_epochs": [6],
	  "batch_size": [16, 32, 64, 128]
	}`)) // 8 experiments
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("8 real training tasks, identical code, growing resource request:")
	fmt.Println("units  wall time   speedup")
	var base time.Duration
	for _, units := range []int{1, 2, 4, 8} {
		wall := run(space, units)
		if base == 0 {
			base = wall
		}
		fmt.Printf("%5d  %9v  %6.2f×\n", units, wall.Round(time.Millisecond), float64(base)/float64(wall))
	}
	fmt.Println("\nonly the cluster.Local(n) argument changed between rows.")
}

func run(space *hpo.Space, units int) time.Duration {
	rt, err := runtime.New(runtime.Options{
		Cluster: cluster.Local(units),
		Backend: runtime.Real,
	})
	if err != nil {
		log.Fatal(err)
	}
	study, err := hpo.NewStudy(hpo.StudyOptions{
		Sampler:    hpo.NewGridSearch(space),
		Objective:  &hpo.MLObjective{Dataset: datasets.MNISTLike(700, 55), Hidden: []int{48}},
		Runtime:    rt,
		Constraint: runtime.Constraint{Cores: 1},
		Seed:       55,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := study.Run(); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	rt.Shutdown()
	return wall
}
