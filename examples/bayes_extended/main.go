// bayes_extended demonstrates the "library that puts together all key
// algorithms in HPO" the paper promises as future work (§7): the same
// extended search space — continuous log-scale learning rate, integer
// hidden width, categorical optimizer — searched by random sampling,
// Gaussian-process Bayesian optimisation and TPE under an equal trial
// budget, with 5-fold cross-validated accuracy as the objective.
//
// Run: go run ./examples/bayes_extended
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
)

func main() {
	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [4],
	  "batch_size": [32],
	  "learning_rate": {"type": "float", "min": 0.0001, "max": 0.2, "log": true},
	  "hidden_units": {"type": "int", "min": 4, "max": 48}
	}`))
	if err != nil {
		log.Fatal(err)
	}
	const budget = 12

	fmt.Printf("extended space, %d-trial budget, 3-fold CV objective\n\n", budget)
	fmt.Println("algorithm  best_acc  best config")
	for _, algo := range []string{"random", "bayes", "tpe"} {
		sampler, err := hpo.NewSampler(algo, space, budget, 1234)
		if err != nil {
			log.Fatal(err)
		}
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(4), Backend: runtime.Real})
		if err != nil {
			log.Fatal(err)
		}
		study, err := hpo.NewStudy(hpo.StudyOptions{
			Sampler:    sampler,
			Objective:  &hpo.CVObjective{Dataset: datasets.CIFARLike(240, 77), Folds: 3, Hidden: []int{16}},
			Runtime:    rt,
			Constraint: runtime.Constraint{Cores: 1},
			BatchSize:  4, // model-based samplers adapt between batches
			Seed:       77,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := study.Run()
		if err != nil {
			log.Fatal(err)
		}
		rt.Shutdown()
		fmt.Printf("%-9s  %.4f    %s\n", algo, res.BestAccuracy(), res.Best.Config)
	}
	fmt.Println("\nmodel-based samplers concentrate trials near good learning rates;")
	fmt.Println("random spends its budget uniformly.")
}
