// gpu_random explores the paper's GPU-node observations (§6.1, Figure 9) on
// a simulated CTE-POWER9 node (4× V100, 160 hardware threads): a random
// search of 16 CIFAR configurations runs with one GPU per task while the
// CPU cores granted per task sweep from 1 to 40. With one core the V100s
// starve behind CPU-side preprocessing; with enough cores the whole study
// drops below an hour.
//
// Run: go run ./examples/gpu_random
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
)

func main() {
	space, err := hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [20, 50, 100],
	  "batch_size": [32, 64, 128]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	configs := hpo.NewRandomSearch(space, 16, 99).Ask(0)

	fmt.Println("random search: 16 CIFAR trials on POWER9 (4× V100), 1 GPU per task")
	fmt.Println("cores/task  makespan")
	for _, cores := range []int{1, 2, 4, 8, 16, 32, 40} {
		ms := run(configs, cores)
		bar := ""
		for i := 0; i < int(ms.Minutes()/10); i++ {
			bar += "█"
		}
		fmt.Printf("%9d  %7.1f min  %s\n", cores, ms.Minutes(), bar)
	}
	fmt.Println("\n1 core starves the V100 behind CPU preprocessing (paper §6.1);")
	fmt.Println("adding cores brings the whole process under an hour.")
}

func run(configs []hpo.Config, cores int) time.Duration {
	rt, err := runtime.New(runtime.Options{
		Cluster: cluster.Power9(1),
		Backend: runtime.Sim,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.MustRegister(runtime.TaskDef{
		Name:       "experiment",
		Constraint: runtime.Constraint{Cores: cores, GPUs: 1},
		Cost: func(args []interface{}, res runtime.SimResources) time.Duration {
			cfg := args[0].(hpo.Config)
			c := perfmodel.CIFARCost(cfg.Int("num_epochs", 50), cfg.Int("batch_size", 64))
			return c.Duration(perfmodel.Resources{
				Cores: res.Cores, GPUs: res.GPUs,
				CoreSpeed: res.CoreSpeed, GPUSpeed: res.GPUSpeed,
			})
		},
	})
	for _, cfg := range configs {
		if _, err := rt.Submit("experiment", cfg); err != nil {
			log.Fatal(err)
		}
	}
	rt.Barrier()
	ms := rt.Stats().Makespan
	rt.Shutdown()
	return ms
}
