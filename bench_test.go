// Package repro's root bench suite regenerates every table and figure of
// the paper's evaluation, one benchmark per artifact (DESIGN.md §4). Run:
//
//	go test -bench=. -benchmem
//
// Custom metrics attach the headline number of each artifact (makespans in
// minutes, accuracies, speedups) to the benchmark output so the paper-vs-
// measured comparison in EXPERIMENTS.md can be refreshed from one run.
package repro

import (
	"testing"

	"repro/internal/paperrepro"
)

func BenchmarkFigure3TaskGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Tasks), "graph-tasks")
		b.ReportMetric(float64(r.Edges), "graph-edges")
	}
}

func BenchmarkFigure4SingleTaskAffinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TaskDuration.Minutes(), "task-min")
		b.ReportMetric(float64(r.BusyCores), "busy-cores")
	}
}

func BenchmarkFigure5SingleNodeGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Makespan.Minutes(), "makespan-min")
		b.ReportMetric(float64(r.StartedAtZero), "immediate-starts")
	}
}

func BenchmarkFigure6MultiNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MakespanFull.Minutes(), "28node-min")
		b.ReportMetric(r.MakespanHalf.Minutes(), "14node-min")
		b.ReportMetric(r.Ratio, "half/full")
	}
}

func BenchmarkFigure7MNISTAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BestAcc, "best-acc")
		b.ReportMetric(r.Above90Pct, "frac>90%")
	}
}

func BenchmarkFigure8CIFARAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BestAcc, "best-acc")
		b.ReportMetric(r.Above90Pct, "frac>90%")
	}
}

func BenchmarkFigure9TimeVsCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		// Headline points: 1-node best, its 1-core baseline, GPU extremes.
		min1 := r.OneNode.Y[0]
		for _, v := range r.OneNode.Y {
			if v < min1 {
				min1 = v
			}
		}
		b.ReportMetric(r.OneNode.Y[0], "1node-1core-min")
		b.ReportMetric(min1, "1node-best-min")
		b.ReportMetric(r.GPUNode.Y[0], "gpu-1core-min")
		b.ReportMetric(r.GPUNode.Y[len(r.GPUNode.Y)-1], "gpu-max-cores-min")
	}
}

func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.Scalability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup[len(r.Speedup)-1], "speedup@27nodes")
		b.ReportMetric(r.Makespan[0].Minutes(), "1node-min")
		b.ReportMetric(r.Makespan[len(r.Makespan)-1].Minutes(), "27node-min")
	}
}

func BenchmarkGPUMachineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.GPUComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Makespans[0].Minutes(), "mn4-min")
		b.ReportMetric(r.Makespans[1].Minutes(), "minotauro-min")
		b.ReportMetric(r.Makespans[2].Minutes(), "power9-min")
	}
}

func BenchmarkAlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.AlgorithmComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GridBest, "grid-best")
		b.ReportMetric(r.RandomBest, "random-best")
		b.ReportMetric(r.RecoveredFrac, "recovered-frac")
	}
}

func BenchmarkSchedulerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.AblationScheduler()
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range r.Policies {
			b.ReportMetric(r.Makespans[j].Minutes(), p+"-min")
		}
	}
}

func BenchmarkEarlyStoppingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.AblationEarlyStopping()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.EpochsWithout), "epochs-baseline")
		b.ReportMetric(float64(r.EpochsWith), "epochs-earlystop")
	}
}

func BenchmarkTracingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.AblationTracing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OverheadPct, "overhead-%")
		b.ReportMetric(float64(r.RecordsWritten), "records")
	}
}

func BenchmarkFaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := paperrepro.AblationFaultTolerance()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PenaltyPct, "penalty-%")
		b.ReportMetric(float64(r.Retries), "retries")
	}
}
