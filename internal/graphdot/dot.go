// Package graphdot renders task dependency graphs in Graphviz DOT format,
// reproducing the dynamic task graph PyCOMPSs emits for the application
// (paper Figure 3): numbered task nodes, data-version edge labels (d1v2,
// d3v2, ...), a synchronisation node for compss_wait_on, and a legend of
// task kinds.
package graphdot

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a vertex in the task graph.
type Node struct {
	ID int
	// Kind groups nodes visually (e.g. "experiment", "visualisation",
	// "plot", "sync"); each kind gets its own shape/colour.
	Kind string
	// Label overrides the default numeric label when non-empty.
	Label string
}

// Edge is a dependency between two nodes, optionally labelled with the data
// item and version that induces it ("d3v2" in the paper's figure).
type Edge struct {
	From, To int
	Label    string
}

// Graph is a buildable task graph.
type Graph struct {
	Name  string
	nodes []Node
	edges []Edge
	seen  map[int]bool
}

// New creates an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, seen: make(map[int]bool)}
}

// AddNode inserts a node; duplicate ids are ignored so callers can add
// defensively.
func (g *Graph) AddNode(n Node) {
	if g.seen[n.ID] {
		return
	}
	g.seen[n.ID] = true
	g.nodes = append(g.nodes, n)
}

// AddEdge inserts a dependency edge.
func (g *Graph) AddEdge(e Edge) {
	g.edges = append(g.edges, e)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

var kindStyle = map[string]string{
	"experiment":    `shape=circle, style=filled, fillcolor=white`,
	"visualisation": `shape=circle, style=filled, fillcolor=lightblue`,
	"plot":          `shape=circle, style=filled, fillcolor=orange`,
	"sync":          `shape=octagon, style=filled, fillcolor=red, label=sync`,
}

// DOT renders the graph as Graphviz source. Output is deterministic: nodes
// sort by id and edges by (from, to, label).
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")

	nodes := append([]Node(nil), g.nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		style, ok := kindStyle[n.Kind]
		if !ok {
			style = "shape=box"
		}
		label := n.Label
		if label == "" {
			label = fmt.Sprintf("%d", n.ID)
		}
		if n.Kind == "sync" {
			fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, style)
		} else {
			fmt.Fprintf(&b, "  n%d [label=%q, %s];\n", n.ID, label, style)
		}
	}

	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Label < edges[j].Label
	})
	for _, e := range edges {
		if e.Label != "" {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q, fontsize=8];\n", e.From, e.To, e.Label)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}

	// Legend, as in the paper's figure caption area.
	kinds := map[string]bool{}
	for _, n := range g.nodes {
		if _, ok := kindStyle[n.Kind]; ok && n.Kind != "sync" {
			kinds[n.Kind] = true
		}
	}
	if len(kinds) > 0 {
		b.WriteString("  subgraph cluster_legend {\n    label=\"legend\";\n")
		sorted := make([]string, 0, len(kinds))
		for k := range kinds {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for i, k := range sorted {
			fmt.Fprintf(&b, "    legend%d [label=%q, %s];\n", i, "graph."+k, kindStyle[k])
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
