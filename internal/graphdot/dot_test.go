package graphdot

import (
	"strings"
	"testing"
)

func TestDOTBasicStructure(t *testing.T) {
	g := New("hpo")
	g.AddNode(Node{ID: 1, Kind: "experiment"})
	g.AddNode(Node{ID: 2, Kind: "visualisation"})
	g.AddNode(Node{ID: 3, Kind: "sync"})
	g.AddEdge(Edge{From: 1, To: 2, Label: "d1v2"})
	g.AddEdge(Edge{From: 2, To: 3})

	out := g.DOT()
	for _, want := range []string{
		`digraph "hpo" {`,
		`n1 [label="1"`,
		`n2 [label="2"`,
		`shape=octagon`,
		`n1 -> n2 [label="d1v2"`,
		`n2 -> n3;`,
		"cluster_legend",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateNodesIgnored(t *testing.T) {
	g := New("g")
	g.AddNode(Node{ID: 1, Kind: "experiment"})
	g.AddNode(Node{ID: 1, Kind: "plot"})
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestDOTDeterministic(t *testing.T) {
	build := func(order []int) string {
		g := New("g")
		for _, id := range order {
			g.AddNode(Node{ID: id, Kind: "experiment"})
		}
		g.AddEdge(Edge{From: order[0], To: order[1]})
		g.AddEdge(Edge{From: order[2], To: order[1]})
		return g.DOT()
	}
	// Insertion order differs but node ids and edges are the same sets.
	a := build([]int{3, 1, 2})
	g := New("g")
	for _, id := range []int{1, 2, 3} {
		g.AddNode(Node{ID: id, Kind: "experiment"})
	}
	g.AddEdge(Edge{From: 2, To: 1})
	g.AddEdge(Edge{From: 3, To: 1})
	b := g.DOT()
	_ = a
	_ = b
	// Render twice from the same graph must be byte-identical.
	if g.DOT() != g.DOT() {
		t.Fatal("DOT output not deterministic")
	}
}

func TestUnknownKindGetsDefaultStyle(t *testing.T) {
	g := New("g")
	g.AddNode(Node{ID: 5, Kind: "mystery"})
	if !strings.Contains(g.DOT(), "shape=box") {
		t.Fatal("unknown kind should fall back to box")
	}
}

func TestCustomLabel(t *testing.T) {
	g := New("g")
	g.AddNode(Node{ID: 9, Kind: "plot", Label: "graph.plot"})
	if !strings.Contains(g.DOT(), `label="graph.plot"`) {
		t.Fatal("custom label not rendered")
	}
}

func TestCounts(t *testing.T) {
	g := New("g")
	g.AddNode(Node{ID: 1})
	g.AddNode(Node{ID: 2})
	g.AddEdge(Edge{From: 1, To: 2})
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
}
