package nn

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Sequential is a feed-forward stack of layers trained with softmax
// cross-entropy, the model shape used by the paper's MNIST and CIFAR-10
// experiments.
type Sequential struct {
	Layers []Layer
	loss   SoftmaxCrossEntropy
	units  int
}

// NewSequential builds a model from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, units: 1}
}

// NewMLP builds a multi-layer perceptron: in → hidden... → classes, with
// ReLU between Dense layers. It is the standard model for the synthetic
// MNIST/CIFAR workloads.
func NewMLP(r *tensor.RNG, in int, hidden []int, classes int) *Sequential {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(r, prev, h), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(r, prev, classes))
	return NewSequential(layers...)
}

// SetParallelism bounds the goroutine budget of every layer that supports
// internal parallelism (Dense, Conv2D, BatchNorm — anything exposing a
// SetParallelism method). It corresponds to the ComputingUnits constraint a
// COMPSs task is granted: "if a task has built-in parallelism, PyCOMPSs will
// not interfere with this" (paper §3); plumbing it here, once, keeps every
// layer's kernels bounded by the same grant.
func (m *Sequential) SetParallelism(units int) {
	if units < 1 {
		units = 1
	}
	m.units = units
	for _, l := range m.Layers {
		if p, ok := l.(interface{ SetParallelism(int) }); ok {
			p.SetParallelism(units)
		}
	}
}

// Parallelism returns the current goroutine budget.
func (m *Sequential) Parallelism() int { return m.units }

// Forward runs the full stack on a batch.
func (m *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// paramsOnlyBackward is implemented by layers that can accumulate parameter
// gradients without computing the gradient w.r.t. their input.
type paramsOnlyBackward interface {
	BackwardParamsOnly(grad *tensor.Tensor)
}

// Backward propagates the loss gradient through the stack. The first layer's
// input gradient is never consumed (there is no layer below it), so when
// that layer supports it the model skips the input-gradient product — for a
// Dense or Conv2D input layer that is one of its two large backward GEMMs.
func (m *Sequential) Backward(grad *tensor.Tensor) {
	for i := len(m.Layers) - 1; i > 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	if len(m.Layers) == 0 {
		return
	}
	if po, ok := m.Layers[0].(paramsOnlyBackward); ok {
		po.BackwardParamsOnly(grad)
		return
	}
	m.Layers[0].Backward(grad)
}

// Params collects every trainable tensor in the model.
func (m *Sequential) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads collects gradients aligned with Params.
func (m *Sequential) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// NumParams returns the total number of trainable scalars.
func (m *Sequential) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}

// Evaluate returns the mean loss and accuracy on a labelled set.
func (m *Sequential) Evaluate(x *tensor.Tensor, labels []int) (loss, acc float64) {
	logits := m.Forward(x, false)
	loss, _ = m.loss.Loss(logits, labels)
	return loss, Accuracy(logits, labels)
}

// Predict returns the argmax class per row.
func (m *Sequential) Predict(x *tensor.Tensor) []int {
	return m.Forward(x, false).ArgMaxRows()
}

// Summary renders a human-readable description of the stack.
func (m *Sequential) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sequential (%d params)\n", m.NumParams())
	for i, l := range m.Layers {
		fmt.Fprintf(&b, "  %2d: %s\n", i, l.Name())
	}
	return b.String()
}
