package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// History records per-epoch metrics, mirroring the Keras history object the
// paper's experiments return from each training and later plot (Figs. 7-8).
type History struct {
	TrainLoss []float64
	TrainAcc  []float64
	ValLoss   []float64
	ValAcc    []float64
	// Epochs actually run (may be fewer than requested with early stopping).
	Epochs int
	// Stopped reports whether a callback ended training early.
	Stopped bool
	// StopReason describes why training ended early, if it did.
	StopReason string
}

// Final returns the last validation accuracy, or 0 if no epoch ran.
func (h *History) Final() float64 {
	if len(h.ValAcc) == 0 {
		return 0
	}
	return h.ValAcc[len(h.ValAcc)-1]
}

// BestValAcc returns the best validation accuracy across epochs.
func (h *History) BestValAcc() float64 {
	best := 0.0
	for _, v := range h.ValAcc {
		if v > best {
			best = v
		}
	}
	return best
}

// FitConfig controls a training run. The fields map one-to-one onto the
// hyperparameters in the paper's Listing 1 config file.
type FitConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Shuffle controls minibatch shuffling between epochs.
	Shuffle bool
	// RNG drives shuffling; required when Shuffle is true.
	RNG *tensor.RNG
	// Callbacks run after every epoch; any returning an error stops training.
	Callbacks []Callback
	// Pool, when set, recycles per-batch intermediate tensors (the
	// odd-sized tail-batch buffer) instead of allocating them each epoch.
	// Callers sharing one Pool across sequential Fit calls amortise the
	// buffers across trials; nil keeps plain allocation.
	Pool *tensor.Pool
}

// Callback observes training after each epoch. Returning a non-nil error
// stops training with History.Stopped = true; the error text becomes the
// StopReason (sentinel ErrStopTraining is conventional).
type Callback interface {
	OnEpochEnd(epoch int, h *History) error
}

// ErrStopTraining is the conventional sentinel callbacks wrap to request a
// clean early stop.
var ErrStopTraining = errors.New("nn: stop training")

// EarlyStopping stops when the monitored validation accuracy has not
// improved by MinDelta for Patience consecutive epochs — the facility the
// paper calls "of paramount significance" for MNIST-style workloads (§6.2).
type EarlyStopping struct {
	Patience int
	MinDelta float64
	best     float64
	bad      int
}

// OnEpochEnd implements Callback.
func (e *EarlyStopping) OnEpochEnd(epoch int, h *History) error {
	cur := h.ValAcc[len(h.ValAcc)-1]
	if cur > e.best+e.MinDelta {
		e.best = cur
		e.bad = 0
		return nil
	}
	e.bad++
	if e.bad >= e.Patience {
		return fmt.Errorf("early stopping: no val_acc improvement > %v for %d epochs: %w",
			e.MinDelta, e.Patience, ErrStopTraining)
	}
	return nil
}

// TargetAccuracy stops as soon as validation accuracy reaches Target, the
// "stop when one task achieves a specified accuracy" behaviour from §6.1.
type TargetAccuracy struct {
	Target float64
}

// OnEpochEnd implements Callback.
func (t *TargetAccuracy) OnEpochEnd(epoch int, h *History) error {
	if h.ValAcc[len(h.ValAcc)-1] >= t.Target {
		return fmt.Errorf("target accuracy %.3f reached at epoch %d: %w", t.Target, epoch, ErrStopTraining)
	}
	return nil
}

// EpochReporter forwards per-epoch validation accuracy to a function, used
// by the HPO layer to stream progress to the study dashboard.
type EpochReporter struct {
	Report func(epoch int, valLoss, valAcc float64)
}

// OnEpochEnd implements Callback.
func (r *EpochReporter) OnEpochEnd(epoch int, h *History) error {
	if r.Report != nil {
		r.Report(epoch, h.ValLoss[len(h.ValLoss)-1], h.ValAcc[len(h.ValAcc)-1])
	}
	return nil
}

// Fit trains the model on (x, y) and evaluates on (valX, valY) after every
// epoch. It returns the history; it never returns an error for a callback
// stop (that is recorded in the history instead).
func (m *Sequential) Fit(x *tensor.Tensor, y []int, valX *tensor.Tensor, valY []int, cfg FitConfig) (*History, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("nn: Fit requires Epochs > 0, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("nn: Fit requires BatchSize > 0, got %d", cfg.BatchSize)
	}
	if cfg.Optimizer == nil {
		return nil, errors.New("nn: Fit requires an Optimizer")
	}
	n := x.Dim(0)
	if n != len(y) {
		return nil, fmt.Errorf("nn: %d samples but %d labels", n, len(y))
	}
	if cfg.Shuffle && cfg.RNG == nil {
		return nil, errors.New("nn: Shuffle requires an RNG")
	}

	h := &History{}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	cols := x.Dim(1)
	batchX := tensor.New(cfg.BatchSize, cols)
	labels := make([]int, cfg.BatchSize)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Shuffle {
			order = cfg.RNG.Perm(n)
		}
		epochLoss, epochAcc := 0.0, 0.0
		batches := 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			bs := end - start
			var bx *tensor.Tensor
			tail := bs != cfg.BatchSize
			if tail {
				bx = cfg.Pool.Get(bs, cols)
			} else {
				bx = batchX
			}
			by := labels[:bs]
			gather(x, order[start:end], bx)
			for i, idx := range order[start:end] {
				by[i] = y[idx]
			}

			logits := m.Forward(bx, true)
			loss, grad := m.loss.Loss(logits, by)
			m.Backward(grad)
			cfg.Optimizer.Step(m.Params(), m.Grads())
			if tail {
				cfg.Pool.Put(bx)
			}

			epochLoss += loss
			epochAcc += Accuracy(logits, by)
			batches++
		}
		h.TrainLoss = append(h.TrainLoss, epochLoss/float64(batches))
		h.TrainAcc = append(h.TrainAcc, epochAcc/float64(batches))

		vl, va := m.Evaluate(valX, valY)
		h.ValLoss = append(h.ValLoss, vl)
		h.ValAcc = append(h.ValAcc, va)
		h.Epochs = epoch + 1

		for _, cb := range cfg.Callbacks {
			if err := cb.OnEpochEnd(epoch, h); err != nil {
				if errors.Is(err, ErrStopTraining) {
					h.Stopped = true
					h.StopReason = err.Error()
					return h, nil
				}
				return h, err
			}
		}
	}
	return h, nil
}

// gather copies the selected rows of src into dst (dst has len(rows) rows).
func gather(src *tensor.Tensor, rows []int, dst *tensor.Tensor) {
	cols := src.Dim(1)
	sd, dd := src.Data(), dst.Data()
	for i, r := range rows {
		copy(dd[i*cols:(i+1)*cols], sd[r*cols:(r+1)*cols])
	}
}
