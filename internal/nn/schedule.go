package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LRSchedule adjusts a learning rate over epochs. Schedules compose with
// any optimiser through the LRScheduler callback.
type LRSchedule interface {
	// Rate returns the learning rate for the given zero-based epoch.
	Rate(epoch int) float64
	// Name identifies the schedule for logs.
	Name() string
}

// ConstantLR keeps the initial rate.
type ConstantLR struct{ LR float64 }

// Rate implements LRSchedule.
func (s ConstantLR) Rate(int) float64 { return s.LR }

// Name implements LRSchedule.
func (s ConstantLR) Name() string { return "constant" }

// StepDecay multiplies the rate by Factor every Every epochs — the classic
// staircase schedule.
type StepDecay struct {
	Initial float64
	Factor  float64
	Every   int
}

// Rate implements LRSchedule.
func (s StepDecay) Rate(epoch int) float64 {
	if s.Every <= 0 {
		return s.Initial
	}
	return s.Initial * math.Pow(s.Factor, float64(epoch/s.Every))
}

// Name implements LRSchedule.
func (s StepDecay) Name() string {
	return fmt.Sprintf("step(%.3g×/%d)", s.Factor, s.Every)
}

// CosineDecay anneals from Initial to Floor over Period epochs.
type CosineDecay struct {
	Initial float64
	Floor   float64
	Period  int
}

// Rate implements LRSchedule.
func (s CosineDecay) Rate(epoch int) float64 {
	if s.Period <= 0 {
		return s.Initial
	}
	t := float64(epoch) / float64(s.Period)
	if t > 1 {
		t = 1
	}
	return s.Floor + (s.Initial-s.Floor)*0.5*(1+math.Cos(math.Pi*t))
}

// Name implements LRSchedule.
func (s CosineDecay) Name() string { return fmt.Sprintf("cosine(%d)", s.Period) }

// LRScheduler is a training callback that applies a schedule to the
// optimiser before each upcoming epoch (the rate for epoch 0 should be set
// as the optimiser's initial LR).
type LRScheduler struct {
	Schedule LRSchedule
	Opt      Optimizer
}

// OnEpochEnd implements Callback.
func (s *LRScheduler) OnEpochEnd(epoch int, h *History) error {
	next := s.Schedule.Rate(epoch + 1)
	switch o := s.Opt.(type) {
	case *SGD:
		o.LR = next
	case *Adam:
		o.LR = next
	case *RMSprop:
		o.LR = next
	default:
		return fmt.Errorf("nn: LRScheduler does not support optimiser %T", s.Opt)
	}
	return nil
}

// WeightDecay applies decoupled L2 weight decay after each optimiser step
// (AdamW-style decoupling: decay is independent of the gradient scaling).
// Wrap the underlying optimiser with NewWeightDecay.
type WeightDecay struct {
	Inner Optimizer
	// Lambda is the per-step decay coefficient.
	Lambda float64
}

// NewWeightDecay wraps an optimiser with decoupled weight decay.
func NewWeightDecay(inner Optimizer, lambda float64) *WeightDecay {
	return &WeightDecay{Inner: inner, Lambda: lambda}
}

// Step implements Optimizer: the inner update runs first, then every
// parameter shrinks by (1 − λ).
func (w *WeightDecay) Step(params, grads []*tensor.Tensor) {
	w.Inner.Step(params, grads)
	shrink := 1 - w.Lambda
	for _, p := range params {
		p.ScaleInPlace(shrink)
	}
}

// Name implements Optimizer.
func (w *WeightDecay) Name() string {
	return w.Inner.Name() + fmt.Sprintf("+wd(%.3g)", w.Lambda)
}
