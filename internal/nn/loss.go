package nn

import (
	"math"

	"repro/internal/tensor"
)

func mathTanh(x float64) float64 { return math.Tanh(x) }

// SoftmaxCrossEntropy fuses the final softmax with categorical cross-entropy,
// the standard output stage for the 10-class MNIST/CIFAR models in the paper.
// Fusing keeps the backward pass numerically simple: grad = (probs - onehot)/N.
type SoftmaxCrossEntropy struct{}

// Loss returns the mean cross-entropy between logits and integer labels, and
// the gradient with respect to the logits.
func (SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	rows, cols := logits.Dim(0), logits.Dim(1)
	if rows != len(labels) {
		panic("nn: label count does not match batch size")
	}
	probs := logits.SoftmaxRows()
	loss := 0.0
	grad := probs.Clone()
	gd := grad.Data()
	pd := probs.Data()
	for r := 0; r < rows; r++ {
		y := labels[r]
		p := pd[r*cols+y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		gd[r*cols+y] -= 1
	}
	inv := 1.0 / float64(rows)
	for i := range gd {
		gd[i] *= inv
	}
	return loss / float64(rows), grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	pred := logits.ArgMaxRows()
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}

// MSE is mean squared error for regression-style objectives (used by the
// Bayesian-optimisation surrogate tests).
type MSE struct{}

// Loss returns the mean squared error between pred and target (both N×1 or
// equal shapes) and the gradient with respect to pred.
func (MSE) Loss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	diff := pred.Sub(target)
	n := float64(diff.Size())
	loss := 0.0
	for _, v := range diff.Data() {
		loss += v * v
	}
	return loss / n, diff.Scale(2 / n)
}
