package nn

import (
	"testing"

	"repro/internal/tensor"
)

// BatchNorm's column stripes must produce identical results regardless of the
// goroutine fan-out. Batch×features is chosen above the serial cutover so the
// units=8 run actually exercises the parallel path.
func TestBatchNormParallelAgreement(t *testing.T) {
	const batch, features = 512, 64
	r := tensor.NewRNG(11)
	x := tensor.Randn(r, batch, features)
	grad := tensor.Randn(r, batch, features)

	run := func(units int) (out, dX, dG, dB []float64) {
		b := NewBatchNorm(features)
		b.SetParallelism(units)
		o := b.Forward(x, true)
		d := b.Backward(grad)
		return append([]float64(nil), o.Data()...),
			append([]float64(nil), d.Data()...),
			append([]float64(nil), b.dGamma.Data()...),
			append([]float64(nil), b.dBeta.Data()...)
	}

	o1, d1, g1, b1 := run(1)
	o8, d8, g8, b8 := run(8)
	for name, pair := range map[string][2][]float64{
		"out": {o1, o8}, "dX": {d1, d8}, "dGamma": {g1, g8}, "dBeta": {b1, b8},
	} {
		a, b := pair[0], pair[1]
		for i := range a {
			if diff := a[i] - b[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%s[%d]: serial %v vs parallel %v", name, i, a[i], b[i])
			}
		}
	}
}

// Dense.BackwardParamsOnly must accumulate exactly the dW/dB that the full
// Backward does — it only skips the input-gradient product. This pins the
// first-layer skip in Sequential.Backward to the full-path semantics.
func TestDenseBackwardParamsOnlyMatchesBackward(t *testing.T) {
	r := tensor.NewRNG(5)
	x := tensor.Randn(r, 7, 13)
	grad := tensor.Randn(r, 7, 4)

	full := NewDense(tensor.NewRNG(6), 13, 4)
	skip := NewDense(tensor.NewRNG(6), 13, 4)
	full.Forward(x, true)
	skip.Forward(x, true)
	full.Backward(grad)
	skip.BackwardParamsOnly(grad)

	if !full.dW.AllClose(skip.dW, 1e-12) {
		t.Fatal("BackwardParamsOnly dW differs from Backward dW")
	}
	if !full.dB.AllClose(skip.dB, 1e-12) {
		t.Fatal("BackwardParamsOnly dB differs from Backward dB")
	}
}

// benchConv builds the Conv2D used by the forward/backward benchmarks:
// 8×8×3 input, 3×3 kernel, 8 filters, batch 32.
func benchConv(b *testing.B) (*Conv2D, *tensor.Tensor) {
	b.Helper()
	r := tensor.NewRNG(1)
	c := NewConv2D(r, 8, 8, 3, 3, 3, 8)
	x := tensor.Randn(r, 32, 8*8*3)
	return c, x
}

// BenchmarkConv2DForward tracks ns/op and allocs/op of the im2col+GEMM
// forward path; steady-state iterations should allocate nothing.
func BenchmarkConv2DForward(b *testing.B) {
	c, x := benchConv(b)
	c.Forward(x, true) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, true)
	}
}

// BenchmarkConv2DBackward tracks the full backward path (param grads +
// input gradient via the transpose-free kernels + col2im).
func BenchmarkConv2DBackward(b *testing.B) {
	c, x := benchConv(b)
	out := c.Forward(x, true)
	r := tensor.NewRNG(2)
	grad := tensor.Randn(r, out.Dim(0), out.Dim(1))
	c.Backward(grad) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Backward(grad)
	}
}

// BenchmarkDenseForwardBackward tracks the fully connected hot path used by
// the MLP benchmark workload (784→32), batch 32.
func BenchmarkDenseForwardBackward(b *testing.B) {
	r := tensor.NewRNG(3)
	d := NewDense(r, 784, 32)
	x := tensor.Randn(r, 32, 784)
	grad := tensor.Randn(r, 32, 32)
	d.Forward(x, true)
	d.Backward(grad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x, true)
		d.Backward(grad)
	}
}
