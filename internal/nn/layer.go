// Package nn implements the neural-network substrate used by the HPO
// experiments: layers, losses, the three optimisers the paper's search space
// covers (SGD, Adam, RMSprop), and a minibatch training loop with per-epoch
// history and early stopping. It plays the role TensorFlow plays in the
// paper: the thing an "experiment" task trains.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is a differentiable network stage. Forward consumes a batch
// (rows = samples) and Backward consumes the gradient of the loss with
// respect to the layer's output, returning the gradient with respect to its
// input and accumulating parameter gradients internally.
type Layer interface {
	// Forward computes the layer output for input x. train reports whether
	// the network is training (relevant for Dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the input gradient given the output gradient.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
	// Name identifies the layer type for summaries.
	Name() string
}

// Dense is a fully connected layer computing y = x·W + b.
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	lastX  *tensor.Tensor
	units  int // goroutine budget for the matrix products
}

// NewDense constructs a Dense layer with Glorot-uniform weights.
func NewDense(r *tensor.RNG, in, out int) *Dense {
	return &Dense{
		W:     tensor.GlorotUniform(r, in, out),
		B:     tensor.New(1, out),
		dW:    tensor.New(in, out),
		dB:    tensor.New(1, out),
		units: 1,
	}
}

// SetParallelism bounds the number of goroutines the layer's matrix products
// may use. This is how a task's computing-unit constraint reaches the math.
func (d *Dense) SetParallelism(units int) { d.units = units }

// Forward computes x·W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.lastX = x
	return tensor.MatMulParallel(x, d.W, d.units).AddRowVector(d.B)
}

// Backward accumulates dW = xᵀ·grad, dB = column sums of grad, and returns
// grad·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d.dW = tensor.MatMulParallel(d.lastX.Transpose(), grad, d.units)
	d.dB = grad.SumRows()
	return tensor.MatMulParallel(grad, d.W.Transpose(), d.units)
}

// Params returns the weight and bias tensors.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns the gradients for the weight and bias tensors.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// Name implements Layer.
func (d *Dense) Name() string {
	return fmt.Sprintf("Dense(%d→%d)", d.W.Dim(0), d.W.Dim(1))
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask *tensor.Tensor
}

// NewReLU constructs a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.mask = x.Apply(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
	return x.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Mul(l.mask)
}

// Params implements Layer.
func (l *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *ReLU) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *ReLU) Name() string { return "ReLU" }

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	lastY *tensor.Tensor
}

// NewTanh constructs a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastY = x.Apply(tanh)
	return l.lastY
}

// Backward implements Layer.
func (l *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Mul(l.lastY.Apply(func(y float64) float64 { return 1 - y*y }))
}

// Params implements Layer.
func (l *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *Tanh) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Tanh) Name() string { return "Tanh" }

func tanh(x float64) float64 {
	// math.Tanh via exp identities; use the library for accuracy.
	return mathTanh(x)
}

// Dropout randomly zeroes a fraction of activations during training and
// rescales the survivors (inverted dropout), matching Keras semantics.
type Dropout struct {
	Rate float64
	rng  *tensor.RNG
	mask *tensor.Tensor
}

// NewDropout constructs a dropout layer with the given drop rate in [0, 1).
func NewDropout(r *tensor.RNG, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: r}
}

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.Rate == 0 {
		l.mask = nil
		return x
	}
	keep := 1 - l.Rate
	l.mask = tensor.New(x.Shape()...)
	md := l.mask.Data()
	for i := range md {
		if l.rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	return x.Mul(l.mask)
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	return grad.Mul(l.mask)
}

// Params implements Layer.
func (l *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *Dropout) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", l.Rate) }
