// Package nn implements the neural-network substrate used by the HPO
// experiments: layers, losses, the three optimisers the paper's search space
// covers (SGD, Adam, RMSprop), and a minibatch training loop with per-epoch
// history and early stopping. It plays the role TensorFlow plays in the
// paper: the thing an "experiment" task trains.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is a differentiable network stage. Forward consumes a batch
// (rows = samples) and Backward consumes the gradient of the loss with
// respect to the layer's output, returning the gradient with respect to its
// input and accumulating parameter gradients internally.
type Layer interface {
	// Forward computes the layer output for input x. train reports whether
	// the network is training (relevant for Dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the input gradient given the output gradient.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
	// Name identifies the layer type for summaries.
	Name() string
}

// Dense is a fully connected layer computing y = x·W + b. It owns
// per-batch-shape scratch for its forward output and input gradient, reused
// across training steps, and its backward pass runs the transpose-free
// MatMulTransA/TransB kernels instead of materialising Transpose copies.
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	lastX  *tensor.Tensor
	units  int // goroutine budget for the matrix products

	// out/dX are the active scratch pair; scratch caches one pair per batch
	// size so alternating train/eval batches don't reallocate every epoch.
	out, dX *tensor.Tensor
	scratch map[int][2]*tensor.Tensor
}

// NewDense constructs a Dense layer with Glorot-uniform weights.
func NewDense(r *tensor.RNG, in, out int) *Dense {
	return &Dense{
		W:     tensor.GlorotUniform(r, in, out),
		B:     tensor.New(1, out),
		dW:    tensor.New(in, out),
		dB:    tensor.New(1, out),
		units: 1,
	}
}

// SetParallelism bounds the number of goroutines the layer's matrix products
// may use. This is how a task's computing-unit constraint reaches the math.
func (d *Dense) SetParallelism(units int) { d.units = units }

// Forward computes x·W + b. The returned tensor is owned by the layer and
// overwritten by the next Forward call.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.lastX = x
	batch := x.Dim(0)
	if d.out == nil || d.out.Dim(0) != batch {
		if d.scratch == nil {
			d.scratch = map[int][2]*tensor.Tensor{}
		}
		pair, ok := d.scratch[batch]
		if !ok {
			pair = [2]*tensor.Tensor{tensor.New(batch, d.W.Dim(1)), tensor.New(batch, d.W.Dim(0))}
			d.scratch[batch] = pair
		}
		d.out, d.dX = pair[0], pair[1]
	}
	tensor.MatMulInto(d.out, x, d.W, d.units)
	return d.out.AddRowVectorInPlace(d.B)
}

// Backward accumulates dW = xᵀ·grad, dB = column sums of grad, and returns
// grad·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d.BackwardParamsOnly(grad)
	return tensor.MatMulTransBInto(d.dX, grad, d.W, d.units)
}

// BackwardParamsOnly accumulates dW and dB but skips the input-gradient
// product — the model calls this when the layer sits first in the stack,
// where grad·Wᵀ would be discarded.
func (d *Dense) BackwardParamsOnly(grad *tensor.Tensor) {
	tensor.MatMulTransAInto(d.dW, d.lastX, grad, d.units)
	grad.SumRowsInto(d.dB)
}

// Params returns the weight and bias tensors.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns the gradients for the weight and bias tensors.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// Name implements Layer.
func (d *Dense) Name() string {
	return fmt.Sprintf("Dense(%d→%d)", d.W.Dim(0), d.W.Dim(1))
}

// ReLU applies max(0, x) element-wise. Mask, output and gradient buffers are
// owned by the layer, cached per input shape, and reused across steps.
type ReLU struct {
	mask, out, dX *tensor.Tensor
	scratch       map[int][3]*tensor.Tensor
}

// NewReLU constructs a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer. The returned tensor is owned by the layer and
// overwritten by the next Forward call.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if l.out == nil || !shapeEq(l.out, x) {
		if l.scratch == nil {
			l.scratch = map[int][3]*tensor.Tensor{}
		}
		set, ok := l.scratch[x.Dim(0)]
		if !ok || !shapeEq(set[0], x) {
			set = [3]*tensor.Tensor{tensor.New(x.Shape()...), tensor.New(x.Shape()...), tensor.New(x.Shape()...)}
			l.scratch[x.Dim(0)] = set
		}
		l.mask, l.out, l.dX = set[0], set[1], set[2]
	}
	xd, md, od := x.Data(), l.mask.Data(), l.out.Data()
	for i, v := range xd {
		if v > 0 {
			md[i] = 1
			od[i] = v
		} else {
			md[i] = 0
			od[i] = 0
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gd, md, od := grad.Data(), l.mask.Data(), l.dX.Data()
	for i := range gd {
		od[i] = gd[i] * md[i]
	}
	return l.dX
}

// Params implements Layer.
func (l *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *ReLU) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *ReLU) Name() string { return "ReLU" }

// shapeEq reports whether two tensors have identical shapes (used by layers
// to decide when per-batch scratch must be resized).
func shapeEq(a, b *tensor.Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := 0; i < a.Rank(); i++ {
		if a.Dim(i) != b.Dim(i) {
			return false
		}
	}
	return true
}

// Tanh applies the hyperbolic tangent element-wise.
type Tanh struct {
	lastY *tensor.Tensor
}

// NewTanh constructs a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastY = x.Apply(tanh)
	return l.lastY
}

// Backward implements Layer.
func (l *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Mul(l.lastY.Apply(func(y float64) float64 { return 1 - y*y }))
}

// Params implements Layer.
func (l *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *Tanh) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Tanh) Name() string { return "Tanh" }

func tanh(x float64) float64 {
	// math.Tanh via exp identities; use the library for accuracy.
	return mathTanh(x)
}

// Dropout randomly zeroes a fraction of activations during training and
// rescales the survivors (inverted dropout), matching Keras semantics.
type Dropout struct {
	Rate float64
	rng  *tensor.RNG
	mask *tensor.Tensor
}

// NewDropout constructs a dropout layer with the given drop rate in [0, 1).
func NewDropout(r *tensor.RNG, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: r}
}

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.Rate == 0 {
		l.mask = nil
		return x
	}
	keep := 1 - l.Rate
	l.mask = tensor.New(x.Shape()...)
	md := l.mask.Data()
	for i := range md {
		if l.rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	return x.Mul(l.mask)
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	return grad.Mul(l.mask)
}

// Params implements Layer.
func (l *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *Dropout) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", l.Rate) }
