package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over batches of H×W×C images flattened
// row-major into the rows of the input tensor (the layout produced by
// internal/datasets). Stride is 1 with no padding, which is sufficient for
// the small MNIST/CIFAR-style models the paper trains.
type Conv2D struct {
	// W holds the kernels as (KH·KW·InC)×Filters — column f is filter f.
	W *tensor.Tensor
	// B is a 1×Filters bias row.
	B *tensor.Tensor

	InH, InW, InC int
	KH, KW        int
	Filters       int
	OutH, OutW    int
	dW, dB        *tensor.Tensor
	lastCols      *tensor.Tensor // im2col of the last input (batch·outPos)×(KH·KW·InC)
	lastBatch     int
	units         int
}

// NewConv2D constructs a convolution layer for inH×inW×inC inputs with
// filters kernels of size kh×kw, Glorot-initialised.
func NewConv2D(r *tensor.RNG, inH, inW, inC, kh, kw, filters int) *Conv2D {
	if kh > inH || kw > inW {
		panic(fmt.Sprintf("nn: kernel %dx%d larger than input %dx%d", kh, kw, inH, inW))
	}
	fanIn := kh * kw * inC
	return &Conv2D{
		W:   tensor.GlorotUniform(r, fanIn, filters),
		B:   tensor.New(1, filters),
		InH: inH, InW: inW, InC: inC,
		KH: kh, KW: kw, Filters: filters,
		OutH: inH - kh + 1, OutW: inW - kw + 1,
		dW:    tensor.New(fanIn, filters),
		dB:    tensor.New(1, filters),
		units: 1,
	}
}

// OutFeatures returns the flattened output width (OutH·OutW·Filters).
func (c *Conv2D) OutFeatures() int { return c.OutH * c.OutW * c.Filters }

// SetParallelism bounds the goroutines used by the matrix products.
func (c *Conv2D) SetParallelism(units int) { c.units = units }

// Forward implements Layer via im2col + matmul: each output position's
// receptive field becomes a row; convolution is then one matrix product.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	if x.Dim(1) != c.InH*c.InW*c.InC {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Dim(1), c.InH*c.InW*c.InC))
	}
	c.lastBatch = batch
	cols := c.im2col(x)
	c.lastCols = cols
	// (batch·outPos)×fanIn × fanIn×filters → (batch·outPos)×filters.
	out := tensor.MatMulParallel(cols, c.W, c.units).AddRowVector(c.B)
	// Reshape to batch×(outH·outW·filters): rows are already grouped by
	// batch then position, and position-major ordering matches HWC layout.
	return out.Reshape(batch, c.OutH*c.OutW*c.Filters)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	batch := c.lastBatch
	g := grad.Reshape(batch*c.OutH*c.OutW, c.Filters)
	c.dW = tensor.MatMulParallel(c.lastCols.Transpose(), g, c.units)
	c.dB = g.SumRows()
	// Gradient w.r.t. the im2col matrix, then scatter back to image space.
	dCols := tensor.MatMulParallel(g, c.W.Transpose(), c.units)
	return c.col2im(dCols, batch)
}

// im2col unrolls receptive fields: output row (b·outH·outW + oy·outW + ox)
// holds the KH×KW×InC patch at (oy, ox) of sample b.
func (c *Conv2D) im2col(x *tensor.Tensor) *tensor.Tensor {
	batch := x.Dim(0)
	fanIn := c.KH * c.KW * c.InC
	cols := tensor.New(batch*c.OutH*c.OutW, fanIn)
	xd, cd := x.Data(), cols.Data()
	inRow := c.InW * c.InC
	for b := 0; b < batch; b++ {
		src := xd[b*c.InH*inRow:]
		for oy := 0; oy < c.OutH; oy++ {
			for ox := 0; ox < c.OutW; ox++ {
				dst := cd[((b*c.OutH+oy)*c.OutW+ox)*fanIn:]
				di := 0
				for ky := 0; ky < c.KH; ky++ {
					start := (oy+ky)*inRow + ox*c.InC
					copy(dst[di:di+c.KW*c.InC], src[start:start+c.KW*c.InC])
					di += c.KW * c.InC
				}
			}
		}
	}
	return cols
}

// col2im accumulates patch gradients back into image layout (the adjoint of
// im2col).
func (c *Conv2D) col2im(dCols *tensor.Tensor, batch int) *tensor.Tensor {
	out := tensor.New(batch, c.InH*c.InW*c.InC)
	od, dd := out.Data(), dCols.Data()
	fanIn := c.KH * c.KW * c.InC
	inRow := c.InW * c.InC
	for b := 0; b < batch; b++ {
		dst := od[b*c.InH*inRow:]
		for oy := 0; oy < c.OutH; oy++ {
			for ox := 0; ox < c.OutW; ox++ {
				src := dd[((b*c.OutH+oy)*c.OutW+ox)*fanIn:]
				si := 0
				for ky := 0; ky < c.KH; ky++ {
					start := (oy+ky)*inRow + ox*c.InC
					for i := 0; i < c.KW*c.InC; i++ {
						dst[start+i] += src[si+i]
					}
					si += c.KW * c.InC
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%dx%d, %dx%d→%d)", c.InH, c.InW, c.InC, c.KH, c.KW, c.Filters)
}

// MaxPool2D is a non-overlapping max pool over H×W×C feature maps.
type MaxPool2D struct {
	InH, InW, C int
	Pool        int
	OutH, OutW  int
	lastArgmax  []int
	lastBatch   int
}

// NewMaxPool2D constructs a pool×pool max pooling layer; input dimensions
// must divide evenly.
func NewMaxPool2D(inH, inW, c, pool int) *MaxPool2D {
	if pool < 1 || inH%pool != 0 || inW%pool != 0 {
		panic(fmt.Sprintf("nn: pool %d does not divide %dx%d", pool, inH, inW))
	}
	return &MaxPool2D{InH: inH, InW: inW, C: c, Pool: pool, OutH: inH / pool, OutW: inW / pool}
}

// OutFeatures returns the flattened output width.
func (p *MaxPool2D) OutFeatures() int { return p.OutH * p.OutW * p.C }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	p.lastBatch = batch
	out := tensor.New(batch, p.OutFeatures())
	p.lastArgmax = make([]int, batch*p.OutFeatures())
	xd, od := x.Data(), out.Data()
	inRow := p.InW * p.C
	for b := 0; b < batch; b++ {
		src := xd[b*p.InH*inRow:]
		for oy := 0; oy < p.OutH; oy++ {
			for ox := 0; ox < p.OutW; ox++ {
				for ch := 0; ch < p.C; ch++ {
					bestIdx := -1
					best := 0.0
					for ky := 0; ky < p.Pool; ky++ {
						for kx := 0; kx < p.Pool; kx++ {
							idx := (oy*p.Pool+ky)*inRow + (ox*p.Pool+kx)*p.C + ch
							if bestIdx < 0 || src[idx] > best {
								best, bestIdx = src[idx], idx
							}
						}
					}
					oi := b*p.OutFeatures() + (oy*p.OutW+ox)*p.C + ch
					od[oi] = best
					p.lastArgmax[oi] = b*p.InH*inRow + bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer: the gradient routes to each window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(p.lastBatch, p.InH*p.InW*p.C)
	od, gd := out.Data(), grad.Data()
	for oi, src := range p.lastArgmax {
		od[src] += gd[oi]
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (p *MaxPool2D) Name() string {
	return fmt.Sprintf("MaxPool2D(%d)", p.Pool)
}

// NewCNN builds the small convolutional model shape the paper's experiments
// use on image benchmarks: conv → ReLU → pool → dense → ReLU → classes.
func NewCNN(r *tensor.RNG, inH, inW, inC, filters, hidden, classes int) *Sequential {
	conv := NewConv2D(r, inH, inW, inC, 3, 3, filters)
	poolSize := 2
	if conv.OutH%poolSize != 0 || conv.OutW%poolSize != 0 {
		poolSize = 1
	}
	var layers []Layer
	layers = append(layers, conv, NewReLU())
	dense := conv.OutFeatures()
	if poolSize > 1 {
		pool := NewMaxPool2D(conv.OutH, conv.OutW, filters, poolSize)
		layers = append(layers, pool)
		dense = pool.OutFeatures()
	}
	layers = append(layers,
		NewDense(r, dense, hidden), NewReLU(),
		NewDense(r, hidden, classes))
	return NewSequential(layers...)
}
