package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over batches of H×W×C images flattened
// row-major into the rows of the input tensor (the layout produced by
// internal/datasets). Stride is 1 with no padding, which is sufficient for
// the small MNIST/CIFAR-style models the paper trains.
//
// The layer owns per-batch-shape scratch buffers (im2col matrix, matmul
// output, gradient intermediates) that are sized once and reused across
// training steps, so steady-state epochs run without allocating; the
// backward pass uses the transpose-free MatMulTransA/TransB kernels and
// never materialises a Transpose copy.
type Conv2D struct {
	// W holds the kernels as (KH·KW·InC)×Filters — column f is filter f.
	W *tensor.Tensor
	// B is a 1×Filters bias row.
	B *tensor.Tensor

	InH, InW, InC int
	KH, KW        int
	Filters       int
	OutH, OutW    int
	dW, dB        *tensor.Tensor
	units         int

	// Scratch reused across steps, sized for lastBatch rows and cached per
	// batch size so alternating train/eval batches don't reallocate.
	lastBatch int
	cols      *tensor.Tensor // im2col of the last input (batch·outPos)×(KH·KW·InC)
	out       *tensor.Tensor // forward product (batch·outPos)×Filters
	outView   *tensor.Tensor // out reshaped to batch×(OutH·OutW·Filters)
	dCols     *tensor.Tensor // grad w.r.t. cols
	dX        *tensor.Tensor // grad w.r.t. the input batch
	scratch   map[int][5]*tensor.Tensor
}

// NewConv2D constructs a convolution layer for inH×inW×inC inputs with
// filters kernels of size kh×kw, Glorot-initialised.
func NewConv2D(r *tensor.RNG, inH, inW, inC, kh, kw, filters int) *Conv2D {
	if kh > inH || kw > inW {
		panic(fmt.Sprintf("nn: kernel %dx%d larger than input %dx%d", kh, kw, inH, inW))
	}
	fanIn := kh * kw * inC
	return &Conv2D{
		W:   tensor.GlorotUniform(r, fanIn, filters),
		B:   tensor.New(1, filters),
		InH: inH, InW: inW, InC: inC,
		KH: kh, KW: kw, Filters: filters,
		OutH: inH - kh + 1, OutW: inW - kw + 1,
		dW:    tensor.New(fanIn, filters),
		dB:    tensor.New(1, filters),
		units: 1,
	}
}

// OutFeatures returns the flattened output width (OutH·OutW·Filters).
func (c *Conv2D) OutFeatures() int { return c.OutH * c.OutW * c.Filters }

// SetParallelism bounds the goroutines used by the layer's kernels — the
// matrix products and the im2col/col2im batch loops alike.
func (c *Conv2D) SetParallelism(units int) {
	if units < 1 {
		units = 1
	}
	c.units = units
}

// ensureScratch (re)sizes the per-batch scratch tensors. Training steps hit
// the fast path (same batch size as last call); the shape only changes at
// train/evaluate boundaries.
func (c *Conv2D) ensureScratch(batch int) {
	if batch == c.lastBatch && c.cols != nil {
		return
	}
	if c.scratch == nil {
		c.scratch = map[int][5]*tensor.Tensor{}
	}
	set, ok := c.scratch[batch]
	if !ok {
		fanIn := c.KH * c.KW * c.InC
		rows := batch * c.OutH * c.OutW
		out := tensor.New(rows, c.Filters)
		set = [5]*tensor.Tensor{
			tensor.New(rows, fanIn),
			out,
			tensor.New(rows, fanIn),
			tensor.New(batch, c.InH*c.InW*c.InC),
			out.Reshape(batch, c.OutH*c.OutW*c.Filters),
		}
		c.scratch[batch] = set
	}
	c.cols, c.out, c.dCols, c.dX = set[0], set[1], set[2], set[3]
	c.outView = set[4]
	c.lastBatch = batch
}

// Forward implements Layer via im2col + matmul: each output position's
// receptive field becomes a row; convolution is then one matrix product.
// The returned tensor is owned by the layer and overwritten by the next
// Forward call.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	if x.Dim(1) != c.InH*c.InW*c.InC {
		panic(fmt.Sprintf("nn: Conv2D input width %d, want %d", x.Dim(1), c.InH*c.InW*c.InC))
	}
	c.ensureScratch(batch)
	c.im2col(x, c.cols)
	// (batch·outPos)×fanIn × fanIn×filters → (batch·outPos)×filters.
	tensor.MatMulInto(c.out, c.cols, c.W, c.units)
	c.out.AddRowVectorInPlace(c.B)
	// outView is out reshaped to batch×(outH·outW·filters): rows are already
	// grouped by batch then position, and position-major ordering matches HWC
	// layout. The view shares out's storage and is cached per batch size.
	return c.outView
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := c.backwardParams(grad)
	// Gradient w.r.t. the im2col matrix, then scatter back to image space.
	tensor.MatMulTransBInto(c.dCols, g, c.W, c.units)
	c.col2im(c.dCols, c.lastBatch, c.dX)
	return c.dX
}

// BackwardParamsOnly accumulates dW and dB but skips the input-gradient
// product and col2im scatter — the model calls this when the convolution is
// the first layer, where the input gradient would be discarded.
func (c *Conv2D) BackwardParamsOnly(grad *tensor.Tensor) {
	c.backwardParams(grad)
}

func (c *Conv2D) backwardParams(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Reshape(c.lastBatch*c.OutH*c.OutW, c.Filters)
	tensor.MatMulTransAInto(c.dW, c.cols, g, c.units)
	g.SumRowsInto(c.dB)
	return g
}

// batchUnits bounds the im2col/col2im fan-out: below ~64k moved elements the
// copy finishes faster than goroutines start.
func (c *Conv2D) batchUnits(batch int) int {
	if batch*c.OutH*c.OutW*c.KH*c.KW*c.InC < 1<<16 {
		return 1
	}
	return c.units
}

// im2col unrolls receptive fields into cols: output row
// (b·outH·outW + oy·outW + ox) holds the KH×KW×InC patch at (oy, ox) of
// sample b. Samples are independent, so the batch range fans out across the
// layer's computing units.
func (c *Conv2D) im2col(x, cols *tensor.Tensor) {
	batch := x.Dim(0)
	fanIn := c.KH * c.KW * c.InC
	xd, cd := x.Data(), cols.Data()
	inRow := c.InW * c.InC
	tensor.ParallelRange(batch, c.batchUnits(batch), func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			src := xd[b*c.InH*inRow:]
			for oy := 0; oy < c.OutH; oy++ {
				for ox := 0; ox < c.OutW; ox++ {
					dst := cd[((b*c.OutH+oy)*c.OutW+ox)*fanIn:]
					di := 0
					for ky := 0; ky < c.KH; ky++ {
						start := (oy+ky)*inRow + ox*c.InC
						copy(dst[di:di+c.KW*c.InC], src[start:start+c.KW*c.InC])
						di += c.KW * c.InC
					}
				}
			}
		}
	})
}

// col2im accumulates patch gradients from dCols back into image layout in
// dst (the adjoint of im2col). Each sample's region of dst is disjoint, so
// the batch range fans out across the layer's computing units.
func (c *Conv2D) col2im(dCols *tensor.Tensor, batch int, dst *tensor.Tensor) {
	dst.Zero()
	od, dd := dst.Data(), dCols.Data()
	fanIn := c.KH * c.KW * c.InC
	inRow := c.InW * c.InC
	tensor.ParallelRange(batch, c.batchUnits(batch), func(bLo, bHi int) {
		for b := bLo; b < bHi; b++ {
			dstRow := od[b*c.InH*inRow:]
			for oy := 0; oy < c.OutH; oy++ {
				for ox := 0; ox < c.OutW; ox++ {
					src := dd[((b*c.OutH+oy)*c.OutW+ox)*fanIn:]
					si := 0
					for ky := 0; ky < c.KH; ky++ {
						start := (oy+ky)*inRow + ox*c.InC
						for i := 0; i < c.KW*c.InC; i++ {
							dstRow[start+i] += src[si+i]
						}
						si += c.KW * c.InC
					}
				}
			}
		}
	})
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%dx%d, %dx%d→%d)", c.InH, c.InW, c.InC, c.KH, c.KW, c.Filters)
}

// MaxPool2D is a non-overlapping max pool over H×W×C feature maps.
type MaxPool2D struct {
	InH, InW, C int
	Pool        int
	OutH, OutW  int
	lastArgmax  []int
	lastBatch   int
	out         *tensor.Tensor
	dX          *tensor.Tensor
	scratch     map[int]*poolScratch
}

// poolScratch is MaxPool2D's per-batch-size buffer set.
type poolScratch struct {
	out, dX *tensor.Tensor
	argmax  []int
}

// NewMaxPool2D constructs a pool×pool max pooling layer; input dimensions
// must divide evenly.
func NewMaxPool2D(inH, inW, c, pool int) *MaxPool2D {
	if pool < 1 || inH%pool != 0 || inW%pool != 0 {
		panic(fmt.Sprintf("nn: pool %d does not divide %dx%d", pool, inH, inW))
	}
	return &MaxPool2D{InH: inH, InW: inW, C: c, Pool: pool, OutH: inH / pool, OutW: inW / pool}
}

// OutFeatures returns the flattened output width.
func (p *MaxPool2D) OutFeatures() int { return p.OutH * p.OutW * p.C }

// Forward implements Layer. The returned tensor is owned by the layer and
// overwritten by the next Forward call.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	if batch != p.lastBatch || p.out == nil {
		if p.scratch == nil {
			p.scratch = map[int]*poolScratch{}
		}
		s, ok := p.scratch[batch]
		if !ok {
			s = &poolScratch{
				out:    tensor.New(batch, p.OutFeatures()),
				dX:     tensor.New(batch, p.InH*p.InW*p.C),
				argmax: make([]int, batch*p.OutFeatures()),
			}
			p.scratch[batch] = s
		}
		p.out, p.dX, p.lastArgmax = s.out, s.dX, s.argmax
		p.lastBatch = batch
	}
	xd, od := x.Data(), p.out.Data()
	inRow := p.InW * p.C
	for b := 0; b < batch; b++ {
		src := xd[b*p.InH*inRow:]
		for oy := 0; oy < p.OutH; oy++ {
			for ox := 0; ox < p.OutW; ox++ {
				for ch := 0; ch < p.C; ch++ {
					bestIdx := -1
					best := 0.0
					for ky := 0; ky < p.Pool; ky++ {
						for kx := 0; kx < p.Pool; kx++ {
							idx := (oy*p.Pool+ky)*inRow + (ox*p.Pool+kx)*p.C + ch
							if bestIdx < 0 || src[idx] > best {
								best, bestIdx = src[idx], idx
							}
						}
					}
					oi := b*p.OutFeatures() + (oy*p.OutW+ox)*p.C + ch
					od[oi] = best
					p.lastArgmax[oi] = b*p.InH*inRow + bestIdx
				}
			}
		}
	}
	return p.out
}

// Backward implements Layer: the gradient routes to each window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.dX.Zero()
	od, gd := p.dX.Data(), grad.Data()
	for oi, src := range p.lastArgmax {
		od[src] += gd[oi]
	}
	return p.dX
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Name implements Layer.
func (p *MaxPool2D) Name() string {
	return fmt.Sprintf("MaxPool2D(%d)", p.Pool)
}

// NewCNN builds the small convolutional model shape the paper's experiments
// use on image benchmarks: conv → ReLU → pool → dense → ReLU → classes.
func NewCNN(r *tensor.RNG, inH, inW, inC, filters, hidden, classes int) *Sequential {
	conv := NewConv2D(r, inH, inW, inC, 3, 3, filters)
	poolSize := 2
	if conv.OutH%poolSize != 0 || conv.OutW%poolSize != 0 {
		poolSize = 1
	}
	var layers []Layer
	layers = append(layers, conv, NewReLU())
	dense := conv.OutFeatures()
	if poolSize > 1 {
		pool := NewMaxPool2D(conv.OutH, conv.OutW, filters, poolSize)
		layers = append(layers, pool)
		dense = pool.OutFeatures()
	}
	layers = append(layers,
		NewDense(r, dense, hidden), NewReLU(),
		NewDense(r, hidden, classes))
	return NewSequential(layers...)
}
