package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from gradients. The three implementations
// correspond exactly to the "optimizer" axis of the paper's search space
// (Listing 1: Adam, SGD, RMSprop).
type Optimizer interface {
	// Step applies one update. params and grads are aligned slices collected
	// from every layer in the model.
	Step(params, grads []*tensor.Tensor)
	// Name returns the canonical optimiser name as it appears in configs.
	Name() string
}

// NewOptimizer constructs an optimiser by its config-file name
// ("SGD", "Adam", "RMSprop"; case-sensitive, as in the paper's JSON).
// lr <= 0 selects a per-optimiser default matching Keras defaults.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "SGD":
		if lr <= 0 {
			lr = 0.01
		}
		return &SGD{LR: lr, Momentum: 0.9}, nil
	case "Adam":
		if lr <= 0 {
			lr = 0.001
		}
		return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}, nil
	case "RMSprop":
		if lr <= 0 {
			lr = 0.001
		}
		return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-8}, nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q (want SGD, Adam or RMSprop)", name)
	}
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity []*tensor.Tensor
}

// Step implements Optimizer.
func (o *SGD) Step(params, grads []*tensor.Tensor) {
	if o.velocity == nil {
		o.velocity = zerosLike(params)
	}
	for i, p := range params {
		v := o.velocity[i]
		g := grads[i]
		pd, vd, gd := p.Data(), v.Data(), g.Data()
		for j := range pd {
			vd[j] = o.Momentum*vd[j] - o.LR*gd[j]
			pd[j] += vd[j]
		}
	}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return "SGD" }

// Adam is the Adam optimiser (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	m, v                  []*tensor.Tensor
	t                     int
}

// Step implements Optimizer.
func (o *Adam) Step(params, grads []*tensor.Tensor) {
	if o.m == nil {
		o.m = zerosLike(params)
		o.v = zerosLike(params)
	}
	o.t++
	// Hoist every loop-invariant division out of the element loop: the
	// update needs one sqrt and one divide per element, not three divides.
	invB1c := 1 / (1 - math.Pow(o.Beta1, float64(o.t)))
	invB2c := 1 / (1 - math.Pow(o.Beta2, float64(o.t)))
	c1, c2 := 1-o.Beta1, 1-o.Beta2
	step := o.LR * invB1c
	for i, p := range params {
		pd := p.Data()
		md := o.m[i].Data()
		vd := o.v[i].Data()
		gd := grads[i].Data()
		for j := range pd {
			g := gd[j]
			m := o.Beta1*md[j] + c1*g
			v := o.Beta2*vd[j] + c2*g*g
			md[j] = m
			vd[j] = v
			pd[j] -= step * m / (math.Sqrt(v*invB2c) + o.Eps)
		}
	}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "Adam" }

// RMSprop is the RMSprop optimiser (Tieleman & Hinton).
type RMSprop struct {
	LR, Rho, Eps float64
	cache        []*tensor.Tensor
}

// Step implements Optimizer.
func (o *RMSprop) Step(params, grads []*tensor.Tensor) {
	if o.cache == nil {
		o.cache = zerosLike(params)
	}
	for i, p := range params {
		pd := p.Data()
		cd := o.cache[i].Data()
		gd := grads[i].Data()
		for j := range pd {
			g := gd[j]
			cd[j] = o.Rho*cd[j] + (1-o.Rho)*g*g
			pd[j] -= o.LR * g / (math.Sqrt(cd[j]) + o.Eps)
		}
	}
}

// Name implements Optimizer.
func (o *RMSprop) Name() string { return "RMSprop" }

func zerosLike(params []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		out[i] = tensor.New(p.Shape()...)
	}
	return out
}
