package nn

import (
	"math"
	"testing"

	"repro/internal/datasets"
	"repro/internal/tensor"
)

func TestConv2DOutputShape(t *testing.T) {
	r := tensor.NewRNG(1)
	c := NewConv2D(r, 8, 8, 3, 3, 3, 4)
	if c.OutH != 6 || c.OutW != 6 {
		t.Fatalf("out dims = %dx%d, want 6x6", c.OutH, c.OutW)
	}
	x := tensor.Randn(r, 2, 8*8*3)
	y := c.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 6*6*4 {
		t.Fatalf("forward shape = %v", y.Shape())
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3×3 single-channel input, 2×2 all-ones kernel, one filter:
	// each output is the sum of its 2×2 window.
	r := tensor.NewRNG(2)
	c := NewConv2D(r, 3, 3, 1, 2, 2, 1)
	c.W.Fill(1)
	c.B.Zero()
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 9)
	y := c.Forward(x, true)
	want := []float64{12, 16, 24, 28} // window sums
	for i, w := range want {
		if got := y.Data()[i]; math.Abs(got-w) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestConv2DKernelTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConv2D(tensor.NewRNG(1), 2, 2, 1, 3, 3, 1)
}

// Full-stack numerical gradient check through conv + loss.
func TestConv2DGradientNumerically(t *testing.T) {
	r := tensor.NewRNG(3)
	c := NewConv2D(r, 4, 4, 1, 2, 2, 2)
	x := tensor.Randn(r, 2, 16)
	labels := []int{1, 0}
	var loss SoftmaxCrossEntropy
	// Conv output is 3·3·2 = 18 wide; treat it directly as logits over 18
	// classes? No — collapse with a fixed dense projection to 3 classes.
	proj := tensor.Randn(r, 18, 3)

	forward := func() float64 {
		h := c.Forward(x, true)
		logits := tensor.MatMul(h, proj)
		l, _ := loss.Loss(logits, labels)
		return l
	}
	h := c.Forward(x, true)
	logits := tensor.MatMul(h, proj)
	_, g := loss.Loss(logits, labels)
	gh := tensor.MatMul(g, proj.Transpose())
	c.Backward(gh)
	analytic := c.dW.Clone()

	const eps = 1e-6
	wd := c.W.Data()
	for i := 0; i < c.W.Size(); i++ {
		orig := wd[i]
		wd[i] = orig + eps
		lp := forward()
		wd[i] = orig - eps
		lm := forward()
		wd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic.Data()[i]) > 1e-4 {
			t.Fatalf("dW[%d]: analytic %v vs numeric %v", i, analytic.Data()[i], numeric)
		}
	}
}

// Input-gradient check (col2im path).
func TestConv2DInputGradientNumerically(t *testing.T) {
	r := tensor.NewRNG(4)
	c := NewConv2D(r, 3, 3, 1, 2, 2, 1)
	x := tensor.Randn(r, 1, 9)
	labels := []int{2}
	var loss SoftmaxCrossEntropy

	forward := func() float64 {
		logits := c.Forward(x, true)
		l, _ := loss.Loss(logits, labels)
		return l
	}
	logits := c.Forward(x, true)
	_, g := loss.Loss(logits, labels)
	dx := c.Backward(g)

	const eps = 1e-6
	xd := x.Data()
	for i := 0; i < x.Size(); i++ {
		orig := xd[i]
		xd[i] = orig + eps
		lp := forward()
		xd[i] = orig - eps
		lm := forward()
		xd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data()[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx.Data()[i], numeric)
		}
	}
}

func TestMaxPool2DForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2, 2, 1, 2)
	x := tensor.FromSlice([]float64{1, 5, 3, 2}, 1, 4)
	y := p.Forward(x, true)
	if y.Size() != 1 || y.Data()[0] != 5 {
		t.Fatalf("pool forward = %v", y.Data())
	}
	g := p.Backward(tensor.FromSlice([]float64{10}, 1, 1))
	want := []float64{0, 10, 0, 0} // gradient routes to the argmax
	for i, w := range want {
		if g.Data()[i] != w {
			t.Fatalf("pool backward = %v, want %v", g.Data(), want)
		}
	}
}

func TestMaxPool2DMultiChannel(t *testing.T) {
	// 2×2 image, 2 channels: channel maxima are independent.
	p := NewMaxPool2D(2, 2, 2, 2)
	x := tensor.FromSlice([]float64{
		1, 8, // (0,0) ch0, ch1
		2, 7, // (0,1)
		3, 6, // (1,0)
		4, 5, // (1,1)
	}, 1, 8)
	y := p.Forward(x, true)
	if y.Data()[0] != 4 || y.Data()[1] != 8 {
		t.Fatalf("per-channel max = %v, want [4 8]", y.Data())
	}
}

func TestMaxPool2DBadPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-dividing pool")
		}
	}()
	NewMaxPool2D(5, 5, 1, 2)
}

func TestCNNLearnsMNISTLike(t *testing.T) {
	ds := datasets.MNISTLike(300, 21)
	rng := tensor.NewRNG(22)
	tr, va := ds.Split(0.8, rng)
	r := tensor.NewRNG(23)
	m := NewCNN(r, 28, 28, 1, 4, 16, 10)
	opt, _ := NewOptimizer("Adam", 0)
	h, err := m.Fit(tr.X, tr.Y, va.X, va.Y, FitConfig{
		Epochs: 3, BatchSize: 32, Optimizer: opt, Shuffle: true, RNG: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Final() < 0.6 {
		t.Fatalf("CNN val accuracy = %v after 3 epochs, want > 0.6", h.Final())
	}
}

func TestCNNParallelismReachesConv(t *testing.T) {
	r := tensor.NewRNG(24)
	m := NewCNN(r, 8, 8, 1, 2, 8, 3)
	m.SetParallelism(4)
	found := false
	for _, l := range m.Layers {
		if c, ok := l.(*Conv2D); ok {
			if c.units != 4 {
				t.Fatal("SetParallelism did not reach Conv2D")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no conv layer in CNN")
	}
}

func TestConvSummaryNames(t *testing.T) {
	r := tensor.NewRNG(25)
	m := NewCNN(r, 8, 8, 3, 2, 8, 4)
	s := m.Summary()
	for _, want := range []string{"Conv2D", "MaxPool2D", "Dense"} {
		if !contains(s, want) {
			t.Fatalf("summary missing %s:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
