package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestBatchNormNormalisesTraining(t *testing.T) {
	bn := NewBatchNorm(3)
	r := tensor.NewRNG(1)
	x := tensor.Randn(r, 64, 3).ScaleInPlace(5).AddScalar(10)
	y := bn.Forward(x, true)
	// Each column should be ~zero-mean, ~unit-variance (γ=1, β=0).
	for j := 0; j < 3; j++ {
		mean, variance := columnStats(y, j)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean = %v", j, mean)
		}
		if math.Abs(variance-1) > 0.01 {
			t.Fatalf("col %d variance = %v", j, variance)
		}
	}
}

func columnStats(x *tensor.Tensor, j int) (mean, variance float64) {
	n, f := x.Dim(0), x.Dim(1)
	for i := 0; i < n; i++ {
		mean += x.Data()[i*f+j]
	}
	mean /= float64(n)
	for i := 0; i < n; i++ {
		d := x.Data()[i*f+j] - mean
		variance += d * d
	}
	return mean, variance / float64(n)
}

func TestBatchNormGammaBetaApplied(t *testing.T) {
	bn := NewBatchNorm(2)
	bn.Gamma.Fill(2)
	bn.Beta.Fill(3)
	r := tensor.NewRNG(2)
	x := tensor.Randn(r, 32, 2)
	y := bn.Forward(x, true)
	for j := 0; j < 2; j++ {
		mean, variance := columnStats(y, j)
		if math.Abs(mean-3) > 1e-9 {
			t.Fatalf("col %d mean = %v, want β=3", j, mean)
		}
		if math.Abs(variance-4) > 0.05 {
			t.Fatalf("col %d variance = %v, want γ²=4", j, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	r := tensor.NewRNG(3)
	// Train on shifted data so running stats move away from (0, 1).
	for step := 0; step < 200; step++ {
		x := tensor.Randn(r, 32, 1).AddScalar(5)
		bn.Forward(x, true)
	}
	// Inference on the same distribution must normalise to ~N(0,1).
	x := tensor.Randn(r, 256, 1).AddScalar(5)
	y := bn.Forward(x, false)
	mean, variance := columnStats(y, 0)
	if math.Abs(mean) > 0.2 || math.Abs(variance-1) > 0.3 {
		t.Fatalf("inference output mean %v variance %v, want ~(0,1)", mean, variance)
	}
}

func TestBatchNormWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchNorm(3).Forward(tensor.New(4, 5), true)
}

// Numerical gradient check through batch norm (γ and β).
func TestBatchNormGradientNumerically(t *testing.T) {
	bn := NewBatchNorm(2)
	r := tensor.NewRNG(4)
	x := tensor.Randn(r, 6, 2)
	labels := []int{0, 1, 0, 1, 0, 1}
	var loss SoftmaxCrossEntropy

	forward := func() float64 {
		logits := bn.Forward(x, true)
		l, _ := loss.Loss(logits, labels)
		return l
	}
	logits := bn.Forward(x, true)
	_, g := loss.Loss(logits, labels)
	dx := bn.Backward(g)
	dGamma := bn.dGamma.Clone()

	const eps = 1e-6
	gd := bn.Gamma.Data()
	for i := range gd {
		orig := gd[i]
		gd[i] = orig + eps
		lp := forward()
		gd[i] = orig - eps
		lm := forward()
		gd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dGamma.Data()[i]) > 1e-5 {
			t.Fatalf("dGamma[%d]: analytic %v vs numeric %v", i, dGamma.Data()[i], numeric)
		}
	}
	// Input gradient check too.
	xd := x.Data()
	for i := 0; i < x.Size(); i++ {
		orig := xd[i]
		xd[i] = orig + eps
		lp := forward()
		xd[i] = orig - eps
		lm := forward()
		xd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data()[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx.Data()[i], numeric)
		}
	}
}

func TestBatchNormInTrainingStack(t *testing.T) {
	// MLP with batch norm must still learn a simple problem.
	r := tensor.NewRNG(5)
	m := NewSequential(
		NewDense(r, 4, 16),
		NewBatchNorm(16),
		NewReLU(),
		NewDense(r, 16, 2),
	)
	x := tensor.Randn(r, 120, 4)
	y := make([]int, 120)
	for i := range y {
		if x.At(i, 0)-x.At(i, 3) > 0 {
			y[i] = 1
		}
	}
	opt, _ := NewOptimizer("Adam", 0.01)
	h, err := m.Fit(x, y, x, y, FitConfig{Epochs: 30, BatchSize: 24, Optimizer: opt, Shuffle: true, RNG: r})
	if err != nil {
		t.Fatal(err)
	}
	if h.Final() < 0.85 {
		t.Fatalf("batch-normed MLP accuracy = %v", h.Final())
	}
	if m.Summary() == "" || m.NumParams() != 4*16+16+16+16+16*2+2 {
		t.Fatalf("params = %d", m.NumParams())
	}
}
