package nn

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/tensor"
)

func trainValSets(t *testing.T, name string, n int) (trainX *tensor.Tensor, trainY []int, valX *tensor.Tensor, valY []int, features int) {
	t.Helper()
	ds, err := datasets.ByName(name, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	tr, va := ds.Split(0.8, rng)
	return tr.X, tr.Y, va.X, va.Y, ds.Features()
}

func TestFitLearnsMNISTLike(t *testing.T) {
	trX, trY, vaX, vaY, features := trainValSets(t, "mnist", 600)
	r := tensor.NewRNG(1)
	m := NewMLP(r, features, []int{32}, 10)
	opt, _ := NewOptimizer("Adam", 0)
	h, err := m.Fit(trX, trY, vaX, vaY, FitConfig{
		Epochs: 5, BatchSize: 32, Optimizer: opt, Shuffle: true, RNG: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Epochs != 5 {
		t.Fatalf("epochs = %d", h.Epochs)
	}
	if h.Final() < 0.85 {
		t.Fatalf("val accuracy after 5 epochs = %v, want > 0.85 (the Figure-7 '>90%% quickly' property)", h.Final())
	}
	if h.TrainLoss[len(h.TrainLoss)-1] >= h.TrainLoss[0] {
		t.Fatalf("training loss did not decrease: %v", h.TrainLoss)
	}
}

func TestFitCIFARLikeHarder(t *testing.T) {
	trX, trY, vaX, vaY, features := trainValSets(t, "cifar10", 400)
	r := tensor.NewRNG(2)
	m := NewMLP(r, features, []int{32}, 10)
	opt, _ := NewOptimizer("Adam", 0)
	h, err := m.Fit(trX, trY, vaX, vaY, FitConfig{
		Epochs: 3, BatchSize: 32, Optimizer: opt, Shuffle: true, RNG: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	// CIFAR-like should beat chance but be clearly harder than MNIST-like.
	if h.Final() < 0.15 {
		t.Fatalf("val accuracy = %v, want better than chance", h.Final())
	}
}

func TestFitValidatesConfig(t *testing.T) {
	r := tensor.NewRNG(3)
	m := NewMLP(r, 4, nil, 2)
	x := tensor.Randn(r, 8, 4)
	y := []int{0, 1, 0, 1, 0, 1, 0, 1}
	opt, _ := NewOptimizer("SGD", 0)

	cases := []FitConfig{
		{Epochs: 0, BatchSize: 4, Optimizer: opt},
		{Epochs: 1, BatchSize: 0, Optimizer: opt},
		{Epochs: 1, BatchSize: 4},
		{Epochs: 1, BatchSize: 4, Optimizer: opt, Shuffle: true}, // no RNG
	}
	for i, cfg := range cases {
		if _, err := m.Fit(x, y, x, y, cfg); err == nil {
			t.Fatalf("case %d: expected config error", i)
		}
	}
	if _, err := m.Fit(x, []int{0}, x, y, FitConfig{Epochs: 1, BatchSize: 4, Optimizer: opt}); err == nil {
		t.Fatal("expected label-count error")
	}
}

func TestFitHistoryLengths(t *testing.T) {
	trX, trY, vaX, vaY, features := trainValSets(t, "mnist", 200)
	r := tensor.NewRNG(4)
	m := NewMLP(r, features, []int{8}, 10)
	opt, _ := NewOptimizer("RMSprop", 0)
	h, err := m.Fit(trX, trY, vaX, vaY, FitConfig{Epochs: 3, BatchSize: 16, Optimizer: opt})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range [][]float64{h.TrainLoss, h.TrainAcc, h.ValLoss, h.ValAcc} {
		if len(s) != 3 {
			t.Fatalf("history series length %d, want 3", len(s))
		}
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	trX, trY, vaX, vaY, features := trainValSets(t, "mnist", 600)
	r := tensor.NewRNG(5)
	m := NewMLP(r, features, []int{32}, 10)
	opt, _ := NewOptimizer("Adam", 0)
	h, err := m.Fit(trX, trY, vaX, vaY, FitConfig{
		Epochs: 50, BatchSize: 32, Optimizer: opt, Shuffle: true, RNG: r,
		Callbacks: []Callback{&TargetAccuracy{Target: 0.80}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Stopped {
		t.Fatal("expected early stop at 80% accuracy")
	}
	if h.Epochs >= 50 {
		t.Fatalf("ran all %d epochs despite target stop", h.Epochs)
	}
	if !strings.Contains(h.StopReason, "target accuracy") {
		t.Fatalf("StopReason = %q", h.StopReason)
	}
}

func TestEarlyStoppingPatience(t *testing.T) {
	es := &EarlyStopping{Patience: 2, MinDelta: 0.01}
	h := &History{}
	feed := func(acc float64) error {
		h.ValAcc = append(h.ValAcc, acc)
		h.ValLoss = append(h.ValLoss, 0)
		return es.OnEpochEnd(len(h.ValAcc)-1, h)
	}
	if err := feed(0.5); err != nil {
		t.Fatal(err)
	}
	if err := feed(0.6); err != nil {
		t.Fatal(err)
	}
	if err := feed(0.6); err != nil { // first bad epoch
		t.Fatal(err)
	}
	err := feed(0.6) // second bad epoch → stop
	if err == nil || !errors.Is(err, ErrStopTraining) {
		t.Fatalf("expected ErrStopTraining, got %v", err)
	}
}

func TestEpochReporterStreams(t *testing.T) {
	var seen []int
	rep := &EpochReporter{Report: func(epoch int, vl, va float64) { seen = append(seen, epoch) }}
	trX, trY, vaX, vaY, features := trainValSets(t, "mnist", 100)
	r := tensor.NewRNG(6)
	m := NewMLP(r, features, []int{4}, 10)
	opt, _ := NewOptimizer("SGD", 0)
	if _, err := m.Fit(trX, trY, vaX, vaY, FitConfig{Epochs: 3, BatchSize: 25, Optimizer: opt, Callbacks: []Callback{rep}}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[2] != 2 {
		t.Fatalf("reporter saw epochs %v", seen)
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{ValAcc: []float64{0.3, 0.9, 0.7}}
	if h.Final() != 0.7 {
		t.Fatalf("Final = %v", h.Final())
	}
	if h.BestValAcc() != 0.9 {
		t.Fatalf("BestValAcc = %v", h.BestValAcc())
	}
	empty := &History{}
	if empty.Final() != 0 || empty.BestValAcc() != 0 {
		t.Fatal("empty history helpers should return 0")
	}
}

// Determinism: same seeds → identical training histories.
func TestFitDeterministic(t *testing.T) {
	run := func() *History {
		ds := datasets.MNISTLike(200, 9)
		rng := tensor.NewRNG(10)
		tr, va := ds.Split(0.8, rng)
		r := tensor.NewRNG(11)
		m := NewMLP(r, ds.Features(), []int{8}, 10)
		opt, _ := NewOptimizer("Adam", 0)
		h, err := m.Fit(tr.X, tr.Y, va.X, va.Y, FitConfig{Epochs: 2, BatchSize: 16, Optimizer: opt, Shuffle: true, RNG: r})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := run(), run()
	for i := range a.ValAcc {
		if a.ValAcc[i] != b.ValAcc[i] {
			t.Fatalf("non-deterministic training: %v vs %v", a.ValAcc, b.ValAcc)
		}
	}
}

func TestParallelTrainingMatchesSerial(t *testing.T) {
	ds := datasets.MNISTLike(200, 12)
	rng := tensor.NewRNG(13)
	tr, va := ds.Split(0.8, rng)
	run := func(units int) float64 {
		r := tensor.NewRNG(14)
		m := NewMLP(r, ds.Features(), []int{16}, 10)
		m.SetParallelism(units)
		opt, _ := NewOptimizer("SGD", 0)
		h, err := m.Fit(tr.X, tr.Y, va.X, va.Y, FitConfig{Epochs: 2, BatchSize: 20, Optimizer: opt})
		if err != nil {
			t.Fatal(err)
		}
		return h.Final()
	}
	// Row-partitioned matmul is deterministic regardless of unit count.
	if a, b := run(1), run(4); a != b {
		t.Fatalf("parallelism changed results: %v vs %v", a, b)
	}
}
