package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalises each feature column over the batch during training
// (learned scale γ and shift β), tracking running statistics for inference
// — standard batch normalisation (Ioffe & Szegedy) as used between Dense
// layers.
type BatchNorm struct {
	// Gamma (scale) and Beta (shift) are the learned parameters, 1×features.
	Gamma, Beta *tensor.Tensor
	// Momentum is the running-statistics EMA coefficient (default 0.9).
	Momentum float64
	// Eps stabilises the variance denominator.
	Eps float64

	runningMean *tensor.Tensor
	runningVar  *tensor.Tensor

	dGamma, dBeta *tensor.Tensor
	// cached forward quantities for backward
	lastXHat *tensor.Tensor
	lastStd  []float64
	features int
}

// NewBatchNorm builds a batch-norm layer for the given feature width.
func NewBatchNorm(features int) *BatchNorm {
	return &BatchNorm{
		Gamma:       tensor.Ones(1, features),
		Beta:        tensor.New(1, features),
		Momentum:    0.9,
		Eps:         1e-5,
		runningMean: tensor.New(1, features),
		runningVar:  tensor.Ones(1, features),
		dGamma:      tensor.New(1, features),
		dBeta:       tensor.New(1, features),
		features:    features,
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, f := x.Dim(0), x.Dim(1)
	if f != b.features {
		panic(fmt.Sprintf("nn: BatchNorm width %d, got %d", b.features, f))
	}
	out := tensor.New(n, f)
	xd, od := x.Data(), out.Data()
	gd, bd := b.Gamma.Data(), b.Beta.Data()

	if !train || n == 1 {
		// Inference (or degenerate batch): use running statistics.
		rm, rv := b.runningMean.Data(), b.runningVar.Data()
		for j := 0; j < f; j++ {
			inv := 1 / math.Sqrt(rv[j]+b.Eps)
			for i := 0; i < n; i++ {
				od[i*f+j] = gd[j]*(xd[i*f+j]-rm[j])*inv + bd[j]
			}
		}
		b.lastXHat = nil
		return out
	}

	b.lastXHat = tensor.New(n, f)
	b.lastStd = make([]float64, f)
	xh := b.lastXHat.Data()
	rm, rv := b.runningMean.Data(), b.runningVar.Data()
	for j := 0; j < f; j++ {
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += xd[i*f+j]
		}
		mean /= float64(n)
		variance := 0.0
		for i := 0; i < n; i++ {
			d := xd[i*f+j] - mean
			variance += d * d
		}
		variance /= float64(n)
		std := math.Sqrt(variance + b.Eps)
		b.lastStd[j] = std
		for i := 0; i < n; i++ {
			h := (xd[i*f+j] - mean) / std
			xh[i*f+j] = h
			od[i*f+j] = gd[j]*h + bd[j]
		}
		rm[j] = b.Momentum*rm[j] + (1-b.Momentum)*mean
		rv[j] = b.Momentum*rv[j] + (1-b.Momentum)*variance
	}
	return out
}

// Backward implements Layer with the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		// Inference-mode backward (unusual): pass scaled gradient through.
		out := grad.Clone()
		gd := b.Gamma.Data()
		od := out.Data()
		f := b.features
		rv := b.runningVar.Data()
		for i := 0; i < out.Dim(0); i++ {
			for j := 0; j < f; j++ {
				od[i*f+j] *= gd[j] / math.Sqrt(rv[j]+b.Eps)
			}
		}
		return out
	}
	n, f := grad.Dim(0), grad.Dim(1)
	gd := grad.Data()
	xh := b.lastXHat.Data()
	gam := b.Gamma.Data()
	dg, db := b.dGamma.Data(), b.dBeta.Data()
	out := tensor.New(n, f)
	od := out.Data()

	for j := 0; j < f; j++ {
		sumDy, sumDyXh := 0.0, 0.0
		for i := 0; i < n; i++ {
			sumDy += gd[i*f+j]
			sumDyXh += gd[i*f+j] * xh[i*f+j]
		}
		dg[j] = sumDyXh
		db[j] = sumDy
		inv := gam[j] / (b.lastStd[j] * float64(n))
		for i := 0; i < n; i++ {
			od[i*f+j] = inv * (float64(n)*gd[i*f+j] - sumDy - xh[i*f+j]*sumDyXh)
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{b.Gamma, b.Beta} }

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{b.dGamma, b.dBeta} }

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("BatchNorm(%d)", b.features) }
