package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalises each feature column over the batch during training
// (learned scale γ and shift β), tracking running statistics for inference
// — standard batch normalisation (Ioffe & Szegedy) as used between Dense
// layers. Both passes process feature columns independently, so they fan
// out across the layer's computing units; output and normalised-input
// buffers are owned by the layer and reused across steps.
type BatchNorm struct {
	// Gamma (scale) and Beta (shift) are the learned parameters, 1×features.
	Gamma, Beta *tensor.Tensor
	// Momentum is the running-statistics EMA coefficient (default 0.9).
	Momentum float64
	// Eps stabilises the variance denominator.
	Eps float64

	runningMean *tensor.Tensor
	runningVar  *tensor.Tensor

	dGamma, dBeta *tensor.Tensor
	// cached forward quantities for backward
	lastXHat *tensor.Tensor
	lastStd  []float64
	features int
	units    int

	lastBatch int
	out, dX   *tensor.Tensor
	xhat      *tensor.Tensor
	scratch   map[int][3]*tensor.Tensor
}

// NewBatchNorm builds a batch-norm layer for the given feature width.
func NewBatchNorm(features int) *BatchNorm {
	return &BatchNorm{
		Gamma:       tensor.Ones(1, features),
		Beta:        tensor.New(1, features),
		Momentum:    0.9,
		Eps:         1e-5,
		runningMean: tensor.New(1, features),
		runningVar:  tensor.Ones(1, features),
		dGamma:      tensor.New(1, features),
		dBeta:       tensor.New(1, features),
		features:    features,
		units:       1,
	}
}

// SetParallelism bounds the goroutines the layer's column loops may use.
func (b *BatchNorm) SetParallelism(units int) {
	if units < 1 {
		units = 1
	}
	b.units = units
}

// colUnits bounds the column fan-out: small batches/widths run serially.
func (b *BatchNorm) colUnits(n int) int {
	if n*b.features < 1<<14 {
		return 1
	}
	return b.units
}

func (b *BatchNorm) ensureScratch(n int) {
	if n == b.lastBatch && b.out != nil {
		return
	}
	if b.scratch == nil {
		b.scratch = map[int][3]*tensor.Tensor{}
		b.lastStd = make([]float64, b.features)
	}
	set, ok := b.scratch[n]
	if !ok {
		set = [3]*tensor.Tensor{
			tensor.New(n, b.features),
			tensor.New(n, b.features),
			tensor.New(n, b.features),
		}
		b.scratch[n] = set
	}
	b.out, b.dX, b.xhat = set[0], set[1], set[2]
	b.lastBatch = n
}

// Forward implements Layer. The returned tensor is owned by the layer and
// overwritten by the next Forward call.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, f := x.Dim(0), x.Dim(1)
	if f != b.features {
		panic(fmt.Sprintf("nn: BatchNorm width %d, got %d", b.features, f))
	}
	b.ensureScratch(n)
	out := b.out
	xd, od := x.Data(), out.Data()
	gd, bd := b.Gamma.Data(), b.Beta.Data()

	if !train || n == 1 {
		// Inference (or degenerate batch): use running statistics.
		rm, rv := b.runningMean.Data(), b.runningVar.Data()
		tensor.ParallelRange(f, b.colUnits(n), func(jLo, jHi int) {
			for j := jLo; j < jHi; j++ {
				inv := 1 / math.Sqrt(rv[j]+b.Eps)
				for i := 0; i < n; i++ {
					od[i*f+j] = gd[j]*(xd[i*f+j]-rm[j])*inv + bd[j]
				}
			}
		})
		b.lastXHat = nil
		return out
	}

	b.lastXHat = b.xhat
	xh := b.lastXHat.Data()
	rm, rv := b.runningMean.Data(), b.runningVar.Data()
	// Feature columns are independent: every per-column quantity (mean,
	// variance, x̂, running stats) is written only by the worker that owns
	// the column, so the stripe fan-out is race-free.
	tensor.ParallelRange(f, b.colUnits(n), func(jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			mean := 0.0
			for i := 0; i < n; i++ {
				mean += xd[i*f+j]
			}
			mean /= float64(n)
			variance := 0.0
			for i := 0; i < n; i++ {
				d := xd[i*f+j] - mean
				variance += d * d
			}
			variance /= float64(n)
			std := math.Sqrt(variance + b.Eps)
			b.lastStd[j] = std
			for i := 0; i < n; i++ {
				h := (xd[i*f+j] - mean) / std
				xh[i*f+j] = h
				od[i*f+j] = gd[j]*h + bd[j]
			}
			rm[j] = b.Momentum*rm[j] + (1-b.Momentum)*mean
			rv[j] = b.Momentum*rv[j] + (1-b.Momentum)*variance
		}
	})
	return out
}

// Backward implements Layer with the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		// Inference-mode backward (unusual): pass scaled gradient through.
		out := grad.Clone()
		gd := b.Gamma.Data()
		od := out.Data()
		f := b.features
		rv := b.runningVar.Data()
		for i := 0; i < out.Dim(0); i++ {
			for j := 0; j < f; j++ {
				od[i*f+j] *= gd[j] / math.Sqrt(rv[j]+b.Eps)
			}
		}
		return out
	}
	n, f := grad.Dim(0), grad.Dim(1)
	gd := grad.Data()
	xh := b.lastXHat.Data()
	gam := b.Gamma.Data()
	dg, db := b.dGamma.Data(), b.dBeta.Data()
	out := b.dX
	od := out.Data()

	tensor.ParallelRange(f, b.colUnits(n), func(jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			sumDy, sumDyXh := 0.0, 0.0
			for i := 0; i < n; i++ {
				sumDy += gd[i*f+j]
				sumDyXh += gd[i*f+j] * xh[i*f+j]
			}
			dg[j] = sumDyXh
			db[j] = sumDy
			inv := gam[j] / (b.lastStd[j] * float64(n))
			for i := 0; i < n; i++ {
				od[i*f+j] = inv * (float64(n)*gd[i*f+j] - sumDy - xh[i*f+j]*sumDyXh)
			}
		}
	})
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{b.Gamma, b.Beta} }

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{b.dGamma, b.dBeta} }

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("BatchNorm(%d)", b.features) }
