package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Initial: 0.1, Factor: 0.5, Every: 2}
	want := []float64{0.1, 0.1, 0.05, 0.05, 0.025}
	for epoch, w := range want {
		if got := s.Rate(epoch); math.Abs(got-w) > 1e-12 {
			t.Fatalf("epoch %d rate = %v, want %v", epoch, got, w)
		}
	}
	// Degenerate Every keeps the rate constant.
	if (StepDecay{Initial: 0.1, Factor: 0.5}).Rate(7) != 0.1 {
		t.Fatal("Every=0 should be constant")
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	s := CosineDecay{Initial: 1.0, Floor: 0.1, Period: 10}
	if got := s.Rate(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("rate(0) = %v", got)
	}
	if got := s.Rate(10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("rate(Period) = %v, want floor", got)
	}
	if got := s.Rate(25); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("rate beyond period = %v, want floor", got)
	}
	// Midpoint is halfway between initial and floor.
	if got := s.Rate(5); math.Abs(got-0.55) > 1e-9 {
		t.Fatalf("rate(mid) = %v, want 0.55", got)
	}
	// Monotone non-increasing within the period.
	prev := s.Rate(0)
	for e := 1; e <= 10; e++ {
		cur := s.Rate(e)
		if cur > prev+1e-12 {
			t.Fatalf("cosine rate rose at epoch %d", e)
		}
		prev = cur
	}
}

func TestConstantLR(t *testing.T) {
	s := ConstantLR{LR: 0.01}
	if s.Rate(0) != 0.01 || s.Rate(99) != 0.01 || s.Name() != "constant" {
		t.Fatal("constant schedule wrong")
	}
}

func TestLRSchedulerUpdatesOptimizers(t *testing.T) {
	for _, name := range []string{"SGD", "Adam", "RMSprop"} {
		opt, _ := NewOptimizer(name, 0.1)
		cb := &LRScheduler{Schedule: StepDecay{Initial: 0.1, Factor: 0.1, Every: 1}, Opt: opt}
		h := &History{ValAcc: []float64{0.5}, ValLoss: []float64{1}}
		if err := cb.OnEpochEnd(0, h); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var lr float64
		switch o := opt.(type) {
		case *SGD:
			lr = o.LR
		case *Adam:
			lr = o.LR
		case *RMSprop:
			lr = o.LR
		}
		if math.Abs(lr-0.01) > 1e-12 {
			t.Fatalf("%s LR after schedule = %v, want 0.01", name, lr)
		}
	}
}

type fakeOpt struct{}

func (fakeOpt) Step(_, _ []*tensor.Tensor) {}
func (fakeOpt) Name() string               { return "fake" }

func TestLRSchedulerUnknownOptimizer(t *testing.T) {
	cb := &LRScheduler{Schedule: ConstantLR{LR: 1}, Opt: fakeOpt{}}
	h := &History{ValAcc: []float64{0.5}, ValLoss: []float64{1}}
	if err := cb.OnEpochEnd(0, h); err == nil {
		t.Fatal("expected error for unsupported optimiser")
	}
}

func TestWeightDecayShrinksParams(t *testing.T) {
	inner, _ := NewOptimizer("SGD", 0.0) // default lr, but zero grads below
	wd := NewWeightDecay(inner, 0.1)
	p := tensor.FromSlice([]float64{10, -10}, 2)
	g := tensor.New(2) // zero gradient: only decay acts
	wd.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if math.Abs(p.Data()[0]-9) > 1e-12 || math.Abs(p.Data()[1]+9) > 1e-12 {
		t.Fatalf("decayed params = %v, want ±9", p.Data())
	}
	if wd.Name() != "SGD+wd(0.1)" {
		t.Fatalf("name = %q", wd.Name())
	}
}

func TestWeightDecayRegularises(t *testing.T) {
	// On a noisy tiny problem, weight decay must reduce the final weight
	// norm versus the bare optimiser.
	train := func(lambda float64) float64 {
		r := tensor.NewRNG(31)
		m := NewMLP(r, 10, []int{16}, 2)
		x := tensor.Randn(r, 64, 10)
		y := make([]int, 64)
		for i := range y {
			if x.At(i, 0) > 0 {
				y[i] = 1
			}
		}
		var opt Optimizer
		opt, _ = NewOptimizer("Adam", 0)
		if lambda > 0 {
			opt = NewWeightDecay(opt, lambda)
		}
		if _, err := m.Fit(x, y, x, y, FitConfig{Epochs: 20, BatchSize: 16, Optimizer: opt}); err != nil {
			t.Fatal(err)
		}
		norm := 0.0
		for _, p := range m.Params() {
			norm += p.Norm() * p.Norm()
		}
		return math.Sqrt(norm)
	}
	bare := train(0)
	decayed := train(0.01)
	if decayed >= bare {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", decayed, bare)
	}
}

func TestScheduleWithFit(t *testing.T) {
	// A full Fit run with a scheduler callback must not error and must
	// still learn.
	r := tensor.NewRNG(33)
	m := NewMLP(r, 4, []int{8}, 2)
	x := tensor.Randn(r, 80, 4)
	y := make([]int, 80)
	for i := range y {
		if x.At(i, 1)+x.At(i, 2) > 0 {
			y[i] = 1
		}
	}
	opt, _ := NewOptimizer("SGD", 0.1)
	h, err := m.Fit(x, y, x, y, FitConfig{
		Epochs: 15, BatchSize: 16, Optimizer: opt,
		Callbacks: []Callback{&LRScheduler{Schedule: CosineDecay{Initial: 0.1, Floor: 0.001, Period: 15}, Opt: opt}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Final() < 0.8 {
		t.Fatalf("scheduled training accuracy = %v", h.Final())
	}
}
