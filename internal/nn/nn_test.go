package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDenseForwardKnownValues(t *testing.T) {
	r := tensor.NewRNG(1)
	d := NewDense(r, 2, 2)
	d.W = tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	d.B = tensor.FromSlice([]float64{0.5, -0.5}, 1, 2)
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, true)
	if y.At(0, 0) != 4.5 || y.At(0, 1) != 5.5 {
		t.Fatalf("Dense forward = %v", y.Data())
	}
}

func TestDenseBackwardShapes(t *testing.T) {
	r := tensor.NewRNG(2)
	d := NewDense(r, 3, 4)
	x := tensor.Randn(r, 5, 3)
	d.Forward(x, true)
	gin := d.Backward(tensor.Randn(r, 5, 4))
	if gin.Dim(0) != 5 || gin.Dim(1) != 3 {
		t.Fatalf("input grad shape = %v", gin.Shape())
	}
	if d.dW.Dim(0) != 3 || d.dW.Dim(1) != 4 {
		t.Fatalf("dW shape = %v", d.dW.Shape())
	}
	if d.dB.Size() != 4 {
		t.Fatalf("dB size = %d", d.dB.Size())
	}
}

// Numerical gradient check: analytic dW must match finite differences.
func TestDenseGradientNumerically(t *testing.T) {
	r := tensor.NewRNG(3)
	d := NewDense(r, 3, 2)
	x := tensor.Randn(r, 4, 3)
	labels := []int{0, 1, 0, 1}
	var loss SoftmaxCrossEntropy

	forward := func() float64 {
		logits := d.Forward(x, true)
		l, _ := loss.Loss(logits, labels)
		return l
	}

	logits := d.Forward(x, true)
	_, grad := loss.Loss(logits, labels)
	d.Backward(grad)
	analytic := d.dW.Clone()

	const eps = 1e-6
	wd := d.W.Data()
	for i := 0; i < d.W.Size(); i++ {
		orig := wd[i]
		wd[i] = orig + eps
		lp := forward()
		wd[i] = orig - eps
		lm := forward()
		wd[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic.Data()[i]) > 1e-5 {
			t.Fatalf("dW[%d]: analytic %v vs numeric %v", i, analytic.Data()[i], numeric)
		}
	}
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	y := l.Forward(x, true)
	if y.At(0, 0) != 0 || y.At(0, 2) != 2 {
		t.Fatalf("ReLU forward = %v", y.Data())
	}
	g := l.Backward(tensor.FromSlice([]float64{5, 5, 5}, 1, 3))
	if g.At(0, 0) != 0 || g.At(0, 2) != 5 {
		t.Fatalf("ReLU backward = %v", g.Data())
	}
}

func TestTanhRange(t *testing.T) {
	l := NewTanh()
	x := tensor.FromSlice([]float64{-10, 0, 10}, 1, 3)
	y := l.Forward(x, true)
	if y.At(0, 0) > -0.99 || math.Abs(y.At(0, 1)) > 1e-12 || y.At(0, 2) < 0.99 {
		t.Fatalf("Tanh forward = %v", y.Data())
	}
	// Gradient at 0 is 1.
	g := l.Backward(tensor.FromSlice([]float64{1, 1, 1}, 1, 3))
	if math.Abs(g.At(0, 1)-1) > 1e-12 {
		t.Fatalf("Tanh backward at 0 = %v", g.At(0, 1))
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	r := tensor.NewRNG(4)
	l := NewDropout(r, 0.5)
	x := tensor.Ones(1, 1000)
	yTrain := l.Forward(x, true)
	zeros := 0
	for _, v := range yTrain.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropout zeroed %d/1000, want ~500", zeros)
	}
	// Inverted dropout preserves expected activation.
	if m := yTrain.Mean(); math.Abs(m-1) > 0.15 {
		t.Fatalf("dropout mean = %v, want ~1", m)
	}
	yEval := l.Forward(x, false)
	if !yEval.Equal(x) {
		t.Fatal("dropout must be identity in eval mode")
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate 1.0")
		}
	}()
	NewDropout(tensor.NewRNG(1), 1.0)
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	var l SoftmaxCrossEntropy
	// Uniform logits over 4 classes → loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := l.Loss(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform loss = %v, want ln4", loss)
	}
	// Gradient rows sum to 0 (softmax sums to 1, minus one-hot).
	for r := 0; r < 2; r++ {
		s := 0.0
		for c := 0; c < 4; c++ {
			s += grad.At(r, c)
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("grad row %d sums to %v", r, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 2, 1,
		1, 0, 2,
		2, 0, 1,
	}, 4, 3)
	got := Accuracy(logits, []int{0, 1, 2, 1})
	if got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestMSELoss(t *testing.T) {
	var l MSE
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	target := tensor.FromSlice([]float64{0, 0}, 2)
	loss, grad := l.Loss(pred, target)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	if math.Abs(grad.Data()[1]-2) > 1e-12 {
		t.Fatalf("MSE grad = %v", grad.Data())
	}
}

func TestNewOptimizerNames(t *testing.T) {
	for _, name := range []string{"SGD", "Adam", "RMSprop"} {
		o, err := NewOptimizer(name, 0)
		if err != nil {
			t.Fatalf("NewOptimizer(%s): %v", name, err)
		}
		if o.Name() != name {
			t.Fatalf("optimizer name %q != %q", o.Name(), name)
		}
	}
	if _, err := NewOptimizer("Adagrad", 0); err == nil {
		t.Fatal("expected error for unknown optimizer")
	}
}

// Every optimiser must reduce a simple convex loss f(w) = ||w||².
func TestOptimizersReduceConvexLoss(t *testing.T) {
	for _, name := range []string{"SGD", "Adam", "RMSprop"} {
		opt, err := NewOptimizer(name, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		w := tensor.FromSlice([]float64{3, -2, 1}, 3)
		params := []*tensor.Tensor{w}
		initial := w.Norm()
		for step := 0; step < 200; step++ {
			grads := []*tensor.Tensor{w.Scale(2)} // ∇||w||² = 2w
			opt.Step(params, grads)
		}
		if w.Norm() > initial*0.1 {
			t.Fatalf("%s failed to descend: |w| %v → %v", name, initial, w.Norm())
		}
	}
}

func TestSequentialSummaryAndParams(t *testing.T) {
	r := tensor.NewRNG(5)
	m := NewMLP(r, 10, []int{8}, 3)
	// Dense(10→8): 80+8; Dense(8→3): 24+3.
	if got := m.NumParams(); got != 115 {
		t.Fatalf("NumParams = %d, want 115", got)
	}
	if m.Summary() == "" {
		t.Fatal("empty summary")
	}
	if len(m.Params()) != len(m.Grads()) {
		t.Fatal("Params/Grads misaligned")
	}
}

func TestSetParallelismPropagates(t *testing.T) {
	r := tensor.NewRNG(6)
	m := NewMLP(r, 4, []int{4}, 2)
	m.SetParallelism(8)
	if m.Parallelism() != 8 {
		t.Fatalf("Parallelism = %d", m.Parallelism())
	}
	for _, l := range m.Layers {
		if d, ok := l.(*Dense); ok && d.units != 8 {
			t.Fatal("SetParallelism did not reach Dense layer")
		}
	}
	m.SetParallelism(0)
	if m.Parallelism() != 1 {
		t.Fatalf("Parallelism floor = %d, want 1", m.Parallelism())
	}
}

// Property: model forward output shape is (batch, classes) for random sizes.
func TestForwardShapeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		in := 1 + r.Intn(10)
		classes := 2 + r.Intn(5)
		batch := 1 + r.Intn(8)
		m := NewMLP(r, in, []int{1 + r.Intn(8)}, classes)
		out := m.Forward(tensor.Randn(r, batch, in), false)
		return out.Dim(0) == batch && out.Dim(1) == classes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
