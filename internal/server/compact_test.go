package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// newCompactTestServer wires a server over a journal with a tiny SSE
// retention window, returning the journal for direct event injection.
func newCompactTestServer(t *testing.T, opts store.JournalOptions) (*store.Journal, *httptest.Server) {
	t.Helper()
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(2), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 2)
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "fast", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			return hpo.TrialMetrics{BestAcc: 0.5, FinalAcc: 0.5, Epochs: 1, ValAccHistory: []float64{0.5}}, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return journal, ts
}

// TestAdminCompactEndpoint: POST /v1/admin/compact rewrites terminal
// studies and reports reclaim counters; /healthz carries the cumulative
// journal stats.
func TestAdminCompactEndpoint(t *testing.T) {
	journal, ts := newCompactTestServer(t, store.JournalOptions{NoSync: true})

	// A finished study with per-epoch telemetry, built through the store.
	if err := journal.CreateStudy(store.StudyMeta{ID: "done1"}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 30; e++ {
		if err := journal.AppendMetric("done1", 0, e, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	if err := journal.AppendTrials("done1", []store.Trial{{ID: 0, Config: map[string]interface{}{"x": 1}, FinalAcc: 0.7, BestAcc: 0.7, Epochs: 30}}); err != nil {
		t.Fatal(err)
	}
	if err := journal.SetStudyState("done1", store.StateDone, "", &store.Summary{Trials: 1, BestAcc: 0.7}); err != nil {
		t.Fatal(err)
	}

	code, out := postJSON(t, ts.URL+"/v1/admin/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact = %d %v", code, out)
	}
	delta, ok := out["compacted"].(map[string]interface{})
	if !ok || delta["studies_compacted"].(float64) != 1 {
		t.Fatalf("compact response = %v", out)
	}
	if delta["records_dropped"].(float64) < 30 {
		t.Fatalf("compaction dropped too few records: %v", delta)
	}

	code, health := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	js, ok := health["journal"].(map[string]interface{})
	if !ok {
		t.Fatalf("healthz missing journal stats: %v", health)
	}
	comp, ok := js["compaction"].(map[string]interface{})
	if !ok || comp["studies_compacted"].(float64) != 1 {
		t.Fatalf("healthz compaction stats = %v", js)
	}

	// The compacted study still serves its trials.
	code, trials := getJSON(t, ts.URL+"/v1/studies/done1/trials")
	if code != http.StatusOK || len(trials["trials"].([]interface{})) != 1 {
		t.Fatalf("trials after compact = %d %v", code, trials)
	}
}

// TestCompactionRefusesTamperedStudy: verify-on-compact end to end. Two
// rung studies finish; one stream gains a promotion the scheduler never
// granted. Compaction must rewrite the intact study, refuse the tampered
// one (its full record stream is the divergence evidence), count the
// refusal in the run delta / healthz / the metrics exposition, and leave
// the tampered study's verify verdict reproducible afterwards.
func TestCompactionRefusesTamperedStudy(t *testing.T) {
	journal, ts := newRungTestServer(t)

	specFmt := `{
		"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
		"budget": 9, "seed": %d,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`
	var ids []string
	for _, seed := range []int{41, 42} {
		code, created := postJSON(t, ts.URL+"/v1/studies", fmt.Sprintf(specFmt, seed))
		if code != http.StatusCreated {
			t.Fatalf("create = %d %v", code, created)
		}
		id := created["id"].(string)
		waitForState(t, ts.URL, id, "done")
		ids = append(ids, id)
	}
	tampered, intact := ids[0], ids[1]

	// Forge a promotion into one stream: replay will not re-derive it.
	rec := journal.Recorder(tampered, "tamper")
	if err := rec.(store.MetricRecorder).RecordPromote(0, 0, 27, "forged grant"); err != nil {
		t.Fatal(err)
	}

	code, out := postJSON(t, ts.URL+"/v1/admin/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact = %d %v", code, out)
	}
	delta, ok := out["compacted"].(map[string]interface{})
	if !ok {
		t.Fatalf("compact response = %v", out)
	}
	if delta["verify_refusals"].(float64) != 1 {
		t.Fatalf("tampered study was not refused: %v", delta)
	}
	if delta["studies_compacted"].(float64) != 1 {
		t.Fatalf("intact study was not compacted alongside the refusal: %v", delta)
	}

	// The refusal is visible in the cumulative healthz stats...
	code, health := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	comp := health["journal"].(map[string]interface{})["compaction"].(map[string]interface{})
	if comp["verify_refusals"].(float64) != 1 {
		t.Fatalf("healthz compaction stats missing the refusal: %v", comp)
	}

	// ...and on the Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		sb.WriteString(scanner.Text())
		sb.WriteByte('\n')
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "hpo_store_compaction_verify_refusals_total 1") {
		t.Fatalf("metrics exposition missing the refusal counter:\n%.2000s", sb.String())
	}

	// The tampered study's record stream survived intact: the verdict is
	// still reproducible (which compaction would have destroyed).
	code, body := postVerify(t, ts.URL+"/v1/studies/"+tampered+"/verify")
	if code != http.StatusOK {
		t.Fatalf("verify after refusal = %d", code)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.OK {
		t.Fatal("tampered study verifies OK — the forged record was compacted away")
	}

	// The intact study still serves its trials from the compacted form.
	code, trials := getJSON(t, ts.URL+"/v1/studies/"+intact+"/trials")
	if code != http.StatusOK || len(trials["trials"].([]interface{})) == 0 {
		t.Fatalf("intact study unreadable after compaction: %d %v", code, trials)
	}

	// A second run refuses again: the gate is idempotent, not one-shot.
	code, out = postJSON(t, ts.URL+"/v1/admin/compact", "")
	if code != http.StatusOK {
		t.Fatalf("second compact = %d %v", code, out)
	}
	delta = out["compacted"].(map[string]interface{})
	if delta["verify_refusals"].(float64) != 1 || delta["studies_compacted"].(float64) != 0 {
		t.Fatalf("second compact run = %v", delta)
	}
}

// TestSSEResumeBelowRetentionWindow: an events request whose since
// predates the in-memory window gets a snapshot-then-tail stream — study
// state and trials reconstructed from the index with non-decreasing SSE
// ids — rather than an error or a silent gap.
func TestSSEResumeBelowRetentionWindow(t *testing.T) {
	journal, ts := newCompactTestServer(t, store.JournalOptions{NoSync: true, RetainEvents: 4})

	if err := journal.CreateStudy(store.StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := journal.AppendTrials("s", []store.Trial{{ID: 0, Config: map[string]interface{}{"x": 1}, FinalAcc: 0.6, BestAcc: 0.6}}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 40; e++ {
		if err := journal.AppendMetric("s", 1, e, 0.01*float64(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Terminal state so the SSE stream closes once it has caught up.
	if err := journal.SetStudyState("s", store.StateDone, "", nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/studies/s/events?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	var types []string
	sawSnapshotStudy, sawSnapshotTrial, sawState := false, false, false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		switch {
		case strings.Contains(data, `"snapshot":true`) && strings.Contains(data, `"type":"study"`):
			sawSnapshotStudy = true
		case strings.Contains(data, `"snapshot":true`) && strings.Contains(data, `"type":"trial"`):
			sawSnapshotTrial = true
		case strings.Contains(data, `"type":"state"`):
			sawState = true
		}
		types = append(types, data)
	}
	if !sawSnapshotStudy || !sawSnapshotTrial {
		t.Fatalf("below-window resume missing snapshot events; stream: %v", types)
	}
	if !sawState {
		t.Fatalf("stream missing the terminal state event; stream: %v", types)
	}
}
