package server

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// newCompactTestServer wires a server over a journal with a tiny SSE
// retention window, returning the journal for direct event injection.
func newCompactTestServer(t *testing.T, opts store.JournalOptions) (*store.Journal, *httptest.Server) {
	t.Helper()
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(2), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 2)
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "fast", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			return hpo.TrialMetrics{BestAcc: 0.5, FinalAcc: 0.5, Epochs: 1, ValAccHistory: []float64{0.5}}, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return journal, ts
}

// TestAdminCompactEndpoint: POST /v1/admin/compact rewrites terminal
// studies and reports reclaim counters; /healthz carries the cumulative
// journal stats.
func TestAdminCompactEndpoint(t *testing.T) {
	journal, ts := newCompactTestServer(t, store.JournalOptions{NoSync: true})

	// A finished study with per-epoch telemetry, built through the store.
	if err := journal.CreateStudy(store.StudyMeta{ID: "done1"}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 30; e++ {
		if err := journal.AppendMetric("done1", 0, e, 0.4); err != nil {
			t.Fatal(err)
		}
	}
	if err := journal.AppendTrials("done1", []store.Trial{{ID: 0, Config: map[string]interface{}{"x": 1}, FinalAcc: 0.7, BestAcc: 0.7, Epochs: 30}}); err != nil {
		t.Fatal(err)
	}
	if err := journal.SetStudyState("done1", store.StateDone, "", &store.Summary{Trials: 1, BestAcc: 0.7}); err != nil {
		t.Fatal(err)
	}

	code, out := postJSON(t, ts.URL+"/v1/admin/compact", "")
	if code != http.StatusOK {
		t.Fatalf("compact = %d %v", code, out)
	}
	delta, ok := out["compacted"].(map[string]interface{})
	if !ok || delta["studies_compacted"].(float64) != 1 {
		t.Fatalf("compact response = %v", out)
	}
	if delta["records_dropped"].(float64) < 30 {
		t.Fatalf("compaction dropped too few records: %v", delta)
	}

	code, health := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	js, ok := health["journal"].(map[string]interface{})
	if !ok {
		t.Fatalf("healthz missing journal stats: %v", health)
	}
	comp, ok := js["compaction"].(map[string]interface{})
	if !ok || comp["studies_compacted"].(float64) != 1 {
		t.Fatalf("healthz compaction stats = %v", js)
	}

	// The compacted study still serves its trials.
	code, trials := getJSON(t, ts.URL+"/v1/studies/done1/trials")
	if code != http.StatusOK || len(trials["trials"].([]interface{})) != 1 {
		t.Fatalf("trials after compact = %d %v", code, trials)
	}
}

// TestSSEResumeBelowRetentionWindow: an events request whose since
// predates the in-memory window gets a snapshot-then-tail stream — study
// state and trials reconstructed from the index with non-decreasing SSE
// ids — rather than an error or a silent gap.
func TestSSEResumeBelowRetentionWindow(t *testing.T) {
	journal, ts := newCompactTestServer(t, store.JournalOptions{NoSync: true, RetainEvents: 4})

	if err := journal.CreateStudy(store.StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := journal.AppendTrials("s", []store.Trial{{ID: 0, Config: map[string]interface{}{"x": 1}, FinalAcc: 0.6, BestAcc: 0.6}}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 40; e++ {
		if err := journal.AppendMetric("s", 1, e, 0.01*float64(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Terminal state so the SSE stream closes once it has caught up.
	if err := journal.SetStudyState("s", store.StateDone, "", nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/studies/s/events?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	var types []string
	sawSnapshotStudy, sawSnapshotTrial, sawState := false, false, false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		switch {
		case strings.Contains(data, `"snapshot":true`) && strings.Contains(data, `"type":"study"`):
			sawSnapshotStudy = true
		case strings.Contains(data, `"snapshot":true`) && strings.Contains(data, `"type":"trial"`):
			sawSnapshotTrial = true
		case strings.Contains(data, `"type":"state"`):
			sawState = true
		}
		types = append(types, data)
	}
	if !sawSnapshotStudy || !sawSnapshotTrial {
		t.Fatalf("below-window resume missing snapshot events; stream: %v", types)
	}
	if !sawState {
		t.Fatalf("stream missing the terminal state event; stream: %v", types)
	}
}
