package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/replay"
	"repro/internal/store"
)

// ErrBadSpec reports an invalid study specification (HTTP 400); wrap it
// with the detail and check with errors.Is.
var ErrBadSpec = errors.New("server: invalid study spec")

// StudySpec is the JSON body of POST /v1/studies — everything needed to
// build and run one study. Space uses the paper's Listing-1 config format.
type StudySpec struct {
	Name string `json:"name,omitempty"`
	// Algo is the sampler: grid | random | bayes | tpe | hyperband.
	Algo  string          `json:"algo"`
	Space json.RawMessage `json:"space"`
	// Budget bounds random/model-based samplers (hyperband: max resource).
	Budget int    `json:"budget,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Dataset and Samples select the objective's training data
	// (synthetic mnist | cifar10 substitutes).
	Dataset string `json:"dataset,omitempty"`
	Samples int    `json:"samples,omitempty"`
	// CVFolds > 1 evaluates each config with k-fold cross-validation.
	CVFolds int `json:"cv_folds,omitempty"`
	// Hidden is the default hidden-layer widths of the model.
	Hidden []int `json:"hidden,omitempty"`
	// Cores is the per-trial @constraint.
	Cores int `json:"cores,omitempty"`
	// Target stops the study at this validation accuracy (0 = off).
	Target float64 `json:"target,omitempty"`
	// BatchSize bounds in-flight configs per Ask/Tell round (0 = all).
	BatchSize int `json:"batch_size,omitempty"`
	// Memoize opts out of cross-study result reuse when false is wanted;
	// defaults to true (identical configs return persisted results).
	Memoize *bool `json:"memoize,omitempty"`
	// Pruner selects a trial pruner: "" (daemon default) | none | median |
	// asha. Pruned trials stop mid-training when their intermediate
	// accuracy loses to the field.
	Pruner string `json:"pruner,omitempty"`
	// PrunerEta is ASHA's halving factor (default 3).
	PrunerEta int `json:"pruner_eta,omitempty"`
	// PrunerWarmup is the epochs a trial is immune (median) or the first
	// rung's resource (asha); 0 selects the rule's default.
	PrunerWarmup int `json:"pruner_warmup,omitempty"`
	// Scheduler selects rung-driven successive halving over the live
	// report stream: "" (daemon default) | none | hyperband | asha.
	// "hyperband" replaces the sampler with the rung-driven Hyperband
	// (Algo must be hyperband); "asha" keeps the configured sampler and
	// promotes/halts trials at asynchronous rung boundaries. Trials are
	// submitted once and continued past their initial budget via task
	// extension instead of being re-submitted per rung. Reuses PrunerEta
	// (halving factor) and PrunerWarmup (first rung) as its knobs, with
	// Budget as the epoch ceiling; mutually exclusive with Pruner and
	// with CVFolds > 1.
	Scheduler string `json:"scheduler,omitempty"`
	// RungMode selects how an active hyperband scheduler settles rungs:
	// "" (daemon default, then sync) | sync | async. Sync rungs are
	// barriers — conformant with the batch sampler but requiring the
	// runtime to hold a whole bracket concurrently; async rungs decide
	// per-arrival (ASHA-style), run on any capacity down to one slot, and
	// execute independent brackets in parallel. The asha scheduler is
	// inherently async: requesting sync for it is rejected.
	RungMode string `json:"rung_mode,omitempty"`
	// Start queues the study for execution immediately on creation.
	Start bool `json:"start,omitempty"`
}

// ParseSpec decodes and validates a study spec, applying defaults.
func ParseSpec(raw []byte) (StudySpec, error) {
	var spec StudySpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if spec.Algo == "" {
		spec.Algo = "grid"
	}
	if spec.Dataset == "" {
		spec.Dataset = "mnist"
	}
	if spec.Samples <= 0 {
		spec.Samples = 800
	}
	if spec.Budget <= 0 {
		spec.Budget = 20
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	if len(spec.Space) == 0 {
		return spec, fmt.Errorf("%w: missing search space", ErrBadSpec)
	}
	if _, err := spec.BuildSpace(); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if _, err := spec.buildSampler(); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if _, err := spec.BuildPruner(""); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if !hpo.KnownRungMode(spec.RungMode) {
		return spec, fmt.Errorf("%w: unknown rung_mode %q (want sync or async)", ErrBadSpec, spec.RungMode)
	}
	if spec.RungMode != "" && spec.Scheduler == "none" {
		return spec, fmt.Errorf("%w: rung_mode %q needs a scheduler, but the spec disables scheduling", ErrBadSpec, spec.RungMode)
	}
	if _, _, err := spec.BuildScheduler("", ""); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if spec.schedulerActive(spec.Scheduler) && spec.Pruner != "" && spec.Pruner != "none" {
		return spec, fmt.Errorf("%w: scheduler and pruner are mutually exclusive (the scheduler already halts rung losers)", ErrBadSpec)
	}
	if _, err := datasets.ByName(spec.Dataset, 8, 1); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return spec, nil
}

// BuildSpace parses the spec's search space.
func (s StudySpec) BuildSpace() (*hpo.Space, error) {
	return hpo.ParseSpaceJSON(s.Space)
}

// buildSampler constructs a fresh sampler for one run.
func (s StudySpec) buildSampler() (hpo.Sampler, error) {
	space, err := s.BuildSpace()
	if err != nil {
		return nil, err
	}
	return hpo.NewSampler(s.Algo, space, s.Budget, s.Seed)
}

// BuildPruner constructs the spec's pruner; an empty Pruner field falls
// back to defaultName (the daemon's -pruner flag), and "none" explicitly
// disables pruning either way.
func (s StudySpec) BuildPruner(defaultName string) (hpo.Pruner, error) {
	name := s.Pruner
	if name == "" {
		name = defaultName
	}
	return hpo.NewPruner(name, s.PrunerEta, s.PrunerWarmup)
}

// schedulerActive reports whether a scheduler name (after defaulting)
// selects rung-driven mode.
func (s StudySpec) schedulerActive(name string) bool {
	return name != "" && name != "none"
}

// BuildScheduler constructs the spec's rung-driven scheduler; an empty
// Scheduler field falls back to defaultName (the daemon's -scheduler
// flag), and "none" explicitly disables scheduling either way. The rung
// mode follows the same fallback: an empty rung_mode takes defaultMode
// (the daemon's -rung-mode flag), and an explicit spec field always wins.
// A daemon default that is incompatible with the spec (hyperband default
// on a grid study, asha on a cross-validated one, a daemon-default sync
// mode on an asha spec) falls back to no scheduler / the scheduler's
// natural mode rather than failing specs that worked before the flag —
// only explicit "scheduler"/"rung_mode" fields error. The returned
// sampler, when non-nil, replaces the spec's sampler (rung-driven
// Hyperband owns both roles).
func (s StudySpec) BuildScheduler(defaultName, defaultMode string) (hpo.Sampler, hpo.TrialScheduler, error) {
	name := s.Scheduler
	defaulted := name == ""
	if defaulted {
		name = defaultName
	}
	if !s.schedulerActive(name) {
		return nil, nil, nil
	}
	if defaulted && (s.CVFolds > 1 || (name == "hyperband" && s.Algo != "hyperband") ||
		(s.Pruner != "" && s.Pruner != "none")) {
		return nil, nil, nil
	}
	if s.CVFolds > 1 {
		return nil, nil, fmt.Errorf("server: scheduler %q requires cv_folds <= 1 (cross-validated objectives cannot continue past their budget)", name)
	}
	mode := s.RungMode
	if mode == "" {
		mode = defaultMode
		if name == "asha" && mode == hpo.RungSync {
			// The daemon-wide sync default is a hyperband preference; asha
			// has no synchronous mode, so the default must not fail specs
			// that never asked for one.
			mode = ""
		}
	}
	space, err := s.BuildSpace()
	if err != nil {
		return nil, nil, err
	}
	return hpo.NewTrialScheduler(name, s.Algo, space, s.Budget, s.PrunerEta, s.PrunerWarmup, s.Seed, mode)
}

// BuildObjective constructs the training objective the spec describes.
func (s StudySpec) BuildObjective() (hpo.Objective, error) {
	ds, err := datasets.ByName(s.Dataset, s.Samples, s.Seed)
	if err != nil {
		return nil, err
	}
	hidden := s.Hidden
	if len(hidden) == 0 {
		hidden = hpo.DefaultHidden()
	}
	if s.CVFolds > 1 {
		return &hpo.CVObjective{Dataset: ds, Folds: s.CVFolds, Hidden: hidden}, nil
	}
	return &hpo.MLObjective{Dataset: ds, Hidden: hidden}, nil
}

// memoize reports whether cross-study result reuse is enabled (default on).
func (s StudySpec) memoize() bool { return s.Memoize == nil || *s.Memoize }

// memoScope identifies everything besides the config that determines a
// trial's result, so the memo index never reuses results across different
// objectives. Must stay in sync with BuildObjective's defaults.
func (s StudySpec) memoScope() string {
	hidden := s.Hidden
	if len(hidden) == 0 {
		hidden = hpo.DefaultHidden()
	}
	return store.MemoScope(s.Dataset, s.Samples, s.CVFolds, hidden, s.Seed, s.Target)
}

// ReplayParams maps the spec onto the replay engine's decision parameters,
// resolving the daemon defaults exactly like the runner does at launch
// (BuildScheduler / BuildPruner, including the defaulted-incompatible
// fallbacks and the scheduler-supersedes-default-pruner rule). Keeping
// this next to those builders is what makes the verify endpoint honest:
// replay re-derives decisions under the same resolution the live run used.
func (s StudySpec) ReplayParams(defaultScheduler, defaultMode, defaultPruner string) (replay.Params, error) {
	space, err := s.BuildSpace()
	if err != nil {
		return replay.Params{}, err
	}
	p := replay.Params{
		Algo:   s.Algo,
		Space:  space,
		Budget: s.Budget,
		Seed:   s.Seed,
		Target: s.Target,
	}

	// Scheduler name + rung mode: mirror BuildScheduler's fallback chain.
	name := s.Scheduler
	defaulted := name == ""
	if defaulted {
		name = defaultScheduler
	}
	active := s.schedulerActive(name)
	if active && defaulted && (s.CVFolds > 1 || (name == "hyperband" && s.Algo != "hyperband") ||
		(s.Pruner != "" && s.Pruner != "none")) {
		active = false
	}
	if active {
		mode := s.RungMode
		if mode == "" {
			mode = defaultMode
			if name == "asha" && mode == hpo.RungSync {
				mode = ""
			}
		}
		p.Scheduler = name
		p.RungMode = mode
		p.Eta = s.PrunerEta
		p.MinResource = s.PrunerWarmup
		return p, nil
	}

	// No scheduler: a pruner may be active (spec field or daemon default).
	pruner := s.Pruner
	if pruner == "" {
		pruner = defaultPruner
	}
	if pruner != "" && pruner != "none" {
		p.Pruner = pruner
		p.PrunerEta = s.PrunerEta
		p.PrunerWarmup = s.PrunerWarmup
	}
	return p, nil
}
