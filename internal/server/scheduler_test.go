package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// TestSpecSchedulerValidation: the rung-driven spec surface rejects the
// combinations the study layer cannot honour.
func TestSpecSchedulerValidation(t *testing.T) {
	base := `"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}}`
	bad := []string{
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "pruner": "median"}`, base),
		fmt.Sprintf(`{%s, "algo": "random", "scheduler": "hyperband"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "bogus"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "cv_folds": 3}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "rung_mode": "bogus"}`, base),
		fmt.Sprintf(`{%s, "algo": "random", "scheduler": "asha", "rung_mode": "sync"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "none", "rung_mode": "async"}`, base),
	}
	for _, body := range bad {
		if _, err := ParseSpec([]byte(body)); err == nil {
			t.Errorf("spec accepted: %s", body)
		}
	}
	good := []string{
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "budget": 9}`, base),
		fmt.Sprintf(`{%s, "algo": "random", "scheduler": "asha", "budget": 9}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "none", "pruner": "median"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "rung_mode": "sync"}`, base),
		fmt.Sprintf(`{%s, "algo": "random", "scheduler": "asha", "rung_mode": "async"}`, base),
	}
	for _, body := range good {
		if _, err := ParseSpec([]byte(body)); err != nil {
			t.Errorf("spec rejected: %s: %v", body, err)
		}
	}
}

// TestRungModeDaemonFallback: a spec without rung_mode follows the
// daemon's -rung-mode default, an explicit field always wins, and the sync
// daemon default never breaks an asha spec (which has no sync mode).
func TestRungModeDaemonFallback(t *testing.T) {
	base := `"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}}, "budget": 9`
	hb := fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband"}`, base)
	hbSync := fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "rung_mode": "sync"}`, base)
	asha := fmt.Sprintf(`{%s, "algo": "random", "scheduler": "asha"}`, base)

	buildAsync := func(body, defMode string) bool {
		t.Helper()
		spec, err := ParseSpec([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		sampler, sched, err := spec.BuildScheduler("", defMode)
		if err != nil {
			t.Fatal(err)
		}
		if sched == nil {
			t.Fatalf("no scheduler built for %s", body)
		}
		if rh, ok := sampler.(*hpo.RungHyperband); ok {
			return rh.Async()
		}
		return true // asha is always async
	}
	if buildAsync(hb, "") {
		t.Error("empty daemon default built an async scheduler, want sync")
	}
	if !buildAsync(hb, "async") {
		t.Error("daemon default async ignored for a spec without rung_mode")
	}
	if buildAsync(hbSync, "async") {
		t.Error("explicit rung_mode sync lost to the daemon default")
	}
	// The sync daemon default must not fail asha specs — it is a
	// hyperband preference, and asha simply has no synchronous mode.
	if !buildAsync(asha, "sync") {
		t.Error("asha under a sync daemon default should stay per-arrival")
	}
}

// TestRungModeWithoutActiveSchedulerFailsStudy: a spec that explicitly
// sets rung_mode but activates no scheduler (no scheduler field, and the
// daemon has no default) must fail the study with a clear error instead
// of silently running the batch path the user tried to avoid. The spec is
// accepted at creation time — a daemon default could still supply the
// scheduler — so the check lands at execution.
func TestRungModeWithoutActiveSchedulerFailsStudy(t *testing.T) {
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(2), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Runner().Close(0) })

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "rung_mode": "async", "budget": 9,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v (spec must be accepted — a daemon default could activate a scheduler)", code, created)
	}
	study := waitForState(t, ts.URL, created["id"].(string), "failed")
	if msg, _ := study["error"].(string); !strings.Contains(msg, "rung_mode") {
		t.Fatalf("failure does not explain the dropped rung_mode: %q", msg)
	}
}

// TestServerAsyncRungSmallClusterE2E drives an async rung-mode Hyperband
// study through the HTTP control plane on a single-slot runtime — the
// capacity the sync mode rejects outright. The study must finish, journal
// promotions, and expose only public config keys through the API.
func TestServerAsyncRungSmallClusterE2E(t *testing.T) {
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		// One slot: smaller than every bracket of R=9, η=3.
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(1), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "gated", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			total := ctx.Config.Int("num_epochs", 1)
			if ctx.Proceed != nil && ctx.EpochCeiling > total {
				total = ctx.EpochCeiling
			}
			var m hpo.TrialMetrics
			for e := 0; e < total; e++ {
				if ctx.Halt != nil && ctx.Halt() != "" {
					m.Stopped = true
					return m, nil
				}
				v := ctx.Config.Float("acc", 0) * float64(e+1) / 9
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
				if ctx.Report != nil {
					ctx.Report(e, v)
				}
				if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
					m.Stopped = true
					return m, nil
				}
			}
			return m, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Runner().Close(0) })

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
		"budget": 9, "seed": 42,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	if promos := journal.StudyPromotes(id); len(promos) == 0 {
		t.Fatal("async study journaled no promotions")
	}
	trials, err := journal.StudyTrials(id)
	if err != nil {
		t.Fatal(err)
	}
	continued := 0
	for _, tr := range trials {
		if tr.Epochs > tr.Config["num_epochs"].(int) {
			continued++
		}
		for k := range tr.Config {
			if strings.HasPrefix(k, "_") {
				t.Fatalf("trial config leaks internal key %q through the store: %v", k, tr.Config)
			}
		}
	}
	if continued == 0 {
		t.Fatalf("no trial continued past its budget on the 1-slot runtime: %+v", trials)
	}

	// The API view is clean too.
	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/trials")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<20)
	n, _ := io.ReadFull(resp.Body, body)
	if api := string(body[:n]); strings.Contains(api, `"_hb`) {
		t.Fatalf("API response leaks hidden scheduler keys:\n%.600s", api)
	}
}

// TestServerRungSchedulerE2E drives a rung-driven Hyperband study through
// the HTTP control plane: the spec's scheduler field selects rung mode, the
// study runs to completion, promotions land in the journal, and the SSE
// stream carries promote events alongside the final trial records.
func TestServerRungSchedulerE2E(t *testing.T) {
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		// 9 slots: the largest bracket of R=9, η=3 runs as one rung.
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(9), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "gated", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			total := ctx.Config.Int("num_epochs", 1)
			if ctx.Proceed != nil && ctx.EpochCeiling > total {
				total = ctx.EpochCeiling
			}
			var m hpo.TrialMetrics
			for e := 0; e < total; e++ {
				if ctx.Halt != nil && ctx.Halt() != "" {
					m.Stopped = true
					return m, nil
				}
				v := ctx.Config.Float("acc", 0) * float64(e+1) / 9
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
				if ctx.Report != nil {
					ctx.Report(e, v)
				}
				if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
					m.Stopped = true
					return m, nil
				}
			}
			return m, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Runner().Close(0) })

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "budget": 9, "seed": 42,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	// Promotions were journaled (3+1 in bracket 0, 1 in bracket 1).
	promos := journal.StudyPromotes(id)
	if len(promos) != 5 {
		t.Fatalf("journal holds %d promotions, want 5: %+v", len(promos), promos)
	}

	// The trial records show continuation: winners trained past their
	// submitted budget, and at least one reached R.
	trials, err := journal.StudyTrials(id)
	if err != nil {
		t.Fatal(err)
	}
	continued, reachedR := 0, 0
	for _, tr := range trials {
		base := int(tr.Config["num_epochs"].(int))
		if tr.Epochs > base {
			continued++
		}
		if tr.Epochs == 9 && base < 9 {
			reachedR++
		}
	}
	if continued == 0 || reachedR == 0 {
		t.Fatalf("no promoted trials in the journal (continued=%d reachedR=%d): %+v", continued, reachedR, trials)
	}

	// The SSE stream carries the promote events.
	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	stream := string(buf[:n])
	if !strings.Contains(stream, "event: promote") {
		t.Fatalf("no promote events on the SSE stream:\n%.600s", stream)
	}
}
