package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// TestSpecSchedulerValidation: the rung-driven spec surface rejects the
// combinations the study layer cannot honour.
func TestSpecSchedulerValidation(t *testing.T) {
	base := `"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}}`
	bad := []string{
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "pruner": "median"}`, base),
		fmt.Sprintf(`{%s, "algo": "random", "scheduler": "hyperband"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "bogus"}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "cv_folds": 3}`, base),
	}
	for _, body := range bad {
		if _, err := ParseSpec([]byte(body)); err == nil {
			t.Errorf("spec accepted: %s", body)
		}
	}
	good := []string{
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "hyperband", "budget": 9}`, base),
		fmt.Sprintf(`{%s, "algo": "random", "scheduler": "asha", "budget": 9}`, base),
		fmt.Sprintf(`{%s, "algo": "hyperband", "scheduler": "none", "pruner": "median"}`, base),
	}
	for _, body := range good {
		if _, err := ParseSpec([]byte(body)); err != nil {
			t.Errorf("spec rejected: %s: %v", body, err)
		}
	}
}

// TestServerRungSchedulerE2E drives a rung-driven Hyperband study through
// the HTTP control plane: the spec's scheduler field selects rung mode, the
// study runs to completion, promotions land in the journal, and the SSE
// stream carries promote events alongside the final trial records.
func TestServerRungSchedulerE2E(t *testing.T) {
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		// 9 slots: the largest bracket of R=9, η=3 runs as one rung.
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(9), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "gated", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			total := ctx.Config.Int("num_epochs", 1)
			if ctx.Proceed != nil && ctx.EpochCeiling > total {
				total = ctx.EpochCeiling
			}
			var m hpo.TrialMetrics
			for e := 0; e < total; e++ {
				if ctx.Halt != nil && ctx.Halt() != "" {
					m.Stopped = true
					return m, nil
				}
				v := ctx.Config.Float("acc", 0) * float64(e+1) / 9
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
				if ctx.Report != nil {
					ctx.Report(e, v)
				}
				if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
					m.Stopped = true
					return m, nil
				}
			}
			return m, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Runner().Close(0) })

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "budget": 9, "seed": 42,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	// Promotions were journaled (3+1 in bracket 0, 1 in bracket 1).
	promos := journal.StudyPromotes(id)
	if len(promos) != 5 {
		t.Fatalf("journal holds %d promotions, want 5: %+v", len(promos), promos)
	}

	// The trial records show continuation: winners trained past their
	// submitted budget, and at least one reached R.
	trials, err := journal.StudyTrials(id)
	if err != nil {
		t.Fatal(err)
	}
	continued, reachedR := 0, 0
	for _, tr := range trials {
		base := int(tr.Config["num_epochs"].(int))
		if tr.Epochs > base {
			continued++
		}
		if tr.Epochs == 9 && base < 9 {
			reachedR++
		}
	}
	if continued == 0 || reachedR == 0 {
		t.Fatalf("no promoted trials in the journal (continued=%d reachedR=%d): %+v", continued, reachedR, trials)
	}

	// The SSE stream carries the promote events.
	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	stream := string(buf[:n])
	if !strings.Contains(stream, "event: promote") {
		t.Fatalf("no promote events on the SSE stream:\n%.600s", stream)
	}
}
