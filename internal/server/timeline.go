package server

import (
	"net/http"

	"repro/internal/trace"
)

// Timeline endpoints: replay a study's durable journal records into gantt
// rows (JSON) or a Paraver .prv trace. Both are pure functions of the
// record stream — repeated calls over an unchanged journal are
// byte-identical — and neither exposes trial configs, so the hidden
// rung-scheduler keys sanitised out of the public spec never appear here.

// studyTimeline loads the study and rebuilds its timeline from disk.
func (s *Server) studyTimeline(id string) (*trace.StudyTimeline, *trace.Recorder, error) {
	meta, err := s.store.GetStudy(id)
	if err != nil {
		return nil, nil, err
	}
	recs, err := s.store.StudyRecords(id)
	if err != nil {
		return nil, nil, err
	}
	tl, rec := trace.BuildStudyTimeline(id, string(meta.State), recs)
	return tl, rec, nil
}

// handleTimeline serves GET /v1/studies/{id}/timeline: one row per trial
// with rung-boundary segments and promote/prune markers, times in
// nanoseconds since the study's first journal record.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getVisible(r, id); err != nil {
		s.writeError(w, err)
		return
	}
	tl, _, err := s.studyTimeline(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

// handleTimelinePrv serves GET /v1/studies/{id}/timeline.prv: the same
// timeline as a Paraver trace (one thread per trial), loadable by Paraver
// or cmd/traceview.
func (s *Server) handleTimelinePrv(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getVisible(r, id); err != nil {
		s.writeError(w, err)
		return
	}
	_, rec, err := s.studyTimeline(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = trace.WriteParaver(w, rec)
}
