package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestMetricsEndpoint: a live daemon's /metrics is valid Prometheus text
// carrying the runtime, store, scheduler and HTTP families after a study
// has run.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newRungTestServer(t)

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
		"budget": 9, "seed": 3,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	waitForState(t, ts.URL, created["id"].(string), "done")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	_, body := getBody(t, ts.URL+"/metrics")
	text := string(body)

	for _, family := range []string{
		"hpo_runtime_tasks_submitted_total",
		"hpo_runtime_tasks_completed_total",
		"hpo_runtime_busy_cores",
		"hpo_store_appends_total",
		"hpo_store_fsync_batches_total",
		"hpo_store_journal_seq",
		"hpo_sched_promotions_total",
		"hpo_sched_baseline_epochs_total",
		"hpo_study_epochs_total",
		"hpod_http_requests_total",
		"hpod_http_request_seconds",
		"hpod_studies",
		"hpod_sse_subscribers",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("/metrics lacks family %s", family)
		}
	}
	if !strings.Contains(text, `hpod_studies{state="done"} 1`) {
		t.Errorf("/metrics does not count the finished study:\n%.400s", text)
	}
	if !strings.Contains(text, `endpoint="GET /v1/studies/{id}"`) {
		t.Errorf("request counters not labelled by route pattern")
	}
	// Exposition shape: every non-comment line is "name{labels} value",
	// where label values may themselves contain spaces — so the value is
	// whatever follows the final space.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if _, err := strconv.ParseFloat(line[cut+1:], 64); err != nil {
			t.Fatalf("non-numeric sample value in %q: %v", line, err)
		}
	}
}

// TestMetricsAuthAndLeaks: /metrics stays open when bearer auth is on —
// and precisely because it is open, it must never leak token material or
// the hidden rung-scheduler config keys. The timeline endpoints stay
// gated.
func TestMetricsAuthAndLeaks(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	const token = "sekrit-bearer-7f3a"
	srv.SetAuthToken(token)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics with auth enabled = %d, want 200 (scrapers are unauthenticated)", code)
	}
	for _, needle := range []string{token, "sekrit", "_hb"} {
		if strings.Contains(string(body), needle) {
			t.Fatalf("/metrics leaks %q", needle)
		}
	}
	if code, _ := getBody(t, ts.URL+"/v1/studies/x/timeline"); code != http.StatusUnauthorized {
		t.Fatalf("timeline without token = %d, want 401", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/studies/x/timeline.prv"); code != http.StatusUnauthorized {
		t.Fatalf("timeline.prv without token = %d, want 401", code)
	}
}

// TestMetricsUnderConcurrentLoad exercises the registry's concurrency
// contract (run with -race): studies executing, SSE subscribers draining,
// compaction rewriting segments and /metrics scraping all at once.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	_, ts := newRungTestServer(t)

	var ids []string
	for i := 0; i < 3; i++ {
		code, created := postJSON(t, ts.URL+"/v1/studies", fmt.Sprintf(`{
			"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
			"budget": 9, "seed": %d,
			"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
			"start": true}`, i+1))
		if code != http.StatusCreated {
			t.Fatalf("create = %d %v", code, created)
		}
		ids = append(ids, created["id"].(string))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// SSE subscribers follow each study to completion.
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/events")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 4096)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					return
				}
			}
		}(id)
	}
	// Scrapers and compaction hammer the registry meanwhile.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, _ := getBody(t, ts.URL+"/metrics"); code != http.StatusOK {
					t.Error("/metrics failed under load")
					return
				}
				postJSON(t, ts.URL+"/v1/admin/compact", "")
			}
		}()
	}
	for _, id := range ids {
		waitForState(t, ts.URL, id, "done")
	}
	close(stop)
	wg.Wait()

	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "hpo_store_compaction_runs_total") {
		t.Fatalf("compaction counters missing after concurrent compactions")
	}
}
