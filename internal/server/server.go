// Package server is the hpod HTTP control plane: a net/http API over the
// persistent study store (internal/store) and the async study runner
// (bounded worker pool over internal/runtime). Studies are created from
// JSON specs, executed asynchronously, and observable via polling or a
// per-study SSE event stream fed by the journal.
//
//	POST /v1/studies             create a study (spec body; "start": true to run)
//	GET  /v1/studies             list studies
//	GET  /v1/studies/{id}        study metadata + progress
//	POST /v1/studies/{id}/start  queue the study for (re-)execution
//	POST /v1/studies/{id}/cancel stop a queued/running study (terminal "canceled")
//	GET  /v1/studies/{id}/trials finished trials
//	GET  /v1/studies/{id}/events SSE stream of trial/metric/prune/state events (?since=seq)
//	GET  /v1/studies/{id}/timeline      per-trial gantt rows rebuilt from the journal
//	GET  /v1/studies/{id}/timeline.prv  the same timeline as a Paraver trace
//	POST /v1/studies/{id}/verify replay the journal's decisions and check they byte-match
//	POST /v1/admin/compact       compact terminal studies' journal segments now
//	GET  /healthz                liveness + counters + journal/compaction stats
//	GET  /metrics                Prometheus text exposition (internal/obs registry)
//
// When a bearer token is configured (SetAuthToken / hpod -token), every
// endpoint except /healthz and /metrics requires "Authorization: Bearer
// <token>" — the metrics registry carries only aggregate counters, never
// study payloads (see docs/OBSERVABILITY.md).
package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/runtime"
	"repro/internal/store"
)

// Server is the hpod control plane. Create with New and mount via Handler.
type Server struct {
	store   *store.Journal
	runner  *Runner
	started time.Time
	mux     *http.ServeMux
	// token, when non-empty, gates every endpoint except /healthz behind
	// bearer auth.
	token string
}

// New wires a server over a journal and a runtime factory. maxConcurrent
// bounds simultaneously executing studies.
func New(st *store.Journal, factory RuntimeFactory, maxConcurrent int) *Server {
	s := &Server{
		store:   st,
		runner:  NewRunner(st, factory, maxConcurrent),
		started: time.Now(),
		mux:     http.NewServeMux(),
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /v1/studies", s.handleCreate)
	s.handle("GET /v1/studies", s.handleList)
	s.handle("GET /v1/studies/{id}", s.handleGet)
	s.handle("POST /v1/studies/{id}/start", s.handleStart)
	s.handle("POST /v1/studies/{id}/cancel", s.handleCancel)
	s.handle("GET /v1/studies/{id}/trials", s.handleTrials)
	s.handle("GET /v1/studies/{id}/events", s.handleEvents)
	s.handle("GET /v1/studies/{id}/timeline", s.handleTimeline)
	s.handle("GET /v1/studies/{id}/timeline.prv", s.handleTimelinePrv)
	s.handle("POST /v1/studies/{id}/verify", s.handleVerify)
	s.handle("POST /v1/admin/compact", s.handleCompact)
	s.registerScrapeHook()
	return s
}

// handle registers a route with request-count and latency instrumentation,
// labelled by the route pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, instrument(pattern, h))
}

// SetAuthToken enables bearer-token auth: when tok is non-empty, every
// endpoint except GET /healthz and GET /metrics (liveness probes and
// scrapers stay unauthenticated) rejects requests lacking
// "Authorization: Bearer <tok>". Reads are gated too — study specs and
// trial metrics are not public data.
func (s *Server) SetAuthToken(tok string) { s.token = tok }

// Handler returns the HTTP handler tree (wrapped with auth when a token is
// configured).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.token != "" && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
			if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+s.token)) != 1 {
				w.Header().Set("WWW-Authenticate", "Bearer")
				writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "server: missing or invalid bearer token"})
				return
			}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Runner exposes the study executor (daemon resume, tests).
func (s *Server) Runner() *Runner { return s.runner }

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps sentinel errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, store.ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotCancelable):
		code = http.StatusConflict
	case errors.Is(err, store.ErrClosed), errors.Is(err, runtime.ErrPoolClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// studyView is the API rendering of a study.
type studyView struct {
	ID        string           `json:"id"`
	Name      string           `json:"name,omitempty"`
	State     store.StudyState `json:"state"`
	Job       string           `json:"job,omitempty"`
	Error     string           `json:"error,omitempty"`
	CreatedAt time.Time        `json:"created_at"`
	UpdatedAt time.Time        `json:"updated_at"`
	Trials    int              `json:"trials"`
	Resumed   int              `json:"resumed,omitempty"`
	Memoized  int              `json:"memoized,omitempty"`
	BestAcc   float64          `json:"best_acc,omitempty"`
	Spec      json.RawMessage  `json:"spec,omitempty"`
}

// view renders meta, preferring live trial counts over end-of-run summary
// so pollers watch progress while the study runs.
func (s *Server) view(meta store.StudyMeta, withSpec bool) studyView {
	v := studyView{
		ID: meta.ID, Name: meta.Name, State: meta.State, Error: meta.Error,
		CreatedAt: meta.CreatedAt, UpdatedAt: meta.UpdatedAt,
		Trials: meta.Trials, Resumed: meta.Resumed,
		Memoized: meta.Memoized, BestAcc: meta.BestAcc,
	}
	if n := s.store.TrialCount(meta.ID); n > v.Trials {
		v.Trials = n
	}
	if job, ok := s.runner.Job(meta.ID); ok {
		v.Job = job.State().String()
	}
	if withSpec {
		v.Spec = json.RawMessage(meta.Spec)
	}
	return v
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	studies := s.store.ListStudies()
	active := 0
	for _, m := range studies {
		if m.State.Active() {
			active++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": int(time.Since(s.started).Seconds()),
		"studies":        len(studies),
		"active":         active,
		"journal":        s.store.Stats(),
	})
}

// handleCompact runs an on-demand journal compaction: every terminal study
// is rewritten down to its summary records (per-epoch metric telemetry is
// dropped from disk and from the SSE resume window). Returns the run's
// reclaim counters plus the cumulative totals — the same numbers /healthz
// reports under "journal".
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	delta, err := s.store.Compact()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"compacted": delta,
		"journal":   s.store.Stats(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadSpec, err))
		return
	}
	spec, err := ParseSpec(raw)
	if err != nil {
		writeError(w, err)
		return
	}
	id := NewStudyID()
	name := spec.Name
	if name == "" {
		name = id
	}
	if err := s.store.CreateStudy(store.StudyMeta{ID: id, Name: name, Spec: raw}); err != nil {
		writeError(w, err)
		return
	}
	if spec.Start {
		if _, err := s.runner.Start(id); err != nil {
			writeError(w, err)
			return
		}
	}
	meta, err := s.store.GetStudy(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.view(meta, false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	metas := s.store.ListStudies()
	out := make([]studyView, 0, len(metas))
	for _, m := range metas {
		out = append(out, s.view(m, false))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"studies": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	meta, err := s.store.GetStudy(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(meta, true))
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.runner.Start(id); err != nil {
		writeError(w, err)
		return
	}
	meta, err := s.store.GetStudy(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(meta, false))
}

// handleCancel stops a queued or running study. The canceled state is
// terminal and journaled, so a restarting daemon never re-queues it.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.runner.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	meta, err := s.store.GetStudy(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(meta, false))
}

func (s *Server) handleTrials(w http.ResponseWriter, r *http.Request) {
	trials, err := s.store.StudyTrials(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"trials": trials})
}

// handleEvents streams a study's journal records as Server-Sent Events.
// Every event carries its journal sequence number as the SSE id, so a
// dropped client resumes with ?since=<last-id>. The stream ends once the
// study reaches a terminal state and all its events have been sent.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.store.GetStudy(id); err != nil {
		writeError(w, err)
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("server: since must be a sequence number, got %q", q)})
			return
		}
		since = v
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("server: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	obsSSESubscribers.Add(1)
	defer obsSSESubscribers.Add(-1)
	for {
		watch := s.store.Watch()
		events, tail := s.store.EventsSince(id, since)
		obsSSEFanoutLag.Observe(float64(len(events)))
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			obsSSEEventsSent.Inc()
		}
		flusher.Flush()
		since = tail
		if meta, err := s.store.GetStudy(id); err != nil || meta.State.Terminal() {
			// Re-check for events raced in between the snapshot and the
			// state read before closing the stream.
			if rest, _ := s.store.EventsSince(id, since); len(rest) == 0 {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-watch:
		}
	}
}
