// Package server is the hpod HTTP control plane: a net/http API over the
// persistent study store (internal/store) and the async study runner
// (bounded worker pool over internal/runtime). Studies are created from
// JSON specs, executed asynchronously, and observable via polling or a
// per-study SSE event stream fed by the journal.
//
//	POST /v1/studies             create a study (spec body; "start": true to run)
//	GET  /v1/studies             list studies
//	GET  /v1/studies/{id}        study metadata + progress
//	POST /v1/studies/{id}/start  queue the study for (re-)execution
//	POST /v1/studies/{id}/cancel stop a queued/running study (terminal "canceled")
//	GET  /v1/studies/{id}/trials finished trials
//	GET  /v1/studies/{id}/events SSE stream of trial/metric/prune/state events (?since=seq)
//	GET  /v1/studies/{id}/timeline      per-trial gantt rows rebuilt from the journal
//	GET  /v1/studies/{id}/timeline.prv  the same timeline as a Paraver trace
//	POST /v1/studies/{id}/verify replay the journal's decisions and check they byte-match
//	POST /v1/admin/compact       compact terminal studies' journal segments now
//	GET  /healthz                liveness + counters + journal/compaction stats
//	GET  /metrics                Prometheus text exposition (internal/obs registry)
//
// When a bearer token is configured (SetAuthToken / hpod -token), every
// endpoint except /healthz and /metrics requires "Authorization: Bearer
// <token>" — the metrics registry carries only aggregate counters, never
// study payloads (see docs/OBSERVABILITY.md).
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// Server is the hpod control plane. Create with New and mount via Handler.
type Server struct {
	store   *store.Journal
	runner  *Runner
	started time.Time
	mux     *http.ServeMux
	// token, when non-empty, gates every endpoint except /healthz behind
	// bearer auth.
	token string
	// tenants, when non-nil, switches the server to multi-tenant mode:
	// bearer tokens resolve to tenants, study ids are tenant-prefixed, and
	// listings/reads are tenant-scoped.
	tenants *TenantRegistry
	// retryAfter is the Retry-After hint attached to 429/503 admission
	// rejections.
	retryAfter time.Duration

	// subsMu guards subs, the per-tenant count of connected SSE
	// subscribers (the MaxEventSubscribers quota denominator).
	subsMu sync.Mutex
	subs   map[string]int
}

// tenantKey carries the resolved *Tenant through the request context.
type tenantKey struct{}

// tenantOf returns the request's resolved tenant (nil in single-token
// mode).
func tenantOf(r *http.Request) *Tenant {
	t, _ := r.Context().Value(tenantKey{}).(*Tenant)
	return t
}

// New wires a server over a journal and a runtime factory. maxConcurrent
// bounds simultaneously executing studies.
func New(st *store.Journal, factory RuntimeFactory, maxConcurrent int) *Server {
	s := &Server{
		store:      st,
		runner:     NewRunner(st, factory, maxConcurrent),
		started:    time.Now(),
		mux:        http.NewServeMux(),
		retryAfter: time.Second,
		subs:       make(map[string]int),
	}
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /v1/studies", s.handleCreate)
	s.handle("GET /v1/studies", s.handleList)
	s.handle("GET /v1/studies/{id}", s.handleGet)
	s.handle("POST /v1/studies/{id}/start", s.handleStart)
	s.handle("POST /v1/studies/{id}/cancel", s.handleCancel)
	s.handle("GET /v1/studies/{id}/trials", s.handleTrials)
	s.handle("GET /v1/studies/{id}/events", s.handleEvents)
	s.handle("GET /v1/studies/{id}/timeline", s.handleTimeline)
	s.handle("GET /v1/studies/{id}/timeline.prv", s.handleTimelinePrv)
	s.handle("POST /v1/studies/{id}/verify", s.handleVerify)
	s.handle("POST /v1/admin/compact", s.handleCompact)
	s.registerScrapeHook()
	// Verify-on-compact is on by default: the journal refuses to drop any
	// decision stream that fails replay verification (hpod
	// -verify-on-compact=false unhooks it).
	st.SetCompactVerify(s.CompactVerify)
	return s
}

// handle registers a route with request-count and latency instrumentation,
// labelled by the route pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, instrument(pattern, h))
}

// SetAuthToken enables bearer-token auth: when tok is non-empty, every
// endpoint except GET /healthz and GET /metrics (liveness probes and
// scrapers stay unauthenticated) rejects requests lacking
// "Authorization: Bearer <tok>". Reads are gated too — study specs and
// trial metrics are not public data.
func (s *Server) SetAuthToken(tok string) { s.token = tok }

// SetTenantRegistry switches the server to multi-tenant mode: every
// request (bar /healthz and /metrics) must present a registered tenant's
// bearer token, studies live in per-tenant namespaces, and the runner's
// admission queue enforces the registry's quota envelopes (epoch budgets
// re-derived from the journal). Supersedes SetAuthToken.
func (s *Server) SetTenantRegistry(reg *TenantRegistry) {
	s.tenants = reg
	s.runner.ConfigureTenancy(reg.Limits, s.store.TenantEpochs)
}

// SetRetryAfter tunes the Retry-After hint on 429/503 admission
// rejections (default 1s).
func (s *Server) SetRetryAfter(d time.Duration) {
	if d > 0 {
		s.retryAfter = d
	}
}

// Handler returns the HTTP handler tree (wrapped with auth when a token
// or a tenant registry is configured).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
			switch {
			case s.tenants != nil:
				tenant := s.tenants.Resolve(r.Header.Get("Authorization"))
				if tenant == nil {
					w.Header().Set("WWW-Authenticate", "Bearer")
					writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "server: missing or invalid bearer token"})
					return
				}
				r = r.WithContext(context.WithValue(r.Context(), tenantKey{}, tenant))
			case s.token != "":
				if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+s.token)) != 1 {
					w.Header().Set("WWW-Authenticate", "Bearer")
					writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "server: missing or invalid bearer token"})
					return
				}
			}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Runner exposes the study executor (daemon resume, tests).
func (s *Server) Runner() *Runner { return s.runner }

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps sentinel errors onto HTTP statuses. Admission errors
// carry a Retry-After hint: 429 for quota rejections (retry after the
// tenant's own studies finish), 503 for backpressure (retry after the
// shared waiting room drains).
func (s *Server) writeError(w http.ResponseWriter, err error) {
	writeJSON(w, s.errorStatus(w, err), map[string]string{"error": err.Error()})
}

// errorStatus resolves err's HTTP status, setting Retry-After on the
// response for admission rejections.
func (s *Server) errorStatus(w http.ResponseWriter, err error) int {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, store.ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotCancelable):
		code = http.StatusConflict
	case errors.Is(err, hpo.ErrQuotaExceeded):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.retryAfter)))
	case errors.Is(err, hpo.ErrBackpressure), errors.Is(err, hpo.ErrBackpressureTimeout):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.retryAfter)))
	case errors.Is(err, hpo.ErrAdmissionAborted),
		errors.Is(err, store.ErrClosed), errors.Is(err, runtime.ErrPoolClosed):
		code = http.StatusServiceUnavailable
	}
	return code
}

// getVisible loads a study enforcing tenant scoping: a study owned by
// another tenant reads as not-found — existence itself is namespaced, so
// ids never leak across tenants.
func (s *Server) getVisible(r *http.Request, id string) (store.StudyMeta, error) {
	meta, err := s.store.GetStudy(id)
	if err != nil {
		return store.StudyMeta{}, err
	}
	if t := tenantOf(r); t != nil && meta.Tenant != t.ID {
		return store.StudyMeta{}, fmt.Errorf("%w: %s", store.ErrNotFound, id)
	}
	return meta, nil
}

// retryAfterSeconds renders a Retry-After duration in whole seconds,
// rounding sub-second hints up to 1 (a zero hint reads as "no wait").
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// studyView is the API rendering of a study.
type studyView struct {
	ID        string           `json:"id"`
	Name      string           `json:"name,omitempty"`
	State     store.StudyState `json:"state"`
	Job       string           `json:"job,omitempty"`
	Error     string           `json:"error,omitempty"`
	CreatedAt time.Time        `json:"created_at"`
	UpdatedAt time.Time        `json:"updated_at"`
	Trials    int              `json:"trials"`
	Resumed   int              `json:"resumed,omitempty"`
	Memoized  int              `json:"memoized,omitempty"`
	BestAcc   float64          `json:"best_acc,omitempty"`
	Spec      json.RawMessage  `json:"spec,omitempty"`
}

// view renders meta, preferring live trial counts over end-of-run summary
// so pollers watch progress while the study runs.
func (s *Server) view(meta store.StudyMeta, withSpec bool) studyView {
	v := studyView{
		ID: meta.ID, Name: meta.Name, State: meta.State, Error: meta.Error,
		CreatedAt: meta.CreatedAt, UpdatedAt: meta.UpdatedAt,
		Trials: meta.Trials, Resumed: meta.Resumed,
		Memoized: meta.Memoized, BestAcc: meta.BestAcc,
	}
	if n := s.store.TrialCount(meta.ID); n > v.Trials {
		v.Trials = n
	}
	if job, ok := s.runner.Job(meta.ID); ok {
		v.Job = job.State().String()
	}
	if withSpec {
		v.Spec = json.RawMessage(meta.Spec)
	}
	return v
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	studies := s.store.ListStudies()
	active := 0
	for _, m := range studies {
		if m.State.Active() {
			active++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": int(time.Since(s.started).Seconds()),
		"studies":        len(studies),
		"active":         active,
		"journal":        s.store.Stats(),
	})
}

// handleCompact runs an on-demand journal compaction: every terminal study
// is rewritten down to its summary records (per-epoch metric telemetry is
// dropped from disk and from the SSE resume window). Returns the run's
// reclaim counters plus the cumulative totals — the same numbers /healthz
// reports under "journal".
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if t := tenantOf(r); t != nil && !t.Admin {
		writeJSON(w, http.StatusForbidden,
			map[string]string{"error": "server: compaction requires an admin tenant"})
		return
	}
	delta, err := s.store.Compact()
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"compacted": delta,
		"journal":   s.store.Stats(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadSpec, err))
		return
	}
	spec, err := ParseSpec(raw)
	if err != nil {
		s.writeError(w, err)
		return
	}
	id := NewStudyID()
	tenantID := ""
	if t := tenantOf(r); t != nil {
		// The tenant id prefixes the study id, so per-study journal
		// sharding doubles as per-tenant sharding and ids are namespaced.
		tenantID = t.ID
		id = t.ID + "." + id
	}
	name := spec.Name
	if name == "" {
		name = id
	}
	if err := s.store.CreateStudy(store.StudyMeta{ID: id, Name: name, Tenant: tenantID, Spec: raw}); err != nil {
		s.writeError(w, err)
		return
	}
	if spec.Start {
		if _, err := s.runner.Start(id); err != nil {
			// The study exists but was refused admission (quota or
			// backpressure): return the id so the client can start it later.
			writeJSON(w, s.errorStatus(w, err), map[string]string{"error": err.Error(), "id": id})
			return
		}
	}
	meta, err := s.store.GetStudy(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.view(meta, false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	metas := s.store.ListStudies()
	out := make([]studyView, 0, len(metas))
	for _, m := range metas {
		if tenant != nil && m.Tenant != tenant.ID {
			continue
		}
		out = append(out, s.view(m, false))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"studies": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	meta, err := s.getVisible(r, r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.view(meta, true))
}

// handleStart queues the study. ?wait=<duration> turns waiting-room
// backpressure into a bounded block: the request holds until admission
// or the deadline (then 503 with ErrBackpressureTimeout) instead of
// failing fast.
func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getVisible(r, id); err != nil {
		s.writeError(w, err)
		return
	}
	var err error
	if q := r.URL.Query().Get("wait"); q != "" {
		d, perr := time.ParseDuration(q)
		if perr != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("server: wait must be a positive duration, got %q", q)})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		_, err = s.runner.StartWait(ctx, id)
		cancel()
	} else {
		_, err = s.runner.Start(id)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	meta, err := s.store.GetStudy(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(meta, false))
}

// handleCancel stops a queued or running study. The canceled state is
// terminal and journaled, so a restarting daemon never re-queues it.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getVisible(r, id); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.runner.Cancel(id); err != nil {
		s.writeError(w, err)
		return
	}
	meta, err := s.store.GetStudy(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(meta, false))
}

func (s *Server) handleTrials(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getVisible(r, id); err != nil {
		s.writeError(w, err)
		return
	}
	trials, err := s.store.StudyTrials(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"trials": trials})
}

// handleEvents streams a study's journal records as Server-Sent Events.
// Every event carries its journal sequence number as the SSE id, so a
// dropped client resumes with ?since=<last-id>. The stream ends once the
// study reaches a terminal state and all its events have been sent.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.getVisible(r, id); err != nil {
		s.writeError(w, err)
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("server: since must be a sequence number, got %q", q)})
			return
		}
		since = v
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, errors.New("server: response writer cannot stream"))
		return
	}
	tenant := tenantOf(r)
	if err := s.acquireSubscriber(tenant); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.releaseSubscriber(tenant)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	obsSSESubscribers.Add(1)
	defer obsSSESubscribers.Add(-1)
	for {
		watch := s.store.Watch()
		events, tail := s.store.EventsSince(id, since)
		obsSSEFanoutLag.Observe(float64(len(events)))
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			obsSSEEventsSent.Inc()
		}
		flusher.Flush()
		since = tail
		if meta, err := s.store.GetStudy(id); err != nil || meta.State.Terminal() {
			// Re-check for events raced in between the snapshot and the
			// state read before closing the stream.
			if rest, _ := s.store.EventsSince(id, since); len(rest) == 0 {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-watch:
		}
	}
}

// acquireSubscriber reserves one SSE stream slot against the tenant's
// MaxEventSubscribers quota (nil tenant / zero quota = unlimited,
// counted under the "default" namespace).
func (s *Server) acquireSubscriber(t *Tenant) error {
	id := ""
	if t != nil {
		id = t.ID
	}
	s.subsMu.Lock()
	defer s.subsMu.Unlock()
	if t != nil && t.MaxEventSubscribers > 0 && s.subs[id] >= t.MaxEventSubscribers {
		err := &hpo.QuotaError{Tenant: id, Resource: "event_subscribers",
			Used: s.subs[id], Limit: t.MaxEventSubscribers}
		hpo.CountRejection(id, err)
		return err
	}
	s.subs[id]++
	hpo.AddTenantSubscribers(id, 1)
	return nil
}

// releaseSubscriber returns an SSE stream slot.
func (s *Server) releaseSubscriber(t *Tenant) {
	id := ""
	if t != nil {
		id = t.ID
	}
	s.subsMu.Lock()
	s.subs[id]--
	if s.subs[id] <= 0 {
		delete(s.subs, id)
	}
	s.subsMu.Unlock()
	hpo.AddTenantSubscribers(id, -1)
}
