package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
)

func postVerify(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestVerifyEndpointAsyncRungStudy: a finished rung study verifies OK —
// the journal's recorded decisions byte-match a fresh replay driven by the
// persisted spec — and the verdict is idempotent across calls. A decision
// record the live scheduler never took then flips the verdict to a typed
// divergence with a diff, without disturbing the study itself.
func TestVerifyEndpointAsyncRungStudy(t *testing.T) {
	journal, ts := newRungTestServer(t)

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
		"budget": 9, "seed": 42,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	code, body := postVerify(t, ts.URL+"/v1/studies/"+id+"/verify")
	if code != http.StatusOK {
		t.Fatalf("verify = %d:\n%.400s", code, body)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("verify body does not decode: %v", err)
	}
	if !resp.OK || resp.Error != "" || resp.Diff != "" {
		t.Fatalf("clean journal failed verification: %+v", resp)
	}
	if resp.Report == nil || len(resp.Report.Recorded) == 0 {
		t.Fatalf("rung study verified with no recorded decisions: %+v", resp.Report)
	}
	if resp.Report.Epochs == 0 {
		t.Fatal("report accounts zero epochs")
	}

	_, body2 := postVerify(t, ts.URL+"/v1/studies/"+id+"/verify")
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated verify calls are not byte-identical")
	}

	// Append a promotion the scheduler never granted: the stream is now a
	// lie about the study's decisions, and verify must say so.
	rec := journal.Recorder(id, "verify-tamper")
	if err := rec.(store.MetricRecorder).RecordPromote(0, 0, 27, "forged grant"); err != nil {
		t.Fatal(err)
	}
	code, body = postVerify(t, ts.URL+"/v1/studies/"+id+"/verify")
	if code != http.StatusOK {
		t.Fatalf("verify after tamper = %d:\n%.400s", code, body)
	}
	var tampered VerifyResponse
	if err := json.Unmarshal(body, &tampered); err != nil {
		t.Fatal(err)
	}
	if tampered.OK {
		t.Fatal("forged promote record passed verification")
	}
	if !strings.Contains(tampered.Error, "diverge") && !strings.Contains(tampered.Error, "corrupt") {
		t.Fatalf("tampered verdict is not typed: %q", tampered.Error)
	}
	if tampered.Report == nil {
		t.Fatal("failed verification dropped the report")
	}
}

// TestVerifyEndpointPrunerStudy: the endpoint resolves pruner specs too —
// the median-stop decision stream replays from the same spec the runner
// launched with.
func TestVerifyEndpointPrunerStudy(t *testing.T) {
	_, ts := newRungTestServer(t)

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "grid", "pruner": "median",
		"space": {"acc": [0.82, 0.64, 0.23, 0.77, 0.15], "num_epochs": [3]},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	code, body := postVerify(t, ts.URL+"/v1/studies/"+id+"/verify")
	if code != http.StatusOK {
		t.Fatalf("verify = %d:\n%.400s", code, body)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("pruner study failed verification: %+v", resp)
	}
}

// TestVerifyNotFound: unknown studies map to 404.
func TestVerifyNotFound(t *testing.T) {
	_, ts := newRungTestServer(t)
	if code, _ := postVerify(t, ts.URL+"/v1/studies/nope/verify"); code != http.StatusNotFound {
		t.Fatalf("verify for unknown study = %d, want 404", code)
	}
}
