package server

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/hpo"
)

// Multi-tenant registry: a static token→tenant mapping loaded at boot
// (hpod -tenants tenants.json). Each tenant owns a study namespace —
// study ids are prefixed "<tenant>." so the per-study journal sharding
// doubles as per-tenant sharding — and a quota envelope enforced by the
// runner's admission queue. The registry is immutable after load; quota
// changes are a daemon restart, which is also what re-derives usage from
// the journal (docs/TENANCY.md).

// TenantQuotas is a tenant's quota envelope. Zero values mean unlimited —
// a registry entry with no quotas is a namespace without an envelope.
type TenantQuotas struct {
	// MaxConcurrentStudies caps studies admitted (executing) at once.
	MaxConcurrentStudies int `json:"max_concurrent_studies,omitempty"`
	// MaxTotalEpochs caps the tenant's cumulative epoch budget across all
	// its studies, live and terminal — re-derived from the journal on
	// restart, so it survives crashes and compaction.
	MaxTotalEpochs int `json:"max_total_epochs,omitempty"`
	// MaxEventSubscribers caps concurrently connected SSE streams.
	MaxEventSubscribers int `json:"max_event_subscribers,omitempty"`
	// Weight biases fair-share admission ordering (default 1.0): a
	// weight-2 tenant drains its waiting studies twice as fast as a
	// weight-1 tenant under contention.
	Weight float64 `json:"weight,omitempty"`
}

// Tenant is one registry entry.
type Tenant struct {
	// ID names the tenant's namespace. Letters, digits, '_' and '-' only —
	// no '.', so the "<tenant>.<suffix>" study-id split is unambiguous.
	ID string `json:"id"`
	// Token is the bearer token identifying the tenant. Never logged,
	// never journaled, never exported as a metric label.
	Token string `json:"token"`
	// Admin grants access to admin endpoints (POST /v1/admin/compact).
	Admin bool `json:"admin,omitempty"`
	TenantQuotas
}

// TenantRegistry resolves bearer tokens to tenants and tenant ids to
// quota envelopes.
type TenantRegistry struct {
	tenants []*Tenant          // load order, for deterministic listings
	byID    map[string]*Tenant // id → tenant
}

// LoadTenantRegistry reads a tenants.json registry file:
//
//	{"tenants": [{"id": "acme", "token": "...", "max_concurrent_studies": 2}]}
func LoadTenantRegistry(path string) (*TenantRegistry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: reading tenant registry: %w", err)
	}
	return ParseTenantRegistry(raw)
}

// ParseTenantRegistry parses and validates a registry document.
func ParseTenantRegistry(raw []byte) (*TenantRegistry, error) {
	var doc struct {
		Tenants []*Tenant `json:"tenants"`
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("server: parsing tenant registry: %w", err)
	}
	if len(doc.Tenants) == 0 {
		return nil, fmt.Errorf("server: tenant registry declares no tenants")
	}
	reg := &TenantRegistry{tenants: doc.Tenants, byID: make(map[string]*Tenant, len(doc.Tenants))}
	tokens := make(map[string]bool, len(doc.Tenants))
	for _, t := range doc.Tenants {
		if err := validTenantID(t.ID); err != nil {
			return nil, err
		}
		if t.Token == "" {
			return nil, fmt.Errorf("server: tenant %q has an empty token", t.ID)
		}
		if reg.byID[t.ID] != nil {
			return nil, fmt.Errorf("server: duplicate tenant id %q", t.ID)
		}
		if tokens[t.Token] {
			return nil, fmt.Errorf("server: tenant %q reuses another tenant's token", t.ID)
		}
		if t.Weight < 0 || t.MaxConcurrentStudies < 0 || t.MaxTotalEpochs < 0 || t.MaxEventSubscribers < 0 {
			return nil, fmt.Errorf("server: tenant %q has a negative quota", t.ID)
		}
		reg.byID[t.ID] = t
		tokens[t.Token] = true
	}
	return reg, nil
}

// validTenantID enforces the namespace charset: study ids are
// "<tenant>.<suffix>", so a tenant id must not contain '.' and must fit
// the journal's study-id charset (docs/JOURNAL.md §1).
func validTenantID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("server: tenant id %q must be 1-64 characters", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("server: tenant id %q may only contain letters, digits, '_' and '-'", id)
		}
	}
	return nil
}

// Resolve maps an Authorization header to its tenant, or nil when no
// token matches. Every registered token is compared in constant time so
// response timing does not reveal near-miss prefixes.
func (reg *TenantRegistry) Resolve(authHeader string) *Tenant {
	var found *Tenant
	for _, t := range reg.tenants {
		if subtle.ConstantTimeCompare([]byte(authHeader), []byte("Bearer "+t.Token)) == 1 && found == nil {
			found = t
		}
	}
	return found
}

// Limits returns the admission-queue quota envelope for a tenant id.
// Unknown ids get the zero envelope (unlimited) — they cannot occur via
// the HTTP plane, which only admits registered tenants.
func (reg *TenantRegistry) Limits(id string) hpo.TenantLimits {
	t := reg.byID[id]
	if t == nil {
		return hpo.TenantLimits{}
	}
	return hpo.TenantLimits{
		MaxConcurrent:  t.MaxConcurrentStudies,
		MaxTotalEpochs: t.MaxTotalEpochs,
		MaxSubscribers: t.MaxEventSubscribers,
		Weight:         t.Weight,
	}
}

// IDs lists registered tenant ids, sorted.
func (reg *TenantRegistry) IDs() []string {
	ids := make([]string, 0, len(reg.byID))
	for id := range reg.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
