package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/trace"
)

// newRungTestServer wires a server whose objective streams per-epoch
// reports and honours rung promotion, on a 1-slot runtime — the setup the
// async rung mode exists for.
func newRungTestServer(t *testing.T) (*store.Journal, *httptest.Server) {
	t.Helper()
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(1), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "gated", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			total := ctx.Config.Int("num_epochs", 1)
			if ctx.Proceed != nil && ctx.EpochCeiling > total {
				total = ctx.EpochCeiling
			}
			var m hpo.TrialMetrics
			for e := 0; e < total; e++ {
				if ctx.Halt != nil && ctx.Halt() != "" {
					m.Stopped = true
					return m, nil
				}
				v := ctx.Config.Float("acc", 0) * float64(e+1) / 9
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
				if ctx.Report != nil {
					ctx.Report(e, v)
				}
				if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
					m.Stopped = true
					return m, nil
				}
			}
			return m, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Runner().Close(0) })
	return journal, ts
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTimelineEndpointAsyncRungStudy: a completed async-rung study's
// timeline is rebuilt from the journal alone — it reproduces the journaled
// promote/prune sequence, is byte-identical across calls, and its Paraver
// export parses back.
func TestTimelineEndpointAsyncRungStudy(t *testing.T) {
	journal, ts := newRungTestServer(t)

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
		"budget": 9, "seed": 42,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	code, body := getBody(t, ts.URL+"/v1/studies/"+id+"/timeline")
	if code != http.StatusOK {
		t.Fatalf("timeline = %d:\n%.400s", code, body)
	}
	_, body2 := getBody(t, ts.URL+"/v1/studies/"+id+"/timeline")
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated timeline calls are not byte-identical")
	}
	if strings.Contains(string(body), "_hb") {
		t.Fatalf("timeline leaks hidden scheduler keys:\n%.600s", body)
	}

	var tl trace.StudyTimeline
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatalf("timeline does not decode: %v", err)
	}
	if tl.StudyID != id || tl.State != "done" {
		t.Fatalf("timeline header = %q/%q", tl.StudyID, tl.State)
	}

	// Every journaled promotion appears as a promote marker with the same
	// epoch and budget on its trial's row, and vice versa.
	promos := journal.StudyPromotes(id)
	if len(promos) == 0 {
		t.Fatal("study journaled no promotions")
	}
	type key struct{ trial, epoch, budget int }
	fromJournal := map[key]int{}
	for _, p := range promos {
		fromJournal[key{p.TrialID, p.Epoch, p.Budget}]++
	}
	fromTimeline := map[key]int{}
	prunedRows := 0
	for _, row := range tl.Rows {
		for _, m := range row.Markers {
			if m.Kind == "promote" {
				fromTimeline[key{row.Trial, m.Epoch, m.Budget}]++
			}
		}
		if row.Outcome == "pruned" {
			prunedRows++
		}
		// A promoted row has one segment per granted budget.
		var promoted int
		for _, m := range row.Markers {
			if m.Kind == "promote" {
				promoted++
			}
		}
		if len(row.Segments) != promoted+1 {
			t.Fatalf("trial %d: %d segments for %d promotions", row.Trial, len(row.Segments), promoted)
		}
	}
	if len(fromJournal) != len(fromTimeline) {
		t.Fatalf("promotions: journal %v vs timeline %v", fromJournal, fromTimeline)
	}
	for k, n := range fromJournal {
		if fromTimeline[k] != n {
			t.Fatalf("promotion %+v: journal %d, timeline %d", k, n, fromTimeline[k])
		}
	}
	// Rung-driven hyperband halts the losers: they surface as pruned rows.
	trials, err := journal.StudyTrials(id)
	if err != nil {
		t.Fatal(err)
	}
	stopped := 0
	for _, tr := range trials {
		if tr.Stopped {
			stopped++
		}
	}
	if prunedRows != stopped {
		t.Fatalf("pruned rows = %d, journal stopped trials = %d", prunedRows, stopped)
	}

	// The Paraver export parses back through the trace reader with one
	// Running interval per timeline segment.
	code, prv := getBody(t, ts.URL+"/v1/studies/"+id+"/timeline.prv")
	if code != http.StatusOK {
		t.Fatalf("timeline.prv = %d", code)
	}
	rec, err := trace.ReadParaver(bytes.NewReader(prv))
	if err != nil {
		t.Fatalf("timeline.prv does not parse: %v", err)
	}
	segments := 0
	for _, row := range tl.Rows {
		segments += len(row.Segments)
	}
	if got := rec.ComputeStats().TasksRun; got != segments {
		t.Fatalf("paraver intervals = %d, timeline segments = %d", got, segments)
	}
}

// TestTimelineSurvivesCompaction: after compaction rewrites a terminal
// study to summary records, the timeline endpoint still serves every trial
// (zero-width rows) instead of erroring.
func TestTimelineSurvivesCompaction(t *testing.T) {
	journal, ts := newRungTestServer(t)

	code, created := postJSON(t, ts.URL+"/v1/studies", `{
		"algo": "hyperband", "scheduler": "hyperband", "rung_mode": "async",
		"budget": 9, "seed": 7,
		"space": {"acc": {"type": "float", "min": 0.1, "max": 0.9}},
		"start": true}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	trials, err := journal.StudyTrials(id)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/admin/compact", ""); code != http.StatusOK {
		t.Fatalf("compact = %d", code)
	}

	code, body := getBody(t, ts.URL+"/v1/studies/"+id+"/timeline")
	if code != http.StatusOK {
		t.Fatalf("timeline after compaction = %d:\n%.400s", code, body)
	}
	var tl trace.StudyTimeline
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Rows) != len(trials) {
		t.Fatalf("timeline rows after compaction = %d, trials = %d", len(tl.Rows), len(trials))
	}
	if tl.MakespanNS != 0 {
		t.Fatalf("compacted timeline keeps a nonzero makespan: %d", tl.MakespanNS)
	}
}

// TestTimelineNotFound: unknown studies map to 404.
func TestTimelineNotFound(t *testing.T) {
	_, ts := newRungTestServer(t)
	if code, _ := getBody(t, ts.URL+"/v1/studies/nope/timeline"); code != http.StatusNotFound {
		t.Fatalf("timeline for unknown study = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/studies/nope/timeline.prv"); code != http.StatusNotFound {
		t.Fatalf("timeline.prv for unknown study = %d, want 404", code)
	}
}
