package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// RuntimeFactory builds a fresh task runtime for one study execution plus a
// release function invoked after the study finishes. Each study owns its
// runtime for the run: task registrations (the experiment closure captures
// the study's objective) must not leak between studies.
type RuntimeFactory func(spec StudySpec) (*runtime.Runtime, func(), error)

// Runner executes persisted studies asynchronously: a bounded worker pool
// of jobs, each building a study from its stored spec and running it on a
// factory-provided runtime, recording trials through the journal.
type Runner struct {
	store   *store.Journal
	pool    *runtime.Pool
	factory RuntimeFactory
	// Objectives overrides spec→objective construction (tests inject fast
	// synthetic objectives here); nil uses StudySpec.BuildObjective.
	Objectives func(StudySpec) (hpo.Objective, error)
}

// NewRunner builds a runner executing at most maxConcurrent studies at once.
func NewRunner(st *store.Journal, factory RuntimeFactory, maxConcurrent int) *Runner {
	return &Runner{store: st, pool: runtime.NewPool(maxConcurrent), factory: factory}
}

// Start queues a persisted study for execution and returns its job handle.
// Starting a study that is already queued or running returns the live
// handle (idempotent); finished studies re-run, resuming every recorded
// trial from the journal.
func (r *Runner) Start(id string) (*runtime.Job, error) {
	if _, err := r.store.GetStudy(id); err != nil {
		return nil, err
	}
	if job, ok := r.pool.Job(id); ok {
		if st := job.State(); st == runtime.JobQueued || st == runtime.JobRunning {
			return job, nil
		}
	}
	if err := r.store.SetStudyState(id, store.StateQueued, "", nil); err != nil {
		return nil, err
	}
	return r.pool.Submit(id, func() error { return r.execute(id) })
}

// Resume re-queues every study the journal recorded as queued or running —
// the restart path: finished trials replay from the journal, only the
// remainder executes.
func (r *Runner) Resume() ([]*runtime.Job, error) {
	var jobs []*runtime.Job
	for _, id := range r.store.ActiveStudies() {
		job, err := r.Start(id)
		if err != nil {
			return jobs, err
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// Job exposes a study's execution handle.
func (r *Runner) Job(id string) (*runtime.Job, bool) { return r.pool.Job(id) }

// Close stops accepting work and waits up to drain for in-flight studies
// (their journaled trials make abandonment safe; zero waits forever). It
// reports whether the pool fully drained.
func (r *Runner) Close(drain time.Duration) bool {
	r.pool.Close()
	return r.pool.Drain(drain)
}

// execute runs one study to completion, transitioning its journal state.
func (r *Runner) execute(id string) error {
	meta, err := r.store.GetStudy(id)
	if err != nil {
		return err
	}
	spec, err := ParseSpec(meta.Spec)
	if err != nil {
		return r.fail(id, err)
	}
	if err := r.store.SetStudyState(id, store.StateRunning, "", nil); err != nil {
		return err
	}

	sampler, err := spec.buildSampler()
	if err != nil {
		return r.fail(id, err)
	}
	buildObjective := r.Objectives
	if buildObjective == nil {
		buildObjective = StudySpec.BuildObjective
	}
	objective, err := buildObjective(spec)
	if err != nil {
		return r.fail(id, err)
	}
	rt, release, err := r.factory(spec)
	if err != nil {
		return r.fail(id, err)
	}
	defer release()

	var recorder store.Recorder = r.store.Recorder(id, spec.memoScope())
	if !spec.memoize() {
		// Strip the Memoizer extension so the study only resumes its own
		// trials.
		recorder = struct{ store.Recorder }{recorder}
	}
	study, err := hpo.NewStudy(hpo.StudyOptions{
		Sampler:        sampler,
		Objective:      objective,
		Runtime:        rt,
		Constraint:     runtime.Constraint{Cores: spec.Cores},
		BatchSize:      spec.BatchSize,
		TargetAccuracy: spec.Target,
		Seed:           spec.Seed,
		Recorder:       recorder,
	})
	if err != nil {
		return r.fail(id, err)
	}
	res, err := study.Run()
	if err != nil {
		return r.fail(id, err)
	}
	sum := &store.Summary{
		Trials:   len(res.Trials),
		Resumed:  res.Resumed,
		Memoized: res.Memoized,
		BestAcc:  res.BestAccuracy(),
	}
	return r.store.SetStudyState(id, store.StateDone, "", sum)
}

// fail marks the study failed, preserving the original error. A store
// already closed by shutdown is expected — the study resumes on restart.
func (r *Runner) fail(id string, cause error) error {
	if err := r.store.SetStudyState(id, store.StateFailed, cause.Error(), nil); err != nil {
		return fmt.Errorf("%w (state update: %v)", cause, err)
	}
	return cause
}

// NewStudyID returns a fresh random study identifier.
func NewStudyID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random id: %v", err))
	}
	return "s" + hex.EncodeToString(b[:])
}
