package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// ErrNotCancelable reports a cancel request for a study that is neither
// queued nor running (HTTP 409).
var ErrNotCancelable = errors.New("server: study is not queued or running")

// RuntimeFactory builds a fresh task runtime for one study execution plus a
// release function invoked after the study finishes. Each study owns its
// runtime for the run: task registrations (the experiment closure captures
// the study's objective) must not leak between studies.
type RuntimeFactory func(spec StudySpec) (*runtime.Runtime, func(), error)

// Runner executes persisted studies asynchronously: a bounded worker pool
// of jobs, each building a study from its stored spec and running it on a
// factory-provided runtime, recording trials through the journal. Running
// studies are registered as live hpo.Study handles so Cancel can stop them
// mid-flight.
type Runner struct {
	store   *store.Journal
	pool    *runtime.Pool
	adm     *hpo.AdmissionQueue
	factory RuntimeFactory
	// Objectives overrides spec→objective construction (tests inject fast
	// synthetic objectives here); nil uses StudySpec.BuildObjective.
	Objectives func(StudySpec) (hpo.Objective, error)
	// DefaultPruner names the pruner applied to specs that leave the
	// field empty ("" = none) — the daemon's -pruner flag.
	DefaultPruner string
	// DefaultScheduler names the rung-driven scheduler applied to specs
	// that leave the field empty ("" = none) — the daemon's -scheduler
	// flag. An active scheduler supersedes DefaultPruner.
	DefaultScheduler string
	// DefaultRungMode is the rung mode applied when an active scheduler's
	// spec leaves rung_mode empty ("" = sync) — the daemon's -rung-mode
	// flag. Daemons serving runtimes smaller than a full Hyperband bracket
	// should default this to "async", or sync studies fail fast at the
	// capacity check.
	DefaultRungMode string

	mu sync.Mutex
	// active maps a study id to its live handle while execute holds it.
	active map[string]*hpo.Study
	// cancelReq marks studies whose cancellation was requested; execute
	// consults it before running and when choosing the terminal state.
	cancelReq map[string]bool
}

// NewRunner builds a runner executing at most maxConcurrent studies at
// once. Concurrency is enforced by the admission queue, not the worker
// pool: every submitted study gets a goroutine immediately, but blocks in
// AdmissionQueue.Await until the queue grants it one of maxConcurrent
// slots — that is what makes weighted fair-share ordering (instead of
// pool FIFO) decide who runs next under contention.
func NewRunner(st *store.Journal, factory RuntimeFactory, maxConcurrent int) *Runner {
	return &Runner{
		store: st, pool: runtime.NewPool(1 << 20),
		adm: hpo.NewAdmissionQueue(maxConcurrent), factory: factory,
		active:    make(map[string]*hpo.Study),
		cancelReq: make(map[string]bool),
	}
}

// ConfigureTenancy installs the tenant quota resolver and the
// journal-derived epoch-usage resolver on the admission queue. Configure
// before serving traffic.
func (r *Runner) ConfigureTenancy(limits func(tenant string) hpo.TenantLimits, epochs func(tenant string) int) {
	r.adm.SetLimits(limits)
	r.adm.SetEpochUsage(epochs)
}

// SetQueueDepth bounds the admission waiting room (0 = unbounded); a full
// room rejects Start with hpo.ErrBackpressure.
func (r *Runner) SetQueueDepth(n int) { r.adm.SetMaxDepth(n) }

// Admission exposes the admission queue (metrics, tests).
func (r *Runner) Admission() *hpo.AdmissionQueue { return r.adm }

// Start queues a persisted study for execution and returns its job handle.
// Starting a study that is already queued or running returns the live
// handle (idempotent); finished (or canceled) studies re-run, resuming
// every recorded trial from the journal. Admission is checked first: a
// tenant at quota gets hpo.ErrQuotaExceeded, a full waiting room
// hpo.ErrBackpressure — in both cases nothing is journaled.
func (r *Runner) Start(id string) (*runtime.Job, error) {
	return r.start(id, nil, false)
}

// StartWait is Start that, when the waiting room is full, blocks for
// space until ctx expires (then hpo.ErrBackpressureTimeout) instead of
// failing fast. Quota rejections still return immediately.
func (r *Runner) StartWait(ctx context.Context, id string) (*runtime.Job, error) {
	return r.start(id, ctx, false)
}

// startForced is the restart path: studies the journal already recorded
// as active were admitted once and re-enter the room bypassing quota and
// depth checks.
func (r *Runner) startForced(id string) (*runtime.Job, error) {
	return r.start(id, nil, true)
}

func (r *Runner) start(id string, waitCtx context.Context, forced bool) (*runtime.Job, error) {
	meta, err := r.store.GetStudy(id)
	if err != nil {
		return nil, err
	}
	if job, ok := r.pool.Job(id); ok {
		if st := job.State(); st == runtime.JobQueued || st == runtime.JobRunning {
			return job, nil
		}
	}
	r.mu.Lock()
	delete(r.cancelReq, id) // an explicit restart clears a stale cancel
	r.mu.Unlock()
	switch {
	case forced:
		err = r.adm.ReserveForced(meta.Tenant, id)
	case waitCtx != nil:
		err = r.adm.ReserveWait(waitCtx, meta.Tenant, id)
	default:
		err = r.adm.Reserve(meta.Tenant, id)
	}
	if err != nil {
		return nil, err
	}
	if err := r.store.SetStudyState(id, store.StateQueued, "", nil); err != nil {
		r.adm.Release(id)
		return nil, err
	}
	job, err := r.pool.Submit(id, func() error {
		if err := r.adm.Await(id); err != nil {
			// Reservation withdrawn (cancel or shutdown) before a slot was
			// granted; nothing ran, nothing to release.
			return nil
		}
		defer r.adm.Release(id)
		return r.execute(id)
	})
	if err != nil {
		r.adm.Release(id)
		return nil, err
	}
	return job, nil
}

// Cancel stops a queued or running study: the live study (if any) receives
// Stop — pending trials are dropped, running ones get cooperative per-task
// cancellation — and the journal records the terminal canceled state, so a
// restarting daemon never re-queues it.
func (r *Runner) Cancel(id string) error {
	meta, err := r.store.GetStudy(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	study := r.active[id]
	if study != nil || meta.State.Active() {
		r.cancelReq[id] = true
	}
	r.mu.Unlock()
	if study != nil {
		// execute observes the request and journals the canceled state
		// once the in-flight round drains.
		study.Stop("canceled by operator")
		return nil
	}
	if !meta.State.Active() {
		return fmt.Errorf("%w: %s is %s", ErrNotCancelable, id, meta.State)
	}
	// Queued but not yet executing: withdraw the admission reservation (its
	// Await returns the abort, so the worker never runs) and journal the
	// terminal state. If the grant raced us, execute observes cancelReq.
	r.adm.Abort(id)
	return r.store.SetStudyState(id, store.StateCanceled, "canceled by operator", nil)
}

// Resume re-queues every study the journal recorded as queued or running —
// the restart path: finished trials replay from the journal, only the
// remainder executes. Canceled studies are terminal and never re-queued.
func (r *Runner) Resume() ([]*runtime.Job, error) {
	var jobs []*runtime.Job
	for _, id := range r.store.ActiveStudies() {
		job, err := r.startForced(id)
		if err != nil {
			return jobs, err
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// Job exposes a study's execution handle.
func (r *Runner) Job(id string) (*runtime.Job, bool) { return r.pool.Job(id) }

// Close stops accepting work, aborts every study still waiting for
// admission (their journaled queued state resumes them next boot), and
// waits up to drain for executing studies (their journaled trials make
// abandonment safe; zero waits forever). It reports whether the pool
// fully drained.
func (r *Runner) Close(drain time.Duration) bool {
	r.pool.Close()
	r.adm.Shutdown()
	return r.pool.Drain(drain)
}

// canceled reports whether a cancel was requested for id.
func (r *Runner) canceled(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cancelReq[id]
}

// execute runs one study to completion, transitioning its journal state.
func (r *Runner) execute(id string) error {
	if r.canceled(id) {
		// Canceled while waiting for a pool slot; Cancel already journaled
		// the terminal state.
		return nil
	}
	meta, err := r.store.GetStudy(id)
	if err != nil {
		return err
	}
	spec, err := ParseSpec(meta.Spec)
	if err != nil {
		return r.fail(id, err)
	}
	if err := r.store.SetStudyState(id, store.StateRunning, "", nil); err != nil {
		return err
	}

	sampler, err := spec.buildSampler()
	if err != nil {
		return r.fail(id, err)
	}
	schedSampler, scheduler, err := spec.BuildScheduler(r.DefaultScheduler, r.DefaultRungMode)
	if err != nil {
		return r.fail(id, err)
	}
	if scheduler == nil && spec.RungMode != "" {
		// The spec explicitly asked for a rung mode but no scheduler is
		// active to apply it (no scheduler field and no — or an
		// incompatible — daemon default): failing beats silently running
		// the batch path the user tried to avoid.
		return r.fail(id, fmt.Errorf("server: spec sets rung_mode %q but no rung scheduler is active (spec scheduler %q, daemon default %q)",
			spec.RungMode, spec.Scheduler, r.DefaultScheduler))
	}
	if schedSampler != nil {
		// Rung-driven Hyperband owns both the sampler and scheduler roles.
		sampler = schedSampler
	}
	pruner, err := spec.BuildPruner(r.DefaultPruner)
	if err != nil {
		return r.fail(id, err)
	}
	if scheduler != nil {
		// The scheduler already halts rung losers; a daemon-default pruner
		// must not fight its decisions.
		pruner = nil
	}
	buildObjective := r.Objectives
	if buildObjective == nil {
		buildObjective = StudySpec.BuildObjective
	}
	objective, err := buildObjective(spec)
	if err != nil {
		return r.fail(id, err)
	}
	rt, release, err := r.factory(spec)
	if err != nil {
		return r.fail(id, err)
	}
	defer release()

	var recorder store.Recorder = r.store.Recorder(id, spec.memoScope())
	if !spec.memoize() {
		// Strip the Memoizer extension so the study only resumes its own
		// trials; metric/prune telemetry still flows to the journal.
		recorder = store.WithoutMemo(recorder)
	}
	study, err := hpo.NewStudy(hpo.StudyOptions{
		Sampler:        sampler,
		Objective:      objective,
		Runtime:        rt,
		Constraint:     runtime.Constraint{Cores: spec.Cores},
		BatchSize:      spec.BatchSize,
		TargetAccuracy: spec.Target,
		Seed:           spec.Seed,
		Pruner:         pruner,
		Scheduler:      scheduler,
		Recorder:       recorder,
	})
	if err != nil {
		return r.fail(id, err)
	}

	r.mu.Lock()
	r.active[id] = study
	requested := r.cancelReq[id]
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.active, id)
		r.mu.Unlock()
	}()
	if requested {
		// Cancel raced the study registration: stop before the first round.
		study.Stop("canceled by operator")
	}

	res, err := study.Run()
	if err != nil {
		return r.fail(id, err)
	}
	sum := &store.Summary{
		Trials:   len(res.Trials),
		Resumed:  res.Resumed,
		Memoized: res.Memoized,
		BestAcc:  res.BestAccuracy(),
	}
	if r.canceled(id) || res.Canceled {
		reason := res.CancelReason
		if reason == "" {
			reason = "canceled by operator"
		}
		return r.store.SetStudyState(id, store.StateCanceled, reason, sum)
	}
	return r.store.SetStudyState(id, store.StateDone, "", sum)
}

// fail marks the study failed, preserving the original error. A store
// already closed by shutdown is expected — the study resumes on restart.
func (r *Runner) fail(id string, cause error) error {
	if err := r.store.SetStudyState(id, store.StateFailed, cause.Error(), nil); err != nil {
		return fmt.Errorf("%w (state update: %v)", cause, err)
	}
	return cause
}

// NewStudyID returns a fresh random study identifier.
func NewStudyID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random id: %v", err))
	}
	return "s" + hex.EncodeToString(b[:])
}
