package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/hpo"
	"repro/internal/obs"
)

// HTTP-plane instrumentation: per-endpoint request counts and latency,
// SSE fan-out health, and scrape-time gauges snapshotting the journal
// shape and the studies-by-state population.
var (
	obsHTTPRequests = obs.Default().CounterVec("hpod_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "endpoint", "code")
	obsHTTPLatency = obs.Default().HistogramVec("hpod_http_request_seconds",
		"HTTP request handling latency, by route pattern.", obs.DurationBuckets(), "endpoint")
	obsSSESubscribers = obs.Default().Gauge("hpod_sse_subscribers",
		"SSE event-stream subscribers currently connected.")
	obsSSEEventsSent = obs.Default().Counter("hpod_sse_events_sent_total",
		"SSE events written to subscribers.")
	obsSSEFanoutLag = obs.Default().Histogram("hpod_sse_fanout_lag_events",
		"Events pending per SSE subscriber wakeup (fan-out lag).", obs.CountBuckets(1024))
	obsStudies = obs.Default().GaugeVec("hpod_studies",
		"Studies known to the journal, by state.", "state")
	obsStoreSegments = obs.Default().Gauge("hpo_store_segments",
		"Journal segment files on disk.")
	obsStoreOpenHandles = obs.Default().Gauge("hpo_store_open_segment_handles",
		"Studies holding an open append handle (bounded by MaxOpenSegments).")
	obsStoreEventWindows = obs.Default().Gauge("hpo_store_event_windows",
		"Studies with a resident in-memory event window.")
	obsStoreEventsRetained = obs.Default().Gauge("hpo_store_events_retained",
		"Events held across all in-memory event windows.")
	obsStoreSeq = obs.Default().Gauge("hpo_store_journal_seq",
		"Journal high-water sequence number.")
)

// studyStates enumerates every state hpod_studies reports, so absent
// states scrape as explicit zeros instead of stale values.
var studyStates = []string{"created", "queued", "running", "done", "failed", "canceled"}

// instrument wraps a handler with request counting and latency
// observation. The route pattern (not the raw URL) labels the series, so
// cardinality stays bounded by the route table.
func instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	latency := obsHTTPLatency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		obsHTTPRequests.With(endpoint, strconv.Itoa(sw.code)).Inc()
		latency.ObserveSince(t0)
	}
}

// statusWriter captures the status code while passing streaming
// capability (http.Flusher) through — SSE handlers need Flush.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// registerScrapeHook refreshes the snapshot gauges each time /metrics is
// scraped. Keyed registration means the newest server owns the hook (test
// suites build many).
func (s *Server) registerScrapeHook() {
	obs.Default().OnScrape("server", func() {
		st := s.store.Stats()
		obsStoreSegments.Set(float64(st.Segments))
		obsStoreOpenHandles.Set(float64(st.OpenSegmentHandles))
		obsStoreEventWindows.Set(float64(st.EventWindows))
		obsStoreEventsRetained.Set(float64(st.EventsRetained))
		obsStoreSeq.Set(float64(st.Seq))

		byState := make(map[string]int, len(studyStates))
		for _, m := range s.store.ListStudies() {
			byState[string(m.State)]++
		}
		for _, state := range studyStates {
			obsStudies.With(state).Set(float64(byState[state]))
		}

		if s.tenants != nil {
			// Tenant ids label the series (bounded by the static registry);
			// tokens never reach the registry.
			for _, id := range s.tenants.IDs() {
				hpo.SetTenantEpochsUsed(id, s.store.TenantEpochs(id))
			}
		}
	})
}

// handleMetrics serves the Prometheus text exposition. Unauthenticated by
// design (like /healthz): the registry holds only aggregate counters, never
// study configs, trial payloads or token material.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}
