package server

import (
	"bufio"
	"bytes"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// newTestServer wires a server over a temp journal with a 2-core local
// runtime per study and a fast synthetic objective counting executions.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *atomic.Int32) {
	t.Helper()
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j.journal"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(2), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 2)
	var calls atomic.Int32
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "fast", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			calls.Add(1)
			acc := 0.3 + 0.1*float64(ctx.Config.Int("num_epochs", 0)%5)
			return hpo.TrialMetrics{BestAcc: acc, FinalAcc: acc, Epochs: 1, ValAccHistory: []float64{acc}}, nil
		}}, nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, &calls
}

const gridSpec = `{"name":"t","algo":"grid","space":{"num_epochs":[1,2,3,4]},"dataset":"mnist","samples":64}`

func postJSON(t *testing.T, url, body string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func waitForState(t *testing.T, base, id, want string) map[string]interface{} {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		code, study := getJSON(t, base+"/v1/studies/"+id)
		if code != http.StatusOK {
			t.Fatalf("get study: HTTP %d", code)
		}
		switch study["state"].(string) {
		case want:
			return study
		case "failed":
			if want != "failed" {
				t.Fatalf("study failed: %v", study["error"])
			}
			return study
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("study %s never reached state %q", id, want)
	return nil
}

func TestServerStudyLifecycle(t *testing.T) {
	_, ts, calls := newTestServer(t)

	// Healthz before any work.
	code, health := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}

	// Create without starting.
	code, created := postJSON(t, ts.URL+"/v1/studies", gridSpec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	if created["state"].(string) != "created" {
		t.Fatalf("fresh study state = %v", created["state"])
	}

	// List includes it.
	_, list := getJSON(t, ts.URL+"/v1/studies")
	if n := len(list["studies"].([]interface{})); n != 1 {
		t.Fatalf("list holds %d studies", n)
	}

	// Start and wait for completion.
	code, _ = postJSON(t, ts.URL+"/v1/studies/"+id+"/start", "")
	if code != http.StatusAccepted {
		t.Fatalf("start = %d", code)
	}
	study := waitForState(t, ts.URL, id, "done")
	if got := int(study["trials"].(float64)); got != 4 {
		t.Fatalf("trials = %d, want 4", got)
	}
	if calls.Load() != 4 {
		t.Fatalf("objective calls = %d", calls.Load())
	}
	if study["best_acc"].(float64) <= 0 {
		t.Fatalf("best_acc missing: %v", study)
	}

	// Trials endpoint returns them, ordered by id.
	_, trials := getJSON(t, ts.URL+"/v1/studies/"+id+"/trials")
	ids := trials["trials"].([]interface{})
	if len(ids) != 4 {
		t.Fatalf("trials endpoint: %d", len(ids))
	}

	// Spec is echoed back on GET.
	if study["spec"] == nil {
		t.Fatal("study view lost its spec")
	}
}

func TestServerErrorsAreTyped(t *testing.T) {
	_, ts, _ := newTestServer(t)
	if code, _ := getJSON(t, ts.URL+"/v1/studies/missing"); code != http.StatusNotFound {
		t.Fatalf("missing study = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/studies/missing/start", ""); code != http.StatusNotFound {
		t.Fatalf("start missing = %d", code)
	}
	if code, body := postJSON(t, ts.URL+"/v1/studies", `{"algo":"nope","space":{"x":[1]}}`); code != http.StatusBadRequest {
		t.Fatalf("bad algo = %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/studies", `{"algo":"grid"}`); code != http.StatusBadRequest {
		t.Fatal("missing space accepted")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/studies", `not json`); code != http.StatusBadRequest {
		t.Fatal("garbage accepted")
	}
	if code, _ := postJSON(t, ts.URL+"/v1/studies", `{"algo":"grid","space":{"x":[1]},"bogus_field":1}`); code != http.StatusBadRequest {
		t.Fatal("unknown field accepted")
	}
}

func TestServerCreateWithStartRunsAsync(t *testing.T) {
	_, ts, _ := newTestServer(t)
	spec := `{"algo":"grid","space":{"num_epochs":[1,2]},"start":true}`
	code, created := postJSON(t, ts.URL+"/v1/studies", spec)
	if code != http.StatusCreated {
		t.Fatalf("create+start = %d", code)
	}
	waitForState(t, ts.URL, created["id"].(string), "done")
}

func TestServerMemoizationAcrossStudies(t *testing.T) {
	_, ts, calls := newTestServer(t)
	spec := `{"algo":"grid","space":{"num_epochs":[1,2,3,4]},"start":true}`
	_, first := postJSON(t, ts.URL+"/v1/studies", spec)
	waitForState(t, ts.URL, first["id"].(string), "done")
	if calls.Load() != 4 {
		t.Fatalf("first study calls = %d", calls.Load())
	}

	// Second study over the identical space: every config is answered from
	// the journal's memo index, nothing re-executes.
	_, second := postJSON(t, ts.URL+"/v1/studies", spec)
	study := waitForState(t, ts.URL, second["id"].(string), "done")
	if calls.Load() != 4 {
		t.Fatalf("memoized study re-ran objectives: %d calls", calls.Load())
	}
	if got := int(study["memoized"].(float64)); got != 4 {
		t.Fatalf("memoized = %d, want 4", got)
	}

	// Opting out re-executes.
	off := `{"algo":"grid","space":{"num_epochs":[1,2,3,4]},"start":true,"memoize":false}`
	_, third := postJSON(t, ts.URL+"/v1/studies", off)
	waitForState(t, ts.URL, third["id"].(string), "done")
	if calls.Load() != 8 {
		t.Fatalf("memoize:false still reused results: %d calls", calls.Load())
	}

	// A different objective (other dataset) must never reuse results, even
	// for identical configs.
	cifar := `{"algo":"grid","space":{"num_epochs":[1,2,3,4]},"dataset":"cifar10","start":true}`
	_, fourth := postJSON(t, ts.URL+"/v1/studies", cifar)
	study = waitForState(t, ts.URL, fourth["id"].(string), "done")
	if calls.Load() != 12 {
		t.Fatalf("memo leaked across datasets: %d calls", calls.Load())
	}
	if study["memoized"] != nil {
		t.Fatalf("cross-dataset study reported memoized = %v", study["memoized"])
	}
}

func TestServerEventStream(t *testing.T) {
	_, ts, _ := newTestServer(t)
	spec := `{"algo":"grid","space":{"num_epochs":[1,2,3]},"start":true}`
	_, created := postJSON(t, ts.URL+"/v1/studies", spec)
	id := created["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var trialEvents, stateEvents int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: trial":
			trialEvents++
		case line == "event: state":
			stateEvents++
		case strings.HasPrefix(line, "data: "):
			var ev store.Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
			if ev.StudyID != id {
				t.Fatalf("foreign study event: %+v", ev)
			}
			if ev.State == store.StateDone {
				sawDone = true
			}
		}
	}
	// The stream terminates on its own once the study is done.
	if trialEvents != 3 {
		t.Fatalf("trial events = %d, want 3", trialEvents)
	}
	if !sawDone || stateEvents < 2 {
		t.Fatalf("lifecycle events missing: states=%d done=%v", stateEvents, sawDone)
	}

	// Resuming from a sequence number replays only later events.
	resp2, err := http.Get(ts.URL + "/v1/studies/" + id + "/events?since=1000000")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("since-future stream should be empty, got %q", body)
	}
}

func TestSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"space":{"x":[1,2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Algo != "grid" || spec.Dataset != "mnist" || spec.Cores != 1 || spec.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
	if !spec.memoize() {
		t.Fatal("memoize must default on")
	}
	f := false
	spec.Memoize = &f
	if spec.memoize() {
		t.Fatal("explicit memoize=false ignored")
	}
}

func TestStudyIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewStudyID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if !strings.HasPrefix(NewStudyID(), "s") {
		t.Fatal("id prefix changed")
	}
}
