package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// haltingObjectives injects a slow objective that checks Halt between
// epoch-sized sleeps, so cancellation can land mid-trial.
func haltingObjectives(epochs int, pace time.Duration, executed *atomic.Int64) func(StudySpec) (hpo.Objective, error) {
	return func(StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "halting", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			var m hpo.TrialMetrics
			for e := 0; e < epochs; e++ {
				if ctx.Halt != nil {
					if reason := ctx.Halt(); reason != "" {
						m.Stopped, m.StopReason = true, reason
						return m, nil
					}
				}
				acc := 0.1 + 0.8*float64(e+1)/float64(epochs)
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, acc, acc
				m.ValAccHistory = append(m.ValAccHistory, acc)
				if ctx.Report != nil {
					ctx.Report(e, acc)
				}
				executed.Add(1)
				time.Sleep(pace)
			}
			return m, nil
		}}, nil
	}
}

// TestServerCancelStopsRunningStudy: POST /cancel lands while trials are
// mid-flight; the study reaches the terminal canceled state, stops
// executing, and is not resumable by Resume().
func TestServerCancelStopsRunningStudy(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	var executed atomic.Int64
	srv.Runner().Objectives = haltingObjectives(50, 10*time.Millisecond, &executed)

	spec := `{"name":"c","algo":"grid","space":{"num_epochs":[1,2,3,4,5,6,7,8]},"start":true}`
	code, created := postJSON(t, ts.URL+"/v1/studies", spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)

	// Wait until trials are actually executing.
	deadline := time.Now().Add(20 * time.Second)
	for executed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if executed.Load() == 0 {
		t.Fatal("study never started executing")
	}

	code, cancelView := postJSON(t, ts.URL+"/v1/studies/"+id+"/cancel", "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel = %d %v", code, cancelView)
	}
	waitForState(t, ts.URL, id, "canceled")

	// Execution stops promptly: the epoch counter settles far below the
	// unpruned total (8 trials × 50 epochs).
	settled := executed.Load()
	time.Sleep(100 * time.Millisecond)
	if after := executed.Load(); after > settled+2 {
		t.Fatalf("study kept executing after cancel: %d → %d epochs", settled, after)
	}
	if total := executed.Load(); total >= 8*50 {
		t.Fatalf("cancel saved no work: %d epochs executed", total)
	}

	// Canceled is terminal: no re-queue on resume, and a second cancel
	// conflicts.
	if jobs, err := srv.Runner().Resume(); err != nil || len(jobs) != 0 {
		t.Fatalf("resume after cancel = %d jobs, %v", len(jobs), err)
	}
	code, _ = postJSON(t, ts.URL+"/v1/studies/"+id+"/cancel", "")
	if code != http.StatusConflict {
		t.Fatalf("second cancel = %d, want 409", code)
	}
	// An explicit restart is still allowed and runs to completion (swap in
	// a fast objective before starting — execute reads Objectives).
	srv.Runner().Objectives = haltingObjectives(1, 0, &executed)
	code, _ = postJSON(t, ts.URL+"/v1/studies/"+id+"/start", "")
	if code != http.StatusAccepted {
		t.Fatalf("restart after cancel = %d", code)
	}
	waitForState(t, ts.URL, id, "done")
}

// TestServerCancelCreatedStudyConflicts: a study that was never started
// cannot be canceled.
func TestServerCancelCreatedStudyConflicts(t *testing.T) {
	_, ts, _ := newTestServer(t)
	code, created := postJSON(t, ts.URL+"/v1/studies", gridSpec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	id := created["id"].(string)
	code, out := postJSON(t, ts.URL+"/v1/studies/"+id+"/cancel", "")
	if code != http.StatusConflict {
		t.Fatalf("cancel created study = %d %v, want 409", code, out)
	}
	code, _ = postJSON(t, ts.URL+"/v1/studies/nope/cancel", "")
	if code != http.StatusNotFound {
		t.Fatalf("cancel unknown study = %d, want 404", code)
	}
}

// TestServerBearerTokenAuth: with a token configured, every endpoint except
// /healthz requires the Authorization header — reads included.
func TestServerBearerTokenAuth(t *testing.T) {
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j.journal"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(1), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	srv.SetAuthToken("sekrit")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	do := func(method, path, token string) int {
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Healthz stays open for liveness probes.
	if code := do("GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz without token = %d", code)
	}
	// Reads and writes are both gated.
	if code := do("GET", "/v1/studies", ""); code != http.StatusUnauthorized {
		t.Fatalf("list without token = %d, want 401", code)
	}
	if code := do("POST", "/v1/studies", "wrong"); code != http.StatusUnauthorized {
		t.Fatalf("create with wrong token = %d, want 401", code)
	}
	if code := do("GET", "/v1/studies", "sekrit"); code != http.StatusOK {
		t.Fatalf("list with token = %d", code)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/studies", strings.NewReader(gridSpec))
	req.Header.Set("Authorization", "Bearer sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create with token = %d", resp.StatusCode)
	}
}

// TestServerPrunerSpecStreamsMetricEvents: a median-pruned study created
// through the API journals intermediate metric and prune events, visible on
// the SSE stream, and records pruned trials.
func TestServerPrunerSpecStreamsMetricEvents(t *testing.T) {
	// Needs all four trials in flight at once so the median has peers:
	// build a 4-core server instead of the shared 2-core one.
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j.journal"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(4), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	srv := New(journal, factory, 1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var executed atomic.Int64
	// Better configs pace faster, making median decisions deterministic
	// (same trick as the hpo lifecycle tests).
	srv.Runner().Objectives = func(StudySpec) (hpo.Objective, error) {
		return &hpo.FuncObjective{ObjName: "paced", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			const epochs = 10
			final := 0.1 * float64(ctx.Config.Int("acc10", 0))
			pace := time.Duration(2+int((1-final)*6)) * time.Millisecond
			var m hpo.TrialMetrics
			for e := 0; e < epochs; e++ {
				if reason := ctx.Halt(); reason != "" {
					m.Stopped, m.StopReason = true, reason
					return m, nil
				}
				v := final * float64(e+1) / epochs
				m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
				m.ValAccHistory = append(m.ValAccHistory, v)
				ctx.Report(e, v)
				executed.Add(1)
				time.Sleep(pace)
			}
			return m, nil
		}}, nil
	}

	spec := `{"name":"p","algo":"grid","space":{"acc10":[2,4,6,8]},` +
		`"pruner":"median","pruner_warmup":2,"start":true}`
	code, created := postJSON(t, ts.URL+"/v1/studies", spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	waitForState(t, ts.URL, id, "done")

	if total := executed.Load(); total >= 4*10 {
		t.Fatalf("pruner saved no epochs: %d executed", total)
	}
	// The SSE stream replays the full lifecycle including metric and prune
	// events (the stream closes once the study is terminal).
	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	stream := string(body)
	if !strings.Contains(stream, "event: metric") {
		t.Fatalf("no metric events on the SSE stream:\n%.400s", stream)
	}
	if !strings.Contains(stream, "event: prune") {
		t.Fatalf("no prune events on the SSE stream:\n%.400s", stream)
	}
	if !strings.Contains(stream, `"pruned":true`) {
		t.Fatalf("no pruned trial record on the SSE stream:\n%.400s", stream)
	}
}

// TestSpecPrunerValidation: unknown pruners are a 400 at creation time.
func TestSpecPrunerValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	bad := `{"algo":"grid","space":{"x":[1]},"pruner":"bogus"}`
	code, out := postJSON(t, ts.URL+"/v1/studies", bad)
	if code != http.StatusBadRequest {
		t.Fatalf("bad pruner = %d %v, want 400", code, out)
	}
}
