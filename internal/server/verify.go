package server

import (
	"errors"
	"net/http"

	"repro/internal/replay"
)

// VerifyResponse is the body of POST /v1/studies/{id}/verify. OK means the
// journal's recorded decision stream byte-matched a fresh replay of the
// study's decision logic; when false, Error classifies the failure
// (divergence vs corruption) and Diff pinpoints the first mismatch.
type VerifyResponse struct {
	OK bool `json:"ok"`
	// Error is the typed verification failure ("" when OK).
	Error string `json:"error,omitempty"`
	// Diff is a unified recorded-vs-replayed excerpt around the first
	// diverging decision (divergence failures only).
	Diff string `json:"diff,omitempty"`
	// Report is the replay accounting regardless of verdict: decision
	// logs, epoch totals, per-trial budget ladders, warnings.
	Report *replay.Report `json:"report"`
}

// handleVerify serves POST /v1/studies/{id}/verify: re-derives the study's
// scheduler/pruner decisions from its journal record stream and checks the
// recorded decisions byte-match the replay (docs/JOURNAL.md, "Replay
// contract"). Pure over the journal — no runtime is touched, so verifying
// a terminal study is always safe and repeated calls are idempotent. The
// study's persisted spec supplies the decision parameters, resolved
// against the daemon's current -scheduler/-rung-mode/-pruner defaults the
// same way the runner resolved them at launch; a POST because the verdict
// reflects this resolution, not a stored attribute of the study.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, err := s.getVisible(r, id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := ParseSpec(meta.Spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	params, err := spec.ReplayParams(s.runner.DefaultScheduler, s.runner.DefaultRungMode, s.runner.DefaultPruner)
	if err != nil {
		s.writeError(w, err)
		return
	}
	recs, err := s.store.StudyRecords(id)
	if err != nil {
		s.writeError(w, err)
		return
	}

	rep, err := replay.Verify(id, recs, params)
	resp := VerifyResponse{OK: err == nil, Report: rep}
	if err != nil {
		resp.Error = err.Error()
		var div *replay.DivergenceError
		if errors.As(err, &div) {
			resp.Diff = div.Diff()
		}
		if !errors.Is(err, replay.ErrDivergence) && !errors.Is(err, replay.ErrCorrupt) {
			// Not a verification verdict — an infrastructure failure.
			s.writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// CompactVerify is the journal's verify-on-compact gate
// (store.SetCompactVerify): it re-runs the study's decision replay exactly
// like POST /v1/studies/{id}/verify and returns the verification error, so
// compaction refuses to drop a record stream that no longer byte-matches
// its replay. Infrastructure failures (unreadable records, bad spec)
// refuse too — conservatively: when the stream cannot be proven intact it
// must not be destroyed.
func (s *Server) CompactVerify(id string) error {
	meta, err := s.store.GetStudy(id)
	if err != nil {
		return err
	}
	if len(meta.Spec) == 0 {
		// No spec on record (store-level writers, pre-spec migrations):
		// there is no decision stream to re-derive, nothing to protect.
		return nil
	}
	spec, err := ParseSpec(meta.Spec)
	if err != nil {
		return err
	}
	params, err := spec.ReplayParams(s.runner.DefaultScheduler, s.runner.DefaultRungMode, s.runner.DefaultPruner)
	if err != nil {
		return err
	}
	recs, err := s.store.StudyRecords(id)
	if err != nil {
		return err
	}
	_, err = replay.Verify(id, recs, params)
	return err
}
