package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/store"
)

// Tenancy contract suite: multi-tenant isolation, quota enforcement
// under concurrency, weighted fair-share admission ordering (the tests
// fail if admission degrades to FCFS), and typed 429/503 backpressure
// with Retry-After. Run with -race — the quota invariants are exactly
// the ones concurrency breaks first.

// newTenantTestServer wires a server in multi-tenant mode over a temp
// journal.
func newTenantTestServer(t *testing.T, maxConcurrent int, registryJSON string) (*Server, *httptest.Server) {
	t.Helper()
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "j.journal"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	factory := func(spec StudySpec) (*runtime.Runtime, func(), error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(2), Backend: runtime.Real})
		if err != nil {
			return nil, nil, err
		}
		return rt, rt.Shutdown, nil
	}
	reg, err := ParseTenantRegistry([]byte(registryJSON))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(journal, factory, maxConcurrent)
	srv.SetTenantRegistry(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// authJSON issues a bearer-authenticated request and decodes the JSON
// body, returning status, headers and body.
func authJSON(t *testing.T, method, url, token, body string) (int, http.Header, map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// gate serves per-study-name blocking objectives and records the order
// in which studies began executing — the observable admission order.
type gate struct {
	mu    sync.Mutex
	order []string
	ch    map[string]chan struct{}
}

func newGate() *gate { return &gate{ch: make(map[string]chan struct{})} }

func (g *gate) chanFor(name string) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ch[name] == nil {
		g.ch[name] = make(chan struct{})
	}
	return g.ch[name]
}

// objectives is the Runner.Objectives hook: each study's single trial
// records its start then blocks until release(name).
func (g *gate) objectives(spec StudySpec) (hpo.Objective, error) {
	name := spec.Name
	ch := g.chanFor(name)
	return &hpo.FuncObjective{ObjName: "gated", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
		g.mu.Lock()
		g.order = append(g.order, name)
		g.mu.Unlock()
		<-ch
		return hpo.TrialMetrics{BestAcc: 0.5, FinalAcc: 0.5, Epochs: 1, ValAccHistory: []float64{0.5}}, nil
	}}, nil
}

func (g *gate) release(name string) { close(g.chanFor(name)) }

func (g *gate) started() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

// waitStarted blocks until n studies have begun executing.
func (g *gate) waitStarted(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if len(g.started()) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("only %d studies started executing, want %d", len(g.started()), n)
}

// oneTrialSpec builds a single-trial spec named name that starts
// immediately. Memoization is off: these tests pin who executes when,
// and cross-study result reuse would answer identical configs from the
// journal without ever running the gated objective.
func oneTrialSpec(name string) string {
	return fmt.Sprintf(`{"name":%q,"algo":"grid","space":{"num_epochs":[1]},"start":true,"memoize":false}`, name)
}

const isolationRegistry = `{"tenants": [
	{"id": "acme", "token": "tok-acme"},
	{"id": "umbrella", "token": "tok-umbrella", "admin": true}
]}`

// TestTenantIsolation: tenants see exactly their own namespace — foreign
// studies 404 on every per-study endpoint, listings are scoped, admin
// endpoints are gated, and unknown tokens are 401.
func TestTenantIsolation(t *testing.T) {
	_, ts := newTenantTestServer(t, 2, isolationRegistry)

	if code, _, _ := authJSON(t, "GET", ts.URL+"/v1/studies", "", ""); code != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", code)
	}
	if code, _, _ := authJSON(t, "GET", ts.URL+"/v1/studies", "wrong", ""); code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d, want 401", code)
	}

	spec := `{"name":"a-study","algo":"grid","space":{"num_epochs":[1,2]}}`
	code, _, created := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-acme", spec)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)
	if !strings.HasPrefix(id, "acme.") {
		t.Fatalf("study id %q not namespaced under tenant acme", id)
	}

	// The owner sees it; the other tenant sees an empty namespace and
	// not-found on every per-study route — existence must not leak.
	code, _, listed := authJSON(t, "GET", ts.URL+"/v1/studies", "tok-acme", "")
	if code != http.StatusOK || len(listed["studies"].([]interface{})) != 1 {
		t.Fatalf("owner list = %d %v", code, listed)
	}
	code, _, listed = authJSON(t, "GET", ts.URL+"/v1/studies", "tok-umbrella", "")
	if code != http.StatusOK || len(listed["studies"].([]interface{})) != 0 {
		t.Fatalf("foreign list = %d %v, want empty", code, listed)
	}
	for _, route := range []struct{ method, path string }{
		{"GET", "/v1/studies/" + id},
		{"GET", "/v1/studies/" + id + "/trials"},
		{"GET", "/v1/studies/" + id + "/events"},
		{"GET", "/v1/studies/" + id + "/timeline"},
		{"POST", "/v1/studies/" + id + "/start"},
		{"POST", "/v1/studies/" + id + "/cancel"},
		{"POST", "/v1/studies/" + id + "/verify"},
	} {
		if code, _, _ := authJSON(t, route.method, ts.URL+route.path, "tok-umbrella", ""); code != http.StatusNotFound {
			t.Fatalf("foreign %s %s = %d, want 404", route.method, route.path, code)
		}
	}

	// Admin gating: compaction needs an admin tenant.
	if code, _, _ := authJSON(t, "POST", ts.URL+"/v1/admin/compact", "tok-acme", ""); code != http.StatusForbidden {
		t.Fatalf("non-admin compact = %d, want 403", code)
	}
	if code, _, _ := authJSON(t, "POST", ts.URL+"/v1/admin/compact", "tok-umbrella", ""); code != http.StatusOK {
		t.Fatalf("admin compact = %d, want 200", code)
	}

	// /healthz and /metrics stay unauthenticated (probes and scrapers).
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

const quotaRegistry = `{"tenants": [
	{"id": "acme", "token": "tok-acme", "max_concurrent_studies": 2},
	{"id": "umbrella", "token": "tok-umbrella"}
]}`

// TestTenantConcurrentStudyQuota: the tenant's third concurrent study is
// rejected 429 with the quota sentinel and a Retry-After hint while two
// run; other tenants are unaffected; the slot freed by a finished study
// admits the rejected one.
func TestTenantConcurrentStudyQuota(t *testing.T) {
	srv, ts := newTenantTestServer(t, 4, quotaRegistry)
	g := newGate()
	srv.Runner().Objectives = g.objectives

	for _, name := range []string{"a1", "a2"} {
		if code, _, body := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-acme", oneTrialSpec(name)); code != http.StatusCreated {
			t.Fatalf("create %s = %d %v", name, code, body)
		}
	}
	g.waitStarted(t, 2)

	// Third concurrent study: created, but refused admission with 429 +
	// Retry-After; the body carries the id so the client can start later.
	code, hdr, body := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-acme", oneTrialSpec("a3"))
	if code != http.StatusTooManyRequests {
		t.Fatalf("3rd concurrent study = %d %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if msg := body["error"].(string); !strings.Contains(msg, "tenant quota exceeded") || !strings.Contains(msg, "concurrent_studies") {
		t.Fatalf("429 body %q does not name the quota sentinel", msg)
	}
	a3 := body["id"].(string)
	if a3 == "" {
		t.Fatal("429 body carries no study id")
	}

	// The other tenant is not collateral damage.
	code, _, body = authJSON(t, "POST", ts.URL+"/v1/studies", "tok-umbrella", oneTrialSpec("b1"))
	if code != http.StatusCreated {
		t.Fatalf("other tenant create = %d %v", code, body)
	}
	g.waitStarted(t, 3)

	// Finish one of acme's studies; its slot admits the rejected study.
	g.release("a1")
	deadline := time.Now().Add(20 * time.Second)
	for {
		code, _, _ = authJSON(t, "POST", ts.URL+"/v1/studies/"+a3+"/start", "tok-acme", "")
		if code == http.StatusAccepted {
			break
		}
		if code != http.StatusTooManyRequests || !time.Now().Before(deadline) {
			t.Fatalf("restart after slot freed = %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, name := range []string{"a2", "a3", "b1"} {
		g.release(name)
	}
}

const hammerRegistry = `{"tenants": [
	{"id": "h-a", "token": "tok-h-a", "max_concurrent_studies": 1},
	{"id": "h-b", "token": "tok-h-b", "max_concurrent_studies": 1}
]}`

// TestTenantQuotaNeverOversubscribesHTTP: two tenants race M concurrent
// submissions each through the HTTP plane; at no instant does a tenant
// execute more studies than its quota, every rejection is exactly 429
// with the quota sentinel, and retries eventually run everything.
func TestTenantQuotaNeverOversubscribesHTTP(t *testing.T) {
	const perTenant = 5
	srv, ts := newTenantTestServer(t, 4, hammerRegistry)

	var violations atomic.Int32
	running := map[string]*atomic.Int32{"h-a": {}, "h-b": {}}
	srv.Runner().Objectives = func(spec StudySpec) (hpo.Objective, error) {
		tenant := strings.SplitN(spec.Name, "/", 2)[0]
		return &hpo.FuncObjective{ObjName: "hammer", Fn: func(ctx hpo.ObjectiveContext) (hpo.TrialMetrics, error) {
			if cur := running[tenant].Add(1); cur > 1 {
				violations.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
			running[tenant].Add(-1)
			return hpo.TrialMetrics{BestAcc: 0.5, FinalAcc: 0.5, Epochs: 1, ValAccHistory: []float64{0.5}}, nil
		}}, nil
	}

	var wg sync.WaitGroup
	var rejected atomic.Int32
	ids := make(chan string, 2*perTenant)
	for _, tenant := range []string{"h-a", "h-b"} {
		token := "tok-" + tenant
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				code, _, body := authJSON(t, "POST", ts.URL+"/v1/studies", token, oneTrialSpec(name))
				id, _ := body["id"].(string)
				switch code {
				case http.StatusCreated:
				case http.StatusTooManyRequests:
					rejected.Add(1)
					// The rejected study exists; retry starting it until the
					// quota admits it.
					admitted := false
					deadline := time.Now().Add(30 * time.Second)
					for time.Now().Before(deadline) {
						c, _, _ := authJSON(t, "POST", ts.URL+"/v1/studies/"+id+"/start", token, "")
						if c == http.StatusAccepted {
							admitted = true
							break
						}
						if c != http.StatusTooManyRequests {
							t.Errorf("retry start %s = %d", name, c)
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
					if !admitted {
						t.Errorf("%s never admitted", name)
						return
					}
				default:
					t.Errorf("create %s = %d %v", name, code, body)
				}
				ids <- id
			}(fmt.Sprintf("%s/s%d", tenant, i))
		}
	}
	wg.Wait()
	close(ids)

	for id := range ids {
		if id == "" {
			continue
		}
		waitForStateAuth(t, ts.URL, id, tokenForID(id), "done")
	}
	if v := violations.Load(); v > 0 {
		t.Fatalf("quota oversubscribed %d times", v)
	}
	if rejected.Load() == 0 {
		t.Fatal("no submission was ever rejected — the hammer did not contend")
	}
}

func tokenForID(id string) string {
	return "tok-" + strings.SplitN(id, ".", 2)[0]
}

// waitForStateAuth is waitForState with a bearer token.
func waitForStateAuth(t *testing.T, base, id, token, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, _, study := authJSON(t, "GET", base+"/v1/studies/"+id, token, "")
		if code != http.StatusOK {
			t.Fatalf("get %s: HTTP %d", id, code)
		}
		switch study["state"].(string) {
		case want:
			return
		case "failed":
			t.Fatalf("study %s failed: %v", id, study["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("study %s never reached %s", id, want)
}

const fairRegistry = `{"tenants": [
	{"id": "fa", "token": "tok-fa"},
	{"id": "fb", "token": "tok-fb"},
	{"id": "fz", "token": "tok-fz"}
]}`

// TestTenantFairShareNotFCFS: with one execution slot held, tenant fa
// bursts two studies before fb submits one. FCFS would run fa's burst
// back-to-back; weighted fair share interleaves fb between them. The
// assertion is on the exact grant order, so a regression to
// first-come-first-served fails.
func TestTenantFairShareNotFCFS(t *testing.T) {
	srv, ts := newTenantTestServer(t, 1, fairRegistry)
	g := newGate()
	srv.Runner().Objectives = g.objectives

	// Occupy the only slot.
	if code, _, body := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-fz", oneTrialSpec("z1")); code != http.StatusCreated {
		t.Fatalf("create z1 = %d %v", code, body)
	}
	g.waitStarted(t, 1)

	// fa bursts two studies, then fb submits one; all three wait.
	for _, c := range []struct{ token, name string }{
		{"tok-fa", "a1"}, {"tok-fa", "a2"}, {"tok-fb", "b1"},
	} {
		if code, _, body := authJSON(t, "POST", ts.URL+"/v1/studies", c.token, oneTrialSpec(c.name)); code != http.StatusCreated {
			t.Fatalf("create %s = %d %v", c.name, code, body)
		}
	}
	adm := srv.Runner().Admission()
	deadline := time.Now().Add(20 * time.Second)
	for adm.Depth() != 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if d := adm.Depth(); d != 3 {
		t.Fatalf("admission depth = %d, want 3 waiting", d)
	}

	// Drain one slot at a time and observe the grant order.
	g.release("z1")
	g.waitStarted(t, 2)
	g.release(g.started()[1])
	g.waitStarted(t, 3)
	g.release(g.started()[2])
	g.waitStarted(t, 4)
	g.release(g.started()[3])

	got := strings.Join(g.started(), " ")
	if want := "z1 a1 b1 a2"; got != want {
		t.Fatalf("admission order = %q, want %q (FCFS would give \"z1 a1 a2 b1\")", got, want)
	}
}

const bpRegistry = `{"tenants": [
	{"id": "bp-z", "token": "tok-bp-z"},
	{"id": "bp-a", "token": "tok-bp-a"}
]}`

// TestBackpressureBoundedQueue: with one slot and queue depth 1, the
// second waiting study is rejected 503 with ErrBackpressure and the
// configured Retry-After; ?wait= blocks then times out with the typed
// timeout; the admission metrics agree with what was observed; and no
// bearer token ever appears in the exposition.
func TestBackpressureBoundedQueue(t *testing.T) {
	srv, ts := newTenantTestServer(t, 1, bpRegistry)
	srv.Runner().SetQueueDepth(1)
	srv.SetRetryAfter(7 * time.Second)
	g := newGate()
	srv.Runner().Objectives = g.objectives

	if code, _, body := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-bp-z", oneTrialSpec("z1")); code != http.StatusCreated {
		t.Fatalf("create z1 = %d %v", code, body)
	}
	g.waitStarted(t, 1)
	if code, _, body := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-bp-a", oneTrialSpec("a1")); code != http.StatusCreated {
		t.Fatalf("create a1 = %d %v", code, body)
	}

	// Queue full: fail-fast start is 503 + Retry-After with the
	// backpressure sentinel.
	code, hdr, body := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-bp-a", oneTrialSpec("a2"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-depth start = %d %v, want 503", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", ra)
	}
	if msg := body["error"].(string); !strings.Contains(msg, "admission queue full") {
		t.Fatalf("503 body %q does not name backpressure", msg)
	}
	a2 := body["id"].(string)

	// Bounded wait: ?wait= holds, then times out with the typed timeout.
	t0 := time.Now()
	code, _, body = authJSON(t, "POST", ts.URL+"/v1/studies/"+a2+"/start?wait=80ms", "tok-bp-a", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("wait-start = %d %v, want 503", code, body)
	}
	if msg := body["error"].(string); !strings.Contains(msg, "admission wait timed out") {
		t.Fatalf("timeout body %q does not name the timeout sentinel", msg)
	}
	if waited := time.Since(t0); waited < 80*time.Millisecond {
		t.Fatalf("wait-start returned after %v, before the 80ms deadline", waited)
	}

	// The metrics agree with what we just observed: one study waiting,
	// one backpressure rejection, one timeout rejection — and no token
	// material anywhere in the exposition.
	metrics := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`hpo_admission_queue_depth 1`,
		`hpo_tenant_rejected_total{tenant="bp-a",reason="backpressure"} 1`,
		`hpo_tenant_rejected_total{tenant="bp-a",reason="backpressure_timeout"} 1`,
		`hpo_tenant_admitted_total{tenant="bp-z"} 1`,
		`hpo_tenant_studies_inflight{tenant="bp-a"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	for _, token := range []string{"tok-bp-z", "tok-bp-a"} {
		if strings.Contains(metrics, token) {
			t.Fatalf("bearer token %q leaked into /metrics", token)
		}
	}
	if !strings.Contains(metrics, "hpo_admission_queue_oldest_wait_seconds") {
		t.Error("metrics exposition missing hpo_admission_queue_oldest_wait_seconds")
	}

	// Draining the slot admits the waiter and empties the waiting room.
	g.release("z1")
	g.waitStarted(t, 2)
	if got := g.started()[1]; got != "a1" {
		t.Fatalf("freed slot went to %q, want the waiting a1", got)
	}
	if d := srv.Runner().Admission().Depth(); d != 0 {
		t.Fatalf("post-grant admission depth = %d, want 0", d)
	}
	g.release("a1")
}

// fetchMetrics scrapes the exposition.
func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

const sseRegistry = `{"tenants": [
	{"id": "sse", "token": "tok-sse", "max_event_subscribers": 1}
]}`

// TestTenantSSESubscriberCap: the tenant's second concurrent event
// stream is rejected 429; disconnecting the first frees the slot.
func TestTenantSSESubscriberCap(t *testing.T) {
	_, ts := newTenantTestServer(t, 1, sseRegistry)
	code, _, created := authJSON(t, "POST", ts.URL+"/v1/studies", "tok-sse",
		`{"name":"s","algo":"grid","space":{"num_epochs":[1]}}`)
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["id"].(string)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/studies/"+id+"/events", nil)
	req.Header.Set("Authorization", "Bearer tok-sse")
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("first stream = %d, want 200", stream.StatusCode)
	}

	if code, _, body := authJSON(t, "GET", ts.URL+"/v1/studies/"+id+"/events", "tok-sse", ""); code != http.StatusTooManyRequests {
		t.Fatalf("second stream = %d %v, want 429", code, body)
	} else if msg := body["error"].(string); !strings.Contains(msg, "event_subscribers") {
		t.Fatalf("429 body %q does not name the subscriber quota", msg)
	}

	// Disconnect the first stream; its slot frees (asynchronously — the
	// handler notices the closed context on its next wakeup). Probe with
	// raw requests: a 200 here is an open stream, so don't decode it.
	stream.Body.Close()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		probe, _ := http.NewRequest("GET", ts.URL+"/v1/studies/"+id+"/events", nil)
		probe.Header.Set("Authorization", "Bearer tok-sse")
		resp, err := http.DefaultClient.Do(probe)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("subscriber slot never freed after disconnect")
}
