package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalStripsInternalConfigKeys: sampler-internal ("_"-prefixed)
// config keys — Hyperband's bracket binding "_hb" and promotion ceiling
// "_hb_max" — are scheduler bookkeeping and must never reach disk or the
// read APIs. The fingerprint ignores them by contract, so stripping keeps
// memoization and resume identity intact.
func TestJournalStripsInternalConfigKeys(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, dir)
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	tr := Trial{
		ID: 0,
		Config: map[string]interface{}{
			"lr": 0.1, "num_epochs": 3, "_hb": "b2-0", "_hb_max": 9,
		},
		Scope:    "sc",
		FinalAcc: 0.8, BestAcc: 0.8, Epochs: 3,
	}
	publicFP := Fingerprint(map[string]interface{}{"lr": 0.1, "num_epochs": 3})
	if Fingerprint(tr.Config) != publicFP {
		t.Fatalf("fingerprint leaks hidden keys: %q vs %q", Fingerprint(tr.Config), publicFP)
	}
	if err := j.AppendTrials("s", []Trial{tr}); err != nil {
		t.Fatal(err)
	}

	checkClean := func(j *Journal) {
		t.Helper()
		got, err := j.StudyTrials("s")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("StudyTrials = %d trials, want 1", len(got))
		}
		for k := range got[0].Config {
			if strings.HasPrefix(k, "_") {
				t.Fatalf("journaled config leaks internal key %q: %v", k, got[0].Config)
			}
		}
		if got[0].Config["lr"] == nil || got[0].Config["num_epochs"] == nil {
			t.Fatalf("stripping removed public keys: %v", got[0].Config)
		}
		if hit, ok := j.LookupMemo("sc", publicFP); !ok || hit.BestAcc != 0.8 {
			t.Fatalf("memo lookup by public fingerprint = (%+v, %v), want a hit", hit, ok)
		}
	}
	checkClean(j)

	// The bytes on disk are clean too — not just the in-memory index.
	var raw []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if strings.Contains(string(b), "_hb") {
			raw = append(raw, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("journal files contain hidden scheduler keys: %v", raw)
	}

	// Reopen: replay serves the same stripped view.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, dir)
	defer j2.Close()
	checkClean(j2)
}

// TestPromoteReplayOutOfOrder: in async rung mode promotions from
// different brackets (and different trials) interleave in the journal in
// arrival order — not rung order, not epoch order. Replay must preserve
// them all, per study, in append order, without assuming any monotonic
// structure.
func TestPromoteReplayOutOfOrder(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, dir)
	for _, id := range []string{"a", "b"} {
		if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Interleaved across studies and trials, with non-monotone epochs and
	// budgets (trial 2's bracket sits on a lower ladder than trial 0's).
	type p struct {
		study          string
		trial, ep, bud int
	}
	writes := []p{
		{"a", 0, 0, 3},
		{"b", 7, 8, 27},
		{"a", 2, 2, 9},
		{"a", 0, 2, 9},
		{"b", 3, 0, 3},
		{"a", 5, 0, 3},
	}
	for _, w := range writes {
		if err := j.AppendPromote(w.study, w.trial, w.ep, w.bud, "async rung"); err != nil {
			t.Fatal(err)
		}
	}
	check := func(j *Journal) {
		t.Helper()
		var got []p
		for _, study := range []string{"a", "b"} {
			for _, pr := range j.StudyPromotes(study) {
				got = append(got, p{study, pr.TrialID, pr.Epoch, pr.Budget})
			}
		}
		want := []p{
			{"a", 0, 0, 3}, {"a", 2, 2, 9}, {"a", 0, 2, 9}, {"a", 5, 0, 3},
			{"b", 7, 8, 27}, {"b", 3, 0, 3},
		}
		if len(got) != len(want) {
			t.Fatalf("replayed %d promotions, want %d: %+v", len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("promotion %d = %+v, want %+v (append order per study)", i, got[i], want[i])
			}
		}
	}
	check(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, dir)
	defer j2.Close()
	check(j2)
}
