package store

import "sort"

// eventWindow is the per-study in-memory event ring that feeds SSE resume:
// a circular buffer of the last cap events. dropped remembers the highest
// sequence number evicted from the window, which is the boundary below
// which EventsSince must synthesize a snapshot instead of replaying.
type eventWindow struct {
	buf     []Event
	head    int // index of the oldest retained event once the ring is full
	cap     int // 0 = unbounded
	dropped uint64
}

// push appends an event, evicting the oldest once the window is full.
func (w *eventWindow) push(ev Event) {
	if w.cap <= 0 || len(w.buf) < w.cap {
		w.buf = append(w.buf, ev)
		return
	}
	w.dropped = w.buf[w.head].Seq
	w.buf[w.head] = ev
	w.head = (w.head + 1) % w.cap
	obsWindowEvictions.Inc()
}

// since returns retained events with sequence numbers greater than s,
// oldest first.
func (w *eventWindow) since(s uint64) []Event {
	var out []Event
	for i := 0; i < len(w.buf); i++ {
		ev := w.buf[(w.head+i)%len(w.buf)]
		if ev.Seq > s {
			out = append(out, ev)
		}
	}
	return out
}

// pushEvent appends to a study's window, creating it on first use. A
// terminal study whose window was evicted (boot replay, compaction) never
// grows one back — its resume view is the index snapshot. Callers must
// hold j.mu.
func (j *Journal) pushEvent(ev Event) {
	w := j.windows[ev.StudyID]
	if w == nil {
		if meta := j.studies[ev.StudyID]; meta != nil && meta.State.Terminal() {
			return
		}
		w = &eventWindow{cap: j.retain}
		if len(j.trials[ev.StudyID]) > 0 && ev.Seq > 0 {
			// The window is being recreated mid-life — a terminal study
			// whose window was evicted is being re-started. Everything
			// before this event counts as evicted, so a resume below it
			// serves the index snapshot instead of a silent gap.
			w.dropped = ev.Seq - 1
		}
		j.windows[ev.StudyID] = w
	}
	w.push(ev)
}

// EventsSince returns journal events with sequence numbers greater than
// since, filtered to one study when id is non-empty, plus the current tail
// sequence (the resume point for the next call).
//
// Events are served from a bounded per-study window (JournalOptions.
// RetainEvents), so a resume point may have aged out. In that case the gap
// cannot be replayed verbatim; instead the call returns a snapshot-then-
// tail view: synthesized events reconstructing the study's current state
// from the index — one "study" event carrying the live state, then one
// "trial" event per recorded trial, all marked Snapshot and stamped with
// the eviction-boundary sequence — followed by the retained tail. Sequence
// numbers remain non-decreasing across the response, and a resume at
// exactly the boundary seq re-serves the whole (idempotent) snapshot, so a
// client that disconnects mid-snapshot cannot strand itself. Clients lose
// only per-epoch metric points older than the window, which compaction
// drops from disk anyway.
func (j *Journal) EventsSince(id string, since uint64) ([]Event, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if id != "" {
		out = j.eventsSinceLocked(id, since)
	} else {
		for _, sid := range j.order {
			out = append(out, j.eventsSinceLocked(sid, since)...)
		}
		sort.SliceStable(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	}
	return out, j.seq
}

// eventsSinceLocked serves one study's events, synthesizing the snapshot
// when since predates the retention window — or the whole view, for a
// terminal study whose window was evicted entirely. Callers must hold j.mu.
func (j *Journal) eventsSinceLocked(id string, since uint64) []Event {
	w := j.windows[id]
	if w == nil {
		// Windowless study (terminal, evicted at boot replay or by
		// compaction): the resume view is a pure snapshot stamped with the
		// study's last journaled seq. A client already at (or past) that
		// seq has converged.
		meta := j.studies[id]
		if meta == nil {
			return nil
		}
		var boundary uint64
		if ss := j.seg[id]; ss != nil {
			boundary = ss.lastSeq
		}
		if boundary == 0 || since >= boundary {
			return nil
		}
		return j.snapshotLocked(id, boundary)
	}
	// Serve the snapshot when since is at or below the eviction boundary:
	// snapshot events are all stamped with the boundary seq, so a client
	// that disconnects mid-snapshot resumes at exactly that seq and must
	// receive the (idempotent) snapshot again rather than a tail missing
	// the trial events it never saw.
	if w.dropped == 0 || since > w.dropped {
		return w.since(since)
	}
	if j.studies[id] == nil {
		return w.since(since)
	}
	// Everything retained is newer than the eviction boundary, so sequence
	// numbers stay non-decreasing after the snapshot.
	return append(j.snapshotLocked(id, w.dropped), w.since(w.dropped)...)
}

// snapshotLocked synthesizes a study's resume snapshot from the index: one
// study event carrying the live state, then one trial event per recorded
// trial, all marked Snapshot and stamped with the boundary seq. Callers
// must hold j.mu and have checked the study exists.
func (j *Journal) snapshotLocked(id string, boundary uint64) []Event {
	meta := j.studies[id]
	out := []Event{{Seq: boundary, Type: recStudy, StudyID: id, State: meta.State, Error: meta.Error, Snapshot: true}}
	trials := append([]Trial(nil), j.trials[id]...)
	sort.SliceStable(trials, func(a, b int) bool { return trials[a].ID < trials[b].ID })
	for i := range trials {
		out = append(out, Event{Seq: boundary, Type: recTrial, StudyID: id, Trial: &trials[i], Snapshot: true})
	}
	return out
}

// Watch returns a channel closed on the next journal append (a broadcast
// tick). Callers re-invoke EventsSince after each tick.
func (j *Journal) Watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watch
}
