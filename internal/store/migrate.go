package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// migratingSuffix names the staging directory a legacy migration builds
// next to the journal path before swinging it into place.
const migratingSuffix = ".migrating"

// migrateLegacyJournal converts a pre-shard single-file JSONL journal into
// the sharded directory layout, in place: after it returns, path is a
// journal directory and the original file's bytes live on unchanged as
// <path>/legacy.jsonl.bak.
//
// The migration is crash-safe at every step. The staging directory
// <path>.migrating is built completely (per-study segments, then the
// manifest) before anything touches the original file; the commit is two
// renames — the legacy file into the staging dir, then the staging dir
// onto the journal path. A crash before the first rename leaves the
// original file authoritative (stale staging dirs are rebuilt from
// scratch); a crash between the renames leaves a completed staging dir
// that the next Open adopts (see adoptOrInitDir).
func migrateLegacyJournal(path string, noSync bool) error {
	// Hold the legacy file's flock for the duration so two processes never
	// migrate concurrently — the loser keeps blocking here until the winner
	// has swung the directory into place, then fails its own rename paths
	// and retries Open against the directory.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: opening legacy journal for migration: %w", err)
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("%w: %s", ErrLocked, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: reading legacy journal: %w", err)
	}
	recs, _, err := parseSegment(raw, path, true) // a torn tail is a crashed append, drop it
	if err != nil {
		return err
	}

	// Partition records by study, preserving append order and noting study
	// creation order (first appearance).
	perStudy := make(map[string][]record)
	var order []string
	for _, rec := range recs {
		id := rec.StudyID
		if id == "" && rec.Study != nil {
			id = rec.Study.ID
		}
		if id == "" {
			continue
		}
		if !validStudyID(id) {
			return fmt.Errorf("store: cannot migrate study id %q: not a valid directory name", id)
		}
		if _, seen := perStudy[id]; !seen {
			order = append(order, id)
		}
		perStudy[id] = append(perStudy[id], rec)
	}

	staging := path + migratingSuffix
	if err := os.RemoveAll(staging); err != nil {
		return fmt.Errorf("store: clearing stale migration staging: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(staging, studiesDirName), 0o755); err != nil {
		return fmt.Errorf("store: creating migration staging: %w", err)
	}
	man := manifest{Version: manifestVersion}
	for _, id := range order {
		dir := studyDir(staging, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: creating study dir: %w", err)
		}
		var buf bytes.Buffer
		for _, rec := range perStudy[id] {
			line, err := json.Marshal(rec)
			if err != nil {
				return fmt.Errorf("store: re-encoding legacy record: %w", err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		if err := writeFileSync(filepath.Join(dir, segmentFileName(1)), buf.Bytes(), noSync); err != nil {
			return err
		}
		man.Studies = append(man.Studies, manifestStudy{ID: id, Segments: []int{1}})
	}
	// The manifest write completes the staging dir; from here on a crash is
	// recovered by adoption rather than a re-run.
	if err := writeManifest(staging, man, noSync); err != nil {
		return err
	}
	if err := os.Rename(path, filepath.Join(staging, legacyBackup)); err != nil {
		return fmt.Errorf("store: archiving legacy journal: %w", err)
	}
	if err := os.Rename(staging, path); err != nil {
		return fmt.Errorf("store: committing migration: %w", err)
	}
	return syncDir(filepath.Dir(path), noSync)
}
