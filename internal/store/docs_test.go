package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalDocSpecCoversRecordTypes pins docs/JOURNAL.md to the code:
// every record type this package emits must be documented (as a backticked
// term) in the on-disk format spec, so the spec cannot silently fall
// behind a new event type. CI runs this as the docs check.
func TestJournalDocSpecCoversRecordTypes(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "JOURNAL.md"))
	if err != nil {
		t.Fatalf("docs/JOURNAL.md unreadable: %v", err)
	}
	spec := string(raw)
	for _, typ := range recordTypes {
		if !strings.Contains(spec, "`"+typ+"`") {
			t.Errorf("docs/JOURNAL.md does not document record type %q", typ)
		}
	}
	// The spec must also cover the structural pillars of the format.
	for _, term := range []string{"MANIFEST.json", "segment-", "seq", "compact", "flock", "snapshot"} {
		if !strings.Contains(strings.ToLower(spec), strings.ToLower(term)) {
			t.Errorf("docs/JOURNAL.md does not mention %q", term)
		}
	}
}
