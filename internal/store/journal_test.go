package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mkTrial(id, epochs int, acc float64) Trial {
	return Trial{
		ID:       id,
		Config:   map[string]interface{}{"num_epochs": epochs, "optimizer": "Adam"},
		FinalAcc: acc, BestAcc: acc, Epochs: epochs,
		ValAccHistory: []float64{acc / 2, acc},
		DurationNS:    12345,
	}
}

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// activeSegment returns the path of a study's highest-numbered (active)
// segment file — the one crash tests tear bytes off.
func activeSegment(t *testing.T, journalDir, study string) string {
	t.Helper()
	dir := studyDir(journalDir, study)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if isSegmentFileName(e.Name()) && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatalf("no segment files under %s", dir)
	}
	return filepath.Join(dir, last)
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	if err := j.CreateStudy(StudyMeta{ID: "a", Name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "a"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := j.GetStudy("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing study: %v", err)
	}
	if err := j.SetStudyState("a", StateRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 4, 0.7)}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState("a", StateDone, "", &Summary{Trials: 2, BestAcc: 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "b"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}

	// Reopen: everything replays, including integer config types.
	j2 := openTestJournal(t, path)
	defer j2.Close()
	meta, err := j2.GetStudy("a")
	if err != nil {
		t.Fatal(err)
	}
	if meta.State != StateDone || meta.Trials != 2 || meta.BestAcc != 0.7 || meta.Name != "alpha" {
		t.Fatalf("replayed meta = %+v", meta)
	}
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("replayed %d trials", len(trials))
	}
	if v, ok := trials[0].Config["num_epochs"].(int); !ok || v != 2 {
		t.Fatalf("config ints lost in replay: %#v", trials[0].Config)
	}
	if len(trials[1].ValAccHistory) != 2 {
		t.Fatalf("history lost: %+v", trials[1])
	}
}

func TestJournalCrashRecoveryTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 4, 0.7)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the last record of the
	// study's active segment.
	seg := activeSegment(t, path, "a")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := raw[:len(raw)-25]
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 || trials[0].ID != 0 {
		t.Fatalf("recovered trials = %+v", trials)
	}
	// The torn tail was truncated away, so appending resumes cleanly.
	if err := j2.AppendTrials("a", []Trial{mkTrial(1, 4, 0.7)}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := openTestJournal(t, path)
	defer j3.Close()
	trials, _ = j3.StudyTrials("a")
	if len(trials) != 2 {
		t.Fatalf("after recovery+append: %d trials", len(trials))
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5)}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	seg := activeSegment(t, path, "a")
	raw, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(raw), "\n")
	lines[0] = "garbage not json\n"
	os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644)
	if _, err := OpenJournal(path, JournalOptions{NoSync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: %v", err)
	}
}

func TestJournalMemoizationHitAndMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	ok := mkTrial(0, 2, 0.9)
	failed := mkTrial(1, 8, 0)
	failed.Err = "boom"
	if err := j.AppendTrials("a", []Trial{ok, failed}); err != nil {
		t.Fatal(err)
	}

	// Hit: same fingerprint from a different study's recorder.
	if err := j.CreateStudy(StudyMeta{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	rec := j.Recorder("b", "")
	memo, isMemo := rec.(Memoizer)
	if !isMemo {
		t.Fatal("journal recorder should implement Memoizer")
	}
	hit, found := memo.Lookup(Fingerprint(ok.Config))
	if !found || hit.BestAcc != 0.9 {
		t.Fatalf("memo hit = %+v found=%v", hit, found)
	}
	// Miss: failed trials never enter the memo index.
	if _, found := memo.Lookup(Fingerprint(failed.Config)); found {
		t.Fatal("failed trial must not be memoized")
	}
	// Miss: unseen fingerprint.
	if _, found := memo.Lookup("optimizer=SGD"); found {
		t.Fatal("unexpected memo hit")
	}
}

func TestJournalMemoizationIsScoped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "mnist"}); err != nil {
		t.Fatal(err)
	}
	mnistScope := MemoScope("mnist", 800, 0, []int{32}, 1, 0)
	if err := j.Recorder("mnist", mnistScope).Record([]Trial{mkTrial(0, 2, 0.9)}); err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(mkTrial(0, 2, 0.9).Config)

	// Same scope hits; a different objective (other dataset) must miss even
	// for an identical config.
	if _, found := j.LookupMemo(mnistScope, fp); !found {
		t.Fatal("same-scope lookup missed")
	}
	cifarScope := MemoScope("cifar10", 800, 0, []int{32}, 1, 0)
	if _, found := j.LookupMemo(cifarScope, fp); found {
		t.Fatal("memo leaked across objective scopes")
	}

	// Scope survives replay.
	j.Close()
	j2 := openTestJournal(t, path)
	defer j2.Close()
	if _, found := j2.LookupMemo(mnistScope, fp); !found {
		t.Fatal("scope lost in replay")
	}
	if _, found := j2.LookupMemo(cifarScope, fp); found {
		t.Fatal("replay widened the memo scope")
	}
}

func TestJournalDropsUnterminatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 4, 0.7)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Crash that flushed the last record's JSON but not its newline: the
	// record parses, yet keeping it would make the next O_APPEND write
	// concatenate onto the same line. It must be dropped and truncated.
	seg := activeSegment(t, path, "a")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, path)
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 {
		t.Fatalf("unterminated tail kept: %d trials", len(trials))
	}
	// Appending and reopening must stay parseable — the regression this
	// guards is a concatenated '}{' line corrupting the journal for good.
	if err := j2.AppendTrials("a", []Trial{mkTrial(1, 4, 0.7)}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatalf("journal corrupted after tail recovery: %v", err)
	}
	defer j3.Close()
	if trials, _ = j3.StudyTrials("a"); len(trials) != 2 {
		t.Fatalf("post-recovery trials = %d", len(trials))
	}
}

func TestJournalAppendDedupsResumedTrials(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	tr := mkTrial(0, 2, 0.5)
	for i := 0; i < 3; i++ {
		if err := j.AppendTrials("a", []Trial{tr}); err != nil {
			t.Fatal(err)
		}
	}
	trials, _ := j.StudyTrials("a")
	if len(trials) != 1 {
		t.Fatalf("resumed re-record duplicated: %d entries", len(trials))
	}
}

func TestJournalEventsAndWatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	events, tail := j.EventsSince("a", 0)
	if len(events) != 1 || events[0].Type != "study" {
		t.Fatalf("initial events = %+v", events)
	}

	watch := j.Watch()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-watch // closed on next append
	}()
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5)}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	events, _ = j.EventsSince("a", tail)
	if len(events) != 1 || events[0].Type != "trial" || events[0].Trial == nil {
		t.Fatalf("incremental events = %+v", events)
	}
}

func TestJournalRecorderResumeIsScoped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "cli"}); err != nil {
		t.Fatal(err)
	}
	mnist := MemoScope("mnist", 800, 0, []int{32}, 1, 0)
	cifar := MemoScope("cifar10", 800, 0, []int{32}, 1, 0)
	if err := j.Recorder("cli", mnist).Record([]Trial{mkTrial(0, 2, 0.9)}); err != nil {
		t.Fatal(err)
	}

	// Same study id, same scope: resumes.
	got, err := j.Recorder("cli", mnist).Load()
	if err != nil || len(got) != 1 {
		t.Fatalf("same-scope load = %v, %v", got, err)
	}
	// Same study id reused with a different objective: nothing to resume —
	// the mnist result must not masquerade as a cifar one.
	got, err = j.Recorder("cli", cifar).Load()
	if err != nil || len(got) != 0 {
		t.Fatalf("cross-scope load leaked %d trials (%v)", len(got), err)
	}
	// Scope-less legacy trials (checkpoint migrations) resume everywhere.
	legacy := mkTrial(9, 6, 0.4)
	if err := j.AppendTrials("cli", []Trial{legacy}); err != nil {
		t.Fatal(err)
	}
	got, _ = j.Recorder("cli", cifar).Load()
	if len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("legacy trial dropped: %v", got)
	}
}

func TestJournalSingleWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	if _, err := OpenJournal(path, JournalOptions{NoSync: true}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writer must be rejected, got %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with the file handle: a new writer may take over.
	j2, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	j2.Close()
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := OpenJournal(path, JournalOptions{}) // real fsync: exercise group commit
	if err != nil {
		t.Fatal(err)
	}
	const studies, perStudy = 4, 8
	for s := 0; s < studies; s++ {
		if err := j.CreateStudy(StudyMeta{ID: string(rune('a' + s))}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < studies; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id := string(rune('a' + s))
			for i := 0; i < perStudy; i++ {
				tr := mkTrial(i, i+100*s, 0.5)
				if err := j.AppendTrials(id, []Trial{tr}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, path)
	defer j2.Close()
	for s := 0; s < studies; s++ {
		trials, err := j2.StudyTrials(string(rune('a' + s)))
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) != perStudy {
			t.Fatalf("study %d replayed %d/%d trials", s, len(trials), perStudy)
		}
	}
}
