package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalFDs counts this process's open file descriptors resolving under
// the journal directory — the ground truth the LRU ceiling is about.
func journalFDs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name()))
		if err != nil {
			continue
		}
		if strings.HasPrefix(target, abs+string(os.PathSeparator)) {
			n++
		}
	}
	return n
}

// TestOpenSegmentHandleLRUCeiling is the many-study stress test: hundreds
// of live studies take turns appending, but the journal never holds more
// than MaxOpenSegments open append handles — evicted studies transparently
// reopen, and nothing is lost across eviction or reopen.
func TestOpenSegmentHandleLRUCeiling(t *testing.T) {
	const studies, cap, rounds = 200, 8, 3
	dir := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(dir, JournalOptions{NoSync: true, MaxOpenSegments: cap})
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, studies)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%03d", i)
		if err := j.CreateStudy(StudyMeta{ID: ids[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		for i, id := range ids {
			if err := j.AppendTrials(id, []Trial{mkTrial(r, r+1, 0.1*float64(r+1))}); err != nil {
				t.Fatal(err)
			}
			if err := j.AppendMetric(id, r, 0, 0.5); err != nil {
				t.Fatal(err)
			}
			if got := j.Stats().OpenSegmentHandles; got > cap {
				t.Fatalf("round %d study %d: %d open handles, ceiling %d", r, i, got, cap)
			}
		}
		// Real descriptors: open actives (≤ cap) plus LOCK plus at most a
		// handful of just-retired handles awaiting the next commit's close.
		if fds := journalFDs(t, dir); fds > cap+4 {
			t.Fatalf("round %d: %d journal fds for %d studies, ceiling %d(+4)", r, fds, studies, cap)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything survived the evict/reopen churn.
	j2, err := OpenJournal(dir, JournalOptions{NoSync: true, MaxOpenSegments: cap})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	for _, id := range ids {
		trials, err := j2.StudyTrials(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) != rounds {
			t.Fatalf("study %s has %d trials after reopen, want %d", id, len(trials), rounds)
		}
	}
	if got := j2.Stats().OpenSegmentHandles; got != 0 {
		t.Fatalf("replay opened %d append handles, want 0 (lazy open)", got)
	}
}

// TestUnboundedOpenSegmentsOption: negative MaxOpenSegments disables the
// LRU (pre-existing behaviour: one handle per ever-touched study).
func TestUnboundedOpenSegmentsOption(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j"), JournalOptions{NoSync: true, MaxOpenSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Stats().OpenSegmentHandles; got != 20 {
		t.Fatalf("unbounded journal holds %d handles, want 20", got)
	}
}

// TestTerminalWindowMapStopsGrowing: the per-study event-window map must
// not scale with terminal-study count — compaction evicts finished
// studies' windows, boot replay never rebuilds them, and their SSE resume
// still works as a pure snapshot.
func TestTerminalWindowMapStopsGrowing(t *testing.T) {
	const terminal = 50
	dir := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(dir, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < terminal; i++ {
		id := fmt.Sprintf("t%03d", i)
		if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendMetric(id, 0, 0, 0.4); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendTrials(id, []Trial{mkTrial(0, 3, 0.6)}); err != nil {
			t.Fatal(err)
		}
		if err := j.SetStudyState(id, StateDone, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// One live study that must keep its window through everything.
	if err := j.CreateStudy(StudyMeta{ID: "live"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMetric("live", 0, 0, 0.9); err != nil {
		t.Fatal(err)
	}

	if got := j.Stats().EventWindows; got != terminal+1 {
		t.Fatalf("windows before compaction = %d, want %d", got, terminal+1)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().EventWindows; got != 1 {
		t.Fatalf("windows after compaction = %d, want 1 (the live study)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot replay: terminal studies never grow windows back.
	j2, err := OpenJournal(dir, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Stats().EventWindows; got != 1 {
		t.Fatalf("windows after replay = %d, want 1 (the live study)", got)
	}
	// Terminal studies still resume — purely from snapshots.
	for i := 0; i < terminal; i++ {
		id := fmt.Sprintf("t%03d", i)
		events, _ := j2.EventsSince(id, 0)
		if len(events) != 2 || !events[0].Snapshot || events[0].State != StateDone ||
			events[1].Type != "trial" || !events[1].Snapshot {
			t.Fatalf("terminal study %s resume = %+v, want study+trial snapshot", id, events)
		}
	}
}

// TestRestartedTerminalStudySnapshotBoundary: a terminal study whose
// window was evicted and that is then re-started (new state appends) must
// serve below-boundary resumes as snapshot-then-tail, not as a tail with
// the pre-eviction history silently missing.
func TestRestartedTerminalStudySnapshotBoundary(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j"), JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("s", []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 3, 0.7)}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState("s", StateDone, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Compact(); err != nil { // evicts the window
		t.Fatal(err)
	}
	// Operator re-starts the finished study: the state append recreates
	// the window mid-life.
	if err := j.SetStudyState("s", StateQueued, "", nil); err != nil {
		t.Fatal(err)
	}
	events, _ := j.EventsSince("s", 0)
	snapTrials, sawQueued := 0, false
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq < lastSeq {
			t.Fatalf("sequence regressed: %+v", events)
		}
		lastSeq = ev.Seq
		if ev.Snapshot && ev.Type == "trial" {
			snapTrials++
		}
		if !ev.Snapshot && ev.Type == "state" && ev.State == StateQueued {
			sawQueued = true
		}
	}
	if snapTrials != 2 || !sawQueued {
		t.Fatalf("restart resume lost history: %d snapshot trials, queued=%v: %+v", snapTrials, sawQueued, events)
	}
}
