package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The sharded journal lives in a directory (see docs/JOURNAL.md for the
// normative spec):
//
//	<dir>/
//	  MANIFEST.json          commit point: the set of live segments per study
//	  LOCK                   flock'd single-writer guard
//	  legacy.jsonl.bak       pre-shard journal, kept after migration
//	  studies/<id>/segment-NNNNNN.jsonl
//
// Records are the same JSONL lines the single-file format used; segments
// partition them by study. The manifest is rewritten atomically (write temp
// + rename + fsync) and is the source of truth for which segment files are
// live: a segment present on disk but absent from the manifest is a
// leftover from a crashed compaction and is deleted on open.

const (
	manifestName   = "MANIFEST.json"
	lockName       = "LOCK"
	legacyBackup   = "legacy.jsonl.bak"
	studiesDirName = "studies"
	// manifestVersion is bumped on incompatible layout changes; Open refuses
	// versions it does not know.
	manifestVersion = 1
)

// manifest is the on-disk MANIFEST.json schema. Studies are listed in
// creation order; each entry names the live segment numbers, ascending —
// the highest is the active (appendable) segment.
type manifest struct {
	Version int             `json:"version"`
	Studies []manifestStudy `json:"studies"`
}

// manifestStudy is one study's entry in the manifest.
type manifestStudy struct {
	ID       string `json:"id"`
	Segments []int  `json:"segments"`
}

// segmentFileName renders the canonical segment file name for number n.
func segmentFileName(n int) string { return fmt.Sprintf("segment-%06d.jsonl", n) }

// isSegmentFileName reports whether name looks like a live segment file
// (temp files carry a suffix and never match).
func isSegmentFileName(name string) bool {
	return strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".jsonl")
}

// studyDir returns the directory holding a study's segments.
func studyDir(dir, id string) string { return filepath.Join(dir, studiesDirName, id) }

// validStudyID gates ids that double as directory names: path separators,
// traversal and control characters must never reach the filesystem layer.
func validStudyID(id string) bool {
	if id == "" || id == "." || id == ".." || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// readManifest loads MANIFEST.json; a missing file returns ok=false.
func readManifest(dir string) (manifest, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("store: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, false, fmt.Errorf("%w: manifest unparseable: %v", ErrCorrupt, err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("%w: manifest version %d (this build reads %d)",
			ErrCorrupt, m.Version, manifestVersion)
	}
	return m, true, nil
}

// writeManifest atomically replaces MANIFEST.json: write a temp file, fsync
// it, rename over the manifest, fsync the directory. The rename is the
// commit point for every layout change (study creation, segment rotation,
// compaction).
func writeManifest(dir string, m manifest, noSync bool) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(tmp, append(raw, '\n'), noSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("store: committing manifest: %w", err)
	}
	return syncDir(dir, noSync)
}

// writeFileSync writes path in one shot and fsyncs it (unless noSync).
func writeFileSync(path string, raw []byte, noSync bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", filepath.Base(path), err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: fsync %s: %w", filepath.Base(path), err)
		}
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string, noSync bool) error {
	if noSync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}

// parseSegment decodes one segment file's records. allowTorn permits a
// half-flushed final record (the signature of a crash mid-append) — only
// the active segment of a study may be torn; anywhere else a bad record is
// corruption. It returns the records and the byte offset just past the last
// good one (the truncation point when torn).
func parseSegment(raw []byte, path string, allowTorn bool) ([]record, int, error) {
	var recs []record
	offset := 0
	for len(raw) > offset {
		rest := raw[offset:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// A record is committed iff newline-terminated. A parseable but
			// unterminated tail must still be dropped: keeping it while
			// appending in O_APPEND mode would concatenate the next record
			// onto the same line and corrupt the segment for good.
			if !allowTorn {
				return nil, 0, fmt.Errorf("%w: unterminated record at byte %d of %s", ErrCorrupt, offset, path)
			}
			break
		}
		var rec record
		if err := json.Unmarshal(rest[:nl], &rec); err != nil || rec.Type == "" {
			// Torn tail: the final line is half-flushed. Anything before it
			// that fails to parse is real corruption.
			if allowTorn && offset+nl+1 >= len(raw) {
				break
			}
			return nil, 0, fmt.Errorf("%w: bad record at byte %d of %s", ErrCorrupt, offset, path)
		}
		recs = append(recs, rec)
		offset += nl + 1
	}
	return recs, offset, nil
}

// pruneStaleSegments deletes segment files in a study's directory that the
// manifest does not list — the debris of a compaction that crashed between
// writing its rewritten segment and committing the manifest (or between
// committing and unlinking the replaced segments). Either way the manifest
// is authoritative and the unlisted files carry no live data.
func pruneStaleSegments(dir string, live []int) (removed int, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	keep := make(map[string]bool, len(live))
	for _, n := range live {
		keep[segmentFileName(n)] = true
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || keep[name] {
			continue
		}
		if !isSegmentFileName(name) && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		if rmErr := os.Remove(filepath.Join(dir, name)); rmErr == nil {
			removed++
		}
	}
	return removed, nil
}

// buildManifest renders the in-memory segment table as a manifest, studies
// in creation order.
func buildManifest(order []string, segs map[string]*studySegments) manifest {
	m := manifest{Version: manifestVersion}
	for _, id := range order {
		ss, ok := segs[id]
		if !ok {
			continue
		}
		nums := append([]int(nil), ss.nums...)
		sort.Ints(nums)
		m.Studies = append(m.Studies, manifestStudy{ID: id, Segments: nums})
	}
	return m
}
