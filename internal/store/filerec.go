package store

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// checkpointFile is the JSON schema of a legacy single-study checkpoint —
// the format internal/hpo wrote before the journal existed. FileRecorder
// keeps reading and writing it so `-checkpoint study.json` workflows are
// unchanged.
type checkpointFile struct {
	Version int     `json:"version"`
	Trials  []Trial `json:"trials"`
}

// EncodeCheckpoint renders trials in the legacy checkpoint file format.
func EncodeCheckpoint(trials []Trial) ([]byte, error) {
	f := checkpointFile{Version: 1, Trials: trials}
	return json.MarshalIndent(f, "", "  ")
}

// DecodeCheckpoint parses the legacy checkpoint file format, restoring
// integer config values lost to JSON.
func DecodeCheckpoint(raw []byte) ([]Trial, error) {
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("store: parsing checkpoint: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("store: unsupported checkpoint version %d", f.Version)
	}
	out := make([]Trial, 0, len(f.Trials))
	for _, t := range f.Trials {
		t.Config = NormaliseConfig(t.Config)
		t.Fingerprint = fingerprintOf(t)
		out = append(out, t)
	}
	return out, nil
}

// FileRecorder persists one study's trials as a single JSON checkpoint
// file, atomically rewritten after every Record — the journal-less
// fallback. It implements Recorder.
type FileRecorder struct {
	mu   sync.Mutex
	path string
	all  []Trial
	seen map[string]bool // successful fingerprints, for Record dedup
}

// NewFileRecorder builds a file recorder at path; the file is created on
// the first Record.
func NewFileRecorder(path string) *FileRecorder {
	return &FileRecorder{path: path, seen: make(map[string]bool)}
}

// Load implements Recorder: a missing file is an empty checkpoint.
func (r *FileRecorder) Load() ([]Trial, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	raw, err := os.ReadFile(r.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading checkpoint: %w", err)
	}
	trials, err := DecodeCheckpoint(raw)
	if err != nil {
		return nil, err
	}
	// Keep only the restart-relevant state: successful trials survive,
	// failures and cancellations are rerun (and rewritten) by the study.
	r.all = r.all[:0]
	for _, t := range trials {
		if !t.Succeeded() {
			continue
		}
		r.all = append(r.all, t)
		r.seen[t.Fingerprint] = true
	}
	return trials, nil
}

// Record implements Recorder: append new trials and atomically rewrite the
// checkpoint file (write-temp + rename, so a crash mid-write never corrupts
// the previous checkpoint). Trials already persisted with success are
// skipped, so resumed rounds are idempotent.
func (r *FileRecorder) Record(trials []Trial) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range trials {
		t = t.sanitize()
		t.Fingerprint = fingerprintOf(t)
		if r.seen[t.Fingerprint] {
			continue
		}
		r.all = append(r.all, t)
		if t.Succeeded() {
			r.seen[t.Fingerprint] = true
		}
	}
	raw, err := EncodeCheckpoint(r.all)
	if err != nil {
		return err
	}
	tmp := r.path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	return os.Rename(tmp, r.path)
}

// journalRecorder adapts one study of a Journal to the Recorder interface
// (plus Memoizer for cross-study reuse).
type journalRecorder struct {
	j     *Journal
	id    string
	scope string
}

// Recorder returns a study-scoped Recorder backed by the journal. The
// returned value also implements Memoizer, so studies recording through it
// reuse identical configs already solved by other studies — but only
// within the same objective scope: scope must identify everything besides
// the config that determines a trial's result (dataset, sample count,
// model widths, seed, target). Trials recorded through this recorder are
// stamped with the scope.
func (j *Journal) Recorder(studyID, scope string) Recorder {
	return &journalRecorder{j: j, id: studyID, scope: scope}
}

// Load restores the study's trials for resume, dropping trials recorded
// under a different objective scope: re-using a study id with a changed
// objective (e.g. `hpo -journal j -study cli` first with -dataset mnist,
// then cifar10) must re-execute rather than silently resume results from
// the wrong dataset. Scope-less trials (legacy checkpoint migrations) are
// kept — they predate scoping and belong to whatever study imported them.
func (r *journalRecorder) Load() ([]Trial, error) {
	trials, err := r.j.StudyTrials(r.id)
	if err != nil {
		return nil, err
	}
	kept := trials[:0]
	for _, t := range trials {
		if t.Scope == r.scope || t.Scope == "" {
			kept = append(kept, t)
		}
	}
	return kept, nil
}

func (r *journalRecorder) Record(trials []Trial) error {
	stamped := make([]Trial, len(trials))
	for i, t := range trials {
		t.Scope = r.scope
		stamped[i] = t
	}
	return r.j.AppendTrials(r.id, stamped)
}

func (r *journalRecorder) Lookup(fp string) (Trial, bool) { return r.j.LookupMemo(r.scope, fp) }

// RecordMetric implements MetricRecorder: intermediate epoch metrics land
// in the journal (and its event stream) as they happen.
func (r *journalRecorder) RecordMetric(trialID, epoch int, value float64) error {
	return r.j.AppendMetric(r.id, trialID, epoch, value)
}

// RecordPrune implements MetricRecorder.
func (r *journalRecorder) RecordPrune(trialID, epoch int, reason string) error {
	return r.j.AppendPrune(r.id, trialID, epoch, reason)
}

// RecordPromote implements MetricRecorder: rung promotions are journaled so
// a resumed study replays its rung decisions.
func (r *journalRecorder) RecordPromote(trialID, epoch, budget int, reason string) error {
	return r.j.AppendPromote(r.id, trialID, epoch, budget, reason)
}

// MigrateCheckpoint imports a legacy checkpoint file into the journal under
// studyID, creating the study when absent. It returns the number of trials
// imported (already-recorded fingerprints are skipped), so re-running a
// migration is harmless.
func MigrateCheckpoint(j *Journal, studyID, checkpointPath string) (int, error) {
	raw, err := os.ReadFile(checkpointPath)
	if err != nil {
		return 0, fmt.Errorf("store: reading checkpoint for migration: %w", err)
	}
	trials, err := DecodeCheckpoint(raw)
	if err != nil {
		return 0, err
	}
	if _, err := j.GetStudy(studyID); err != nil {
		meta := StudyMeta{ID: studyID, Name: studyID, State: StateDone}
		if err := j.CreateStudy(meta); err != nil {
			return 0, err
		}
	}
	before, err := j.StudyTrials(studyID)
	if err != nil {
		return 0, err
	}
	if err := j.AppendTrials(studyID, trials); err != nil {
		return 0, err
	}
	after, _ := j.StudyTrials(studyID)
	return len(after) - len(before), nil
}
