package store

import (
	"math"
	"path/filepath"
	"testing"
)

// TestJournalMetricAndPruneEvents: intermediate metrics and prune decisions
// journal as first-class event types and replay across reopen.
func TestJournalMetricAndPruneEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMetric("s1", 0, 0, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMetric("s1", 0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPrune("s1", 0, 1, "median pruner: losing"); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMetric("nope", 0, 0, 0.1); err == nil {
		t.Fatal("metric for unknown study accepted")
	}
	check := func(j *Journal, phase string) {
		t.Helper()
		events, _ := j.EventsSince("s1", 0)
		metrics, prunes := 0, 0
		for _, ev := range events {
			switch ev.Type {
			case "metric":
				if ev.Metric == nil || ev.Metric.TrialID != 0 {
					t.Fatalf("%s: malformed metric %+v", phase, ev)
				}
				metrics++
			case "prune":
				if ev.Prune == nil || ev.Prune.Reason == "" || ev.Prune.Epoch != 1 {
					t.Fatalf("%s: malformed prune %+v", phase, ev)
				}
				prunes++
			}
		}
		if metrics != 2 || prunes != 1 {
			t.Fatalf("%s: metrics=%d prunes=%d, want 2/1", phase, metrics, prunes)
		}
	}
	check(j, "live")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	check(j2, "replayed")
}

// TestPrunedTrialsAreNotMemoizedOrResumed: a pruned trial's partial result
// must not answer memo lookups nor count as done on resume.
func TestPrunedTrialsAreNotMemoizedOrResumed(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.journal"), JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s1"}); err != nil {
		t.Fatal(err)
	}
	pruned := Trial{ID: 0, Config: map[string]interface{}{"x": 1}, Scope: "sc",
		BestAcc: 0.9, Pruned: true, PruneReason: "losing"}
	if pruned.Succeeded() {
		t.Fatal("pruned trial counts as success")
	}
	if err := j.AppendTrials("s1", []Trial{pruned}); err != nil {
		t.Fatal(err)
	}
	if _, hit := j.LookupMemo("sc", Fingerprint(pruned.Config)); hit {
		t.Fatal("pruned trial answered a memo lookup")
	}
	// The same fingerprint can be re-recorded once it actually finishes
	// (pruned records do not poison the per-study dedup set).
	done := pruned
	done.Pruned, done.PruneReason = false, ""
	if err := j.AppendTrials("s1", []Trial{done}); err != nil {
		t.Fatal(err)
	}
	trials, err := j.StudyTrials("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("trials = %d, want pruned + finished records", len(trials))
	}
	if _, hit := j.LookupMemo("sc", Fingerprint(done.Config)); !hit {
		t.Fatal("finished trial missing from memo index")
	}
}

// TestJournalSurvivesNaNMetrics: a diverged training (NaN loss/accuracy)
// must journal as a zeroed bad result, not fail the append with a JSON
// encoding error.
func TestJournalSurvivesNaNMetrics(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.journal"), JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s1"}); err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	diverged := Trial{ID: 0, Config: map[string]interface{}{"lr": 9},
		FinalAcc: nan, BestAcc: nan, FinalLoss: math.Inf(1),
		ValAccHistory: []float64{0.3, nan}, Epochs: 2}
	if err := j.AppendTrials("s1", []Trial{diverged}); err != nil {
		t.Fatalf("NaN trial rejected: %v", err)
	}
	if err := j.AppendMetric("s1", 0, 1, nan); err != nil {
		t.Fatalf("NaN metric rejected: %v", err)
	}
	trials, err := j.StudyTrials("s1")
	if err != nil || len(trials) != 1 {
		t.Fatalf("trials = %v, %v", trials, err)
	}
	got := trials[0]
	if got.FinalAcc != 0 || got.BestAcc != 0 || got.FinalLoss != 0 || got.ValAccHistory[1] != 0 {
		t.Fatalf("non-finite values not sanitized: %+v", got)
	}
	if got.ValAccHistory[0] != 0.3 {
		t.Fatalf("finite values mangled: %+v", got)
	}
}

// TestWithoutMemoKeepsTelemetry: stripping the Memoizer must not strip the
// MetricRecorder extension.
func TestWithoutMemoKeepsTelemetry(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.journal"), JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s1"}); err != nil {
		t.Fatal(err)
	}
	rec := WithoutMemo(j.Recorder("s1", "sc"))
	if _, ok := rec.(Memoizer); ok {
		t.Fatal("WithoutMemo kept the Memoizer")
	}
	mr, ok := rec.(MetricRecorder)
	if !ok {
		t.Fatal("WithoutMemo dropped the MetricRecorder")
	}
	if err := mr.RecordMetric(1, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := mr.RecordPrune(1, 0, "r"); err != nil {
		t.Fatal(err)
	}
	events, _ := j.EventsSince("s1", 0)
	var seen []string
	for _, ev := range events {
		seen = append(seen, ev.Type)
	}
	if len(events) != 3 { // study + metric + prune
		t.Fatalf("events = %v", seen)
	}
}

// TestPromotedTrialsExcludedFromMemo: a promoted trial's metrics reflect
// more epochs than its fingerprint's num_epochs claims, so it must dedup
// resumes of its own study without ever answering cross-study lookups.
func TestPromotedTrialsExcludedFromMemo(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j"), JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	promoted := mkTrial(0, 9, 0.9)
	promoted.Config["num_epochs"] = 1 // trained 9 epochs on a budget-1 config
	promoted.Promoted = true
	plain := mkTrial(1, 3, 0.6)
	rec := j.Recorder("a", "scope")
	if err := rec.Record([]Trial{promoted, plain}); err != nil {
		t.Fatal(err)
	}
	if _, hit := j.LookupMemo("scope", Fingerprint(promoted.Config)); hit {
		t.Fatal("promoted trial answered a cross-study memo lookup")
	}
	if _, hit := j.LookupMemo("scope", Fingerprint(plain.Config)); !hit {
		t.Fatal("unpromoted trial missing from the memo index")
	}
	// Resume dedup still sees it.
	loaded, err := rec.Load()
	if err != nil || len(loaded) != 2 {
		t.Fatalf("load = %d trials, %v", len(loaded), err)
	}
	if !loaded[0].Promoted {
		t.Fatal("promoted flag lost on load")
	}
}
