package store

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// histTrial builds a trial with an epochs-long ValAccHistory.
func histTrial(id, epochs int) Trial {
	hist := make([]float64, epochs)
	for i := range hist {
		hist[i] = 0.3 + 0.5*float64(i)/float64(epochs)
	}
	return Trial{
		ID:            id,
		Config:        map[string]interface{}{"num_epochs": epochs, "lr": 0.1},
		FinalAcc:      hist[epochs-1],
		BestAcc:       hist[epochs-1],
		Epochs:        epochs,
		ValAccHistory: hist,
	}
}

func TestDeltaEncodeDecodeRoundTrip(t *testing.T) {
	orig := histTrial(1, 20)
	enc := encodeTrialHistory(orig)
	if len(enc.ValAccHistory) != 0 || len(enc.ValAccQ) != 20 {
		t.Fatalf("encode: history=%d q=%d, want 0/20", len(enc.ValAccHistory), len(enc.ValAccQ))
	}
	dec := decodeTrialHistory(enc)
	if len(dec.ValAccQ) != 0 || len(dec.ValAccHistory) != 20 {
		t.Fatalf("decode: history=%d q=%d, want 20/0", len(dec.ValAccHistory), len(dec.ValAccQ))
	}
	for i := range orig.ValAccHistory {
		if math.Abs(dec.ValAccHistory[i]-orig.ValAccHistory[i]) > 1.5/histDeltaScale {
			t.Fatalf("epoch %d: %v != %v", i, dec.ValAccHistory[i], orig.ValAccHistory[i])
		}
	}
	// Short histories pass through untouched.
	short := encodeTrialHistory(histTrial(2, histDeltaMin-1))
	if len(short.ValAccQ) != 0 || len(short.ValAccHistory) != histDeltaMin-1 {
		t.Fatalf("short history was encoded: %+v", short)
	}
}

// TestCompactionDeltaEncodesHistories pins the on-disk form: after
// compaction, a long-history trial record carries val_acc_q and no
// val_acc_history, while in-memory reads — including across a reopen —
// always see the decoded history.
func TestCompactionDeltaEncodesHistories(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	const id = "s1"
	if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
		t.Fatal(err)
	}
	long, short := histTrial(0, 24), histTrial(1, 3)
	if err := j.AppendTrials(id, []Trial{long, short}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ { // telemetry to make the study compactable
		if err := j.AppendMetric(id, 0, e, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.SetStudyState(id, StateDone, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(studyDir(path, id))
	if err != nil {
		t.Fatal(err)
	}
	var disk string
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(studyDir(path, id), e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		disk += string(raw)
	}
	if !strings.Contains(disk, `"val_acc_q"`) {
		t.Error("compacted segment carries no delta-encoded history")
	}
	for _, line := range strings.Split(disk, "\n") {
		if strings.Contains(line, `"val_acc_q"`) && strings.Contains(line, `"val_acc_history"`) {
			t.Errorf("record carries both encodings: %s", line)
		}
	}
	if !strings.Contains(disk, `"val_acc_history"`) {
		t.Error("short history should stay verbatim on disk")
	}

	check := func(j *Journal) {
		t.Helper()
		trials, err := j.StudyTrials(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) != 2 {
			t.Fatalf("got %d trials, want 2", len(trials))
		}
		for _, tr := range trials {
			want := long
			if tr.ID == 1 {
				want = short
			}
			if len(tr.ValAccQ) != 0 {
				t.Errorf("trial %d: reader leaked ValAccQ", tr.ID)
			}
			if len(tr.ValAccHistory) != len(want.ValAccHistory) {
				t.Fatalf("trial %d: history len %d, want %d", tr.ID, len(tr.ValAccHistory), len(want.ValAccHistory))
			}
			for i := range want.ValAccHistory {
				if math.Abs(tr.ValAccHistory[i]-want.ValAccHistory[i]) > 1.5/histDeltaScale {
					t.Fatalf("trial %d epoch %d: %v != %v", tr.ID, i, tr.ValAccHistory[i], want.ValAccHistory[i])
				}
			}
		}
	}
	check(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, path)
	check(j2)

	// StudyRecords decodes too.
	recs, err := j2.StudyRecords(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Trial != nil && len(r.Trial.ValAccQ) != 0 {
			t.Error("StudyRecords leaked ValAccQ")
		}
	}
}
