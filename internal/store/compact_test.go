package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// finishStudy drives one study through a full lifecycle: trials recorded
// with per-epoch metric telemetry, then a terminal state.
func finishStudy(t *testing.T, j *Journal, id string, trials, metricsPerTrial int, state StudyState) {
	t.Helper()
	if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState(id, StateRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < trials; tr++ {
		for e := 0; e < metricsPerTrial; e++ {
			if err := j.AppendMetric(id, tr, e, 0.1*float64(e)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.AppendTrials(id, []Trial{mkTrial(tr, tr+2, 0.5+0.01*float64(tr))}); err != nil {
			t.Fatal(err)
		}
	}
	if state.Terminal() {
		if err := j.SetStudyState(id, state, "", &Summary{Trials: trials, BestAcc: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
}

// segmentRecordCount counts JSONL records across a study's on-disk
// segment files.
func segmentRecordCount(t *testing.T, journalDir, study string) int {
	t.Helper()
	entries, err := os.ReadDir(studyDir(journalDir, study))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !isSegmentFileName(e.Name()) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(studyDir(journalDir, study), e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		n += bytes.Count(raw, []byte("\n"))
	}
	return n
}

// TestCompactRewritesTerminalStudies is the acceptance path: a journal
// with 50 terminal studies full of per-epoch metrics compacts down to
// summary records — boot replay reads only live-study segments plus
// terminal summaries — and no acknowledged trial result or final metric is
// lost across a reopen.
func TestCompactRewritesTerminalStudies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	const terminal, trialsPer, metricsPer = 50, 3, 40
	for s := 0; s < terminal; s++ {
		finishStudy(t, j, fmt.Sprintf("done-%02d", s), trialsPer, metricsPer, StateDone)
	}
	finishStudy(t, j, "live-a", 2, 25, StateRunning)
	finishStudy(t, j, "live-b", 1, 25, StateRunning)

	delta, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if delta.StudiesCompacted != terminal {
		t.Fatalf("compacted %d studies, want %d", delta.StudiesCompacted, terminal)
	}
	if delta.RecordsDropped == 0 || delta.SegmentsRemoved == 0 || delta.BytesReclaimed == 0 {
		t.Fatalf("compaction reclaimed nothing: %+v", delta)
	}
	// Idempotent: a second run finds nothing to do.
	delta2, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if delta2.StudiesCompacted != 0 {
		t.Fatalf("second compaction rewrote %d studies", delta2.StudiesCompacted)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// On disk: every terminal study is exactly its summary records (one
	// study record + one per trial); live studies keep their full history
	// including metric telemetry.
	for s := 0; s < terminal; s++ {
		id := fmt.Sprintf("done-%02d", s)
		if got := segmentRecordCount(t, path, id); got != 1+trialsPer {
			t.Fatalf("study %s holds %d records on disk, want %d", id, got, 1+trialsPer)
		}
	}
	if got := segmentRecordCount(t, path, "live-a"); got <= 2+2*25 {
		t.Fatalf("live study lost history: %d records", got)
	}

	// Replay: metadata, trials and the memo index all survive.
	j2 := openTestJournal(t, path)
	defer j2.Close()
	for s := 0; s < terminal; s++ {
		id := fmt.Sprintf("done-%02d", s)
		meta, err := j2.GetStudy(id)
		if err != nil {
			t.Fatal(err)
		}
		if meta.State != StateDone || meta.Trials != trialsPer || meta.BestAcc != 0.9 {
			t.Fatalf("study %s replayed meta = %+v", id, meta)
		}
		trials, err := j2.StudyTrials(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) != trialsPer {
			t.Fatalf("study %s replayed %d trials, want %d", id, len(trials), trialsPer)
		}
		for i, tr := range trials {
			if tr.FinalAcc != 0.5+0.01*float64(i) || len(tr.ValAccHistory) == 0 {
				t.Fatalf("study %s trial %d lost final metrics: %+v", id, i, tr)
			}
		}
	}
	if _, hit := j2.LookupMemo("", Fingerprint(mkTrial(0, 2, 0.5).Config)); !hit {
		t.Fatal("memo index lost across compaction + replay")
	}
	// Live studies keep streaming history.
	events, _ := j2.EventsSince("live-a", 0)
	metrics := 0
	for _, ev := range events {
		if ev.Type == "metric" {
			metrics++
		}
	}
	if metrics == 0 {
		t.Fatal("live study lost metric events in replay")
	}
}

// TestCompactionCrashBeforeManifestCommit: a compacted segment written but
// never committed to the manifest (kill between the segment rewrite and
// the manifest swap) must be ignored and deleted on the next open — the
// old segments stay authoritative.
func TestCompactionCrashBeforeManifestCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	finishStudy(t, j, "a", 2, 10, StateDone)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: an orphan higher-numbered segment exists with
	// content that must never be believed.
	orphan := filepath.Join(studyDir(path, "a"), segmentFileName(2))
	bogus := `{"seq":999,"type":"trial","study_id":"a","trial":{"id":777,"config":{"x":1},"final_acc":1}}` + "\n"
	if err := os.WriteFile(orphan, []byte(bogus), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	defer j2.Close()
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("recovered %d trials, want 2 (orphan segment believed?)", len(trials))
	}
	for _, tr := range trials {
		if tr.ID == 777 {
			t.Fatal("uncommitted compaction segment replayed")
		}
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan segment not pruned on open: %v", err)
	}
}

// TestCompactionCrashAfterManifestCommit: once the manifest lists only the
// compacted segment, leftover pre-compaction files (kill between the
// manifest swap and the unlink pass) are stale debris — the next open
// serves the compacted view and deletes them.
func TestCompactionCrashAfterManifestCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	finishStudy(t, j, "a", 2, 10, StateDone)
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect an "old" segment file as if the unlink never ran. Give it
	// content that would corrupt the study if replayed.
	stale := filepath.Join(studyDir(path, "a"), segmentFileName(1))
	bogus := `{"seq":1,"type":"trial","study_id":"a","trial":{"id":888,"config":{"y":2},"final_acc":1}}` + "\n"
	if err := os.WriteFile(stale, []byte(bogus), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	defer j2.Close()
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("recovered %d trials, want 2", len(trials))
	}
	for _, tr := range trials {
		if tr.ID == 888 {
			t.Fatal("stale pre-compaction segment replayed")
		}
	}
	meta, err := j2.GetStudy("a")
	if err != nil || meta.State != StateDone {
		t.Fatalf("compacted meta lost: %+v, %v", meta, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale segment not pruned on open: %v", err)
	}
}

// TestCompactLeavesLiveStudiesAlone: compaction must never touch a study
// that can still record trials.
func TestCompactLeavesLiveStudiesAlone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	defer j.Close()
	finishStudy(t, j, "running", 2, 10, StateRunning)
	delta, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if delta.StudiesCompacted != 0 || delta.SegmentsRemoved != 0 {
		t.Fatalf("compaction touched a live study: %+v", delta)
	}
	events, _ := j.EventsSince("running", 0)
	metrics := 0
	for _, ev := range events {
		if ev.Type == "metric" {
			metrics++
		}
	}
	if metrics != 2*10 {
		t.Fatalf("live study metrics = %d, want 20", metrics)
	}
}

// TestCompactedStudyCanRestart: a terminal study compacted to summaries
// can still be re-started — new trials append to the compacted segment and
// resumed trials dedup against the replayed summary records.
func TestCompactedStudyCanRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	finishStudy(t, j, "a", 2, 10, StateDone)
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openTestJournal(t, path)
	defer j2.Close()
	if err := j2.SetStudyState("a", StateRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	// A resumed duplicate is skipped; a genuinely new trial is recorded.
	if err := j2.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5), mkTrial(9, 9, 0.8)}); err != nil {
		t.Fatal(err)
	}
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("post-restart trials = %d, want 3 (2 compacted + 1 new)", len(trials))
	}
}

// TestReplaySkipsTerminalStudyMetrics: even without compaction, boot
// replay must not mirror a terminal study's per-epoch metrics into memory
// — only live studies need their telemetry addressable for SSE resume.
func TestReplaySkipsTerminalStudyMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openTestJournal(t, path)
	finishStudy(t, j, "done", 2, 15, StateDone)
	finishStudy(t, j, "live", 2, 15, StateRunning)
	j.Close()

	j2 := openTestJournal(t, path)
	defer j2.Close()
	count := func(id string) (metrics, trials int) {
		events, _ := j2.EventsSince(id, 0)
		for _, ev := range events {
			switch ev.Type {
			case "metric":
				metrics++
			case "trial":
				trials++
			}
		}
		return
	}
	if m, tr := count("done"); m != 0 || tr != 2 {
		t.Fatalf("terminal study replayed metrics=%d trials=%d, want 0/2", m, tr)
	}
	if m, tr := count("live"); m != 30 || tr != 2 {
		t.Fatalf("live study replayed metrics=%d trials=%d, want 30/2", m, tr)
	}
}

// TestSegmentRotation: a study's segment rotates once it crosses the size
// threshold; every rotated segment replays.
func TestSegmentRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path, JournalOptions{NoSync: true, MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := j.AppendTrials("a", []Trial{mkTrial(i, i+1, 0.5)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	entries, err := os.ReadDir(studyDir(path, "a"))
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if isSegmentFileName(e.Name()) {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("rotation produced %d segments, want several", segs)
	}
	j2 := openTestJournal(t, path)
	defer j2.Close()
	trials, err := j2.StudyTrials("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != n {
		t.Fatalf("replayed %d/%d trials across rotated segments", len(trials), n)
	}
}

// TestMissingSealedSegmentIsCorruption: a sealed (non-active) segment was
// fsynced before its manifest commit, so its absence is lost acknowledged
// data — the open must refuse, not silently serve a partial study.
func TestMissingSealedSegmentIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path, JournalOptions{NoSync: true, MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := j.AppendTrials("a", []Trial{mkTrial(i, i+1, 0.5)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if err := os.Remove(filepath.Join(studyDir(path, "a"), segmentFileName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, JournalOptions{NoSync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing sealed segment opened as %v, want ErrCorrupt", err)
	}
}

// TestMetricAppendsDoNotRotate: rotation fsyncs, and the no-sync telemetry
// path is documented to never wait on the disk — an oversized active
// segment rotates only on the study's next durable append.
func TestMetricAppendsDoNotRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path, JournalOptions{NoSync: true, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 100; e++ {
		if err := j.AppendMetric("a", 0, e, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if segs := len(j.seg["a"].nums); segs != 1 {
		t.Fatalf("metric-only appends rotated to %d segments", segs)
	}
	// The next durable append seals the oversized segment.
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5)}); err != nil {
		t.Fatal(err)
	}
	if segs := len(j.seg["a"].nums); segs < 2 {
		t.Fatalf("durable append did not rotate the oversized segment (%d segments)", segs)
	}
}

// TestLegacyJournalMigratesOnOpen: opening a pre-shard single-file journal
// converts it to the directory layout with nothing lost, keeps the
// original bytes as a backup, and reopens cleanly.
func TestLegacyJournalMigratesOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hpod.journal")
	legacy := strings.Join([]string{
		`{"seq":1,"type":"study","study_id":"a","study":{"id":"a","name":"alpha","state":"created","created_at":"2026-01-01T00:00:00Z","updated_at":"2026-01-01T00:00:00Z"}}`,
		`{"seq":2,"type":"state","study_id":"a","state":"running"}`,
		`{"seq":3,"type":"metric","study_id":"a","metric":{"trial_id":0,"epoch":0,"value":0.4}}`,
		`{"seq":4,"type":"trial","study_id":"a","trial":{"id":0,"config":{"num_epochs":2},"final_acc":0.6,"best_acc":0.6,"epochs":2}}`,
		`{"seq":5,"type":"study","study_id":"b","study":{"id":"b","state":"created","created_at":"2026-01-02T00:00:00Z","updated_at":"2026-01-02T00:00:00Z"}}`,
		`{"seq":6,"type":"state","study_id":"a","state":"done","summary":{"Trials":1,"Resumed":0,"Memoized":0,"BestAcc":0.6}}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	j := openTestJournal(t, path)
	metas := j.ListStudies()
	if len(metas) != 2 || metas[0].ID != "a" || metas[1].ID != "b" {
		t.Fatalf("migrated studies = %+v", metas)
	}
	if metas[0].State != StateDone || metas[0].Name != "alpha" || metas[0].Trials != 1 {
		t.Fatalf("study a after migration = %+v", metas[0])
	}
	trials, err := j.StudyTrials("a")
	if err != nil || len(trials) != 1 || trials[0].FinalAcc != 0.6 {
		t.Fatalf("migrated trials = %+v, %v", trials, err)
	}
	// New writes land in the sharded layout.
	if err := j.AppendTrials("b", []Trial{mkTrial(0, 3, 0.7)}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("journal path is not a directory after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(path, legacyBackup)); err != nil {
		t.Fatalf("legacy backup missing: %v", err)
	}
	j2 := openTestJournal(t, path)
	defer j2.Close()
	if trials, _ := j2.StudyTrials("b"); len(trials) != 1 {
		t.Fatalf("post-migration append lost: %+v", trials)
	}
}

// TestMigrationAdoptsInterruptedStaging: a crash between the migration's
// two commit renames leaves a fully built staging directory and no journal
// path; the next open must adopt it rather than starting empty.
func TestMigrationAdoptsInterruptedStaging(t *testing.T) {
	tmp := t.TempDir()
	path := filepath.Join(tmp, "j")
	// Build a valid journal dir, then shove it into the staging position.
	j := openTestJournal(t, path)
	if err := j.CreateStudy(StudyMeta{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("a", []Trial{mkTrial(0, 2, 0.5)}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.Rename(path, path+migratingSuffix); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	defer j2.Close()
	trials, err := j2.StudyTrials("a")
	if err != nil || len(trials) != 1 {
		t.Fatalf("adopted staging lost data: %v, %v", trials, err)
	}
	if _, err := os.Stat(path + migratingSuffix); !os.IsNotExist(err) {
		t.Fatalf("staging dir still present after adoption: %v", err)
	}
}

// TestStudyIDsAreValidated: ids double as directory names, so path-hostile
// ids must be rejected before they reach the filesystem.
func TestStudyIDsAreValidated(t *testing.T) {
	j := openTestJournal(t, filepath.Join(t.TempDir(), "j"))
	defer j.Close()
	for _, id := range []string{"../evil", "a/b", ".", "..", "", "a b", strings.Repeat("x", 200)} {
		if err := j.CreateStudy(StudyMeta{ID: id}); err == nil {
			t.Fatalf("id %q accepted", id)
		} else if errors.Is(err, ErrExists) {
			t.Fatalf("id %q mis-classified: %v", id, err)
		}
	}
	if err := j.CreateStudy(StudyMeta{ID: "ok-id_1.2"}); err != nil {
		t.Fatalf("benign id rejected: %v", err)
	}
}

// TestJournalStats: Stats reflects the index and accumulates compaction
// counters.
func TestJournalStats(t *testing.T) {
	j := openTestJournal(t, filepath.Join(t.TempDir(), "j"))
	defer j.Close()
	finishStudy(t, j, "a", 2, 5, StateDone)
	st := j.Stats()
	if st.Studies != 1 || st.Segments != 1 || st.EventsRetained == 0 || st.Seq == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st = j.Stats()
	if st.Compaction.Runs != 1 || st.Compaction.StudiesCompacted != 1 {
		t.Fatalf("compaction stats = %+v", st.Compaction)
	}
}
