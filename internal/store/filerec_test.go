package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.json")
	rec := NewFileRecorder(path)
	if trials, err := rec.Load(); err != nil || len(trials) != 0 {
		t.Fatalf("empty load = %v, %v", trials, err)
	}
	failed := mkTrial(1, 8, 0)
	failed.Err = "boom"
	if err := rec.Record([]Trial{mkTrial(0, 2, 0.5), failed}); err != nil {
		t.Fatal(err)
	}

	// A fresh recorder (new process) sees everything, including the failure
	// so the study can rerun it.
	rec2 := NewFileRecorder(path)
	trials, err := rec2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("loaded %d trials", len(trials))
	}
	if v, ok := trials[0].Config["num_epochs"].(int); !ok || v != 2 {
		t.Fatalf("config ints lost: %#v", trials[0].Config)
	}
	// Re-recording the resumed success is a no-op; the rerun failure result
	// replaces nothing but appends.
	if err := rec2.Record([]Trial{trials[0], mkTrial(2, 8, 0.8)}); err != nil {
		t.Fatal(err)
	}
	rec3 := NewFileRecorder(path)
	trials, _ = rec3.Load()
	succeeded := 0
	for _, tr := range trials {
		if tr.Succeeded() {
			succeeded++
		}
	}
	if succeeded != 2 {
		t.Fatalf("after resume round: %d successes in %d trials", succeeded, len(trials))
	}
}

func TestCheckpointToJournalMigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "study.json")

	// Write a legacy checkpoint via the file recorder.
	orig := []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 4, 0.9)}
	rec := NewFileRecorder(ckpt)
	if err := rec.Record(orig); err != nil {
		t.Fatal(err)
	}

	j := openTestJournal(t, filepath.Join(dir, "j.journal"))
	n, err := MigrateCheckpoint(j, "legacy", ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("migrated %d trials, want 2", n)
	}
	// Idempotent: a second migration imports nothing new.
	if n, err = MigrateCheckpoint(j, "legacy", ckpt); err != nil || n != 0 {
		t.Fatalf("re-migration imported %d (%v)", n, err)
	}

	got, err := j.StudyTrials("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("journal holds %d trials", len(got))
	}
	for i, tr := range got {
		if tr.ID != orig[i].ID || tr.BestAcc != orig[i].BestAcc ||
			tr.Fingerprint != Fingerprint(orig[i].Config) {
			t.Fatalf("trial %d mismatch: %+v vs %+v", i, tr, orig[i])
		}
		if v, ok := tr.Config["num_epochs"].(int); !ok || v != orig[i].Epochs {
			t.Fatalf("trial %d config mangled: %#v", i, tr.Config)
		}
	}
	// Migrated results feed cross-study memoization.
	if hit, found := j.LookupMemo("", Fingerprint(orig[1].Config)); !found || hit.BestAcc != 0.9 {
		t.Fatalf("migrated trial not memoized: %+v found=%v", hit, found)
	}
	j.Close()

	// Round trip back out: journal trials re-encode to a valid checkpoint.
	raw, err := EncodeCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Fingerprint != got[1].Fingerprint {
		t.Fatalf("re-encoded checkpoint mismatch: %+v", back)
	}
	_ = os.Remove(ckpt)
}

func TestFingerprintSkipsInternalKeys(t *testing.T) {
	a := Fingerprint(map[string]interface{}{"lr": 0.1, "_bracket": 3})
	b := Fingerprint(map[string]interface{}{"lr": 0.1})
	if a != b {
		t.Fatalf("underscore keys must not affect identity: %q vs %q", a, b)
	}
	if a != "lr=0.1" {
		t.Fatalf("fingerprint format changed: %q", a)
	}
}
