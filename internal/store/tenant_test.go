package store

import (
	"path/filepath"
	"testing"
)

// TestEpochAccountingSurvivesRestartAndCompaction is the quota-accounting
// contract: per-study epoch usage (one per metric record) must re-derive
// exactly across a mid-run restart, a terminal transition, a re-run, and
// compaction — no double-count, no leak.
func TestEpochAccountingSurvivesRestartAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j := openTestJournal(t, path)
	if err := j.CreateStudy(StudyMeta{ID: "a", Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "b", Tenant: "umbrella"}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState("a", StateRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 5; e++ {
		if err := j.AppendMetric("a", 1, e, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendMetric("b", 1, 1, 0.4); err != nil {
		t.Fatal(err)
	}
	if got := j.StudyEpochs("a"); got != 5 {
		t.Fatalf("live StudyEpochs(a) = %d, want 5", got)
	}
	if got := j.TenantEpochs("acme"); got != 5 {
		t.Fatalf("live TenantEpochs(acme) = %d, want 5", got)
	}

	// Kill mid-run: the live count must re-derive from replayed metrics.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j = openTestJournal(t, path)
	if got := j.StudyEpochs("a"); got != 5 {
		t.Fatalf("post-restart StudyEpochs(a) = %d, want 5 (re-derived from metric replay)", got)
	}
	if got := j.TenantEpochs("umbrella"); got != 1 {
		t.Fatalf("post-restart TenantEpochs(umbrella) = %d, want 1", got)
	}

	// Finish the run (3 more epochs) — the terminal summary absorbs the
	// live count; a canceled study is charged for what it ran, exactly once.
	for e := 6; e <= 8; e++ {
		if err := j.AppendMetric("a", 1, e, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.SetStudyState("a", StateDone, "", &Summary{Trials: 1, BestAcc: 0.6}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState("b", StateCanceled, "canceled by operator", nil); err != nil {
		t.Fatal(err)
	}
	meta, err := j.GetStudy("a")
	if err != nil {
		t.Fatal(err)
	}
	if meta.EpochsExecuted != 8 || meta.Tenant != "acme" {
		t.Fatalf("terminal meta = {EpochsExecuted: %d, Tenant: %q}, want {8, acme}", meta.EpochsExecuted, meta.Tenant)
	}
	if got := j.TenantEpochs("umbrella"); got != 1 {
		t.Fatalf("canceled-study TenantEpochs(umbrella) = %d, want 1 (charged once, not leaked)", got)
	}

	// A re-run accumulates on top of the durable total.
	if err := j.SetStudyState("a", StateRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	for e := 1; e <= 2; e++ {
		if err := j.AppendMetric("a", 2, e, 0.7); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.StudyEpochs("a"); got != 10 {
		t.Fatalf("re-run StudyEpochs(a) = %d, want 10 (8 durable + 2 live)", got)
	}
	if err := j.SetStudyState("a", StateDone, "", &Summary{Trials: 1, BestAcc: 0.7}); err != nil {
		t.Fatal(err)
	}

	// Compaction drops the metric records; the usage must not move.
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := j.StudyEpochs("a"); got != 10 {
		t.Fatalf("post-compaction StudyEpochs(a) = %d, want 10", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j = openTestJournal(t, path)
	defer j.Close()
	if got := j.StudyEpochs("a"); got != 10 {
		t.Fatalf("post-compaction-restart StudyEpochs(a) = %d, want 10", got)
	}
	if got := j.TenantEpochs("acme"); got != 10 {
		t.Fatalf("post-compaction-restart TenantEpochs(acme) = %d, want 10", got)
	}
	meta, err = j.GetStudy("a")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Tenant != "acme" {
		t.Fatalf("tenant tag lost across compaction: %q", meta.Tenant)
	}

	// Snapshot readers fold the same numbers without the journal lock.
	snapMeta, _, err := SnapshotStudyRecords(path, "a")
	if err != nil {
		t.Fatal(err)
	}
	if snapMeta.EpochsExecuted != 10 || snapMeta.Tenant != "acme" {
		t.Fatalf("snapshot meta = {EpochsExecuted: %d, Tenant: %q}, want {10, acme}", snapMeta.EpochsExecuted, snapMeta.Tenant)
	}
}
