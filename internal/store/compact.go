package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"
)

// CompactionStats counts what compaction has reclaimed. Returned per run
// by Compact and cumulatively by Stats (the daemon surfaces the latter in
// /healthz).
type CompactionStats struct {
	// Runs counts completed Compact invocations.
	Runs int `json:"runs"`
	// StudiesCompacted counts studies rewritten down to summary records.
	StudiesCompacted int `json:"studies_compacted"`
	// RecordsDropped counts journal records removed from disk (per-epoch
	// metrics, superseded state transitions, prune markers).
	RecordsDropped int64 `json:"records_dropped"`
	// SegmentsRemoved counts segment files unlinked.
	SegmentsRemoved int `json:"segments_removed"`
	// BytesReclaimed sums the sizes of unlinked segment files.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// VerifyRefusals counts studies left uncompacted because the
	// SetCompactVerify hook rejected them (replay divergence/corruption).
	VerifyRefusals int `json:"verify_refusals"`
}

// add folds another run's counters in.
func (s *CompactionStats) add(d CompactionStats) {
	s.Runs += d.Runs
	s.StudiesCompacted += d.StudiesCompacted
	s.RecordsDropped += d.RecordsDropped
	s.SegmentsRemoved += d.SegmentsRemoved
	s.BytesReclaimed += d.BytesReclaimed
	s.VerifyRefusals += d.VerifyRefusals
}

// SetCompactVerify installs a pre-compaction gate: before a study's full
// record stream is dropped, fn is called with the study id, and a non-nil
// error refuses compaction for that study (the run continues with the
// rest). The daemon wires this to replay verification so compaction can
// never destroy the evidence of a divergent or corrupt decision stream —
// once the per-epoch records are gone, the byte-match contract of
// docs/JOURNAL.md §8 is unverifiable. Pass nil to disable. fn is called
// without journal locks held and may use the journal's read API.
func (j *Journal) SetCompactVerify(fn func(id string) error) {
	j.mu.Lock()
	j.compactVerify = fn
	j.mu.Unlock()
}

// JournalStats is a point-in-time description of the store for health
// endpoints: index sizes, on-disk segment count and cumulative compaction
// counters.
type JournalStats struct {
	Studies        int `json:"studies"`
	Segments       int `json:"segments"`
	EventsRetained int `json:"events_retained"`
	// EventWindows counts studies with a resident in-memory event window
	// (terminal studies lose theirs at compaction/boot, so this tracks
	// live studies rather than total history).
	EventWindows int `json:"event_windows"`
	// OpenSegmentHandles counts studies holding an open append fd, bounded
	// by JournalOptions.MaxOpenSegments.
	OpenSegmentHandles int             `json:"open_segment_handles"`
	Seq                uint64          `json:"seq"`
	Compaction         CompactionStats `json:"compaction"`
}

// Stats reports the journal's current shape and cumulative compaction
// counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Studies: len(j.studies), Seq: j.seq, Compaction: j.stats,
		EventWindows: len(j.windows), OpenSegmentHandles: j.lru.Len(),
	}
	for _, ss := range j.seg {
		st.Segments += len(ss.nums)
	}
	for _, w := range j.windows {
		st.EventsRetained += len(w.buf)
	}
	return st
}

// Compact rewrites every eligible terminal study down to its summary
// records: one "study" record carrying the final metadata and one "trial"
// record per recorded trial. Per-epoch metric telemetry, prune markers and
// superseded state transitions are dropped — the final values all live in
// the trial records, so no acknowledged result is lost. Returns the run's
// counters.
//
// Compaction is crash-safe: the rewritten segment is fully written and
// fsynced under a fresh segment number, and only then does a manifest
// rewrite commit the swap. A crash before the commit leaves the old
// segments authoritative (the new file is deleted as debris on the next
// Open); a crash after it leaves the new segment authoritative (the old
// files are deleted on the next Open).
func (j *Journal) Compact() (CompactionStats, error) {
	// One compaction run at a time: the background ticker and the admin
	// endpoint must not interleave per-study swaps.
	j.compactMu.Lock()
	defer j.compactMu.Unlock()
	var delta CompactionStats
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return delta, ErrClosed
	}
	var candidates []string
	for _, id := range j.order {
		if j.compactableLocked(id) {
			candidates = append(candidates, id)
		}
	}
	j.mu.Unlock()
	for _, id := range candidates {
		d, err := j.compactStudy(id)
		delta.add(d)
		if err != nil {
			return delta, err
		}
	}
	delta.Runs = 1
	j.mu.Lock()
	j.stats.add(delta)
	j.mu.Unlock()
	obsCompactionRuns.Inc()
	obsCompactedStudies.Add(uint64(delta.StudiesCompacted))
	obsCompactionDropped.Add(uint64(delta.RecordsDropped))
	obsCompactionBytes.Add(uint64(delta.BytesReclaimed))
	return delta, nil
}

// compactableLocked reports whether a study would shrink under compaction:
// terminal, and carrying either more records than its compacted form or
// more than one segment file. Callers must hold j.mu.
func (j *Journal) compactableLocked(id string) bool {
	meta, ss := j.studies[id], j.seg[id]
	if meta == nil || ss == nil || !meta.State.Terminal() {
		return false
	}
	return ss.recs > len(j.trials[id])+1 || len(ss.nums) > 1
}

// compactStudy rewrites one terminal study. It snapshots the index state,
// writes the replacement segment without holding the append lock, then
// revalidates and commits under the lock — a study that advanced in
// between (an operator re-started it) is left alone for a later run.
func (j *Journal) compactStudy(id string) (CompactionStats, error) {
	var d CompactionStats
	j.mu.Lock()
	verify := j.compactVerify
	j.mu.Unlock()
	if verify != nil {
		if err := verify(id); err != nil {
			// Refusing is the whole point: compaction would drop the very
			// records a divergence investigation needs. Keep the study as-is
			// and let the operator run POST /v1/studies/{id}/verify.
			obsCompactionVerifyRefusals.Inc()
			log.Printf("store: refusing to compact study %s: pre-compaction replay verification failed: %v", id, err)
			d.VerifyRefusals = 1
			return d, nil
		}
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return d, ErrClosed
	}
	if !j.compactableLocked(id) {
		j.mu.Unlock()
		return d, nil
	}
	ss := j.seg[id]
	snapMeta := *j.studies[id]
	snapTrials := append([]Trial(nil), j.trials[id]...)
	snapSeq := ss.lastSeq
	oldNums := append([]int(nil), ss.nums...)
	oldRecs := ss.recs
	j.mu.Unlock()

	// Build and persist the compacted segment under the next number. All
	// records carry the study's last pre-compaction sequence number: replay
	// only needs seq as a global high-water mark and an interleaving key,
	// and reusing it keeps compaction from consuming live sequence space.
	dir := studyDir(j.dir, id)
	next := oldNums[len(oldNums)-1] + 1
	var buf bytes.Buffer
	recs := make([]record, 0, 1+len(snapTrials))
	recs = append(recs, record{Seq: snapSeq, Type: recStudy, StudyID: id, Study: &snapMeta, At: snapMeta.UpdatedAt})
	for i := range snapTrials {
		// Long epoch histories dominate compacted segment size; store them
		// delta-encoded (the index keeps the decoded copy it already holds).
		tc := encodeTrialHistory(snapTrials[i])
		recs = append(recs, record{Seq: snapSeq, Type: recTrial, StudyID: id, Trial: &tc, At: snapMeta.UpdatedAt})
	}
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return d, fmt.Errorf("store: encoding compacted record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := filepath.Join(dir, segmentFileName(next)+".tmp")
	if err := writeFileSync(tmp, buf.Bytes(), j.opts.NoSync); err != nil {
		return d, err
	}
	final := filepath.Join(dir, segmentFileName(next))

	// Commit: swap the in-memory segment table and rewrite the manifest.
	// commitMu is held so the group-commit path never fsyncs the active
	// segment's file handle while this closes it. The rename onto the
	// final segment name happens under the lock too: only after
	// revalidation is it known that no racing rotation claimed the same
	// number (renaming earlier could clobber that rotation's live file).
	j.commitMu.Lock()
	j.mu.Lock()
	if j.closed || ss.lastSeq != snapSeq || !j.studies[id].State.Terminal() {
		// The study advanced (or the store is closing) since the snapshot:
		// abandon this attempt and leave the staged bytes for the next
		// Open's debris sweep (or try removing them now).
		j.mu.Unlock()
		j.commitMu.Unlock()
		os.Remove(tmp)
		return d, nil
	}
	if err := os.Rename(tmp, final); err != nil {
		j.mu.Unlock()
		j.commitMu.Unlock()
		os.Remove(tmp)
		return d, fmt.Errorf("store: placing compacted segment: %w", err)
	}
	if err := syncDir(dir, j.opts.NoSync); err != nil {
		j.mu.Unlock()
		j.commitMu.Unlock()
		os.Remove(final)
		return d, err
	}
	if ss.w != nil {
		// Buffered-but-unflushed bytes die with the old segment; every
		// record they encode is already in the snapshot just persisted.
		ss.f.Close()
		ss.f, ss.w = nil, nil
	}
	j.detachOpenLocked(ss)
	delete(j.dirtySet, id)
	ss.nums = []int{next}
	ss.recs = 1 + len(snapTrials)
	ss.size = int64(buf.Len())
	if err := j.writeManifestLocked(); err != nil {
		// The manifest still lists the old segments, so they remain
		// authoritative; the new file becomes debris for the next Open.
		ss.nums = oldNums
		ss.recs = oldRecs
		j.mu.Unlock()
		j.commitMu.Unlock()
		os.Remove(final)
		return d, err
	}
	// Mirror the on-disk drop in memory: a compacted study's event window
	// and promotion history are evicted wholesale — SSE resume is served
	// purely from index snapshots from here on, so neither map grows with
	// terminal-study count.
	delete(j.windows, id)
	delete(j.promotes, id)
	d.StudiesCompacted = 1
	d.RecordsDropped = int64(oldRecs - ss.recs)
	j.mu.Unlock()
	j.commitMu.Unlock()

	// The manifest no longer references the old segments; unlink them.
	// Failures are harmless — the next Open prunes unlisted files.
	for _, n := range oldNums {
		p := filepath.Join(dir, segmentFileName(n))
		if st, err := os.Stat(p); err == nil {
			d.BytesReclaimed += st.Size()
		}
		if err := os.Remove(p); err == nil {
			d.SegmentsRemoved++
		}
	}
	return d, nil
}

// startCompactor runs Compact every interval until Close.
func (j *Journal) startCompactor(interval time.Duration) {
	j.compactStop = make(chan struct{})
	j.compactDone = make(chan struct{})
	stop, done := j.compactStop, j.compactDone
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := j.Compact(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}
	}()
}
