package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

// buildBenchJournal populates a journal with terminal studies carrying
// metricsPer per-epoch metric points each (plus a couple of live studies),
// optionally compacting before close. It returns the journal dir.
func buildBenchJournal(b *testing.B, terminal, trialsPer, metricsPer int, compact bool) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "j")
	j, err := OpenJournal(path, JournalOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < terminal; s++ {
		id := fmt.Sprintf("done-%03d", s)
		if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
			b.Fatal(err)
		}
		for tr := 0; tr < trialsPer; tr++ {
			for e := 0; e < metricsPer; e++ {
				if err := j.AppendMetric(id, tr, e, 0.5); err != nil {
					b.Fatal(err)
				}
			}
			if err := j.AppendTrials(id, []Trial{mkTrial(tr, tr+2, 0.5)}); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.SetStudyState(id, StateDone, "", &Summary{Trials: trialsPer}); err != nil {
			b.Fatal(err)
		}
	}
	for s := 0; s < 2; s++ {
		id := fmt.Sprintf("live-%d", s)
		if err := j.CreateStudy(StudyMeta{ID: id}); err != nil {
			b.Fatal(err)
		}
		if err := j.SetStudyState(id, StateRunning, "", nil); err != nil {
			b.Fatal(err)
		}
		if err := j.AppendTrials(id, []Trial{mkTrial(0, 2, 0.5)}); err != nil {
			b.Fatal(err)
		}
	}
	if compact {
		if _, err := j.Compact(); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkBootReplay measures OpenJournal over a 50-terminal-study
// journal at increasing per-epoch metric volume, compacted and not. The
// acceptance property: compacted replay time is flat in the metric volume
// (the dropped history is never read), while uncompacted replay grows
// with it.
func BenchmarkBootReplay(b *testing.B) {
	for _, compact := range []bool{false, true} {
		for _, metricsPer := range []int{10, 100, 400} {
			name := fmt.Sprintf("compacted=%v/metricsPerTrial=%d", compact, metricsPer)
			b.Run(name, func(b *testing.B) {
				path := buildBenchJournal(b, 50, 4, metricsPer, compact)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j, err := OpenJournal(path, JournalOptions{NoSync: true})
					if err != nil {
						b.Fatal(err)
					}
					if n := len(j.ListStudies()); n != 52 {
						b.Fatalf("replayed %d studies", n)
					}
					if err := j.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
