package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot reading: a read-only view of one study's record stream taken
// straight from the journal directory, without opening the journal (no
// flock, no index replay, no writes). This is what offline verifiers need
// — `hpo replay` must be able to re-derive a study's decisions while the
// daemon still holds the directory's LOCK.
//
// The snapshot is torn-tail tolerant on the active (highest-numbered)
// segment only, exactly like Journal.StudyRecords: a half-flushed final
// line is in-flight, not corruption. Because the writer may rotate or
// compact segments between our manifest read and the file reads, a
// missing sealed segment triggers one full retry from the manifest before
// it is reported as corruption.

// SnapshotStudyRecords reads one study's records from the journal
// directory at dir without acquiring the journal lock. It returns the
// study's reconstructed metadata (folded from its study/state records, so
// Spec and the latest known State are available) and the record stream in
// sequence order, decoded exactly like Journal.StudyRecords. ErrNotFound
// is returned when the manifest does not list the study.
func SnapshotStudyRecords(dir, id string) (StudyMeta, []StudyRecord, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		meta, recs, err := snapshotOnce(dir, id)
		if err == nil {
			return meta, recs, nil
		}
		lastErr = err
	}
	return StudyMeta{}, nil, lastErr
}

// snapshotOnce is one manifest-read → segment-read pass.
func snapshotOnce(dir, id string) (StudyMeta, []StudyRecord, error) {
	m, ok, err := readManifest(dir)
	if err != nil {
		return StudyMeta{}, nil, err
	}
	if !ok {
		return StudyMeta{}, nil, fmt.Errorf("%w: no journal at %s", ErrNotFound, dir)
	}
	var segs []int
	found := false
	for _, ms := range m.Studies {
		if ms.ID == id {
			segs, found = ms.Segments, true
			break
		}
	}
	if !found {
		return StudyMeta{}, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}

	sdir := studyDir(dir, id)
	var recs []record
	for i, n := range segs {
		active := i == len(segs)-1
		path := filepath.Join(sdir, segmentFileName(n))
		raw, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			if active {
				continue // listed but never written (no records yet)
			}
			// The writer may have compacted this segment away after we
			// read the manifest; the caller retries from a fresh manifest.
			return StudyMeta{}, nil, fmt.Errorf("%w: sealed segment missing: %s", ErrCorrupt, segmentFileName(n))
		}
		if err != nil {
			return StudyMeta{}, nil, fmt.Errorf("store: reading segment: %w", err)
		}
		rs, _, err := parseSegment(raw, path, active)
		if err != nil {
			return StudyMeta{}, nil, err
		}
		recs = append(recs, rs...)
	}
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })

	meta := StudyMeta{ID: id}
	out := make([]StudyRecord, 0, len(recs))
	for _, rec := range recs {
		// Fold study/state records into the meta exactly like the journal's
		// in-memory index (Journal.apply).
		switch rec.Type {
		case recStudy:
			if rec.Study != nil {
				meta = *rec.Study
				if meta.State == "" {
					meta.State = StateCreated
				}
			}
		case recState:
			if rec.State != "" {
				meta.State = rec.State
				meta.Error = rec.Error
				meta.UpdatedAt = rec.At
				if rec.Summary != nil {
					meta.Trials = rec.Summary.Trials
					meta.Resumed = rec.Summary.Resumed
					meta.Memoized = rec.Summary.Memoized
					meta.BestAcc = rec.Summary.BestAcc
					if rec.Summary.Epochs > 0 || rec.State.Terminal() {
						meta.EpochsExecuted = rec.Summary.Epochs
					}
				}
			}
		default:
			// Trial/metric/prune/promote records carry no study meta.
		}
		sr := StudyRecord{Seq: rec.Seq, Type: rec.Type, At: rec.At, State: rec.State,
			Metric: rec.Metric, Prune: rec.Prune, Promote: rec.Promote}
		if rec.Type == recState && rec.State == "" {
			continue
		}
		if rec.Type == recStudy && rec.Study != nil {
			sr.State = rec.Study.State
		}
		if rec.Trial != nil {
			t := decodeTrialHistory(*rec.Trial)
			t.Config = NormaliseConfig(t.Config)
			sr.Trial = &t
		}
		out = append(out, sr)
	}
	return meta, out, nil
}
