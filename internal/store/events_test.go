package store

import (
	"path/filepath"
	"testing"
)

// TestEventsWindowSnapshotThenTail: when an SSE client resumes from a
// sequence number that has aged out of the retention window, EventsSince
// must return a synthesized snapshot of the study's current state followed
// by the retained tail, with non-decreasing sequence numbers throughout.
func TestEventsWindowSnapshotThenTail(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j"), JournalOptions{NoSync: true, RetainEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTrials("s", []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 3, 0.6)}); err != nil {
		t.Fatal(err)
	}
	// Overflow the window with telemetry so the early events are evicted.
	for e := 0; e < 50; e++ {
		if err := j.AppendMetric("s", 2, e, 0.01*float64(e)); err != nil {
			t.Fatal(err)
		}
	}

	events, tail := j.EventsSince("s", 0)
	if len(events) == 0 {
		t.Fatal("no events for below-window resume")
	}
	if !events[0].Snapshot || events[0].Type != "study" {
		t.Fatalf("resume must start with a study snapshot, got %+v", events[0])
	}
	snapTrials, tailMetrics := 0, 0
	var lastSeq uint64
	for i, ev := range events {
		if ev.Seq < lastSeq {
			t.Fatalf("sequence regressed at %d: %d after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch {
		case ev.Snapshot && ev.Type == "trial":
			snapTrials++
		case !ev.Snapshot && ev.Type == "metric":
			tailMetrics++
		}
	}
	if snapTrials != 2 {
		t.Fatalf("snapshot carried %d trials, want 2", snapTrials)
	}
	if tailMetrics == 0 || tailMetrics > 8 {
		t.Fatalf("retained tail carried %d metrics, want 1..8", tailMetrics)
	}

	// Resuming from the returned tail yields nothing new — the client has
	// converged.
	rest, _ := j.EventsSince("s", tail)
	if len(rest) != 0 {
		t.Fatalf("resume from tail returned %d events", len(rest))
	}
	// A client that disconnected mid-snapshot resumes at exactly the
	// boundary seq (every snapshot event carries it as its SSE id) and
	// must get the whole snapshot again — not a tail missing the trial
	// events it never received.
	reentry, _ := j.EventsSince("s", events[0].Seq)
	if len(reentry) == 0 || !reentry[0].Snapshot {
		t.Fatalf("mid-snapshot resume lost the snapshot: %+v", reentry)
	}
	reTrials := 0
	for _, ev := range reentry {
		if ev.Snapshot && ev.Type == "trial" {
			reTrials++
		}
	}
	if reTrials != 2 {
		t.Fatalf("mid-snapshot resume carried %d trials, want 2", reTrials)
	}

	// A resume point still inside the window replays verbatim: no snapshot.
	inWindow, _ := j.EventsSince("s", tail-3)
	if len(inWindow) != 3 {
		t.Fatalf("in-window resume returned %d events, want 3", len(inWindow))
	}
	for _, ev := range inWindow {
		if ev.Snapshot {
			t.Fatalf("in-window resume synthesized a snapshot: %+v", ev)
		}
	}
}

// TestEventsWindowUnboundedOption: negative RetainEvents disables the
// window (everything replays verbatim, as the pre-shard journal did).
func TestEventsWindowUnboundedOption(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j"), JournalOptions{NoSync: true, RetainEvents: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3000; e++ {
		if err := j.AppendMetric("s", 0, e, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	events, _ := j.EventsSince("s", 0)
	if len(events) != 3001 { // study + metrics
		t.Fatalf("unbounded window retained %d events, want 3001", len(events))
	}
}

// TestCompactionEvictsTerminalWindow: compaction drops a terminal study's
// event window entirely; its SSE resume is served purely from an index
// snapshot — one study event carrying the terminal state, one trial event
// per recorded trial, no metrics — and a caught-up client gets nothing.
func TestCompactionEvictsTerminalWindow(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j"), JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		if err := j.AppendMetric("s", 0, e, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendTrials("s", []Trial{mkTrial(0, 2, 0.5)}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState("s", StateDone, "", nil); err != nil {
		t.Fatal(err)
	}
	if j.Stats().EventWindows != 1 {
		t.Fatalf("windows before compaction = %d, want 1", j.Stats().EventWindows)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().EventWindows; got != 0 {
		t.Fatalf("windows after compaction = %d, want 0 (evicted)", got)
	}

	events, tail := j.EventsSince("s", 0)
	if len(events) != 2 {
		t.Fatalf("snapshot resume returned %d events, want study+trial: %+v", len(events), events)
	}
	if !events[0].Snapshot || events[0].Type != "study" || events[0].State != StateDone {
		t.Fatalf("snapshot study event = %+v, want terminal state", events[0])
	}
	if !events[1].Snapshot || events[1].Type != "trial" || events[1].Trial == nil {
		t.Fatalf("snapshot trial event = %+v", events[1])
	}
	// A caught-up client has converged; nothing replays past the boundary.
	if rest, _ := j.EventsSince("s", tail); len(rest) != 0 {
		t.Fatalf("resume from tail returned %d events", len(rest))
	}
	if rest, _ := j.EventsSince("s", events[0].Seq); len(rest) != 0 {
		t.Fatalf("resume at the boundary returned %d events", len(rest))
	}
}
