package store

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"
)

// Journal record types. Every JSONL line in a segment carries exactly one
// of these in its "type" field; recordTypes (store.go) enumerates them for
// the docs spec check.
const (
	recStudy   = "study"
	recState   = "state"
	recTrial   = "trial"
	recMetric  = "metric"
	recPrune   = "prune"
	recPromote = "promote"
)

// record is one JSONL journal line. Exactly one of Study / Trial / State /
// Metric / Prune / Promote payloads is set, per Type.
type record struct {
	Seq     uint64         `json:"seq"`
	Type    string         `json:"type"` // one of recordTypes
	StudyID string         `json:"study_id,omitempty"`
	Study   *StudyMeta     `json:"study,omitempty"`
	State   StudyState     `json:"state,omitempty"`
	Error   string         `json:"error,omitempty"`
	Summary *Summary       `json:"summary,omitempty"`
	Trial   *Trial         `json:"trial,omitempty"`
	Metric  *MetricPoint   `json:"metric,omitempty"`
	Prune   *PruneDecision `json:"prune,omitempty"`
	Promote *Promotion     `json:"promote,omitempty"`
	At      time.Time      `json:"at"`
}

// Event is a journal record surfaced to watchers (the server's per-trial
// event stream). Seq orders events globally and doubles as the SSE id, so
// clients can resume a stream with "?since=<seq>". Snapshot marks events
// synthesized from the index when a resume point has aged out of the
// in-memory retention window (see EventsSince).
type Event struct {
	Seq      uint64         `json:"seq"`
	Type     string         `json:"type"`
	StudyID  string         `json:"study_id"`
	State    StudyState     `json:"state,omitempty"`
	Error    string         `json:"error,omitempty"`
	Trial    *Trial         `json:"trial,omitempty"`
	Metric   *MetricPoint   `json:"metric,omitempty"`
	Prune    *PruneDecision `json:"prune,omitempty"`
	Promote  *Promotion     `json:"promote,omitempty"`
	Snapshot bool           `json:"snapshot,omitempty"`
}

// Defaults for JournalOptions zero values.
const (
	// DefaultRetainEvents is the per-study in-memory event window used when
	// JournalOptions.RetainEvents is zero.
	DefaultRetainEvents = 1024
	// DefaultMaxSegmentBytes is the segment rotation threshold used when
	// JournalOptions.MaxSegmentBytes is zero.
	DefaultMaxSegmentBytes = 4 << 20
	// DefaultMaxOpenSegments is the open segment-handle ceiling used when
	// JournalOptions.MaxOpenSegments is zero.
	DefaultMaxOpenSegments = 128
)

// JournalOptions tunes Open.
type JournalOptions struct {
	// NoSync skips fsync after commits (tests, benchmarks). The journal is
	// still written append-only and crash recovery still works up to the OS
	// page cache.
	NoSync bool
	// RetainEvents bounds the in-memory per-study event window that feeds
	// SSE resume: only the last RetainEvents events of each study stay
	// addressable by sequence number; resuming below the window returns a
	// synthesized snapshot instead (see EventsSince). 0 means
	// DefaultRetainEvents; negative means unbounded (tests).
	RetainEvents int
	// MaxSegmentBytes rotates a study's active segment once it grows past
	// this size, so compaction and recovery work file-at-a-time. 0 means
	// DefaultMaxSegmentBytes; negative disables rotation.
	MaxSegmentBytes int64
	// CompactInterval, when positive, runs Compact in the background on
	// that period until Close.
	CompactInterval time.Duration
	// MaxOpenSegments bounds how many studies keep an open append handle at
	// once: the least-recently-written study's segment is flushed, fsynced
	// and closed when the ceiling is hit, and transparently reopened on its
	// next append — so a daemon serving thousands of live studies holds a
	// constant number of file descriptors instead of one per study ever
	// touched. 0 means DefaultMaxOpenSegments; negative means unbounded.
	MaxOpenSegments int
}

// studySegments is the per-study file state: which segment numbers are
// live, the open append handle on the highest one, and the counters that
// drive rotation and compaction eligibility.
type studySegments struct {
	nums    []int // live segment numbers, ascending; the last is active
	f       *os.File
	w       *bufio.Writer
	size    int64  // bytes in the active segment
	recs    int    // records across all live segments (on-disk, pre-filter)
	lastSeq uint64 // seq of the study's most recent record
	// lruEl is the study's slot in the open-handle LRU while f is open.
	lruEl *list.Element
}

// Journal is the persistent study store: a sharded append-only JSONL
// write-ahead log (one directory of per-study segment files plus a
// manifest, see docs/JOURNAL.md) and an in-memory index rebuilt on Open.
// All methods are safe for concurrent use.
//
// Durability uses group commit: every append flushes and fsyncs, but
// concurrent appenders coalesce onto a single fsync pass (the first writer
// through syncs everything buffered so far; the rest observe their
// sequence number already durable and return without touching the disk).
//
// Terminal studies are compactable: Compact (or the background compactor)
// rewrites them down to their summary records — the study metadata and the
// final trial results — dropping per-epoch metric telemetry, so boot
// replay time scales with live studies rather than total history.
type Journal struct {
	mu      sync.Mutex // guards file writes and the index
	dir     string
	opts    JournalOptions
	retain  int   // resolved RetainEvents (0 = unbounded)
	maxSeg  int64 // resolved MaxSegmentBytes (0 = never rotate)
	maxOpen int   // resolved MaxOpenSegments (0 = unbounded)
	closed  bool
	seq     uint64
	// lru orders studies with open append handles, most recent first.
	lru *list.List

	lock *os.File // flock'd LOCK file — the single-writer guard

	studies map[string]*StudyMeta
	order   []string           // study ids in creation order
	trials  map[string][]Trial // per-study, append order
	// seenOK tracks successful fingerprints per study (resume dedup).
	seenOK map[string]map[string]bool
	// memo maps scope+fingerprint → first successful trial across all
	// studies (see Trial.Scope).
	memo map[string]Trial
	// promotes holds each study's rung-promotion decisions in append order
	// (dropped by compaction along with the other telemetry).
	promotes map[string][]Promotion
	// epochsLive counts metric records appended since the study's last
	// terminal transition — the in-flight half of epoch accounting. Each
	// terminal state record absorbs it into Summary.Epochs (and from there
	// into StudyMeta.EpochsExecuted), so per-tenant usage re-derives
	// exactly from replay: terminal runs from the durable summary, the
	// live run from its replayed metric records.
	epochsLive map[string]int
	// seg tracks each study's live segment files; segOrder mirrors the
	// manifest's study order (creation order, including studies whose
	// first record never landed).
	seg      map[string]*studySegments
	segOrder []string
	// dirtySet names studies with buffered writes awaiting the next commit.
	dirtySet map[string]struct{}
	// retired holds segment file handles sealed by rotation. They are
	// already flushed and fsynced but must not be closed under j.mu alone:
	// a commit in flight may have collected the handle for its lock-free
	// fsync pass. They are closed under commitMu (commit, Close), which
	// serialises with every fsync.
	retired []*os.File
	// retiredDirty holds handles closed by LRU eviction: flushed but not
	// yet fsynced — eviction must not pay an fsync on the append path. The
	// next group commit (or Close) fsyncs them before closing, so the
	// durability point never advances past unsynced evicted records.
	retiredDirty []*os.File
	// windows holds the per-study retained event ring served to watchers.
	windows map[string]*eventWindow
	// watchers are closed-and-replaced on every append (broadcast).
	watch chan struct{}

	// stats accumulates compaction counters for Stats / healthz.
	stats CompactionStats
	// compactMu serialises whole compaction runs (ticker vs admin endpoint).
	compactMu   sync.Mutex
	compactStop chan struct{}
	compactDone chan struct{}
	// compactVerify, when set, gates per-study compaction: a non-nil error
	// leaves the study's full record stream on disk (see SetCompactVerify).
	compactVerify func(id string) error

	// commitMu serialises fsyncs; synced is the highest durable seq.
	commitMu sync.Mutex
	synced   uint64
}

// OpenJournal opens (or creates) the sharded journal directory at path and
// replays it into memory. A legacy single-file journal at path is migrated
// to the sharded layout first (the original bytes are preserved inside the
// directory as legacy.jsonl.bak). The store is flock'd exclusively — a
// second process opening the same journal gets ErrLocked rather than
// silently interleaving writes. A partially written final record in a
// study's active segment — the signature of a crash mid append — is
// detected and truncated away; corruption anywhere else returns ErrCorrupt.
func OpenJournal(path string, opts JournalOptions) (*Journal, error) {
	j := &Journal{
		dir:        path,
		opts:       opts,
		retain:     resolveRetain(opts.RetainEvents),
		maxSeg:     resolveMaxSeg(opts.MaxSegmentBytes),
		maxOpen:    resolveMaxOpen(opts.MaxOpenSegments),
		lru:        list.New(),
		studies:    make(map[string]*StudyMeta),
		trials:     make(map[string][]Trial),
		seenOK:     make(map[string]map[string]bool),
		memo:       make(map[string]Trial),
		promotes:   make(map[string][]Promotion),
		epochsLive: make(map[string]int),
		seg:        make(map[string]*studySegments),
		dirtySet:   make(map[string]struct{}),
		windows:    make(map[string]*eventWindow),
		watch:      make(chan struct{}),
	}
	fi, err := os.Stat(path)
	switch {
	case err == nil && fi.IsDir():
		// Already sharded.
	case err == nil:
		// Legacy single-file journal: migrate in place.
		if err := migrateLegacyJournal(path, opts.NoSync); err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		if err := adoptOrInitDir(path, opts.NoSync); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: stat journal: %w", err)
	}
	lf, err := os.OpenFile(filepath.Join(path, lockName), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal lock: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	j.lock = lf
	// Replay (and possibly truncate torn active-segment tails) only after
	// the lock is held, so recovery never races a live writer. Closing the
	// lock file releases the flock.
	if err := j.replay(); err != nil {
		lf.Close()
		return nil, err
	}
	j.synced = j.seq
	if opts.CompactInterval > 0 {
		j.startCompactor(opts.CompactInterval)
	}
	return j, nil
}

// resolveRetain maps the RetainEvents option onto the window cap (0 =
// unbounded).
func resolveRetain(n int) int {
	switch {
	case n == 0:
		return DefaultRetainEvents
	case n < 0:
		return 0
	}
	return n
}

// resolveMaxSeg maps the MaxSegmentBytes option onto the rotation
// threshold (0 = never rotate).
func resolveMaxSeg(n int64) int64 {
	switch {
	case n == 0:
		return DefaultMaxSegmentBytes
	case n < 0:
		return 0
	}
	return n
}

// resolveMaxOpen maps the MaxOpenSegments option onto the open-handle
// ceiling (0 = unbounded).
func resolveMaxOpen(n int) int {
	switch {
	case n == 0:
		return DefaultMaxOpenSegments
	case n < 0:
		return 0
	}
	return n
}

// adoptOrInitDir handles Open on a path that does not exist: either a
// migration crashed between its two directory renames (the fully built
// ".migrating" staging dir exists — adopt it), or this is a fresh journal.
func adoptOrInitDir(path string, noSync bool) error {
	staging := path + migratingSuffix
	_, ok, err := readManifest(staging)
	if err != nil {
		// The staging dir exists but its manifest is damaged or from an
		// unknown version: it may hold the only copy of migrated data
		// (including the legacy backup), so surface the problem instead of
		// silently booting an empty journal over it.
		return fmt.Errorf("interrupted migration at %s unreadable: %w", staging, err)
	}
	if ok {
		if err := os.Rename(staging, path); err != nil {
			return fmt.Errorf("store: adopting interrupted migration: %w", err)
		}
		return syncDir(filepath.Dir(path), noSync)
	}
	if err := os.MkdirAll(filepath.Join(path, studiesDirName), 0o755); err != nil {
		return fmt.Errorf("store: creating journal dir: %w", err)
	}
	return nil
}

// replay loads every manifest-listed segment into the index. Per study,
// earlier segments must parse cleanly (they were fsynced before their
// manifest commit); only the active segment may carry a torn tail, which
// is truncated. Per-epoch metric records of terminal studies are skipped —
// they are dropped by compaction anyway, and replaying them would grow
// boot memory with history no consumer can use.
func (j *Journal) replay() error {
	man, ok, err := readManifest(j.dir)
	if err != nil {
		return err
	}
	if !ok {
		// No manifest: only legal before the first study exists (a fresh
		// dir, or a crash before the first manifest write).
		if entries, _ := os.ReadDir(filepath.Join(j.dir, studiesDirName)); len(entries) > 0 {
			return fmt.Errorf("%w: segment data without a manifest in %s", ErrCorrupt, j.dir)
		}
		if err := os.MkdirAll(filepath.Join(j.dir, studiesDirName), 0o755); err != nil {
			return fmt.Errorf("store: creating studies dir: %w", err)
		}
		return writeManifest(j.dir, manifest{Version: manifestVersion}, j.opts.NoSync)
	}
	var all []record
	for _, ms := range man.Studies {
		recs, ss, err := j.replayStudy(ms)
		if err != nil {
			return err
		}
		j.seg[ms.ID] = ss
		j.segOrder = append(j.segOrder, ms.ID)
		all = append(all, recs...)
		// lastSeq counts filtered-out records too: the seq counter must
		// never re-issue a number still occupied on disk.
		if ss.lastSeq > j.seq {
			j.seq = ss.lastSeq
		}
	}
	// Segments hold per-study slices of the global sequence; interleave
	// them back into append order before applying.
	sort.SliceStable(all, func(a, b int) bool { return all[a].Seq < all[b].Seq })
	for _, rec := range all {
		j.apply(rec)
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
	}
	// Terminal studies' windows are dropped wholesale: their SSE resume is
	// served purely from index snapshots, so boot memory does not grow with
	// finished-study history.
	for id, meta := range j.studies {
		if meta.State.Terminal() {
			delete(j.windows, id)
		}
	}
	return nil
}

// replayStudy reads one study's live segments, truncating a torn tail on
// the active segment and deleting stale (unlisted) segment files left by a
// crashed compaction. Metric records are filtered out when the study ended
// terminal.
func (j *Journal) replayStudy(ms manifestStudy) ([]record, *studySegments, error) {
	dir := studyDir(j.dir, ms.ID)
	if _, err := pruneStaleSegments(dir, ms.Segments); err != nil {
		return nil, nil, err
	}
	nums := append([]int(nil), ms.Segments...)
	sort.Ints(nums)
	ss := &studySegments{nums: nums}
	var recs []record
	for i, n := range nums {
		path := filepath.Join(dir, segmentFileName(n))
		active := i == len(nums)-1
		raw, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			if active {
				// Listed but never created: a crash between the manifest
				// commit and the first write. An empty segment. Only the
				// active segment can be in this state — sealed segments
				// were fsynced before their manifest commit, so a missing
				// one is lost acknowledged data, not a crash artifact.
				continue
			}
			return nil, nil, fmt.Errorf("%w: sealed segment missing: %s", ErrCorrupt, path)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("store: reading segment: %w", err)
		}
		rs, good, err := parseSegment(raw, path, active)
		if err != nil {
			return nil, nil, err
		}
		if active {
			if good < len(raw) {
				if err := os.Truncate(path, int64(good)); err != nil {
					return nil, nil, fmt.Errorf("store: truncating torn segment tail: %w", err)
				}
			}
			ss.size = int64(good)
		}
		recs = append(recs, rs...)
	}
	ss.recs = len(recs)
	terminal := false
	for _, rec := range recs {
		if rec.Seq > ss.lastSeq {
			ss.lastSeq = rec.Seq
		}
		switch rec.Type {
		case recStudy:
			if rec.Study != nil {
				terminal = rec.Study.State.Terminal()
			}
		case recState:
			terminal = rec.State.Terminal()
		default:
			// Trial/metric/prune/promote records never change terminality.
		}
	}
	if terminal {
		kept := recs[:0]
		for _, rec := range recs {
			// Telemetry of a finished study: compaction drops it from disk
			// and no consumer can use it, so replay does not resurrect it.
			if rec.Type == recMetric || rec.Type == recPromote {
				continue
			}
			kept = append(kept, rec)
		}
		recs = kept
	}
	return recs, ss, nil
}

// apply folds one record into the in-memory index and the study's event
// window.
func (j *Journal) apply(rec record) {
	switch rec.Type {
	case recStudy:
		if rec.Study == nil {
			return
		}
		meta := *rec.Study
		if meta.State == "" {
			meta.State = StateCreated
		}
		if _, dup := j.studies[meta.ID]; !dup {
			j.order = append(j.order, meta.ID)
		}
		j.studies[meta.ID] = &meta
		j.pushEvent(Event{Seq: rec.Seq, Type: recStudy, StudyID: meta.ID, State: meta.State})
	case recState:
		meta, ok := j.studies[rec.StudyID]
		if !ok {
			return
		}
		meta.State = rec.State
		meta.Error = rec.Error
		meta.UpdatedAt = rec.At
		if rec.Summary != nil {
			meta.Trials = rec.Summary.Trials
			meta.Resumed = rec.Summary.Resumed
			meta.Memoized = rec.Summary.Memoized
			meta.BestAcc = rec.Summary.BestAcc
			if rec.Summary.Epochs > 0 || rec.State.Terminal() {
				meta.EpochsExecuted = rec.Summary.Epochs
			}
		}
		if rec.State.Terminal() {
			if rec.Summary == nil {
				// Pre-epoch-accounting journals end runs without a summary
				// on the failure path: fold the replayed live count so the
				// usage is not lost.
				meta.EpochsExecuted += j.epochsLive[rec.StudyID]
			}
			delete(j.epochsLive, rec.StudyID)
		}
		j.pushEvent(Event{Seq: rec.Seq, Type: recState, StudyID: rec.StudyID, State: rec.State, Error: rec.Error})
	case recTrial:
		if rec.Trial == nil {
			return
		}
		t := decodeTrialHistory(*rec.Trial)
		t.Config = NormaliseConfig(t.Config)
		if t.Fingerprint == "" {
			t.Fingerprint = Fingerprint(t.Config)
		}
		j.trials[rec.StudyID] = append(j.trials[rec.StudyID], t)
		if t.Succeeded() {
			if j.seenOK[rec.StudyID] == nil {
				j.seenOK[rec.StudyID] = make(map[string]bool)
			}
			j.seenOK[rec.StudyID][t.Fingerprint] = true
			// Promoted trials trained past the budget their fingerprint
			// claims: they resume their own study but must not answer
			// cross-study lookups for the smaller budget.
			if !t.Promoted {
				key := memoKey(t.Scope, t.Fingerprint)
				if _, hit := j.memo[key]; !hit {
					j.memo[key] = t
				}
			}
		}
		tc := t
		j.pushEvent(Event{Seq: rec.Seq, Type: recTrial, StudyID: rec.StudyID, Trial: &tc})
	case recMetric:
		if rec.Metric == nil {
			return
		}
		j.epochsLive[rec.StudyID]++
		m := *rec.Metric
		j.pushEvent(Event{Seq: rec.Seq, Type: recMetric, StudyID: rec.StudyID, Metric: &m})
	case recPrune:
		if rec.Prune == nil {
			return
		}
		p := *rec.Prune
		j.pushEvent(Event{Seq: rec.Seq, Type: recPrune, StudyID: rec.StudyID, Prune: &p})
	case recPromote:
		if rec.Promote == nil {
			return
		}
		p := *rec.Promote
		j.promotes[rec.StudyID] = append(j.promotes[rec.StudyID], p)
		j.pushEvent(Event{Seq: rec.Seq, Type: recPromote, StudyID: rec.StudyID, Promote: &p})
	}
}

// memoKey namespaces the memo index by objective scope.
func memoKey(scope, fingerprint string) string { return scope + "\x00" + fingerprint }

// writerFor returns the open append state for a study's active segment,
// creating the study's directory, manifest entry and first segment when
// this is the study's first record. The manifest entry is committed before
// the segment file exists: a manifest-listed-but-missing segment replays
// as empty, while an unlisted file would be deleted as compaction debris.
// rotate permits sealing an oversized active segment — only durable
// appends pass it, because rotation fsyncs and the no-sync telemetry path
// must never wait on the disk (the segment merely overshoots the
// threshold until the study's next durable append). Callers must hold
// j.mu.
func (j *Journal) writerFor(id string, rotate bool) (*studySegments, error) {
	ss := j.seg[id]
	if ss == nil {
		if !validStudyID(id) {
			return nil, fmt.Errorf("store: invalid study id %q (allowed: letters, digits, '.', '_', '-', max 128 chars)", id)
		}
		if err := os.MkdirAll(studyDir(j.dir, id), 0o755); err != nil {
			return nil, fmt.Errorf("store: creating study dir: %w", err)
		}
		ss = &studySegments{nums: []int{1}}
		j.seg[id] = ss
		j.segOrder = append(j.segOrder, id)
		if err := j.writeManifestLocked(); err != nil {
			delete(j.seg, id)
			j.segOrder = j.segOrder[:len(j.segOrder)-1]
			return nil, err
		}
	}
	if ss.f == nil {
		if err := j.openActive(id, ss); err != nil {
			return nil, err
		}
	}
	if rotate && j.maxSeg > 0 && ss.size >= j.maxSeg {
		if err := j.rotateLocked(id, ss); err != nil {
			return nil, err
		}
	}
	j.touchOpenLocked(id, ss)
	if err := j.enforceOpenCapLocked(); err != nil {
		return nil, err
	}
	return ss, nil
}

// touchOpenLocked marks a study's open handle most-recently-used. Callers
// must hold j.mu.
func (j *Journal) touchOpenLocked(id string, ss *studySegments) {
	if ss.f == nil {
		return
	}
	if ss.lruEl == nil {
		ss.lruEl = j.lru.PushFront(id)
		return
	}
	j.lru.MoveToFront(ss.lruEl)
}

// detachOpenLocked removes a study from the open-handle LRU (its handle was
// closed by eviction, compaction or Close). Callers must hold j.mu.
func (j *Journal) detachOpenLocked(ss *studySegments) {
	if ss.lruEl != nil {
		j.lru.Remove(ss.lruEl)
		ss.lruEl = nil
	}
}

// enforceOpenCapLocked closes least-recently-written segment handles until
// the open count fits the ceiling. Eviction only flushes — no fsync on the
// append path, which at high live-study counts runs once per append — and
// parks the handle on retiredDirty; the next group commit fsyncs it before
// closing (and before advancing the durability point), so evicted records
// are exactly as durable as they were behind the buffered writer. The
// study transparently reopens on its next append. Callers must hold j.mu.
func (j *Journal) enforceOpenCapLocked() error {
	if j.maxOpen <= 0 {
		return nil
	}
	for j.lru.Len() > j.maxOpen {
		victim := j.lru.Back().Value.(string)
		ss := j.seg[victim]
		if ss == nil || ss.f == nil {
			j.lru.Remove(j.lru.Back())
			continue
		}
		if err := ss.w.Flush(); err != nil {
			return fmt.Errorf("store: flushing evicted segment: %w", err)
		}
		j.retiredDirty = append(j.retiredDirty, ss.f)
		ss.f, ss.w = nil, nil
		delete(j.dirtySet, victim)
		j.detachOpenLocked(ss)
		obsHandleEvictions.Inc()
	}
	return nil
}

// openActive opens (or creates) the study's highest-numbered segment for
// appending. Callers must hold j.mu.
func (j *Journal) openActive(id string, ss *studySegments) error {
	path := filepath.Join(studyDir(j.dir, id), segmentFileName(ss.nums[len(ss.nums)-1]))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat segment: %w", err)
	}
	ss.f = f
	ss.w = bufio.NewWriter(f)
	ss.size = st.Size()
	return nil
}

// rotateLocked seals the study's active segment (flush + fsync) and starts
// the next one, committing the new segment number to the manifest before
// the file is created. Callers must hold j.mu.
func (j *Journal) rotateLocked(id string, ss *studySegments) error {
	if err := ss.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing segment for rotation: %w", err)
	}
	if !j.opts.NoSync {
		if err := ss.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync segment for rotation: %w", err)
		}
	}
	j.retired = append(j.retired, ss.f)
	ss.f, ss.w = nil, nil
	delete(j.dirtySet, id)
	ss.nums = append(ss.nums, ss.nums[len(ss.nums)-1]+1)
	if err := j.writeManifestLocked(); err != nil {
		ss.nums = ss.nums[:len(ss.nums)-1]
		if reopenErr := j.openActive(id, ss); reopenErr != nil {
			return reopenErr
		}
		return err
	}
	obsSegmentRotations.Inc()
	return j.openActive(id, ss)
}

// writeManifestLocked commits the current segment table. Callers must hold
// j.mu.
func (j *Journal) writeManifestLocked() error {
	return writeManifest(j.dir, buildManifest(j.segOrder, j.seg), j.opts.NoSync)
}

// append writes one record, updates the index, wakes watchers and group
// commits. Returns the record's sequence number.
func (j *Journal) append(rec record) (uint64, error) {
	return j.appendBatch([]record{rec})
}

// appendBatch writes several records under one lock hold and one fsync
// pass — the round-commit fast path (a study recording a 32-trial round
// performs one durable write, not 32).
func (j *Journal) appendBatch(recs []record) (uint64, error) {
	return j.appendBatchOpts(recs, true)
}

// appendBatchOpts is appendBatch with durability control: with sync false
// the records land in the index, the event stream and the buffered writer
// but are not flushed/fsynced — best-effort telemetry (per-epoch metrics)
// must never serialise a transport read loop behind the disk. The next
// durable append (or Close) carries them down.
func (j *Journal) appendBatchOpts(recs []record, sync bool) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	now := time.Now().UTC()
	var seq uint64
	for i := range recs {
		if recs[i].Type == recState && recs[i].State.Terminal() {
			// A terminal transition settles the run's epoch usage into the
			// durable summary: prior finished runs (meta.EpochsExecuted)
			// plus this run's metric records. Synthesizing a summary on the
			// summary-less failure path must preserve the meta's existing
			// counters — apply() folds the summary back wholesale.
			if meta := j.studies[recs[i].StudyID]; meta != nil {
				sum := Summary{Trials: meta.Trials, Resumed: meta.Resumed,
					Memoized: meta.Memoized, BestAcc: meta.BestAcc}
				if recs[i].Summary != nil {
					sum = *recs[i].Summary
				}
				sum.Epochs = meta.EpochsExecuted + j.epochsLive[recs[i].StudyID]
				recs[i].Summary = &sum
			}
		}
		ss, err := j.writerFor(recs[i].StudyID, sync)
		if err != nil {
			j.mu.Unlock()
			return 0, err
		}
		j.seq++
		recs[i].Seq = j.seq
		recs[i].At = now
		line, err := json.Marshal(recs[i])
		if err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("store: encoding record: %w", err)
		}
		if _, err := ss.w.Write(append(line, '\n')); err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("store: appending record: %w", err)
		}
		ss.size += int64(len(line)) + 1
		ss.recs++
		ss.lastSeq = j.seq
		countAppend(recs[i].Type, len(line)+1)
		j.dirtySet[recs[i].StudyID] = struct{}{}
		j.apply(recs[i])
		seq = j.seq
	}
	close(j.watch)
	j.watch = make(chan struct{})
	j.mu.Unlock()
	if !sync {
		return seq, nil
	}
	return seq, j.commit(seq)
}

// commit makes everything up to seq durable. Concurrent callers coalesce:
// whoever holds commitMu flushes every dirty study's writer and fsyncs the
// touched segments, so later callers usually find their seq already
// synced.
func (j *Journal) commit(seq uint64) error {
	j.commitMu.Lock()
	defer j.commitMu.Unlock()
	if j.synced >= seq {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	files := make([]*os.File, 0, len(j.dirtySet))
	for id := range j.dirtySet {
		ss := j.seg[id]
		if ss == nil || ss.w == nil {
			delete(j.dirtySet, id)
			continue
		}
		if err := ss.w.Flush(); err != nil {
			// Leave the study marked dirty: a later commit must retry the
			// flush rather than advance synced past buffered records.
			j.mu.Unlock()
			return fmt.Errorf("store: flushing journal: %w", err)
		}
		delete(j.dirtySet, id)
		files = append(files, ss.f)
	}
	tail := j.seq
	retired := j.retired
	j.retired = nil
	retiredDirty := j.retiredDirty
	j.retiredDirty = nil
	j.mu.Unlock()
	if !j.opts.NoSync {
		for _, f := range files {
			if err := f.Sync(); err != nil {
				return fmt.Errorf("store: fsync journal: %w", err)
			}
		}
		// Evicted handles carry flushed-but-unsynced records: they must hit
		// the disk before synced advances past them.
		for _, f := range retiredDirty {
			if err := f.Sync(); err != nil {
				return fmt.Errorf("store: fsync evicted journal segment: %w", err)
			}
		}
	}
	// Rotated-out and evicted handles are durable now; closing them here —
	// still under commitMu — cannot race another commit's fsync pass.
	for _, f := range retired {
		f.Close()
	}
	for _, f := range retiredDirty {
		f.Close()
	}
	obsFsyncBatches.Inc()
	obsFsyncBatchRecords.Observe(float64(tail - j.synced))
	j.synced = tail
	return nil
}

// Close flushes, fsyncs and closes every open segment, stops the
// background compactor, and releases the journal lock. Further operations
// return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	stop, done := j.compactStop, j.compactDone
	j.compactStop, j.compactDone = nil, nil
	var err error
	var files []*os.File
	for _, ss := range j.seg {
		if ss.w == nil {
			continue
		}
		if ferr := ss.w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		files = append(files, ss.f)
		ss.f, ss.w = nil, nil
	}
	retired := j.retired
	j.retired = nil
	retiredDirty := j.retiredDirty
	j.retiredDirty = nil
	close(j.watch)
	j.watch = make(chan struct{})
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	// Take commitMu before touching file handles: a commit in flight may
	// still be inside its lock-free fsync pass over these same files.
	j.commitMu.Lock()
	defer j.commitMu.Unlock()
	for _, f := range files {
		if !j.opts.NoSync && err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	for _, f := range retiredDirty {
		if !j.opts.NoSync && err == nil {
			err = f.Sync()
		}
		f.Close()
	}
	for _, f := range retired {
		f.Close()
	}
	if cerr := j.lock.Close(); err == nil {
		err = cerr
	}
	return err
}

// CreateStudy persists a new study. The meta's State defaults to
// StateCreated and CreatedAt/UpdatedAt to now. The id becomes a directory
// name in the sharded layout, so it is restricted to letters, digits and
// "._-".
func (j *Journal) CreateStudy(meta StudyMeta) error {
	if meta.ID == "" {
		return fmt.Errorf("store: study needs an id")
	}
	if !validStudyID(meta.ID) {
		return fmt.Errorf("store: invalid study id %q (allowed: letters, digits, '.', '_', '-', max 128 chars)", meta.ID)
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if _, dup := j.studies[meta.ID]; dup {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, meta.ID)
	}
	j.mu.Unlock()
	if meta.State == "" {
		meta.State = StateCreated
	}
	now := time.Now().UTC()
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = now
	}
	meta.UpdatedAt = now
	_, err := j.append(record{Type: recStudy, StudyID: meta.ID, Study: &meta})
	return err
}

// SetStudyState transitions a study, optionally attaching an error message
// and end-of-run summary counters.
func (j *Journal) SetStudyState(id string, state StudyState, errMsg string, sum *Summary) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if _, ok := j.studies[id]; !ok {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Unlock()
	_, err := j.append(record{Type: recState, StudyID: id, State: state, Error: errMsg, Summary: sum})
	return err
}

// GetStudy returns a study's metadata.
func (j *Journal) GetStudy(id string) (StudyMeta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	meta, ok := j.studies[id]
	if !ok {
		return StudyMeta{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *meta, nil
}

// ListStudies returns all studies in creation order.
func (j *Journal) ListStudies() []StudyMeta {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]StudyMeta, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.studies[id])
	}
	return out
}

// ActiveStudies returns ids of studies that were queued or running — the
// set a restarting daemon re-submits.
func (j *Journal) ActiveStudies() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []string
	for _, id := range j.order {
		if j.studies[id].State.Active() {
			out = append(out, id)
		}
	}
	return out
}

// StudyEpochs reports the training epochs a study has consumed: the
// durable total of finished runs plus the metric records of the run in
// flight. Exact across restarts and compaction (the terminal summary and
// compacted study record both carry the number).
func (j *Journal) StudyEpochs(id string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	meta, ok := j.studies[id]
	if !ok {
		return 0
	}
	return meta.EpochsExecuted + j.epochsLive[id]
}

// TenantEpochs sums epoch usage across a tenant's studies — the number an
// admission queue checks a MaxTotalEpochs budget against. The empty
// tenant aggregates single-tenant (registry-less) studies.
func (j *Journal) TenantEpochs(tenant string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	total := 0
	for id, meta := range j.studies {
		if meta.Tenant != tenant {
			continue
		}
		total += meta.EpochsExecuted + j.epochsLive[id]
	}
	return total
}

// AppendTrials persists finished trials for a study as one durable batch
// (single fsync pass). Trials whose fingerprint already has a successful
// record in this study are skipped, so resumed rounds do not duplicate
// journal entries.
func (j *Journal) AppendTrials(id string, trials []Trial) error {
	j.mu.Lock()
	if _, ok := j.studies[id]; !ok && !j.closed {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	recs := make([]record, 0, len(trials))
	batch := make(map[string]bool, len(trials))
	for _, t := range trials {
		t = t.sanitize()
		t.Fingerprint = fingerprintOf(t)
		if j.seenOK[id][t.Fingerprint] || batch[t.Fingerprint] {
			continue
		}
		if t.Succeeded() {
			batch[t.Fingerprint] = true
		}
		tc := t
		recs = append(recs, record{Type: recTrial, StudyID: id, Trial: &tc})
	}
	j.mu.Unlock()
	_, err := j.appendBatch(recs)
	return err
}

// AppendMetric journals one intermediate per-epoch metric point of a
// running trial. Metrics are telemetry, not state: they append without a
// synchronous flush (a crash may lose the tail of the stream) so the
// per-epoch hot path — which on the remote backend runs on the transport
// read loop — never waits on an fsync. The next trial/state append or
// Close makes them durable. Compaction drops them once the study is
// terminal.
func (j *Journal) AppendMetric(id string, trialID, epoch int, value float64) error {
	if err := j.checkStudy(id); err != nil {
		return err
	}
	_, err := j.appendBatchOpts([]record{{Type: recMetric, StudyID: id,
		Metric: &MetricPoint{TrialID: trialID, Epoch: epoch, Value: finiteOr0(value)}}}, false)
	return err
}

// AppendPrune journals a pruner's decision to stop a trial mid-flight.
func (j *Journal) AppendPrune(id string, trialID, epoch int, reason string) error {
	if err := j.checkStudy(id); err != nil {
		return err
	}
	_, err := j.append(record{Type: recPrune, StudyID: id,
		Prune: &PruneDecision{TrialID: trialID, Epoch: epoch, Reason: reason}})
	return err
}

// AppendPromote journals a rung scheduler's decision to continue a trial
// past its initial budget. Promotions are durable (synchronous fsync):
// a resumed study replays them to reconstruct rung decisions without
// re-executing the finished rungs.
func (j *Journal) AppendPromote(id string, trialID, epoch, budget int, reason string) error {
	if err := j.checkStudy(id); err != nil {
		return err
	}
	_, err := j.append(record{Type: recPromote, StudyID: id,
		Promote: &Promotion{TrialID: trialID, Epoch: epoch, Budget: budget, Reason: reason}})
	return err
}

// StudyPromotes returns the rung promotions recorded for a study in append
// order (empty once compaction dropped them — the final trial records carry
// the epochs actually executed).
func (j *Journal) StudyPromotes(id string) []Promotion {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Promotion(nil), j.promotes[id]...)
}

// checkStudy verifies the study exists (without holding the lock across the
// subsequent append).
func (j *Journal) checkStudy(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, ok := j.studies[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return nil
}

// TrialCount returns how many trials a study has recorded, without copying
// them (progress polling hot path).
func (j *Journal) TrialCount(id string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.trials[id])
}

// StudyTrials returns all recorded trials of a study, ordered by trial id.
func (j *Journal) StudyTrials(id string) ([]Trial, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.studies[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	out := append([]Trial(nil), j.trials[id]...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// StudyRecord is one journal record of a study surfaced to read-side
// consumers — the raw material the timeline endpoints rebuild a study's
// execution history from. Exactly one payload pointer is set, per Type.
type StudyRecord struct {
	Seq     uint64         `json:"seq"`
	Type    string         `json:"type"`
	At      time.Time      `json:"at"`
	State   StudyState     `json:"state,omitempty"`
	Trial   *Trial         `json:"trial,omitempty"`
	Metric  *MetricPoint   `json:"metric,omitempty"`
	Prune   *PruneDecision `json:"prune,omitempty"`
	Promote *Promotion     `json:"promote,omitempty"`
}

// StudyRecords reads every live journal record of one study straight from
// its on-disk segments, in sequence order. Unlike the in-memory index —
// which drops terminal studies' metric and promotion telemetry at boot —
// this returns exactly what the journal holds, so a timeline rebuilt from
// it is a pure function of the durable record stream: identical until
// compaction rewrites the study (after which only the summary records
// remain). The study's buffered writer is flushed first, so records just
// appended are visible.
func (j *Journal) StudyRecords(id string) ([]StudyRecord, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := j.studies[id]; !ok {
		j.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	ss := j.seg[id]
	if ss == nil {
		j.mu.Unlock()
		return nil, nil
	}
	if ss.w != nil {
		if err := ss.w.Flush(); err != nil {
			j.mu.Unlock()
			return nil, fmt.Errorf("store: flushing segment for read: %w", err)
		}
	}
	// Read under j.mu: rotation and compaction also mutate the segment
	// table under this lock, so the listed files cannot change underneath
	// the reads (a study's live segments are small by construction).
	dir := studyDir(j.dir, id)
	var recs []record
	for i, n := range ss.nums {
		active := i == len(ss.nums)-1
		raw, err := os.ReadFile(filepath.Join(dir, segmentFileName(n)))
		if os.IsNotExist(err) {
			if active {
				continue // listed but never written (no records yet)
			}
			j.mu.Unlock()
			return nil, fmt.Errorf("%w: sealed segment missing: %s", ErrCorrupt, segmentFileName(n))
		}
		if err != nil {
			j.mu.Unlock()
			return nil, fmt.Errorf("store: reading segment: %w", err)
		}
		rs, _, err := parseSegment(raw, filepath.Join(dir, segmentFileName(n)), active)
		if err != nil {
			j.mu.Unlock()
			return nil, err
		}
		recs = append(recs, rs...)
	}
	j.mu.Unlock()
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	out := make([]StudyRecord, 0, len(recs))
	for _, rec := range recs {
		sr := StudyRecord{Seq: rec.Seq, Type: rec.Type, At: rec.At, State: rec.State,
			Metric: rec.Metric, Prune: rec.Prune, Promote: rec.Promote}
		if rec.Type == recState && rec.State == "" {
			continue
		}
		if rec.Type == recStudy && rec.Study != nil {
			sr.State = rec.Study.State
		}
		if rec.Trial != nil {
			t := decodeTrialHistory(*rec.Trial)
			t.Config = NormaliseConfig(t.Config)
			sr.Trial = &t
		}
		out = append(out, sr)
	}
	return out, nil
}

// LookupMemo returns the first successful trial recorded for a config
// fingerprint within an objective scope, across all studies. Scopes must
// match exactly — results from a different dataset, sample count or model
// never answer a lookup.
func (j *Journal) LookupMemo(scope, fingerprint string) (Trial, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	t, ok := j.memo[memoKey(scope, fingerprint)]
	return t, ok
}
