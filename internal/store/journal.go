package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"syscall"
	"time"
)

// record is one JSONL journal line. Exactly one of Study / Trial / State /
// Metric / Prune payloads is set, per Type.
type record struct {
	Seq     uint64         `json:"seq"`
	Type    string         `json:"type"` // "study" | "state" | "trial" | "metric" | "prune"
	StudyID string         `json:"study_id,omitempty"`
	Study   *StudyMeta     `json:"study,omitempty"`
	State   StudyState     `json:"state,omitempty"`
	Error   string         `json:"error,omitempty"`
	Summary *Summary       `json:"summary,omitempty"`
	Trial   *Trial         `json:"trial,omitempty"`
	Metric  *MetricPoint   `json:"metric,omitempty"`
	Prune   *PruneDecision `json:"prune,omitempty"`
	At      time.Time      `json:"at"`
}

// Event is a journal record surfaced to watchers (the server's per-trial
// event stream). Seq orders events globally and doubles as the SSE id, so
// clients can resume a stream with "?since=<seq>".
type Event struct {
	Seq     uint64         `json:"seq"`
	Type    string         `json:"type"`
	StudyID string         `json:"study_id"`
	State   StudyState     `json:"state,omitempty"`
	Error   string         `json:"error,omitempty"`
	Trial   *Trial         `json:"trial,omitempty"`
	Metric  *MetricPoint   `json:"metric,omitempty"`
	Prune   *PruneDecision `json:"prune,omitempty"`
}

// JournalOptions tunes Open.
type JournalOptions struct {
	// NoSync skips fsync after commits (tests, benchmarks). The journal is
	// still written append-only and crash recovery still works up to the OS
	// page cache.
	NoSync bool
}

// Journal is the persistent study store: an append-only JSONL write-ahead
// log plus an in-memory index rebuilt on Open. All methods are safe for
// concurrent use.
//
// Durability uses group commit: every append flushes and fsyncs, but
// concurrent appenders coalesce onto a single fsync (the first writer
// through syncs everything buffered so far; the rest observe their
// sequence number already durable and return without touching the disk).
type Journal struct {
	mu     sync.Mutex // guards file writes and the index
	f      *os.File
	w      *bufio.Writer
	path   string
	opts   JournalOptions
	closed bool
	seq    uint64

	studies map[string]*StudyMeta
	order   []string           // study ids in creation order
	trials  map[string][]Trial // per-study, append order
	// seenOK tracks successful fingerprints per study (resume dedup).
	seenOK map[string]map[string]bool
	// memo maps scope+fingerprint → first successful trial across all
	// studies (see Trial.Scope).
	memo map[string]Trial
	// events is the replayable event log served to watchers; it mirrors the
	// journal (which already lives in memory via the index) so SSE clients
	// can resume from any sequence number, including across restarts.
	events []Event
	// watchers are closed-and-replaced on every append (broadcast).
	watch chan struct{}

	// commitMu serialises fsyncs; synced is the highest durable seq.
	commitMu sync.Mutex
	synced   uint64
}

// OpenJournal opens (or creates) the journal at path and replays it into
// memory. The file is flock'd exclusively — a second process opening the
// same journal gets ErrLocked rather than silently interleaving writes. A
// partially written final record — the signature of a crash mid append —
// is detected and truncated away; corruption before the tail returns
// ErrCorrupt.
func OpenJournal(path string, opts JournalOptions) (*Journal, error) {
	j := &Journal{
		path:    path,
		opts:    opts,
		studies: make(map[string]*StudyMeta),
		trials:  make(map[string][]Trial),
		seenOK:  make(map[string]map[string]bool),
		memo:    make(map[string]Trial),
		watch:   make(chan struct{}),
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	// Replay (and possibly truncate a torn tail) only after the lock is
	// held, so recovery never races a live writer. Closing f releases the
	// flock.
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// replay loads the journal file into the index, truncating a torn tail.
func (j *Journal) replay() error {
	raw, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading journal: %w", err)
	}
	offset := 0 // byte offset just past the last good record
	for len(raw) > offset {
		rest := raw[offset:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// A record is committed iff newline-terminated. A parseable but
			// unterminated tail must still be dropped: keeping it while
			// appending in O_APPEND mode would concatenate the next record
			// onto the same line and corrupt the journal for good.
			break
		}
		var rec record
		if err := json.Unmarshal(rest[:nl], &rec); err != nil || rec.Type == "" {
			// Torn tail: the final line is half-flushed. Anything before it
			// that fails to parse is real corruption.
			if offset+nl+1 >= len(raw) {
				break
			}
			return fmt.Errorf("%w: bad record at byte %d of %s", ErrCorrupt, offset, j.path)
		}
		j.apply(rec)
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		offset += nl + 1
	}
	j.synced = j.seq
	if offset < len(raw) {
		if err := os.Truncate(j.path, int64(offset)); err != nil {
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	return nil
}

// apply folds one record into the in-memory index and event log.
func (j *Journal) apply(rec record) {
	switch rec.Type {
	case "study":
		if rec.Study == nil {
			return
		}
		meta := *rec.Study
		if meta.State == "" {
			meta.State = StateCreated
		}
		if _, dup := j.studies[meta.ID]; !dup {
			j.order = append(j.order, meta.ID)
		}
		j.studies[meta.ID] = &meta
		j.events = append(j.events, Event{Seq: rec.Seq, Type: "study", StudyID: meta.ID, State: meta.State})
	case "state":
		meta, ok := j.studies[rec.StudyID]
		if !ok {
			return
		}
		meta.State = rec.State
		meta.Error = rec.Error
		meta.UpdatedAt = rec.At
		if rec.Summary != nil {
			meta.Trials = rec.Summary.Trials
			meta.Resumed = rec.Summary.Resumed
			meta.Memoized = rec.Summary.Memoized
			meta.BestAcc = rec.Summary.BestAcc
		}
		j.events = append(j.events, Event{Seq: rec.Seq, Type: "state", StudyID: rec.StudyID, State: rec.State, Error: rec.Error})
	case "trial":
		if rec.Trial == nil {
			return
		}
		t := *rec.Trial
		t.Config = NormaliseConfig(t.Config)
		if t.Fingerprint == "" {
			t.Fingerprint = Fingerprint(t.Config)
		}
		j.trials[rec.StudyID] = append(j.trials[rec.StudyID], t)
		if t.Succeeded() {
			if j.seenOK[rec.StudyID] == nil {
				j.seenOK[rec.StudyID] = make(map[string]bool)
			}
			j.seenOK[rec.StudyID][t.Fingerprint] = true
			key := memoKey(t.Scope, t.Fingerprint)
			if _, hit := j.memo[key]; !hit {
				j.memo[key] = t
			}
		}
		tc := t
		j.events = append(j.events, Event{Seq: rec.Seq, Type: "trial", StudyID: rec.StudyID, Trial: &tc})
	case "metric":
		if rec.Metric == nil {
			return
		}
		m := *rec.Metric
		j.events = append(j.events, Event{Seq: rec.Seq, Type: "metric", StudyID: rec.StudyID, Metric: &m})
	case "prune":
		if rec.Prune == nil {
			return
		}
		p := *rec.Prune
		j.events = append(j.events, Event{Seq: rec.Seq, Type: "prune", StudyID: rec.StudyID, Prune: &p})
	}
}

// memoKey namespaces the memo index by objective scope.
func memoKey(scope, fingerprint string) string { return scope + "\x00" + fingerprint }

// append writes one record, updates the index, wakes watchers and group
// commits. Returns the record's sequence number.
func (j *Journal) append(rec record) (uint64, error) {
	return j.appendBatch([]record{rec})
}

// appendBatch writes several records under one lock hold and one fsync —
// the round-commit fast path (a study recording a 32-trial round performs
// one durable write, not 32).
func (j *Journal) appendBatch(recs []record) (uint64, error) {
	return j.appendBatchOpts(recs, true)
}

// appendBatchOpts is appendBatch with durability control: with sync false
// the records land in the index, the event stream and the buffered writer
// but are not flushed/fsynced — best-effort telemetry (per-epoch metrics)
// must never serialise a transport read loop behind the disk. The next
// durable append (or Close) carries them down.
func (j *Journal) appendBatchOpts(recs []record, sync bool) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	now := time.Now().UTC()
	var seq uint64
	for i := range recs {
		j.seq++
		recs[i].Seq = j.seq
		recs[i].At = now
		line, err := json.Marshal(recs[i])
		if err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("store: encoding record: %w", err)
		}
		if _, err := j.w.Write(append(line, '\n')); err != nil {
			j.mu.Unlock()
			return 0, fmt.Errorf("store: appending record: %w", err)
		}
		j.apply(recs[i])
		seq = recs[i].Seq
	}
	close(j.watch)
	j.watch = make(chan struct{})
	j.mu.Unlock()
	if !sync {
		return seq, nil
	}
	return seq, j.commit(seq)
}

// commit makes everything up to seq durable. Concurrent callers coalesce:
// whoever holds commitMu flushes and fsyncs the journal's current tail, so
// later callers usually find their seq already synced.
func (j *Journal) commit(seq uint64) error {
	j.commitMu.Lock()
	defer j.commitMu.Unlock()
	if j.synced >= seq {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	err := j.w.Flush()
	tail := j.seq
	j.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: flushing journal: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync journal: %w", err)
		}
	}
	j.synced = tail
	return nil
}

// Close flushes, fsyncs and closes the journal. Further operations return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	err := j.w.Flush()
	close(j.watch)
	j.watch = make(chan struct{})
	j.mu.Unlock()
	if err == nil && !j.opts.NoSync {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CreateStudy persists a new study. The meta's State defaults to
// StateCreated and CreatedAt/UpdatedAt to now.
func (j *Journal) CreateStudy(meta StudyMeta) error {
	if meta.ID == "" {
		return fmt.Errorf("store: study needs an id")
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if _, dup := j.studies[meta.ID]; dup {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, meta.ID)
	}
	j.mu.Unlock()
	if meta.State == "" {
		meta.State = StateCreated
	}
	now := time.Now().UTC()
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = now
	}
	meta.UpdatedAt = now
	_, err := j.append(record{Type: "study", StudyID: meta.ID, Study: &meta})
	return err
}

// SetStudyState transitions a study, optionally attaching an error message
// and end-of-run summary counters.
func (j *Journal) SetStudyState(id string, state StudyState, errMsg string, sum *Summary) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if _, ok := j.studies[id]; !ok {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Unlock()
	_, err := j.append(record{Type: "state", StudyID: id, State: state, Error: errMsg, Summary: sum})
	return err
}

// GetStudy returns a study's metadata.
func (j *Journal) GetStudy(id string) (StudyMeta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	meta, ok := j.studies[id]
	if !ok {
		return StudyMeta{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *meta, nil
}

// ListStudies returns all studies in creation order.
func (j *Journal) ListStudies() []StudyMeta {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]StudyMeta, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.studies[id])
	}
	return out
}

// ActiveStudies returns ids of studies that were queued or running — the
// set a restarting daemon re-submits.
func (j *Journal) ActiveStudies() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []string
	for _, id := range j.order {
		if j.studies[id].State.Active() {
			out = append(out, id)
		}
	}
	return out
}

// AppendTrials persists finished trials for a study as one durable batch
// (single fsync). Trials whose fingerprint already has a successful record
// in this study are skipped, so resumed rounds do not duplicate journal
// entries.
func (j *Journal) AppendTrials(id string, trials []Trial) error {
	j.mu.Lock()
	if _, ok := j.studies[id]; !ok && !j.closed {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	recs := make([]record, 0, len(trials))
	batch := make(map[string]bool, len(trials))
	for _, t := range trials {
		t = t.sanitize()
		t.Fingerprint = fingerprintOf(t)
		if j.seenOK[id][t.Fingerprint] || batch[t.Fingerprint] {
			continue
		}
		if t.Succeeded() {
			batch[t.Fingerprint] = true
		}
		tc := t
		recs = append(recs, record{Type: "trial", StudyID: id, Trial: &tc})
	}
	j.mu.Unlock()
	_, err := j.appendBatch(recs)
	return err
}

// AppendMetric journals one intermediate per-epoch metric point of a
// running trial. Metrics are telemetry, not state: they append without a
// synchronous flush (a crash may lose the tail of the stream) so the
// per-epoch hot path — which on the remote backend runs on the transport
// read loop — never waits on an fsync. The next trial/state append or
// Close makes them durable.
func (j *Journal) AppendMetric(id string, trialID, epoch int, value float64) error {
	if err := j.checkStudy(id); err != nil {
		return err
	}
	_, err := j.appendBatchOpts([]record{{Type: "metric", StudyID: id,
		Metric: &MetricPoint{TrialID: trialID, Epoch: epoch, Value: finiteOr0(value)}}}, false)
	return err
}

// AppendPrune journals a pruner's decision to stop a trial mid-flight.
func (j *Journal) AppendPrune(id string, trialID, epoch int, reason string) error {
	if err := j.checkStudy(id); err != nil {
		return err
	}
	_, err := j.append(record{Type: "prune", StudyID: id,
		Prune: &PruneDecision{TrialID: trialID, Epoch: epoch, Reason: reason}})
	return err
}

// checkStudy verifies the study exists (without holding the lock across the
// subsequent append).
func (j *Journal) checkStudy(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, ok := j.studies[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return nil
}

// TrialCount returns how many trials a study has recorded, without copying
// them (progress polling hot path).
func (j *Journal) TrialCount(id string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.trials[id])
}

// StudyTrials returns all recorded trials of a study, ordered by trial id.
func (j *Journal) StudyTrials(id string) ([]Trial, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.studies[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	out := append([]Trial(nil), j.trials[id]...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// LookupMemo returns the first successful trial recorded for a config
// fingerprint within an objective scope, across all studies. Scopes must
// match exactly — results from a different dataset, sample count or model
// never answer a lookup.
func (j *Journal) LookupMemo(scope, fingerprint string) (Trial, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	t, ok := j.memo[memoKey(scope, fingerprint)]
	return t, ok
}

// EventsSince returns journal events with sequence numbers greater than
// since, filtered to one study when id is non-empty, plus the current tail
// sequence. Study-creation records are included so a watcher sees the full
// lifecycle.
func (j *Journal) EventsSince(id string, since uint64) ([]Event, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	// events is sorted by Seq (append order), so skip the prefix at or
	// below since instead of rescanning the whole log per watcher tick.
	start := sort.Search(len(j.events), func(i int) bool { return j.events[i].Seq > since })
	for _, ev := range j.events[start:] {
		if id != "" && ev.StudyID != id {
			continue
		}
		out = append(out, ev)
	}
	return out, j.seq
}

// Watch returns a channel closed on the next journal append (a broadcast
// tick). Callers re-invoke EventsSince after each tick.
func (j *Journal) Watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watch
}
