// Package store persists HPO studies and trial results. Its centrepiece is
// the crash-safe Journal: a sharded append-only JSONL write-ahead log —
// per-study segment files under a journal directory, committed through an
// atomically rewritten manifest — with group-commit fsync batching and an
// in-memory index rebuilt on Open. Terminal studies are compactable down
// to their summary records (Compact), so a long-lived daemon's boot-replay
// time scales with live studies rather than total history; the on-disk
// format is specified normatively in docs/JOURNAL.md. The package also
// subsumes the legacy single-study checkpoint file format (FileRecorder)
// so hpo.Study checkpointing goes through one narrow Recorder interface
// regardless of backing storage, and it transparently migrates pre-shard
// single-file journals to the directory layout on Open.
//
// The Journal additionally indexes every successful trial by its config
// fingerprint, so identical configurations — within a study or across
// studies — can return a cached result instead of re-executing the
// training (Hippo-style result memoization).
package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sentinel errors, checkable via errors.Is.
var (
	// ErrNotFound reports a study id the store has never seen.
	ErrNotFound = errors.New("store: study not found")
	// ErrExists reports a CreateStudy with an id already in use.
	ErrExists = errors.New("store: study already exists")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt reports an unreadable journal record before the tail.
	ErrCorrupt = errors.New("store: corrupt journal")
	// ErrLocked reports a journal already opened by another process.
	ErrLocked = errors.New("store: journal locked by another process")
)

// recordTypes enumerates every journal record type this package emits.
// docs/JOURNAL.md must document each of them — a test (and the CI docs
// check) pins the spec to this list.
var recordTypes = []string{recStudy, recState, recTrial, recMetric, recPrune, recPromote}

// StudyState is the lifecycle of a persisted study.
type StudyState string

// Study lifecycle states. Created studies wait for an explicit start;
// queued/running studies are re-submitted after a daemon restart.
const (
	StateCreated StudyState = "created"
	StateQueued  StudyState = "queued"
	StateRunning StudyState = "running"
	StateDone    StudyState = "done"
	StateFailed  StudyState = "failed"
	// StateCanceled is the terminal state of a study stopped by an operator
	// (POST /cancel). Like done/failed it is NOT Active: a restarting
	// daemon must never re-queue a canceled study.
	StateCanceled StudyState = "canceled"
)

// Active reports whether the state should be resumed after a restart.
func (s StudyState) Active() bool { return s == StateQueued || s == StateRunning }

// Terminal reports whether the study reached an end state (no more trials
// will be recorded under it).
func (s StudyState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// StudyMeta is the persisted description of one study.
type StudyMeta struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Tenant is the owning tenant's id in a multi-tenant daemon (empty on
	// single-tenant journals). It scopes listing/visibility at the API
	// layer and keys per-tenant quota accounting; it is always a tenant
	// id, never a bearer token.
	Tenant    string     `json:"tenant,omitempty"`
	Spec      []byte     `json:"spec,omitempty"` // submitted spec, verbatim JSON
	State     StudyState `json:"state"`
	Error     string     `json:"error,omitempty"`
	CreatedAt time.Time  `json:"created_at"`
	UpdatedAt time.Time  `json:"updated_at"`
	// Summary fields, filled when a run finishes (and preserved across
	// restarts for finished studies).
	Trials   int     `json:"trials,omitempty"`
	Resumed  int     `json:"resumed,omitempty"`
	Memoized int     `json:"memoized,omitempty"`
	BestAcc  float64 `json:"best_acc,omitempty"`
	// EpochsExecuted accumulates the training epochs this study's finished
	// runs consumed (one per journaled metric record), folded in from each
	// terminal state record's Summary.Epochs. It survives compaction — the
	// compacted study record carries the full meta — so per-tenant epoch
	// budgets re-derive exactly across restarts.
	EpochsExecuted int `json:"epochs_executed,omitempty"`
}

// Summary carries end-of-run counters into SetStudyState. Epochs is
// filled by the journal itself at append time (the journal counts metric
// records; callers cannot know about epochs recorded by prior runs).
type Summary struct {
	Trials   int
	Resumed  int
	Memoized int
	BestAcc  float64
	Epochs   int `json:",omitempty"`
}

// Trial is the storage form of one finished trial — the same shape the
// legacy checkpoint file used, plus the config fingerprint that keys
// memoization.
type Trial struct {
	ID          int                    `json:"id"`
	Config      map[string]interface{} `json:"config"`
	Fingerprint string                 `json:"fingerprint,omitempty"`
	// Scope namespaces the memo index: trials only answer lookups from
	// studies with an identical scope (the objective identity — dataset,
	// sample count, model widths, seed… — as opposed to the config, which
	// the fingerprint covers). Empty scope matches only empty scope.
	Scope         string    `json:"scope,omitempty"`
	FinalAcc      float64   `json:"final_acc"`
	BestAcc       float64   `json:"best_acc"`
	FinalLoss     float64   `json:"final_loss"`
	Epochs        int       `json:"epochs"`
	ValAccHistory []float64 `json:"val_acc_history,omitempty"`
	// ValAccQ is the delta-encoded form of ValAccHistory used by compacted
	// trial records when the history is long enough to dominate segment
	// size: values quantized to 1e-9 — the first absolute, the rest
	// first-order differences. Exactly one of ValAccHistory / ValAccQ is
	// set on disk; readers decode back to ValAccHistory (see
	// decodeTrialHistory), so in-memory consumers never observe this field.
	ValAccQ    []int64 `json:"val_acc_q,omitempty"`
	Stopped    bool    `json:"stopped,omitempty"`
	StopReason string  `json:"stop_reason,omitempty"`
	DurationNS int64   `json:"duration_ns"`
	Err        string  `json:"err,omitempty"`
	Canceled   bool    `json:"canceled,omitempty"`
	// Pruned marks a trial stopped mid-training by a pruner decision; its
	// metrics are partial (the epochs it ran before losing its rung).
	Pruned      bool   `json:"pruned,omitempty"`
	PruneReason string `json:"prune_reason,omitempty"`
	// Promoted marks a trial a rung scheduler continued past its
	// configured budget: Epochs exceeds the config's num_epochs. Promoted
	// trials resume within their own study (fingerprint dedup) but never
	// answer cross-study memo lookups — the fingerprint's num_epochs
	// understates the training the metrics reflect.
	Promoted bool `json:"promoted,omitempty"`
}

// Succeeded reports whether the trial produced a usable result (memoizable
// and skippable on resume). Pruned trials carry only partial training, so
// they are neither memoized nor skipped — a resumed study re-evaluates
// them under its then-current pruner.
func (t Trial) Succeeded() bool { return t.Err == "" && !t.Canceled && !t.Pruned }

// sanitize normalises a trial for persistence: non-finite metric values
// become zeros so the trial always JSON-encodes (a diverged training with
// NaN loss must journal as a bad result, not kill the study with an
// encoding error), and sampler-internal config keys are stripped — every
// append path runs through here, so hidden scheduler bookkeeping can
// never reach disk even via legacy-checkpoint migration. The history is
// copied before rewriting — the caller's slice must not change underneath
// it.
func (t Trial) sanitize() Trial {
	for k := range t.Config {
		if strings.HasPrefix(k, "_") {
			t.Config = PublicConfig(t.Config)
			break
		}
	}
	t.FinalAcc = finiteOr0(t.FinalAcc)
	t.BestAcc = finiteOr0(t.BestAcc)
	t.FinalLoss = finiteOr0(t.FinalLoss)
	for i, v := range t.ValAccHistory {
		if v == finiteOr0(v) {
			continue
		}
		cp := append([]float64(nil), t.ValAccHistory...)
		for j := i; j < len(cp); j++ {
			cp[j] = finiteOr0(cp[j])
		}
		t.ValAccHistory = cp
		break
	}
	return t
}

// History delta-encoding parameters: compaction rewrites a trial's
// ValAccHistory as quantized first-order differences once it is at least
// histDeltaMin epochs long — short histories gain nothing, while a deep
// promoted trial's history dominates its record size. The 1e-9 quantum
// keeps seven significant digits of any accuracy in [0, 1], far below
// what a training metric carries.
const (
	histDeltaMin   = 8
	histDeltaScale = 1e9
)

// encodeTrialHistory returns t with a long ValAccHistory re-encoded as
// ValAccQ deltas (compacted-record form). Short histories and trials
// already encoded pass through unchanged.
func encodeTrialHistory(t Trial) Trial {
	if len(t.ValAccHistory) < histDeltaMin || len(t.ValAccQ) > 0 {
		return t
	}
	q := make([]int64, len(t.ValAccHistory))
	prev := int64(0)
	for i, v := range t.ValAccHistory {
		cur := int64(math.Round(finiteOr0(v) * histDeltaScale))
		q[i] = cur - prev
		prev = cur
	}
	t.ValAccQ = q
	t.ValAccHistory = nil
	return t
}

// decodeTrialHistory reverses encodeTrialHistory: every read path runs
// records through here, so consumers always see ValAccHistory regardless
// of the on-disk form.
func decodeTrialHistory(t Trial) Trial {
	if len(t.ValAccQ) == 0 {
		return t
	}
	hist := make([]float64, len(t.ValAccQ))
	cum := int64(0)
	for i, d := range t.ValAccQ {
		cum += d
		hist[i] = float64(cum) / histDeltaScale
	}
	t.ValAccHistory = hist
	t.ValAccQ = nil
	return t
}

// finiteOr0 maps NaN and ±Inf to 0 (JSON has no encoding for them).
func finiteOr0(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// Recorder is the narrow persistence interface hpo.Study checkpoints
// through: Load restores previously finished trials on resume, Record
// persists a round of finished trials. Implementations must tolerate
// Record receiving trials already persisted (resumed copies).
type Recorder interface {
	Load() ([]Trial, error)
	Record(trials []Trial) error
}

// Memoizer is an optional Recorder extension: Lookup returns a previously
// recorded successful trial for a config fingerprint, possibly from another
// study (cross-study result reuse).
type Memoizer interface {
	Lookup(fingerprint string) (Trial, bool)
}

// MetricPoint is one intermediate per-epoch metric streamed by a running
// trial — the journal's record of training progress between trial records.
type MetricPoint struct {
	TrialID int     `json:"trial_id"`
	Epoch   int     `json:"epoch"`
	Value   float64 `json:"value"`
}

// PruneDecision records a pruner killing a trial mid-flight.
type PruneDecision struct {
	TrialID int    `json:"trial_id"`
	Epoch   int    `json:"epoch"`
	Reason  string `json:"reason"`
}

// Promotion records a rung scheduler granting a trial a higher epoch
// budget than it was submitted with (rung-driven successive halving). A
// resumed study replays these to reconstruct rung decisions without
// re-executing the finished rungs.
type Promotion struct {
	TrialID int    `json:"trial_id"`
	Epoch   int    `json:"epoch"`
	Budget  int    `json:"budget"`
	Reason  string `json:"reason"`
}

// MetricRecorder is an optional Recorder extension for trial lifecycle
// telemetry: intermediate epoch metrics, prune decisions and rung
// promotions, persisted as they happen (not just at round boundaries like
// Record).
type MetricRecorder interface {
	RecordMetric(trialID, epoch int, value float64) error
	RecordPrune(trialID, epoch int, reason string) error
	RecordPromote(trialID, epoch, budget int, reason string) error
}

// WithoutMemo wraps a Recorder so it no longer answers memo lookups while
// preserving the MetricRecorder extension when the underlying recorder has
// one — the memoize:false path must still journal epoch metrics.
func WithoutMemo(r Recorder) Recorder {
	if mr, ok := r.(MetricRecorder); ok {
		return struct {
			Recorder
			MetricRecorder
		}{r, mr}
	}
	return struct{ Recorder }{r}
}

// Fingerprint returns the canonical deterministic identity of a config:
// sorted "k=v" pairs joined by commas, skipping sampler-internal keys
// (leading underscore). hpo.Config.Fingerprint delegates here so studies
// and the store can never disagree on config identity.
func Fingerprint(cfg map[string]interface{}) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		if strings.HasPrefix(k, "_") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%v", k, cfg[k])
	}
	return b.String()
}

// PublicConfig returns a copy of cfg without sampler-internal keys
// (leading underscore, e.g. Hyperband's "_hb" bracket binding and the
// "_hb_max" promotion ceiling). Persisted trial records and API responses
// must only ever carry public parameters: the hidden keys are scheduler
// bookkeeping scoped to one in-memory sampler instance, and Fingerprint
// already ignores them, so stripping changes no identity.
func PublicConfig(cfg map[string]interface{}) map[string]interface{} {
	if cfg == nil {
		return nil
	}
	out := make(map[string]interface{}, len(cfg))
	for k, v := range cfg {
		if strings.HasPrefix(k, "_") {
			continue
		}
		out[k] = v
	}
	return out
}

// MemoScope renders the canonical objective-scope string that namespaces
// journal memoization: the objective identity (dataset, sample count,
// model widths, base seed, target). The daemon and cmd/hpo both use this
// formula, so CLI and service studies share cache entries exactly when
// their objectives match.
//
// Deliberately NOT part of the scope: the per-trial seed stream (each
// trial perturbs the base seed by its trial id, which depends on sampler
// order). A memo hit therefore returns a result trained under a different
// split/init than the study would have drawn — memoization treats a
// config's accuracy as seed-robust, trading exact RNG reproducibility for
// reuse, as Hippo does. Studies that need bit-exact reproducibility set
// "memoize": false.
func MemoScope(dataset string, samples, cvFolds int, hidden []int, seed uint64, target float64) string {
	return fmt.Sprintf("dataset=%s,samples=%d,cv=%d,hidden=%v,seed=%d,target=%v",
		dataset, samples, cvFolds, hidden, seed, target)
}

// NormaliseConfig restores integer types lost by a JSON round trip
// (20 → 20.0), keeping fingerprints identical across save/load cycles.
func NormaliseConfig(m map[string]interface{}) map[string]interface{} {
	cfg := make(map[string]interface{}, len(m))
	for k, v := range m {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1e15 {
			cfg[k] = int(f)
			continue
		}
		cfg[k] = v
	}
	return cfg
}

// fingerprintOf fills in a missing fingerprint from the config.
func fingerprintOf(t Trial) string {
	if t.Fingerprint != "" {
		return t.Fingerprint
	}
	return Fingerprint(t.Config)
}
