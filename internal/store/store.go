// Package store persists HPO studies and trial results. Its centrepiece is
// the crash-safe append-only Journal (JSONL write-ahead log with fsync
// batching and an in-memory index) that backs the hpod control plane; the
// package also subsumes the legacy single-study checkpoint file format
// (FileRecorder) so hpo.Study checkpointing goes through one narrow
// Recorder interface regardless of backing storage.
//
// The Journal additionally indexes every successful trial by its config
// fingerprint, so identical configurations — within a study or across
// studies — can return a cached result instead of re-executing the
// training (Hippo-style result memoization).
package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sentinel errors, checkable via errors.Is.
var (
	// ErrNotFound reports a study id the store has never seen.
	ErrNotFound = errors.New("store: study not found")
	// ErrExists reports a CreateStudy with an id already in use.
	ErrExists = errors.New("store: study already exists")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt reports an unreadable journal record before the tail.
	ErrCorrupt = errors.New("store: corrupt journal")
	// ErrLocked reports a journal already opened by another process.
	ErrLocked = errors.New("store: journal locked by another process")
)

// StudyState is the lifecycle of a persisted study.
type StudyState string

// Study lifecycle states. Created studies wait for an explicit start;
// queued/running studies are re-submitted after a daemon restart.
const (
	StateCreated StudyState = "created"
	StateQueued  StudyState = "queued"
	StateRunning StudyState = "running"
	StateDone    StudyState = "done"
	StateFailed  StudyState = "failed"
)

// Active reports whether the state should be resumed after a restart.
func (s StudyState) Active() bool { return s == StateQueued || s == StateRunning }

// StudyMeta is the persisted description of one study.
type StudyMeta struct {
	ID        string     `json:"id"`
	Name      string     `json:"name,omitempty"`
	Spec      []byte     `json:"spec,omitempty"` // submitted spec, verbatim JSON
	State     StudyState `json:"state"`
	Error     string     `json:"error,omitempty"`
	CreatedAt time.Time  `json:"created_at"`
	UpdatedAt time.Time  `json:"updated_at"`
	// Summary fields, filled when a run finishes (and preserved across
	// restarts for finished studies).
	Trials   int     `json:"trials,omitempty"`
	Resumed  int     `json:"resumed,omitempty"`
	Memoized int     `json:"memoized,omitempty"`
	BestAcc  float64 `json:"best_acc,omitempty"`
}

// Summary carries end-of-run counters into SetStudyState.
type Summary struct {
	Trials   int
	Resumed  int
	Memoized int
	BestAcc  float64
}

// Trial is the storage form of one finished trial — the same shape the
// legacy checkpoint file used, plus the config fingerprint that keys
// memoization.
type Trial struct {
	ID          int                    `json:"id"`
	Config      map[string]interface{} `json:"config"`
	Fingerprint string                 `json:"fingerprint,omitempty"`
	// Scope namespaces the memo index: trials only answer lookups from
	// studies with an identical scope (the objective identity — dataset,
	// sample count, model widths, seed… — as opposed to the config, which
	// the fingerprint covers). Empty scope matches only empty scope.
	Scope         string    `json:"scope,omitempty"`
	FinalAcc      float64   `json:"final_acc"`
	BestAcc       float64   `json:"best_acc"`
	FinalLoss     float64   `json:"final_loss"`
	Epochs        int       `json:"epochs"`
	ValAccHistory []float64 `json:"val_acc_history,omitempty"`
	Stopped       bool      `json:"stopped,omitempty"`
	StopReason    string    `json:"stop_reason,omitempty"`
	DurationNS    int64     `json:"duration_ns"`
	Err           string    `json:"err,omitempty"`
	Canceled      bool      `json:"canceled,omitempty"`
}

// Succeeded reports whether the trial produced a usable result (memoizable
// and skippable on resume).
func (t Trial) Succeeded() bool { return t.Err == "" && !t.Canceled }

// Recorder is the narrow persistence interface hpo.Study checkpoints
// through: Load restores previously finished trials on resume, Record
// persists a round of finished trials. Implementations must tolerate
// Record receiving trials already persisted (resumed copies).
type Recorder interface {
	Load() ([]Trial, error)
	Record(trials []Trial) error
}

// Memoizer is an optional Recorder extension: Lookup returns a previously
// recorded successful trial for a config fingerprint, possibly from another
// study (cross-study result reuse).
type Memoizer interface {
	Lookup(fingerprint string) (Trial, bool)
}

// Fingerprint returns the canonical deterministic identity of a config:
// sorted "k=v" pairs joined by commas, skipping sampler-internal keys
// (leading underscore). hpo.Config.Fingerprint delegates here so studies
// and the store can never disagree on config identity.
func Fingerprint(cfg map[string]interface{}) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		if strings.HasPrefix(k, "_") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%v", k, cfg[k])
	}
	return b.String()
}

// MemoScope renders the canonical objective-scope string that namespaces
// journal memoization: the objective identity (dataset, sample count,
// model widths, base seed, target). The daemon and cmd/hpo both use this
// formula, so CLI and service studies share cache entries exactly when
// their objectives match.
//
// Deliberately NOT part of the scope: the per-trial seed stream (each
// trial perturbs the base seed by its trial id, which depends on sampler
// order). A memo hit therefore returns a result trained under a different
// split/init than the study would have drawn — memoization treats a
// config's accuracy as seed-robust, trading exact RNG reproducibility for
// reuse, as Hippo does. Studies that need bit-exact reproducibility set
// "memoize": false.
func MemoScope(dataset string, samples, cvFolds int, hidden []int, seed uint64, target float64) string {
	return fmt.Sprintf("dataset=%s,samples=%d,cv=%d,hidden=%v,seed=%d,target=%v",
		dataset, samples, cvFolds, hidden, seed, target)
}

// NormaliseConfig restores integer types lost by a JSON round trip
// (20 → 20.0), keeping fingerprints identical across save/load cycles.
func NormaliseConfig(m map[string]interface{}) map[string]interface{} {
	cfg := make(map[string]interface{}, len(m))
	for k, v := range m {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1e15 {
			cfg[k] = int(f)
			continue
		}
		cfg[k] = v
	}
	return cfg
}

// fingerprintOf fills in a missing fingerprint from the config.
func fingerprintOf(t Trial) string {
	if t.Fingerprint != "" {
		return t.Fingerprint
	}
	return Fingerprint(t.Config)
}
