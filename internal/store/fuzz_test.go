package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedLines are representative journal lines used as seed corpus
// material for both fuzz targets.
var fuzzSeedLines = [][]byte{
	[]byte(`{"seq":1,"type":"study","study_id":"s","study":{"id":"s","state":"created"},"at":"2026-01-01T00:00:00Z"}` + "\n"),
	[]byte(`{"seq":2,"type":"trial","study_id":"s","trial":{"id":0,"config":{"x":1},"best_acc":0.5},"at":"2026-01-01T00:00:00Z"}` + "\n"),
	[]byte(`{"seq":3,"type":"metric","study_id":"s","metric":{"trial_id":0,"epoch":1,"value":0.25},"at":"2026-01-01T00:00:00Z"}` + "\n"),
	[]byte(`{"seq":4,"type":"promote","study_id":"s","promote":{"trial_id":0,"epoch":2,"budget":9,"reason":"r"},"at":"2026-01-01T00:00:00Z"}` + "\n"),
	// A tenant-tagged study record with an absorbed epoch summary — the
	// multi-tenant daemon's record shape (docs/TENANCY.md).
	[]byte(`{"seq":5,"type":"study","study_id":"acme.s","study":{"id":"acme.s","tenant":"acme","state":"done","trials":1,"best_acc":0.5,"epochs_executed":2},"at":"2026-01-01T00:00:00Z"}` + "\n"),
}

// FuzzParseSegment fuzzes the segment record parser: whatever the bytes,
// it must never panic, never report an offset outside the input, and the
// good prefix it reports must re-parse cleanly and deterministically (the
// torn-tail truncation invariant: after truncating to the offset, the
// segment is strictly valid).
func FuzzParseSegment(f *testing.F) {
	var valid []byte
	for _, line := range fuzzSeedLines {
		valid = append(valid, line...)
		f.Add(append([]byte(nil), line...), true)
	}
	f.Add(append([]byte(nil), valid...), true)
	f.Add(append(append([]byte(nil), valid...), []byte(`{"seq":9,"type":"tri`)...), true) // torn tail
	f.Add([]byte("{}\n"), false)                                                          // parses, but no type → bad record
	f.Add([]byte("not json at all\n"), true)
	f.Add([]byte("\n"), false)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, raw []byte, allowTorn bool) {
		recs, good, err := parseSegment(raw, "fuzz", allowTorn)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-sentinel parse error: %v", err)
			}
			return
		}
		if good < 0 || good > len(raw) {
			t.Fatalf("good offset %d outside input of %d bytes", good, len(raw))
		}
		for i, rec := range recs {
			if rec.Type == "" {
				t.Fatalf("record %d accepted with empty type", i)
			}
		}
		// Truncation invariant: the good prefix is strictly valid — exactly
		// the bytes recovery keeps after a torn tail.
		recs2, good2, err2 := parseSegment(raw[:good], "fuzz-reparse", false)
		if err2 != nil {
			t.Fatalf("good prefix does not re-parse: %v", err2)
		}
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("re-parse diverged: %d/%d bytes, %d/%d records", good2, good, len(recs2), len(recs))
		}
	})
}

// FuzzJournalTornTailRecovery fuzzes crash recovery end to end: arbitrary
// bytes appended to a study's active segment (a torn write, garbage from a
// dying disk, or even well-formed extra records) must never panic OpenJournal
// and must never lose the records committed before them — the journal either
// opens with the committed history intact or refuses with ErrCorrupt.
func FuzzJournalTornTailRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{"seq":99,"type":"tri`))          // classic torn tail
	f.Add([]byte("garbage\nmore garbage"))          // unterminated junk after junk
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01})           // binary noise
	f.Add(append([]byte(nil), fuzzSeedLines[2]...)) // a valid extra record

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := filepath.Join(t.TempDir(), "j")
		j, err := OpenJournal(dir, JournalOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
			t.Fatal(err)
		}
		committed := []Trial{mkTrial(0, 2, 0.5), mkTrial(1, 3, 0.7)}
		if err := j.AppendTrials("s", committed); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Simulate the crash: raw bytes land after the committed records in
		// the study's active (highest-numbered) segment.
		seg := activeSegmentPath(t, dir, "s")
		fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(tail); err != nil {
			t.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}

		j2, err := OpenJournal(dir, JournalOptions{NoSync: true})
		if err != nil {
			// Refusal is legal — but only with the corruption sentinel.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open failed without ErrCorrupt: %v", err)
			}
			return
		}
		defer j2.Close()
		trials, err := j2.StudyTrials("s")
		if err != nil {
			t.Fatalf("committed study lost: %v", err)
		}
		if len(trials) < len(committed) {
			t.Fatalf("recovery lost committed records: %d < %d", len(trials), len(committed))
		}
		for i, want := range committed {
			if trials[i].ID != want.ID || trials[i].BestAcc != want.BestAcc {
				t.Fatalf("committed trial %d mutated: %+v", i, trials[i])
			}
		}
	})
}

// activeSegmentPath returns the highest-numbered manifest-listed segment of
// a study.
func activeSegmentPath(t *testing.T, dir, id string) string {
	t.Helper()
	man, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest unreadable: %v", err)
	}
	for _, ms := range man.Studies {
		if ms.ID == id {
			return filepath.Join(studyDir(dir, id), segmentFileName(ms.Segments[len(ms.Segments)-1]))
		}
	}
	t.Fatalf("study %s not in manifest", id)
	return ""
}

// TestFuzzSeedsSanity keeps the seed corpus itself honest under plain `go
// test` (the fuzz engine only validates seeds when -fuzz runs).
func TestFuzzSeedsSanity(t *testing.T) {
	var valid []byte
	for _, line := range fuzzSeedLines {
		valid = append(valid, line...)
	}
	recs, good, err := parseSegment(valid, "seeds", false)
	if err != nil || good != len(valid) || len(recs) != len(fuzzSeedLines) {
		t.Fatalf("seed corpus unparseable: %d recs, %d/%d bytes, err %v", len(recs), good, len(valid), err)
	}
	if !bytes.HasSuffix(fuzzSeedLines[0], []byte("\n")) {
		t.Fatal("seed lines must be newline-terminated")
	}
}
