package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotStudyRecordsMatchesJournal: the lock-free snapshot reader
// must decode exactly the stream the journal's own StudyRecords serves —
// and it must do so while the journal still holds the directory LOCK,
// which is the whole point (offline `hpo replay` against a live daemon).
func TestSnapshotStudyRecordsMatchesJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(dir, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := j.SetStudyState("s", StateRunning, "", nil); err != nil {
		t.Fatal(err)
	}
	rec := j.Recorder("s", "snap-test")
	if err := rec.(MetricRecorder).RecordMetric(0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := rec.(MetricRecorder).RecordPromote(0, 0, 3, "snap promote"); err != nil {
		t.Fatal(err)
	}
	if err := rec.(MetricRecorder).RecordPrune(1, 0, "snap prune"); err != nil {
		t.Fatal(err)
	}
	hist := make([]float64, 9) // long enough to take the val_acc_q path
	for i := range hist {
		hist[i] = float64(i) / 10
	}
	trials := []Trial{
		{ID: 0, Config: map[string]interface{}{"acc": 0.5, "num_epochs": 1}, Epochs: 9,
			FinalAcc: 0.9, BestAcc: 0.9, ValAccHistory: hist, Promoted: true},
		{ID: 1, Config: map[string]interface{}{"acc": 0.2, "num_epochs": 1}, Epochs: 1,
			FinalAcc: 0.1, BestAcc: 0.1, Pruned: true, PruneReason: "snap prune"},
	}
	if err := rec.Record(trials); err != nil {
		t.Fatal(err)
	}

	// The journal is still open (LOCK held): snapshot must not care.
	meta, snap, err := SnapshotStudyRecords(dir, "s")
	if err != nil {
		t.Fatal(err)
	}
	live, err := j.StudyRecords("s")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, live) {
		t.Fatalf("snapshot stream differs from journal stream:\nsnap: %+v\nlive: %+v", snap, live)
	}
	if meta.ID != "s" || meta.State != StateRunning {
		t.Fatalf("snapshot meta = %+v, want id s state running", meta)
	}

	// Histories decode on read: no consumer ever sees ValAccQ.
	found := false
	for _, r := range snap {
		if r.Trial != nil && r.Trial.ID == 0 {
			found = true
			if len(r.Trial.ValAccQ) != 0 {
				t.Fatal("snapshot leaked an encoded ValAccQ history")
			}
			if len(r.Trial.ValAccHistory) != len(hist) {
				t.Fatalf("history length %d, want %d", len(r.Trial.ValAccHistory), len(hist))
			}
		}
	}
	if !found {
		t.Fatal("trial record missing from snapshot")
	}
}

func TestSnapshotStudyRecordsErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	if _, _, err := SnapshotStudyRecords(dir, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing journal: err = %v, want ErrNotFound", err)
	}

	j, err := OpenJournal(dir, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SnapshotStudyRecords(dir, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unlisted study: err = %v, want ErrNotFound", err)
	}
}

// TestSnapshotStudyRecordsTornTail: a half-flushed final line on the
// active segment is in-flight data, not corruption — exactly like the
// journal's own crash recovery.
func TestSnapshotStudyRecordsTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(dir, JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.CreateStudy(StudyMeta{ID: "s"}); err != nil {
		t.Fatal(err)
	}
	rec := j.Recorder("s", "torn")
	if err := rec.(MetricRecorder).RecordMetric(0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(studyDir(dir, "s"), "segment-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999,"type":"met`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err := SnapshotStudyRecords(dir, "s")
	if err != nil {
		t.Fatalf("torn tail on the active segment must be tolerated: %v", err)
	}
	for _, r := range recs {
		if r.Seq == 999 {
			t.Fatal("torn record surfaced in the snapshot")
		}
	}
}
