package store

import "repro/internal/obs"

// Journal hot-path instrumentation. Handles are pre-resolved at init so
// the append path pays one atomic add per sample; scrape-time shape
// gauges (segment counts, open handles) are refreshed by the server's
// OnScrape hook from Stats() instead of being maintained here.
var (
	obsAppendsVec = obs.Default().CounterVec("hpo_store_appends_total",
		"Journal records appended, by record type.", "type")
	obsAppends = func() map[string]*obs.Counter {
		m := make(map[string]*obs.Counter, len(recordTypes))
		for _, t := range recordTypes {
			m[t] = obsAppendsVec.With(t)
		}
		return m
	}()
	obsAppendBytes = obs.Default().Counter("hpo_store_append_bytes_total",
		"Bytes appended to journal segments (JSONL lines incl. newline).")
	obsFsyncBatches = obs.Default().Counter("hpo_store_fsync_batches_total",
		"Group-commit passes (flush + fsync; counted under NoSync too).")
	obsFsyncBatchRecords = obs.Default().Histogram("hpo_store_fsync_batch_records",
		"Records made durable per group-commit pass.", obs.CountBuckets(1024))
	obsSegmentRotations = obs.Default().Counter("hpo_store_segment_rotations_total",
		"Active segments sealed and rotated to a fresh file.")
	obsHandleEvictions = obs.Default().Counter("hpo_store_segment_handle_evictions_total",
		"Open append handles closed by the MaxOpenSegments LRU cap.")
	obsWindowEvictions = obs.Default().Counter("hpo_store_event_window_evictions_total",
		"Events evicted from per-study SSE retention windows.")
	obsCompactionRuns = obs.Default().Counter("hpo_store_compaction_runs_total",
		"Completed journal compaction runs.")
	obsCompactedStudies = obs.Default().Counter("hpo_store_compacted_studies_total",
		"Terminal studies rewritten down to summary records.")
	obsCompactionDropped = obs.Default().Counter("hpo_store_compaction_records_dropped_total",
		"Journal records removed from disk by compaction.")
	obsCompactionBytes = obs.Default().Counter("hpo_store_compaction_bytes_reclaimed_total",
		"Segment bytes unlinked by compaction.")
	obsCompactionVerifyRefusals = obs.Default().Counter("hpo_store_compaction_verify_refusals_total",
		"Terminal studies left uncompacted because pre-compaction replay verification failed.")
)

// countAppend records one appended journal line in the metrics layer.
func countAppend(recType string, line int) {
	if c := obsAppends[recType]; c != nil {
		c.Inc()
	} else {
		obsAppendsVec.With(recType).Inc()
	}
	obsAppendBytes.Add(uint64(line))
}
