package cluster

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a deterministic discrete-event simulation engine with virtual
// time. It is single-goroutine by design: callbacks scheduled with At/After
// run inside Step/Run on the caller's goroutine, so simulated schedulers
// need no locking and runs are exactly reproducible.
type Engine struct {
	now    time.Duration
	pq     eventHeap
	nextID int64
	// executed counts delivered events, for diagnostics.
	executed int64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Executed returns the number of events delivered so far.
func (e *Engine) Executed() int64 { return e.executed }

// Pending returns the number of scheduled, not-yet-delivered events.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("cluster: scheduling event in the past: %v < %v", t, e.now))
	}
	e.nextID++
	heap.Push(&e.pq, &event{at: t, seq: e.nextID, fn: fn})
}

// After schedules fn to run delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("cluster: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// Step delivers the next event, advancing virtual time. It returns false if
// no events remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run delivers events until none remain and returns the final virtual time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil delivers events until done() reports true or no events remain.
// It returns true if done() was satisfied.
func (e *Engine) RunUntil(done func() bool) bool {
	for !done() {
		if !e.Step() {
			return done()
		}
	}
	return true
}

// event is a scheduled callback; seq breaks ties so same-time events fire in
// scheduling order (determinism).
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
