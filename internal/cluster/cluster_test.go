package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPresets(t *testing.T) {
	mn := MareNostrum4(2)
	if mn.TotalCores() != 96 || mn.TotalGPUs() != 0 {
		t.Fatalf("MareNostrum4(2): %d cores, %d gpus", mn.TotalCores(), mn.TotalGPUs())
	}
	mt := MinoTauro(1)
	if mt.Nodes[0].Cores != 16 || mt.Nodes[0].GPUs != 2 {
		t.Fatalf("MinoTauro node = %+v", mt.Nodes[0])
	}
	p9 := Power9(1)
	if p9.Nodes[0].Cores != 160 || p9.Nodes[0].GPUs != 4 {
		t.Fatalf("Power9 node = %+v", p9.Nodes[0])
	}
	for _, s := range []Spec{mn, mt, p9, Local(8)} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", s.Name, err)
		}
	}
}

func TestSpecString(t *testing.T) {
	s := MareNostrum4(28)
	if got := s.String(); got != "MareNostrum4[28× 48c/0g]" {
		t.Fatalf("String = %q", got)
	}
	mixed := Spec{Name: "mix", Nodes: []NodeSpec{{ID: 0, Cores: 4}, {ID: 1, Cores: 8}}}
	if got := mixed.String(); got != "mix[4c/0g,8c/0g]" {
		t.Fatalf("mixed String = %q", got)
	}
	if (Spec{Name: "x"}).String() != "x[empty]" {
		t.Fatal("empty spec rendering")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "none"},
		{Name: "zero", Nodes: []NodeSpec{{ID: 0, Cores: 0}}},
		{Name: "neg", Nodes: []NodeSpec{{ID: 0, Cores: 4, GPUs: -1}}},
		{Name: "dup", Nodes: []NodeSpec{{ID: 0, Cores: 4}, {ID: 0, Cores: 4}}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %q should be invalid", s.Name)
		}
	}
}

func TestUniformPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MareNostrum4(0)
}

func TestLocalFloor(t *testing.T) {
	if Local(0).Nodes[0].Cores != 1 {
		t.Fatal("Local should floor cores at 1")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Fatalf("final time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Executed() != 3 {
		t.Fatalf("executed = %d", e.Executed())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(time.Second, func() { order = append(order, "a") })
	e.At(time.Second, func() { order = append(order, "b") })
	e.Run()
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("tie-break order = %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 5 {
			e.After(time.Second, chain)
		}
	}
	e.After(time.Second, chain)
	end := e.Run()
	if hits != 5 || end != 5*time.Second {
		t.Fatalf("hits=%d end=%v", hits, end)
	}
}

func TestEnginePastEventPanics(t *testing.T) {
	e := NewEngine()
	e.After(2*time.Second, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past event")
		}
	}()
	e.At(time.Second, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().After(-time.Second, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(time.Duration(i)*time.Second, func() { count++ })
	}
	ok := e.RunUntil(func() bool { return count >= 4 })
	if !ok || count != 4 {
		t.Fatalf("RunUntil stopped at count=%d ok=%v", count, ok)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// Exhausting the queue without satisfying done returns false.
	if e.RunUntil(func() bool { return false }) {
		t.Fatal("RunUntil should report unsatisfied done")
	}
}

func TestEngineStepEmpty(t *testing.T) {
	if NewEngine().Step() {
		t.Fatal("Step on empty engine should return false")
	}
}

// Property: with arbitrary positive delays, events always fire in
// non-decreasing time order.
func TestEngineMonotoneTimeProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []time.Duration
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
