package cluster

import "testing"

func TestParseSpecJSONExplicit(t *testing.T) {
	src := `{
	  "name": "hybrid",
	  "nodes": [
	    {"count": 2, "cores": 48},
	    {"count": 1, "cores": 160, "gpus": 4, "core_speed": 0.9}
	  ]
	}`
	spec, err := ParseSpecJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(spec.Nodes))
	}
	if spec.TotalCores() != 48*2+160 || spec.TotalGPUs() != 4 {
		t.Fatalf("totals = %d cores, %d gpus", spec.TotalCores(), spec.TotalGPUs())
	}
	// Defaults applied.
	if spec.Nodes[0].CoreSpeed != 1 || spec.Nodes[2].CoreSpeed != 0.9 {
		t.Fatalf("core speeds = %v, %v", spec.Nodes[0].CoreSpeed, spec.Nodes[2].CoreSpeed)
	}
	// IDs are sequential and unique.
	if spec.Nodes[2].ID != 2 {
		t.Fatalf("ids = %v", spec.Nodes)
	}
}

func TestParseSpecJSONPreset(t *testing.T) {
	spec, err := ParseSpecJSON([]byte(`{"preset": "power9", "count": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Nodes) != 2 || spec.Nodes[0].GPUs != 4 {
		t.Fatalf("preset spec = %+v", spec)
	}
}

func TestParseSpecJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"nodes": [{"count": 1, "cores": 0}]}`,
		`{"preset": "deepthought", "count": 1}`,
	}
	for _, c := range cases {
		if _, err := ParseSpecJSON([]byte(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestPresetNames(t *testing.T) {
	for _, name := range []string{"marenostrum4", "MN4", "minotauro", "Power9", "p9", "cte-power9"} {
		if _, err := Preset(name, 1); err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
	}
	if _, err := Preset("summit", 1); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	// Zero count floors to 1.
	spec, _ := Preset("mn4", 0)
	if len(spec.Nodes) != 1 {
		t.Fatalf("floored count = %d", len(spec.Nodes))
	}
}
