// Package cluster models the machines the paper evaluates on — node and
// cluster specifications with presets for MareNostrum 4, MinoTauro and
// CTE-POWER9 — and provides the discrete-event simulation engine that lets
// the runtime execute the identical scheduling logic under virtual time for
// node counts this process cannot host physically.
package cluster

import (
	"fmt"
	"strings"
)

// NodeSpec describes one node's resources. Speeds are relative to the
// reference core/GPU of the perfmodel package (MareNostrum 4 Platinum core
// = 1.0, V100 = 1.0).
type NodeSpec struct {
	ID        int
	Name      string
	Cores     int
	GPUs      int
	CoreSpeed float64
	GPUSpeed  float64
}

// Spec is an ordered set of nodes forming a cluster reservation.
type Spec struct {
	Name  string
	Nodes []NodeSpec
}

// TotalCores sums cores across nodes.
func (s Spec) TotalCores() int {
	n := 0
	for _, nd := range s.Nodes {
		n += nd.Cores
	}
	return n
}

// TotalGPUs sums GPUs across nodes.
func (s Spec) TotalGPUs() int {
	n := 0
	for _, nd := range s.Nodes {
		n += nd.GPUs
	}
	return n
}

// String renders a short description like "MareNostrum4[2× 48c/0g]".
func (s Spec) String() string {
	if len(s.Nodes) == 0 {
		return s.Name + "[empty]"
	}
	first := s.Nodes[0]
	uniform := true
	for _, nd := range s.Nodes[1:] {
		if nd.Cores != first.Cores || nd.GPUs != first.GPUs {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%s[%d× %dc/%dg]", s.Name, len(s.Nodes), first.Cores, first.GPUs)
	}
	var parts []string
	for _, nd := range s.Nodes {
		parts = append(parts, fmt.Sprintf("%dc/%dg", nd.Cores, nd.GPUs))
	}
	return fmt.Sprintf("%s[%s]", s.Name, strings.Join(parts, ","))
}

// Validate reports configuration errors (no nodes, non-positive cores,
// duplicate ids).
func (s Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("cluster: %s has no nodes", s.Name)
	}
	seen := map[int]bool{}
	for _, nd := range s.Nodes {
		if nd.Cores <= 0 {
			return fmt.Errorf("cluster: node %d has %d cores", nd.ID, nd.Cores)
		}
		if nd.GPUs < 0 {
			return fmt.Errorf("cluster: node %d has negative GPUs", nd.ID)
		}
		if seen[nd.ID] {
			return fmt.Errorf("cluster: duplicate node id %d", nd.ID)
		}
		seen[nd.ID] = true
	}
	return nil
}

// MareNostrum4 returns n general-purpose nodes: 2× Intel Xeon Platinum 8160,
// 24 cores each → 48 cores per node, no GPUs (paper §5).
func MareNostrum4(n int) Spec {
	return uniform("MareNostrum4", n, 48, 0, 1.0, 1.0)
}

// MinoTauro returns n GPU nodes: 2× Xeon E5-2630 v3 8-core (16 cores) and
// 2× NVIDIA K80 (paper §5). Haswell cores are slightly slower and a K80 is
// far slower than the V100 reference.
func MinoTauro(n int) Spec {
	return uniform("MinoTauro", n, 16, 2, 0.8, 0.25)
}

// Power9 returns n CTE-POWER9 nodes: 2× POWER9 8335-GTH, 160 hardware
// threads, 4× NVIDIA V100 (paper §5).
func Power9(n int) Spec {
	return uniform("POWER9", n, 160, 4, 0.9, 1.0)
}

// Uniform builds an n-node homogeneous cluster with the given per-node
// shape; exported for tests and custom experiment setups.
func Uniform(name string, n, cores, gpus int, coreSpeed, gpuSpeed float64) Spec {
	return uniform(name, n, cores, gpus, coreSpeed, gpuSpeed)
}

func uniform(name string, n, cores, gpus int, coreSpeed, gpuSpeed float64) Spec {
	if n < 1 {
		panic(fmt.Sprintf("cluster: %s needs at least one node", name))
	}
	s := Spec{Name: name}
	for i := 0; i < n; i++ {
		s.Nodes = append(s.Nodes, NodeSpec{
			ID: i, Name: fmt.Sprintf("%s-%02d", strings.ToLower(name), i),
			Cores: cores, GPUs: gpus, CoreSpeed: coreSpeed, GPUSpeed: gpuSpeed,
		})
	}
	return s
}

// Local returns a single-node spec describing the current process as a
// "node" with the given core count, used for real (non-simulated) runs.
func Local(cores int) Spec {
	if cores < 1 {
		cores = 1
	}
	return Spec{Name: "local", Nodes: []NodeSpec{{ID: 0, Name: "local-00", Cores: cores, CoreSpeed: 1, GPUSpeed: 1}}}
}
