package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
)

// specJSON is the on-disk cluster description accepted by ParseSpecJSON:
//
//	{"name": "mycluster",
//	 "nodes": [{"count": 4, "cores": 48, "gpus": 0,
//	            "core_speed": 1.0, "gpu_speed": 1.0}]}
//
// or a shorthand preset reference: {"preset": "marenostrum4", "count": 14}.
type specJSON struct {
	Name   string          `json:"name"`
	Nodes  []nodeGroupJSON `json:"nodes"`
	Preset string          `json:"preset"`
	Count  int             `json:"count"`
}

type nodeGroupJSON struct {
	Count     int     `json:"count"`
	Cores     int     `json:"cores"`
	GPUs      int     `json:"gpus"`
	CoreSpeed float64 `json:"core_speed"`
	GPUSpeed  float64 `json:"gpu_speed"`
}

// ParseSpecJSON loads a cluster specification from JSON, either as explicit
// node groups or as a named preset with a node count.
func ParseSpecJSON(data []byte) (Spec, error) {
	var raw specJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return Spec{}, fmt.Errorf("cluster: parsing spec: %w", err)
	}
	if raw.Preset != "" {
		return Preset(raw.Preset, raw.Count)
	}
	if raw.Name == "" {
		raw.Name = "custom"
	}
	spec := Spec{Name: raw.Name}
	id := 0
	for gi, g := range raw.Nodes {
		if g.Count <= 0 {
			g.Count = 1
		}
		if g.Cores <= 0 {
			return Spec{}, fmt.Errorf("cluster: node group %d needs cores > 0", gi)
		}
		coreSpeed := g.CoreSpeed
		if coreSpeed <= 0 {
			coreSpeed = 1
		}
		gpuSpeed := g.GPUSpeed
		if gpuSpeed <= 0 {
			gpuSpeed = 1
		}
		for i := 0; i < g.Count; i++ {
			spec.Nodes = append(spec.Nodes, NodeSpec{
				ID:    id,
				Name:  fmt.Sprintf("%s-%02d", strings.ToLower(raw.Name), id),
				Cores: g.Cores, GPUs: g.GPUs,
				CoreSpeed: coreSpeed, GPUSpeed: gpuSpeed,
			})
			id++
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Preset returns a named machine preset with n nodes: "marenostrum4",
// "minotauro" or "power9" (case-insensitive).
func Preset(name string, n int) (Spec, error) {
	if n < 1 {
		n = 1
	}
	switch strings.ToLower(name) {
	case "marenostrum4", "mn4":
		return MareNostrum4(n), nil
	case "minotauro":
		return MinoTauro(n), nil
	case "power9", "cte-power9", "p9":
		return Power9(n), nil
	default:
		return Spec{}, fmt.Errorf("cluster: unknown preset %q (want marenostrum4, minotauro or power9)", name)
	}
}
