// Package hpo implements the paper's contribution — hyperparameter
// optimisation structured as independent runtime tasks — together with the
// "library that puts together all key algorithms in HPO" promised as future
// work (§7): grid search, random search, Bayesian optimisation (GP + expected
// improvement), the Tree-structured Parzen Estimator and
// Hyperband/successive halving, all sharing one search-space definition
// loaded from the paper's JSON config format (Listing 1).
package hpo

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Param describes one hyperparameter axis.
type Param interface {
	// Name returns the parameter name (JSON key).
	Name() string
	// GridValues enumerates the values grid search iterates.
	GridValues() []interface{}
	// Sample draws a random value.
	Sample(rng *tensor.RNG) interface{}
	// Encode maps a value into [0, 1] for model-based optimisers.
	Encode(v interface{}) float64
	// DecodeNearest maps a point in [0, 1] back to a legal value.
	DecodeNearest(x float64) interface{}
}

// Categorical is an explicit value list — the only kind the paper's Listing 1
// uses (e.g. "optimizer": ["Adam", "SGD", "RMSprop"]).
type Categorical struct {
	Key    string
	Values []interface{}
}

// Name implements Param.
func (c Categorical) Name() string { return c.Key }

// GridValues implements Param.
func (c Categorical) GridValues() []interface{} { return c.Values }

// Sample implements Param.
func (c Categorical) Sample(rng *tensor.RNG) interface{} {
	return c.Values[rng.Intn(len(c.Values))]
}

// Encode implements Param.
func (c Categorical) Encode(v interface{}) float64 {
	if len(c.Values) <= 1 {
		return 0
	}
	for i, cand := range c.Values {
		if valueEqual(cand, v) {
			return float64(i) / float64(len(c.Values)-1)
		}
	}
	return 0
}

// DecodeNearest implements Param.
func (c Categorical) DecodeNearest(x float64) interface{} {
	if len(c.Values) == 1 {
		return c.Values[0]
	}
	i := int(math.Round(x * float64(len(c.Values)-1)))
	if i < 0 {
		i = 0
	}
	if i >= len(c.Values) {
		i = len(c.Values) - 1
	}
	return c.Values[i]
}

// IntRange is an integer interval [Min, Max] with an optional grid Step.
type IntRange struct {
	Key      string
	Min, Max int
	Step     int // grid stride; default 1
}

// Name implements Param.
func (p IntRange) Name() string { return p.Key }

// GridValues implements Param.
func (p IntRange) GridValues() []interface{} {
	step := p.Step
	if step <= 0 {
		step = 1
	}
	var out []interface{}
	for v := p.Min; v <= p.Max; v += step {
		out = append(out, v)
	}
	return out
}

// Sample implements Param.
func (p IntRange) Sample(rng *tensor.RNG) interface{} {
	return p.Min + rng.Intn(p.Max-p.Min+1)
}

// Encode implements Param.
func (p IntRange) Encode(v interface{}) float64 {
	if p.Max == p.Min {
		return 0
	}
	return (asFloat(v) - float64(p.Min)) / float64(p.Max-p.Min)
}

// DecodeNearest implements Param.
func (p IntRange) DecodeNearest(x float64) interface{} {
	v := int(math.Round(float64(p.Min) + x*float64(p.Max-p.Min)))
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	return v
}

// FloatRange is a continuous interval, optionally log-scaled (the natural
// choice for learning rates).
type FloatRange struct {
	Key        string
	Min, Max   float64
	Log        bool
	GridPoints int // number of grid samples; default 4
}

// Name implements Param.
func (p FloatRange) Name() string { return p.Key }

// GridValues implements Param.
func (p FloatRange) GridValues() []interface{} {
	n := p.GridPoints
	if n <= 1 {
		n = 4
	}
	out := make([]interface{}, n)
	for i := 0; i < n; i++ {
		out[i] = p.DecodeNearest(float64(i) / float64(n-1))
	}
	return out
}

// Sample implements Param.
func (p FloatRange) Sample(rng *tensor.RNG) interface{} {
	return p.DecodeNearest(rng.Float64())
}

// Encode implements Param.
func (p FloatRange) Encode(v interface{}) float64 {
	f := asFloat(v)
	if p.Log {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		if hi == lo {
			return 0
		}
		return (math.Log(f) - lo) / (hi - lo)
	}
	if p.Max == p.Min {
		return 0
	}
	return (f - p.Min) / (p.Max - p.Min)
}

// DecodeNearest implements Param.
func (p FloatRange) DecodeNearest(x float64) interface{} {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	if p.Log {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		return math.Exp(lo + x*(hi-lo))
	}
	return p.Min + x*(p.Max-p.Min)
}

// Space is an ordered set of parameters.
type Space struct {
	Params []Param
}

// Size returns the grid cardinality (product of axis sizes).
func (s *Space) Size() int {
	n := 1
	for _, p := range s.Params {
		n *= len(p.GridValues())
	}
	return n
}

// Names returns the parameter names in declaration order.
func (s *Space) Names() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name()
	}
	return out
}

// ByName returns the parameter with the given name, or nil.
func (s *Space) ByName(name string) Param {
	for _, p := range s.Params {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// Sample draws one random config.
func (s *Space) Sample(rng *tensor.RNG) Config {
	cfg := Config{}
	for _, p := range s.Params {
		cfg[p.Name()] = p.Sample(rng)
	}
	return cfg
}

// Encode maps a config to the unit hypercube in parameter order.
func (s *Space) Encode(cfg Config) []float64 {
	out := make([]float64, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Encode(cfg[p.Name()])
	}
	return out
}

// Decode maps a unit-hypercube point back to a legal config.
func (s *Space) Decode(x []float64) Config {
	cfg := Config{}
	for i, p := range s.Params {
		v := 0.0
		if i < len(x) {
			v = x[i]
		}
		cfg[p.Name()] = p.DecodeNearest(v)
	}
	return cfg
}

// ParseSpaceJSON loads a search space from the paper's config format: each
// key maps either to a plain JSON array (categorical, Listing 1) or to an
// object {"type": "int"|"float", "min": ..., "max": ..., "log": bool,
// "step": int}. Keys are sorted for deterministic parameter order.
func ParseSpaceJSON(data []byte) (*Space, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("hpo: parsing space JSON: %w", err)
	}
	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	s := &Space{}
	for _, k := range keys {
		p, err := parseParam(k, raw[k])
		if err != nil {
			return nil, err
		}
		s.Params = append(s.Params, p)
	}
	if len(s.Params) == 0 {
		return nil, fmt.Errorf("hpo: empty search space")
	}
	return s, nil
}

func parseParam(key string, raw json.RawMessage) (Param, error) {
	// Try a plain array first: categorical.
	var arr []interface{}
	if err := json.Unmarshal(raw, &arr); err == nil {
		if len(arr) == 0 {
			return nil, fmt.Errorf("hpo: parameter %q has no values", key)
		}
		return Categorical{Key: key, Values: normaliseJSONValues(arr)}, nil
	}
	var spec struct {
		Type string  `json:"type"`
		Min  float64 `json:"min"`
		Max  float64 `json:"max"`
		Log  bool    `json:"log"`
		Step int     `json:"step"`
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("hpo: parameter %q: %w", key, err)
	}
	if spec.Max < spec.Min {
		return nil, fmt.Errorf("hpo: parameter %q: max %v < min %v", key, spec.Max, spec.Min)
	}
	switch spec.Type {
	case "int":
		return IntRange{Key: key, Min: int(spec.Min), Max: int(spec.Max), Step: spec.Step}, nil
	case "float":
		if spec.Log && spec.Min <= 0 {
			return nil, fmt.Errorf("hpo: parameter %q: log scale requires min > 0", key)
		}
		return FloatRange{Key: key, Min: spec.Min, Max: spec.Max, Log: spec.Log}, nil
	default:
		return nil, fmt.Errorf("hpo: parameter %q: unknown type %q", key, spec.Type)
	}
}

// normaliseJSONValues converts whole-number float64 JSON values to int so
// configs carry natural types ("num_epochs": [20, 50, 100] → ints).
func normaliseJSONValues(arr []interface{}) []interface{} {
	out := make([]interface{}, len(arr))
	for i, v := range arr {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1e15 {
			out[i] = int(f)
			continue
		}
		out[i] = v
	}
	return out
}

func valueEqual(a, b interface{}) bool {
	if a == b {
		return true
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	return aok && bok && af == bf
}

func toFloat(v interface{}) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case float32:
		return float64(x), true
	default:
		return 0, false
	}
}

func asFloat(v interface{}) float64 {
	f, _ := toFloat(v)
	return f
}
