package hpo

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/runtime"
)

// Task names of the Figure-3 pipeline stages.
const (
	visTaskName  = "visualisation"
	plotTaskName = "plot"
)

// registerPipeline adds the visualisation and plot tasks that recreate the
// paper's application structure (Figure 2/3): "for immediate and interactive
// action, the performance measure returned can be visualised using another
// task. When all tasks are completed, we plot the graphs" (§4).
func (s *Study) registerPipeline() error {
	rt := s.opts.Runtime
	if !rt.Registered(visTaskName) {
		if err := rt.Register(runtime.TaskDef{
			Name:    visTaskName,
			Returns: 1,
			Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
				res, ok := args[0].(TrialResult)
				if !ok {
					return []interface{}{"(trial unavailable)"}, nil
				}
				line := fmt.Sprintf("trial %2d  best %.4f  final %.4f  epochs %2d  %s",
					res.ID, res.BestAcc, res.FinalAcc, res.Epochs, res.Config.Fingerprint())
				if res.Err != "" {
					line = fmt.Sprintf("trial %2d  FAILED: %s", res.ID, res.Err)
				}
				return []interface{}{line}, nil
			},
		}); err != nil {
			return err
		}
	}
	if !rt.Registered(plotTaskName) {
		if err := rt.Register(runtime.TaskDef{
			Name:    plotTaskName,
			Returns: 1,
			Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
				lines := make([]string, 0, len(args))
				for _, a := range args {
					if s, ok := a.(string); ok {
						lines = append(lines, s)
					}
				}
				sort.Strings(lines)
				return []interface{}{"=== study plot ===\n" + strings.Join(lines, "\n")}, nil
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

// loadCheckpoint reads previously finished trials keyed by config
// fingerprint; a missing file is an empty checkpoint.
func (s *Study) loadCheckpoint() (map[string]TrialResult, error) {
	out := map[string]TrialResult{}
	if s.opts.CheckpointPath == "" {
		return out, nil
	}
	raw, err := os.ReadFile(s.opts.CheckpointPath)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("hpo: reading checkpoint: %w", err)
	}
	trials, err := decodeCheckpoint(raw)
	if err != nil {
		return nil, err
	}
	maxID := -1
	for _, t := range trials {
		if t.Err != "" || t.Canceled {
			continue // rerun failures and cancellations
		}
		out[t.Config.Fingerprint()] = t
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	s.mu.Lock()
	if s.nextID <= maxID {
		s.nextID = maxID + 1
	}
	s.mu.Unlock()
	return out, nil
}

// saveCheckpoint persists all results so far; atomic-rename so a crash mid
// write never corrupts the previous checkpoint.
func (s *Study) saveCheckpoint() error {
	if s.opts.CheckpointPath == "" {
		return nil
	}
	s.mu.Lock()
	raw, err := encodeCheckpoint(s.results)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	tmp := s.opts.CheckpointPath + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("hpo: writing checkpoint: %w", err)
	}
	return os.Rename(tmp, s.opts.CheckpointPath)
}
