package hpo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runtime"
	"repro/internal/store"
)

// Task names of the Figure-3 pipeline stages.
const (
	visTaskName  = "visualisation"
	plotTaskName = "plot"
)

// registerPipeline adds the visualisation and plot tasks that recreate the
// paper's application structure (Figure 2/3): "for immediate and interactive
// action, the performance measure returned can be visualised using another
// task. When all tasks are completed, we plot the graphs" (§4).
func (s *Study) registerPipeline() error {
	rt := s.opts.Runtime
	if !rt.Registered(visTaskName) {
		if err := rt.Register(runtime.TaskDef{
			Name:    visTaskName,
			Returns: 1,
			Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
				res, ok := args[0].(TrialResult)
				if !ok {
					return []interface{}{"(trial unavailable)"}, nil
				}
				line := fmt.Sprintf("trial %2d  best %.4f  final %.4f  epochs %2d  %s",
					res.ID, res.BestAcc, res.FinalAcc, res.Epochs, res.Config.Fingerprint())
				if res.Err != "" {
					line = fmt.Sprintf("trial %2d  FAILED: %s", res.ID, res.Err)
				}
				return []interface{}{line}, nil
			},
		}); err != nil {
			return err
		}
	}
	if !rt.Registered(plotTaskName) {
		if err := rt.Register(runtime.TaskDef{
			Name:    plotTaskName,
			Returns: 1,
			Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
				lines := make([]string, 0, len(args))
				for _, a := range args {
					if s, ok := a.(string); ok {
						lines = append(lines, s)
					}
				}
				sort.Strings(lines)
				return []interface{}{"=== study plot ===\n" + strings.Join(lines, "\n")}, nil
			},
		}); err != nil {
			return err
		}
	}
	return nil
}

// loadCheckpoint restores previously finished trials from the study's
// Recorder, keyed by config fingerprint. Failures and cancellations are
// dropped so they rerun.
func (s *Study) loadCheckpoint() (map[string]TrialResult, error) {
	out := map[string]TrialResult{}
	if s.recorder == nil {
		return out, nil
	}
	stored, err := s.recorder.Load()
	if err != nil {
		return nil, err
	}
	maxID := -1
	for _, st := range stored {
		t := FromStoreTrial(st)
		if !t.Succeeded() {
			continue // rerun failures, cancellations and pruned trials
		}
		out[t.Config.Fingerprint()] = t
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	s.mu.Lock()
	if s.nextID <= maxID {
		s.nextID = maxID + 1
	}
	s.mu.Unlock()
	return out, nil
}

// recordRound persists one round of finished results through the Recorder.
// Recorders dedup already-persisted trials, so passing resumed copies is
// harmless (and keeps file checkpoints complete).
func (s *Study) recordRound(round []TrialResult) error {
	if s.recorder == nil {
		return nil
	}
	// Terminal trial records join the same total order as metric and
	// decision records (see Study.decisionMu): replay relies on a trial's
	// final record never interleaving into another trial's
	// observation→decision window.
	s.decisionMu.Lock()
	defer s.decisionMu.Unlock()
	return s.recorder.Record(toStoreTrials(round))
}

// memoLookup consults the recorder's cross-study memo index, when it has
// one, for a finished result with an identical config fingerprint.
func (s *Study) memoLookup(fingerprint string) (TrialResult, bool) {
	m, ok := s.recorder.(store.Memoizer)
	if !ok {
		return TrialResult{}, false
	}
	st, hit := m.Lookup(fingerprint)
	if !hit {
		return TrialResult{}, false
	}
	return FromStoreTrial(st), true
}
