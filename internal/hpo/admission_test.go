package hpo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainGrants runs one awaiter goroutine per reserved id and returns a
// channel receiving ids in grant order; each grant holds its slot until
// proceed is signalled, so with capacity 1 the receive order IS the
// queue's admission order.
func drainGrants(q *AdmissionQueue, ids []string, proceed chan struct{}) chan string {
	order := make(chan string, len(ids))
	for _, id := range ids {
		go func(id string) {
			if q.Await(id) != nil {
				return
			}
			order <- id
			<-proceed
			q.Release(id)
		}(id)
	}
	return order
}

// TestAdmissionFairShareInterleavesTenants pins the weighted fair-share
// contract: tenant a's four-study burst submitted entirely before tenant
// b's must not be granted ahead of it. A FCFS admission order
// (a1 a2 a3 a4 b1 …) fails this test.
func TestAdmissionFairShareInterleavesTenants(t *testing.T) {
	q := NewAdmissionQueue(1)
	// Hold the only slot so every subsequent reservation queues.
	if err := q.Reserve("z", "z-seed"); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 1; i <= 4; i++ {
		ids = append(ids, fmt.Sprintf("a-%d", i))
	}
	for i := 1; i <= 4; i++ {
		ids = append(ids, fmt.Sprintf("b-%d", i))
	}
	for _, id := range ids {
		if err := q.Reserve(id[:1], id); err != nil {
			t.Fatalf("reserve %s: %v", id, err)
		}
	}
	proceed := make(chan struct{})
	order := drainGrants(q, ids, proceed)
	q.Release("z-seed")

	want := []string{"a-1", "b-1", "a-2", "b-2", "a-3", "b-3", "a-4", "b-4"}
	for i, w := range want {
		select {
		case got := <-order:
			if got != w {
				t.Fatalf("grant %d = %s, want %s (fair-share must interleave tenants, not FCFS)", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d never arrived (want %s)", i, w)
		}
		proceed <- struct{}{}
	}
}

// TestAdmissionWeightedShares gives tenant a twice tenant b's weight and
// expects two a-grants per b-grant under contention.
func TestAdmissionWeightedShares(t *testing.T) {
	q := NewAdmissionQueue(1)
	q.SetLimits(func(tenant string) TenantLimits {
		if tenant == "a" {
			return TenantLimits{Weight: 2}
		}
		return TenantLimits{Weight: 1}
	})
	if err := q.Reserve("z", "z-seed"); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 1; i <= 4; i++ {
		ids = append(ids, fmt.Sprintf("a-%d", i))
	}
	for i := 1; i <= 2; i++ {
		ids = append(ids, fmt.Sprintf("b-%d", i))
	}
	for _, id := range ids {
		if err := q.Reserve(id[:1], id); err != nil {
			t.Fatalf("reserve %s: %v", id, err)
		}
	}
	proceed := make(chan struct{})
	order := drainGrants(q, ids, proceed)
	q.Release("z-seed")

	var got []string
	for range ids {
		select {
		case id := <-order:
			got = append(got, id)
		case <-time.After(5 * time.Second):
			t.Fatalf("grants stalled after %v", got)
		}
		proceed <- struct{}{}
	}
	// Stride with weights 2:1 → a1 b1 a2 a3 b2 a4.
	want := []string{"a-1", "b-1", "a-2", "a-3", "b-2", "a-4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weighted grant order = %v, want %v", got, want)
		}
	}
}

// TestAdmissionQuotaNeverOversubscribes hammers Reserve from many
// goroutines per tenant (run under -race) and asserts the per-tenant
// admitted count never exceeds MaxConcurrent at any instant.
func TestAdmissionQuotaNeverOversubscribes(t *testing.T) {
	const quota, perTenant = 2, 12
	q := NewAdmissionQueue(8)
	q.SetLimits(func(string) TenantLimits { return TenantLimits{MaxConcurrent: quota} })

	var running [2]atomic.Int32
	var admitted, rejected atomic.Int32
	var wg sync.WaitGroup
	for ti, tenant := range []string{"a", "b"} {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(ti int, tenant string, g int) {
				defer wg.Done()
				id := fmt.Sprintf("%s-%d", tenant, g)
				for {
					err := q.Reserve(tenant, id)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQuotaExceeded) {
						t.Errorf("reserve %s: unexpected error %v", id, err)
						return
					}
					rejected.Add(1)
					time.Sleep(time.Millisecond)
				}
				if err := q.Await(id); err != nil {
					t.Errorf("await %s: %v", id, err)
					return
				}
				if n := running[ti].Add(1); n > quota {
					t.Errorf("tenant %s oversubscribed: %d concurrent (quota %d)", tenant, n, quota)
				}
				admitted.Add(1)
				time.Sleep(2 * time.Millisecond)
				running[ti].Add(-1)
				q.Release(id)
			}(ti, tenant, g)
		}
	}
	wg.Wait()
	if got := admitted.Load(); got != 2*perTenant {
		t.Fatalf("admitted %d studies, want %d", got, 2*perTenant)
	}
	if rejected.Load() == 0 {
		t.Fatal("expected at least one ErrQuotaExceeded rejection under contention")
	}
	if n := q.InFlight("a") + q.InFlight("b"); n != 0 {
		t.Fatalf("inflight after drain = %d, want 0", n)
	}
}

// TestAdmissionBackpressureBoundsDepth pins the bounded waiting room:
// immediate ErrBackpressure when full, ErrBackpressureTimeout from an
// exhausted ReserveWait, and a successful wait once space frees.
func TestAdmissionBackpressureBoundsDepth(t *testing.T) {
	q := NewAdmissionQueue(1)
	q.SetMaxDepth(2)
	if err := q.Reserve("a", "seed"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w1", "w2"} {
		if err := q.Reserve("a", id); err != nil {
			t.Fatalf("reserve %s: %v", id, err)
		}
	}
	if d := q.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
	err := q.Reserve("b", "w3")
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("reserve beyond depth = %v, want ErrBackpressure", err)
	}
	if errors.Is(err, ErrBackpressureTimeout) {
		t.Fatal("immediate rejection must not be the timeout sentinel")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.ReserveWait(ctx, "b", "w3"); !errors.Is(err, ErrBackpressureTimeout) {
		t.Fatalf("ReserveWait past deadline = %v, want ErrBackpressureTimeout", err)
	}

	// Space opens while a ReserveWait blocks: it must admit.
	done := make(chan error, 1)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	go func() { done <- q.ReserveWait(ctx2, "b", "w3") }()
	time.Sleep(10 * time.Millisecond)
	q.Release("seed") // grants w1, depth 2 → 1
	if err := <-done; err != nil {
		t.Fatalf("ReserveWait after space freed = %v, want nil", err)
	}
	if d := q.Depth(); d != 2 {
		t.Fatalf("Depth after re-admission = %d, want 2", d)
	}
}

// TestAdmissionEpochBudget checks the journal-derived lifetime budget
// gate.
func TestAdmissionEpochBudget(t *testing.T) {
	usage := map[string]int{"a": 10, "b": 9}
	q := NewAdmissionQueue(4)
	q.SetLimits(func(string) TenantLimits { return TenantLimits{MaxTotalEpochs: 10} })
	q.SetEpochUsage(func(tenant string) int { return usage[tenant] })

	err := q.Reserve("a", "a-1")
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "total_epochs" || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("budget-exhausted reserve = %v, want QuotaError{total_epochs}", err)
	}
	if err := q.Reserve("b", "b-1"); err != nil {
		t.Fatalf("under-budget reserve = %v", err)
	}
}

// TestAdmissionAbortAndShutdown: canceled waiters observe
// ErrAdmissionAborted, granted studies are untouched, and Shutdown drains
// the room.
func TestAdmissionAbortAndShutdown(t *testing.T) {
	q := NewAdmissionQueue(1)
	if err := q.Reserve("a", "run"); err != nil {
		t.Fatal(err)
	}
	if err := q.Reserve("a", "wait"); err != nil {
		t.Fatal(err)
	}
	if q.Abort("run") {
		t.Fatal("Abort must not touch a granted reservation")
	}
	done := make(chan error, 1)
	go func() { done <- q.Await("wait") }()
	time.Sleep(5 * time.Millisecond)
	if !q.Abort("wait") {
		t.Fatal("Abort of a waiting reservation reported no action")
	}
	if err := <-done; !errors.Is(err, ErrAdmissionAborted) {
		t.Fatalf("aborted Await = %v, want ErrAdmissionAborted", err)
	}
	// Idempotent reserve of a live id, then shutdown.
	if err := q.Reserve("a", "run"); err != nil {
		t.Fatalf("re-reserve of live id = %v, want nil (idempotent)", err)
	}
	if err := q.Reserve("b", "w2"); err != nil {
		t.Fatal(err)
	}
	q.Shutdown()
	if err := q.Await("w2"); !errors.Is(err, ErrAdmissionAborted) {
		t.Fatalf("Await after Shutdown = %v, want ErrAdmissionAborted", err)
	}
	if err := q.Reserve("c", "c-1"); !errors.Is(err, ErrAdmissionAborted) {
		t.Fatalf("Reserve after Shutdown = %v, want ErrAdmissionAborted", err)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth after Shutdown = %d, want 0", d)
	}
}
