package hpo

import (
	"strings"
	"testing"
	"time"
)

func sampleStudyResult() *StudyResult {
	best := TrialResult{
		ID: 1, Config: Config{"optimizer": "Adam", "batch_size": 32},
		TrialMetrics: TrialMetrics{BestAcc: 0.97, FinalAcc: 0.95, Epochs: 5,
			ValAccHistory: []float64{0.5, 0.8, 0.9, 0.95, 0.95}},
	}
	return &StudyResult{
		Algorithm: "grid",
		Trials: []TrialResult{
			{ID: 0, Config: Config{"optimizer": "SGD", "batch_size": 32},
				TrialMetrics: TrialMetrics{BestAcc: 0.81, FinalAcc: 0.8, Epochs: 5,
					ValAccHistory: []float64{0.3, 0.5, 0.7, 0.8, 0.8}}},
			best,
			{ID: 2, Config: Config{"optimizer": "RMSprop", "batch_size": 64}, Err: "nan loss"},
			{ID: 3, Config: Config{"optimizer": "Adam", "batch_size": 64},
				TrialMetrics: TrialMetrics{BestAcc: 0.9, FinalAcc: 0.9, Epochs: 5,
					ValAccHistory: []float64{0.4, 0.6, 0.8, 0.85, 0.9}}},
		},
		Best:     &best,
		Duration: 1500 * time.Millisecond,
		Resumed:  1,
	}
}

func TestWriteReport(t *testing.T) {
	var b strings.Builder
	if err := WriteReport(&b, sampleStudyResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HPO study report — grid search",
		"trials: 4 (1 resumed from checkpoint)",
		"best: **0.9700**",
		"## Leaderboard",
		"## Accuracy curves",
		"## Parameter aggregates",
		"### optimizer",
		"`Adam`: 0.9350 over 2 trials",
		"`SGD`: 0.8100 over 1 trials",
		"## Failures",
		"nan loss",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// The failed trial must not pollute aggregates.
	if strings.Contains(out, "`RMSprop`:") {
		t.Fatal("failed trial leaked into aggregates")
	}
}

func TestWriteReportEmptyStudy(t *testing.T) {
	var b strings.Builder
	if err := WriteReport(&b, &StudyResult{Algorithm: "random"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "random search") {
		t.Fatal("empty report malformed")
	}
}

func TestWriteReportStoppedStudy(t *testing.T) {
	res := sampleStudyResult()
	res.Stopped = true
	var b strings.Builder
	if err := WriteReport(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "stopped early") {
		t.Fatal("stop marker missing")
	}
}
