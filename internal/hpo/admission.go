package hpo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// TenantLimits is one tenant's admission-control envelope. Zero values
// mean unlimited, so the single-tenant daemon (no registry) keeps its
// historical behaviour through the same code path.
type TenantLimits struct {
	// MaxConcurrent bounds the tenant's studies admitted at once — waiting
	// in the admission queue and executing both count; the slot frees when
	// the study's run finishes (Release).
	MaxConcurrent int
	// MaxTotalEpochs is the tenant's lifetime training-epoch budget across
	// all its studies, checked against journal-derived usage at admission
	// time (a study already admitted runs to completion even if it crosses
	// the budget mid-flight).
	MaxTotalEpochs int
	// MaxSubscribers caps the tenant's concurrently connected SSE
	// event-stream subscribers (enforced at the HTTP layer, carried here
	// so the registry stays the single source of quota truth).
	MaxSubscribers int
	// Weight is the tenant's fair-share weight in the admission order
	// (default 1; a weight-2 tenant is granted twice as often under
	// contention).
	Weight float64
}

// admission ticket states.
const (
	admWaiting = iota
	admGranted
)

// admTicket is one study's reservation in the waiting room.
type admTicket struct {
	tenant   string
	id       string
	enqueued time.Time
	granted  chan struct{} // closed on grant or abort
	err      error         // set before close when aborted
	state    int
}

// AdmissionQueue is the runner's waiting room: a bounded, quota-checked,
// weighted-fair admission gate in front of study execution. Reserve
// admits a study into the room (or rejects it with a typed error), Await
// blocks the study's worker until the queue grants it one of capacity
// execution slots, and Release returns the slot.
//
// Fairness uses stride scheduling: each grant advances the tenant's pass
// by 1/weight and the next grant goes to the waiting tenant with the
// smallest pass, so a burst from one tenant interleaves with — instead of
// starving — every other tenant's submissions. A tenant re-entering the
// queue has its pass clamped up to the queue's virtual time, so idling
// never banks credit.
type AdmissionQueue struct {
	mu       sync.Mutex
	capacity int
	// maxDepth bounds studies waiting (admitted but not yet granted);
	// 0 = unbounded (the pre-tenancy daemon behaviour).
	maxDepth int
	// limits resolves a tenant's quota envelope; nil = no limits.
	limits func(tenant string) TenantLimits
	// epochs resolves a tenant's journal-derived epoch usage; nil
	// disables the total-epoch budget check.
	epochs func(tenant string) int

	running  int
	waiting  int
	inflight map[string]int          // per tenant: waiting + granted
	queues   map[string][]*admTicket // per tenant, FIFO
	entries  map[string]*admTicket   // by study id
	pass     map[string]float64
	vtime    float64
	// roomFree is closed-and-replaced whenever waiting shrinks, waking
	// blocked ReserveWait callers.
	roomFree chan struct{}
	closed   bool
}

// NewAdmissionQueue builds a queue granting at most capacity concurrent
// executions (minimum 1).
func NewAdmissionQueue(capacity int) *AdmissionQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &AdmissionQueue{
		capacity: capacity,
		inflight: make(map[string]int),
		queues:   make(map[string][]*admTicket),
		entries:  make(map[string]*admTicket),
		pass:     make(map[string]float64),
		roomFree: make(chan struct{}),
	}
	registerAdmissionScrape(q)
	return q
}

// SetMaxDepth bounds the waiting room (0 = unbounded). Configure before
// serving traffic.
func (q *AdmissionQueue) SetMaxDepth(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.maxDepth = n
}

// SetLimits installs the tenant quota resolver. Configure before serving
// traffic.
func (q *AdmissionQueue) SetLimits(fn func(tenant string) TenantLimits) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.limits = fn
}

// SetEpochUsage installs the tenant epoch-usage resolver backing the
// total-epoch budget check. Configure before serving traffic.
func (q *AdmissionQueue) SetEpochUsage(fn func(tenant string) int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.epochs = fn
}

// Reserve admits study id for tenant into the waiting room, without
// blocking. It returns nil on admission (idempotent for an id already
// reserved), a *QuotaError wrapping ErrQuotaExceeded when the tenant is at
// quota, or ErrBackpressure when the waiting room is full.
func (q *AdmissionQueue) Reserve(tenant, id string) error {
	q.mu.Lock()
	err := q.reserveLocked(tenant, id, false)
	q.mu.Unlock()
	if err != nil {
		countRejection(tenant, err)
	}
	return err
}

// ReserveForced admits a study bypassing quota and depth checks — the
// restart path: studies the journal recorded as queued or running were
// already admitted once and must re-enter the room unconditionally.
func (q *AdmissionQueue) ReserveForced(tenant, id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.reserveLocked(tenant, id, true)
}

// ReserveWait is Reserve that blocks while the waiting room is full,
// until space frees or ctx expires. A deadline expiry returns
// ErrBackpressureTimeout; quota rejections return immediately.
func (q *AdmissionQueue) ReserveWait(ctx context.Context, tenant, id string) error {
	for {
		q.mu.Lock()
		err := q.reserveLocked(tenant, id, false)
		room := q.roomFree
		q.mu.Unlock()
		if err == nil || !errors.Is(err, ErrBackpressure) {
			if err != nil {
				countRejection(tenant, err)
			}
			return err
		}
		select {
		case <-ctx.Done():
			err := ctx.Err()
			if errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("%w (tenant %q)", ErrBackpressureTimeout, tenant)
			}
			countRejection(tenant, err)
			return err
		case <-room:
		}
	}
}

// reserveLocked is the admission check + enqueue. Callers hold q.mu.
func (q *AdmissionQueue) reserveLocked(tenant, id string, forced bool) error {
	if q.closed {
		return fmt.Errorf("%w: admission queue shut down", ErrAdmissionAborted)
	}
	if _, ok := q.entries[id]; ok {
		return nil
	}
	if !forced {
		var lim TenantLimits
		if q.limits != nil {
			lim = q.limits(tenant)
		}
		if lim.MaxConcurrent > 0 && q.inflight[tenant] >= lim.MaxConcurrent {
			return &QuotaError{Tenant: tenant, Resource: "concurrent_studies",
				Used: q.inflight[tenant], Limit: lim.MaxConcurrent}
		}
		if lim.MaxTotalEpochs > 0 && q.epochs != nil {
			if used := q.epochs(tenant); used >= lim.MaxTotalEpochs {
				return &QuotaError{Tenant: tenant, Resource: "total_epochs",
					Used: used, Limit: lim.MaxTotalEpochs}
			}
		}
		if q.maxDepth > 0 && q.waiting >= q.maxDepth {
			return fmt.Errorf("%w: %d studies already waiting (max %d)",
				ErrBackpressure, q.waiting, q.maxDepth)
		}
	}
	tk := &admTicket{tenant: tenant, id: id, enqueued: time.Now(), granted: make(chan struct{})}
	if len(q.queues[tenant]) == 0 && q.pass[tenant] < q.vtime {
		// Re-activation: an idle tenant resumes at the current virtual
		// time instead of cashing in banked credit.
		q.pass[tenant] = q.vtime
	}
	q.queues[tenant] = append(q.queues[tenant], tk)
	q.entries[id] = tk
	q.setInflightLocked(tenant, q.inflight[tenant]+1)
	q.waiting++
	q.grantLocked()
	obsAdmissionDepth.Set(float64(q.waiting))
	return nil
}

// grantLocked fills free execution slots from the waiting queues in
// stride order: smallest pass first, ties broken by tenant id (then FIFO
// within a tenant). Callers hold q.mu.
func (q *AdmissionQueue) grantLocked() {
	for q.running < q.capacity {
		// The default tenant's id is "" (single-token mode), so an explicit
		// found flag — not the empty string — marks "no waiters".
		chosen, found := "", false
		best := math.Inf(1)
		for tenant, queue := range q.queues {
			if len(queue) == 0 {
				continue
			}
			p := q.pass[tenant]
			if !found || p < best || (p == best && tenant < chosen) {
				best, chosen, found = p, tenant, true
			}
		}
		if !found {
			break
		}
		queue := q.queues[chosen]
		tk := queue[0]
		if len(queue) == 1 {
			delete(q.queues, chosen)
		} else {
			q.queues[chosen] = queue[1:]
		}
		q.waiting--
		q.vtime = q.pass[chosen]
		weight := 1.0
		if q.limits != nil {
			if w := q.limits(chosen).Weight; w > 0 {
				weight = w
			}
		}
		q.pass[chosen] += 1 / weight
		q.running++
		tk.state = admGranted
		close(tk.granted)
		obsTenantAdmitted.With(tenantLabel(chosen)).Inc()
		q.signalRoomLocked()
	}
	obsAdmissionDepth.Set(float64(q.waiting))
}

// Await blocks until the study's reservation is granted an execution slot
// and returns nil, or returns the abort error (ErrAdmissionAborted) when
// the reservation was withdrawn first. Awaiting an id with no live
// reservation is an abort.
func (q *AdmissionQueue) Await(id string) error {
	q.mu.Lock()
	tk := q.entries[id]
	q.mu.Unlock()
	if tk == nil {
		return fmt.Errorf("%w: no reservation for study %q", ErrAdmissionAborted, id)
	}
	<-tk.granted
	return tk.err
}

// Release returns a study's slot (or withdraws its waiting reservation on
// an error path) and grants the next waiter. Safe to call for unknown
// ids.
func (q *AdmissionQueue) Release(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	tk := q.entries[id]
	if tk == nil {
		return
	}
	delete(q.entries, id)
	q.setInflightLocked(tk.tenant, q.inflight[tk.tenant]-1)
	switch tk.state {
	case admGranted:
		q.running--
	case admWaiting:
		q.dropWaitingLocked(tk)
	}
	q.grantLocked()
}

// Abort withdraws a still-waiting reservation (study canceled before its
// grant); its Await returns ErrAdmissionAborted. Granted reservations are
// untouched — it reports whether it acted.
func (q *AdmissionQueue) Abort(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	tk := q.entries[id]
	if tk == nil || tk.state != admWaiting {
		return false
	}
	q.abortLocked(tk)
	return true
}

// Shutdown aborts every waiting reservation (their journaled queued state
// resumes them on the next boot) so a draining runner never waits on
// studies that will not be granted. Further reservations fail.
func (q *AdmissionQueue) Shutdown() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	for _, tk := range q.entries {
		if tk.state == admWaiting {
			q.abortLocked(tk)
		}
	}
}

// abortLocked removes a waiting ticket and wakes its Await with
// ErrAdmissionAborted. Callers hold q.mu.
func (q *AdmissionQueue) abortLocked(tk *admTicket) {
	delete(q.entries, tk.id)
	q.setInflightLocked(tk.tenant, q.inflight[tk.tenant]-1)
	q.dropWaitingLocked(tk)
	tk.err = ErrAdmissionAborted
	close(tk.granted)
	q.grantLocked()
}

// dropWaitingLocked unlinks a waiting ticket from its tenant queue.
// Callers hold q.mu.
func (q *AdmissionQueue) dropWaitingLocked(tk *admTicket) {
	queue := q.queues[tk.tenant]
	for i, cand := range queue {
		if cand == tk {
			queue = append(queue[:i:i], queue[i+1:]...)
			break
		}
	}
	if len(queue) == 0 {
		delete(q.queues, tk.tenant)
	} else {
		q.queues[tk.tenant] = queue
	}
	q.waiting--
	obsAdmissionDepth.Set(float64(q.waiting))
	q.signalRoomLocked()
}

// setInflightLocked updates a tenant's inflight count and its gauge.
// Callers hold q.mu.
func (q *AdmissionQueue) setInflightLocked(tenant string, n int) {
	if n <= 0 {
		delete(q.inflight, tenant)
		n = 0
	} else {
		q.inflight[tenant] = n
	}
	obsTenantInflight.With(tenantLabel(tenant)).Set(float64(n))
}

// signalRoomLocked wakes every blocked ReserveWait. Callers hold q.mu.
func (q *AdmissionQueue) signalRoomLocked() {
	close(q.roomFree)
	q.roomFree = make(chan struct{})
}

// Depth reports how many admitted studies are waiting for a slot.
func (q *AdmissionQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting
}

// Granted reports how many studies currently hold execution slots.
func (q *AdmissionQueue) Granted() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}

// InFlight reports a tenant's admitted studies (waiting + granted) — the
// number its MaxConcurrent quota is checked against.
func (q *AdmissionQueue) InFlight(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight[tenant]
}

// OldestWait reports how long the longest-waiting study has been queued
// (zero when the room is empty) — the alerting signal for a stuck or
// saturated runner.
func (q *AdmissionQueue) OldestWait() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	var oldest time.Time
	for _, queue := range q.queues {
		for _, tk := range queue {
			if oldest.IsZero() || tk.enqueued.Before(oldest) {
				oldest = tk.enqueued
			}
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}
