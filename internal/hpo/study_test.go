package hpo

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/runtime"
)

func newStudyRuntime(t *testing.T, cores int) *runtime.Runtime {
	t.Helper()
	rt, err := runtime.New(runtime.Options{
		Cluster: cluster.Local(cores),
		Backend: runtime.Real,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// tinySpace is a 2×2 space for fast end-to-end studies.
func tinySpace(t *testing.T) *Space {
	t.Helper()
	s, err := ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD"],
	  "num_epochs": [2, 3],
	  "batch_size": [16]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyGridEndToEnd(t *testing.T) {
	space := tinySpace(t)
	rt := newStudyRuntime(t, 4)
	obj := &MLObjective{Dataset: datasets.MNISTLike(200, 1), Hidden: []int{16}}
	st, err := NewStudy(StudyOptions{
		Sampler:    NewGridSearch(space),
		Objective:  obj,
		Runtime:    rt,
		Constraint: runtime.Constraint{Cores: 1},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()

	if len(res.Trials) != 4 {
		t.Fatalf("trials = %d, want 4 (2 optimizers × 2 epochs)", len(res.Trials))
	}
	if res.Best == nil || res.Best.BestAcc <= 0.2 {
		t.Fatalf("best = %+v", res.Best)
	}
	for _, tr := range res.Trials {
		if tr.Err != "" {
			t.Fatalf("trial %d failed: %s", tr.ID, tr.Err)
		}
		if len(tr.ValAccHistory) != tr.Epochs {
			t.Fatalf("history length %d != epochs %d", len(tr.ValAccHistory), tr.Epochs)
		}
	}
	if res.Algorithm != "grid" {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
}

func TestStudyRandomEndToEnd(t *testing.T) {
	space := tinySpace(t)
	rt := newStudyRuntime(t, 4)
	obj := &MLObjective{Dataset: datasets.MNISTLike(150, 2), Hidden: []int{8}}
	st, err := NewStudy(StudyOptions{
		Sampler:    NewRandomSearch(space, 3, 9),
		Objective:  obj,
		Runtime:    rt,
		Constraint: runtime.Constraint{Cores: 1},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
}

func TestStudyTargetAccuracyStopsEarly(t *testing.T) {
	// Objective reports immediately-high accuracy → the study should cancel
	// the queue after the first completions.
	space := tinySpace(t)
	rt := newStudyRuntime(t, 1) // single core → serial execution
	calls := 0
	var mu sync.Mutex
	obj := &FuncObjective{
		ObjName: "instant",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			if ctx.Report != nil {
				ctx.Report(0, 0.99)
			}
			time.Sleep(5 * time.Millisecond)
			return TrialMetrics{FinalAcc: 0.99, BestAcc: 0.99, Epochs: 1, ValAccHistory: []float64{0.99}}, nil
		},
	}
	st, err := NewStudy(StudyOptions{
		Sampler:        NewGridSearch(space),
		Objective:      obj,
		Runtime:        rt,
		Constraint:     runtime.Constraint{Cores: 1},
		TargetAccuracy: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if !res.Stopped {
		t.Fatal("study should report early stop")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls >= 4 {
		t.Fatalf("all %d trials ran despite target stop", calls)
	}
	canceled := 0
	for _, tr := range res.Trials {
		if tr.Canceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no trials marked canceled")
	}
	if res.BestAccuracy() < 0.9 {
		t.Fatalf("best accuracy %v below target", res.BestAccuracy())
	}
}

func TestStudyFailedTrialIsResultNotCrash(t *testing.T) {
	space := tinySpace(t)
	rt := newStudyRuntime(t, 2)
	obj := &FuncObjective{
		ObjName: "half-broken",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			if ctx.Config.Str("optimizer", "") == "SGD" {
				return TrialMetrics{}, errInjected
			}
			return TrialMetrics{FinalAcc: 0.5, BestAcc: 0.5, Epochs: 1, ValAccHistory: []float64{0.5}}, nil
		},
	}
	st, _ := NewStudy(StudyOptions{
		Sampler: NewGridSearch(space), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1},
	})
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	failed, ok := 0, 0
	for _, tr := range res.Trials {
		if tr.Err != "" {
			failed++
		} else {
			ok++
		}
	}
	if failed != 2 || ok != 2 {
		t.Fatalf("failed=%d ok=%d, want 2/2", failed, ok)
	}
	if res.Best == nil || res.Best.Err != "" {
		t.Fatal("best must be a successful trial")
	}
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected objective failure" }

func TestStudyAdaptiveSamplerBatches(t *testing.T) {
	// TPE with budget 6 and batch size 2 must complete exactly 6 trials.
	space := tinySpace(t)
	rt := newStudyRuntime(t, 2)
	obj := &FuncObjective{
		ObjName: "fast",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			acc := 0.5 + 0.1*float64(ctx.Config.Int("num_epochs", 0)%5)
			return TrialMetrics{FinalAcc: acc, BestAcc: acc, Epochs: 1, ValAccHistory: []float64{acc}}, nil
		},
	}
	st, _ := NewStudy(StudyOptions{
		Sampler: NewTPE(space, 6, 3), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1}, BatchSize: 2,
	})
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if len(res.Trials) != 6 {
		t.Fatalf("trials = %d, want 6", len(res.Trials))
	}
}

func TestStudyOnEpochStreams(t *testing.T) {
	space := tinySpace(t)
	rt := newStudyRuntime(t, 2)
	var mu sync.Mutex
	epochs := 0
	obj := &MLObjective{Dataset: datasets.MNISTLike(100, 3), Hidden: []int{8}}
	st, _ := NewStudy(StudyOptions{
		Sampler: NewRandomSearch(space, 2, 4), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1},
		OnEpoch: func(trial, epoch int, acc float64) {
			mu.Lock()
			epochs++
			mu.Unlock()
		},
	})
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	mu.Lock()
	defer mu.Unlock()
	if epochs == 0 {
		t.Fatal("no epoch reports streamed")
	}
}

func TestStudyValidation(t *testing.T) {
	rt := newStudyRuntime(t, 1)
	defer rt.Shutdown()
	obj := &FuncObjective{ObjName: "x", Fn: nil}
	if _, err := NewStudy(StudyOptions{Objective: obj, Runtime: rt}); err == nil {
		t.Fatal("expected error for missing sampler")
	}
	if _, err := NewStudy(StudyOptions{Sampler: NewGridSearch(tinySpace(t)), Runtime: rt}); err == nil {
		t.Fatal("expected error for missing objective")
	}
	if _, err := NewStudy(StudyOptions{Sampler: NewGridSearch(tinySpace(t)), Objective: obj}); err == nil {
		t.Fatal("expected error for missing runtime")
	}
}

func TestRenderCurvesAndTable(t *testing.T) {
	trials := []TrialResult{
		{ID: 0, Config: Config{"optimizer": "Adam"}, TrialMetrics: TrialMetrics{
			BestAcc: 0.95, FinalAcc: 0.95, Epochs: 3, ValAccHistory: []float64{0.5, 0.8, 0.95}}},
		{ID: 1, Config: Config{"optimizer": "SGD"}, TrialMetrics: TrialMetrics{
			BestAcc: 0.7, FinalAcc: 0.6, Epochs: 3, ValAccHistory: []float64{0.4, 0.7, 0.6}}},
		{ID: 2, Config: Config{"optimizer": "RMSprop"}, Err: "nan loss"},
	}
	curves := RenderCurves(trials, 40, 10)
	if !strings.Contains(curves, "val_acc") || !strings.Contains(curves, "epoch 1 .. 3") {
		t.Fatalf("curves malformed:\n%s", curves)
	}
	if !strings.Contains(curves, "0") || !strings.Contains(curves, "1") {
		t.Fatalf("trial digits missing:\n%s", curves)
	}
	table := RenderTable(trials)
	if !strings.Contains(table, "optimizer=Adam") {
		t.Fatalf("table missing config:\n%s", table)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rows = %d", len(lines))
	}
	// Best trial ranks first; failed trial ranks last.
	if !strings.Contains(lines[1], "0.9500") || !strings.Contains(lines[3], "failed") {
		t.Fatalf("ranking wrong:\n%s", table)
	}
	if out := RenderCurves(nil, 10, 5); !strings.Contains(out, "no trial histories") {
		t.Fatal("empty curves rendering")
	}
}

func TestStudyGridMatchesPaperTaskCount(t *testing.T) {
	// The full paper space on the runtime: 27 experiment tasks submitted.
	space := paperSpace(t)
	rt := newStudyRuntime(t, 8)
	obj := &FuncObjective{
		ObjName: "count",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			return TrialMetrics{FinalAcc: 0.9, BestAcc: 0.9, Epochs: 1, ValAccHistory: []float64{0.9}}, nil
		},
	}
	st, _ := NewStudy(StudyOptions{
		Sampler: NewGridSearch(space), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1},
	})
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	rt.Shutdown()
	if len(res.Trials) != 27 || stats.Completed != 27 {
		t.Fatalf("trials=%d completed=%d, want 27 (paper §5)", len(res.Trials), stats.Completed)
	}
}
