package hpo

import (
	"fmt"
	"sort"
	"strings"
)

// RenderCurves draws the per-trial validation-accuracy curves as an ASCII
// chart — the textual analogue of the paper's Figures 7 and 8 ("when all
// tasks are done, we plot the results [on] the same figure for easier
// comparison"). Each trial is one base-36 digit; the Y axis is accuracy
// 0..1, the X axis is the epoch index.
func RenderCurves(trials []TrialResult, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	maxEpochs := 0
	for _, t := range trials {
		if len(t.ValAccHistory) > maxEpochs {
			maxEpochs = len(t.ValAccHistory)
		}
	}
	if maxEpochs == 0 {
		return "(no trial histories)\n"
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	for _, t := range trials {
		if t.Err != "" {
			continue
		}
		ch := digits[t.ID%36]
		for e, acc := range t.ValAccHistory {
			x := 0
			if maxEpochs > 1 {
				x = e * (width - 1) / (maxEpochs - 1)
			}
			y := int((1 - acc) * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = ch
		}
	}

	var b strings.Builder
	b.WriteString("val_acc\n")
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = " 1.00 "
		case height / 2:
			label = " 0.50 "
		case height - 1:
			label = " 0.00 "
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, row)
	}
	fmt.Fprintf(&b, "      +%s+\n       epoch 1 .. %d (one digit per trial id mod 36)\n",
		strings.Repeat("-", width), maxEpochs)
	return b.String()
}

// RenderTable renders a leaderboard of trials sorted by best accuracy, with
// the winning configuration spelled out.
func RenderTable(trials []TrialResult) string {
	sorted := append([]TrialResult(nil), trials...)
	sort.Slice(sorted, func(i, j int) bool {
		if (sorted[i].Err == "") != (sorted[j].Err == "") {
			return sorted[i].Err == ""
		}
		if sorted[i].BestAcc != sorted[j].BestAcc {
			return sorted[i].BestAcc > sorted[j].BestAcc
		}
		return sorted[i].ID < sorted[j].ID
	})
	var b strings.Builder
	b.WriteString("rank  trial  best_acc  final_acc  epochs  status  config\n")
	for i, t := range sorted {
		status := "ok"
		switch {
		case t.Pruned:
			status = "pruned"
		case t.Canceled:
			status = "canceled"
		case t.Err != "":
			status = "failed"
		case t.Stopped:
			status = "early-stop"
		}
		fmt.Fprintf(&b, "%4d  %5d  %8.4f  %9.4f  %6d  %-10s  %s\n",
			i+1, t.ID, t.BestAcc, t.FinalAcc, t.Epochs, status, t.Config.Fingerprint())
	}
	return b.String()
}
