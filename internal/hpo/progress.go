package hpo

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ProgressBoard is the live study dashboard the paper lists among the
// essential HPO-tool features ("visualisation dashboards to enable
// researchers make sense of the output", §1). Wire its OnEpoch method into
// StudyOptions.OnEpoch and Render (or Flush) it whenever a progress view is
// wanted; it is safe for concurrent trials.
type ProgressBoard struct {
	mu     sync.Mutex
	trials map[int]*trialProgress
	target float64
	out    io.Writer
}

type trialProgress struct {
	id      int
	epoch   int
	lastAcc float64
	bestAcc float64
}

// NewProgressBoard creates a board; out may be nil if only Render is used.
// target draws a goal marker when > 0.
func NewProgressBoard(out io.Writer, target float64) *ProgressBoard {
	return &ProgressBoard{trials: make(map[int]*trialProgress), target: target, out: out}
}

// OnEpoch records one streamed epoch result; signature matches
// StudyOptions.OnEpoch.
func (b *ProgressBoard) OnEpoch(trial, epoch int, acc float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	tp, ok := b.trials[trial]
	if !ok {
		tp = &trialProgress{id: trial}
		b.trials[trial] = tp
	}
	tp.epoch = epoch
	tp.lastAcc = acc
	if acc > tp.bestAcc {
		tp.bestAcc = acc
	}
}

// Trials returns the number of trials seen so far.
func (b *ProgressBoard) Trials() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.trials)
}

// Best returns the best accuracy streamed so far.
func (b *ProgressBoard) Best() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	best := 0.0
	for _, tp := range b.trials {
		if tp.bestAcc > best {
			best = tp.bestAcc
		}
	}
	return best
}

// Render draws one bar per trial: current accuracy as a filled bar with the
// best-so-far tick and the optional target marker.
func (b *ProgressBoard) Render(width int) string {
	if width <= 10 {
		width = 40
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	ids := make([]int, 0, len(b.trials))
	for id := range b.trials {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var sb strings.Builder
	fmt.Fprintf(&sb, "live progress (%d trials)\n", len(ids))
	for _, id := range ids {
		tp := b.trials[id]
		bar := make([]byte, width)
		fill := int(tp.lastAcc * float64(width))
		if fill > width {
			fill = width
		}
		for i := range bar {
			switch {
			case i < fill:
				bar[i] = '#'
			default:
				bar[i] = '.'
			}
		}
		if b.target > 0 {
			t := int(b.target * float64(width))
			if t >= width {
				t = width - 1
			}
			if bar[t] == '.' {
				bar[t] = '|'
			}
		}
		fmt.Fprintf(&sb, "trial %3d e%3d [%s] %.3f (best %.3f)\n",
			tp.id, tp.epoch+1, bar, tp.lastAcc, tp.bestAcc)
	}
	return sb.String()
}

// Flush writes the rendered board to the configured writer (no-op when out
// is nil).
func (b *ProgressBoard) Flush(width int) {
	if b.out == nil {
		return
	}
	fmt.Fprint(b.out, b.Render(width))
}
