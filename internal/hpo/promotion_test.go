package hpo

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/runtime"
	"repro/internal/store"
)

// TestPromoteAfterWorkerDeathRestartFallback: a promoted trial's worker
// dies mid-continuation. The runtime re-queues the task on the surviving
// worker, where it restarts from scratch at its initial budget — the
// restart fallback — and the master re-issues the promotion grant off the
// fresh attempt's report stream, so the trial still reaches its promoted
// budget. The initial budget is 1 on purpose: the promotion lands at the
// epoch-0 report, so the restarted attempt's very first report must
// already trigger the re-grant (the hardest case for restart detection —
// there is no epoch regression to observe).
func TestPromoteAfterWorkerDeathRestartFallback(t *testing.T) {
	RegisterWireTypes()
	var executed atomic.Int64
	var attempts atomic.Int64
	promotedOnce := make(chan struct{})
	var signal sync.Once
	release := make(chan struct{})
	defer close(release)

	obj := &FuncObjective{ObjName: "death", Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
		attempt := attempts.Add(1)
		total := ctx.Config.Int("num_epochs", 1)
		if ctx.Proceed != nil && ctx.EpochCeiling > total {
			total = ctx.EpochCeiling
		}
		var m TrialMetrics
		for e := 0; e < total; e++ {
			if ctx.Halt != nil && ctx.Halt() != "" {
				m.Stopped = true
				return m, nil
			}
			executed.Add(1)
			m.Epochs = e + 1
			m.FinalAcc, m.BestAcc = 0.5, 0.5
			if ctx.Report != nil {
				ctx.Report(e, 0.5)
			}
			if attempt == 1 && e == 1 {
				// Past the initial budget of 1: the promotion took effect.
				// Freeze this attempt so the test can kill its worker.
				signal.Do(func() { close(promotedOnce) })
				<-release
				m.Stopped = true
				return m, nil
			}
			if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
				m.Stopped = true
				return m, nil
			}
		}
		return m, nil
	}}

	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	def := ExperimentTaskDef(obj, runtime.Constraint{Cores: 1}, 1, 0)
	if err := rt.Register(def); err != nil {
		t.Fatal(err)
	}
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Two workers; the first (node 0) will host the trial and die.
	var transports []comm.Transport
	for i := 0; i < 2; i++ {
		w := runtime.NewWorker(1, 0)
		if err := w.Register(def); err != nil {
			t.Fatal(err)
		}
		tr, err := comm.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		transports = append(transports, tr)
		go func() { _ = w.Serve(tr) }()
		if _, err := rt.AttachWorker(mustAccept(t, ln)); err != nil {
			t.Fatal(err)
		}
	}

	space, err := ParseSpaceJSON([]byte(`{"acc": [0.5], "num_epochs": [1]}`))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStudy(StudyOptions{
		Sampler:   NewGridSearch(space),
		Scheduler: NewASHAScheduler(3, 1, 9),
		Objective: obj,
		Runtime:   rt,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *StudyResult, 1)
	go func() {
		res, err := st.Run()
		if err != nil {
			t.Errorf("study: %v", err)
		}
		done <- res
	}()

	select {
	case <-promotedOnce:
	case <-time.After(10 * time.Second):
		t.Fatal("trial never continued past its initial budget")
	}
	// Kill the first worker mid-continuation.
	transports[0].Close()

	var res *StudyResult
	select {
	case res = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("study never finished after the worker death")
	}
	if res == nil || len(res.Trials) != 1 {
		t.Fatalf("res = %+v", res)
	}
	trial := res.Trials[0]
	if !trial.Succeeded() || trial.Epochs != 9 {
		t.Fatalf("restarted trial = %+v, want a success at the promoted budget of 9 epochs", trial)
	}
	if !trial.Promoted {
		t.Fatalf("restarted trial not marked promoted: %+v", trial)
	}
	if attempts.Load() < 2 {
		t.Fatalf("trial ran %d attempts, want a restart after the worker death", attempts.Load())
	}
	// The restart fallback re-executes from scratch: 2 epochs on the dead
	// worker (1 + the first promoted one), then all 9 on the survivor.
	if got := executed.Load(); got != 11 {
		t.Fatalf("executed %d epochs, want 11 (2 before the death + 9 restarted)", got)
	}
}

func mustAccept(t *testing.T, ln *comm.Listener) comm.Transport {
	t.Helper()
	tr, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPromoteRacesCancel: an operator cancel lands while bracket members
// are paused at a rung gate and another is still mid-epoch. Late rung
// decisions (including promotions) aimed at canceled trials must be
// harmless, and the study must drain without deadlock.
func TestPromoteRacesCancel(t *testing.T) {
	rt := newStudyRuntime(t, 9)
	defer rt.Shutdown()

	var entered atomic.Int64
	block := make(chan struct{})
	var st *Study
	var stopOnce sync.Once

	obj := &FuncObjective{ObjName: "race", Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
		if entered.Add(1) == 1 {
			// One member holds the rung open so the others pause at the
			// gate before any decision can fire.
			<-block
		}
		total := ctx.Config.Int("num_epochs", 1)
		if ctx.Proceed != nil && ctx.EpochCeiling > total {
			total = ctx.EpochCeiling
		}
		var m TrialMetrics
		for e := 0; e < total; e++ {
			if ctx.Halt != nil && ctx.Halt() != "" {
				m.Stopped = true
				return m, nil
			}
			v := rungValue(ctx.Config, e, 3)
			m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
			if ctx.Report != nil {
				ctx.Report(e, v)
			}
			if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
				m.Stopped = true
				return m, nil
			}
		}
		return m, nil
	}}

	rh := NewRungHyperband(rungSpace(t), 3, 3, 7)
	paused := 0
	var err error
	st, err = NewStudy(StudyOptions{
		Sampler:   rh,
		Scheduler: rh,
		Objective: obj,
		Runtime:   rt,
		OnEpoch: func(trial, epoch int, acc float64) {
			if epoch != 0 {
				return
			}
			// Two of the three bracket-0 members have reported (the third
			// holds the rung open): both are about to pause at the gate.
			// Cancel the study right here, then release the holdout —
			// its report completes the rung and the scheduler's decisions
			// race the cancellation.
			if paused++; paused == 2 {
				stopOnce.Do(func() {
					go st.Stop("operator cancel racing promotion")
					close(block)
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *StudyResult, 1)
	go func() {
		res, err := st.Run()
		if err != nil {
			t.Errorf("study: %v", err)
		}
		done <- res
	}()
	var res *StudyResult
	select {
	case res = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("study deadlocked: promote racing cancel")
	}
	if res == nil || !res.Canceled {
		t.Fatalf("res = %+v, want a canceled study", res)
	}
	for _, h := range st.Trials() {
		if !h.State().Terminal() {
			t.Fatalf("trial %d left %v after cancel", h.ID, h.State())
		}
	}
}

// TestRungResumeReplaysPromotesWithoutReexecution: a rung-driven study
// records its promotions in the journal; reopening the journal replays
// them, and re-running the study resumes every finished trial — winners'
// completed rungs are never re-executed.
func TestRungResumeReplaysPromotesWithoutReexecution(t *testing.T) {
	const maxR, eta, seed, scope = 9, 3, 42, "rung-resume"
	dir := filepath.Join(t.TempDir(), "j")
	space := rungSpace(t)
	var executed atomic.Int64

	runStudy := func(j *store.Journal) *StudyResult {
		t.Helper()
		rt := newStudyRuntime(t, 9)
		defer rt.Shutdown()
		rh := NewRungHyperband(space, maxR, eta, seed)
		st, err := NewStudy(StudyOptions{
			Sampler: rh, Scheduler: rh,
			Objective: gatedObjective(maxR, &executed),
			Runtime:   rt,
			Recorder:  j.Recorder("rung", scope),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	j1, err := store.OpenJournal(dir, store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.CreateStudy(store.StudyMeta{ID: "rung"}); err != nil {
		t.Fatal(err)
	}
	res1 := runStudy(j1)
	first := executed.Load()
	live := j1.StudyPromotes("rung")
	if len(live) != 5 {
		t.Fatalf("first run journaled %d promotions, want 5", len(live))
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: boot replay must reconstruct the promotion history.
	j2, err := store.OpenJournal(dir, store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	replayed := j2.StudyPromotes("rung")
	if len(replayed) != 5 {
		t.Fatalf("replay reconstructed %d promotions, want 5", len(replayed))
	}
	for i, p := range replayed {
		if p.Budget <= 0 || p.Reason == "" {
			t.Fatalf("replayed promotion %d malformed: %+v", i, p)
		}
	}

	// Re-run: every succeeded trial resumes from the journal; only pruned
	// losers re-execute, so no finished rung runs twice.
	res2 := runStudy(j2)
	second := executed.Load() - first

	succeeded := 0
	for _, tr := range res1.Trials {
		if tr.Succeeded() {
			succeeded++
		}
	}
	if res2.Resumed != succeeded {
		t.Fatalf("second run resumed %d trials, want all %d successes of the first", res2.Resumed, succeeded)
	}
	if second >= first {
		t.Fatalf("second run executed %d epochs, want strictly < first run's %d", second, first)
	}
	// Accounting: live epochs == total trial epochs minus the resumed
	// trials' (never re-executed) epochs.
	var total, resumedEpochs int64
	resumedSeen := 0
	byFP := make(map[string]int)
	for _, tr := range res1.Trials {
		if tr.Succeeded() {
			byFP[tr.Config.Fingerprint()] = tr.Epochs
		}
	}
	for _, tr := range res2.Trials {
		total += int64(tr.Epochs)
		if n, ok := byFP[tr.Config.Fingerprint()]; ok && tr.Epochs == n {
			resumedEpochs += int64(n)
			resumedSeen++
		}
	}
	if resumedSeen < succeeded {
		t.Fatalf("only %d of %d resumed trials kept their recorded epochs", resumedSeen, succeeded)
	}
	if total-resumedEpochs != second {
		t.Fatalf("second run executed %d epochs but non-resumed trials account for %d — a finished rung re-ran",
			second, total-resumedEpochs)
	}
	if w1, w2 := res1.Best.Config.Float("acc", -1), res2.Best.Config.Float("acc", -2); w1 != w2 {
		t.Fatalf("resume changed the winner: %v vs %v", w1, w2)
	}
}
