package hpo

import (
	"time"

	"repro/internal/store"
)

// ToStoreTrial converts a finished trial to its storage form. The stored
// config is stripped of sampler-internal ("_"-prefixed) keys: they are
// scheduler bookkeeping, not hyperparameters, and must not leak into the
// journal or API responses. The fingerprint is computed from the full
// config, which is identical — Fingerprint skips hidden keys by contract.
func ToStoreTrial(t TrialResult) store.Trial {
	return store.Trial{
		ID:          t.ID,
		Config:      store.PublicConfig(t.Config),
		Fingerprint: t.Config.Fingerprint(),
		FinalAcc:    t.FinalAcc, BestAcc: t.BestAcc, FinalLoss: t.FinalLoss,
		Epochs: t.Epochs, ValAccHistory: t.ValAccHistory,
		Stopped: t.Stopped, StopReason: t.StopReason,
		DurationNS: int64(t.Duration), Err: t.Err, Canceled: t.Canceled,
		Pruned: t.Pruned, PruneReason: t.PruneReason,
		Promoted: t.Promoted,
	}
}

// FromStoreTrial converts a stored trial back to a TrialResult.
func FromStoreTrial(t store.Trial) TrialResult {
	return TrialResult{
		ID:     t.ID,
		Config: Config(store.NormaliseConfig(t.Config)),
		TrialMetrics: TrialMetrics{
			FinalAcc: t.FinalAcc, BestAcc: t.BestAcc, FinalLoss: t.FinalLoss,
			Epochs: t.Epochs, ValAccHistory: t.ValAccHistory,
			Stopped: t.Stopped, StopReason: t.StopReason,
		},
		Duration:    time.Duration(t.DurationNS),
		Err:         t.Err,
		Canceled:    t.Canceled,
		Pruned:      t.Pruned,
		PruneReason: t.PruneReason,
		Promoted:    t.Promoted,
	}
}

// toStoreTrials maps a round of results for recording.
func toStoreTrials(trials []TrialResult) []store.Trial {
	out := make([]store.Trial, 0, len(trials))
	for _, t := range trials {
		out = append(out, ToStoreTrial(t))
	}
	return out
}
