package hpo

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/datasets"
	"repro/internal/runtime"
	"repro/internal/store"
)

// startStudyWorkers attaches n in-process workers that execute the
// distributed experiment task against their own objective copy.
func startStudyWorkers(t *testing.T, rt *runtime.Runtime, n int, def runtime.TaskDef) {
	t.Helper()
	RegisterWireTypes()
	for i := 0; i < n; i++ {
		master, side := comm.NewMemPair(64)
		w := runtime.NewWorker(2, 0)
		if err := w.Register(def); err != nil {
			t.Fatal(err)
		}
		go func() {
			if err := w.Serve(side); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
		if _, err := rt.AttachWorker(master); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistributedStudyOverRemoteBackend(t *testing.T) {
	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		t.Fatal(err)
	}
	// Both master and workers build the experiment task from the same
	// objective; the master's copy is registered only for metadata.
	constraint := runtime.Constraint{Cores: 1}
	mkObjective := func() Objective {
		return &MLObjective{Dataset: datasets.MNISTLike(200, 5), Hidden: []int{8}}
	}
	def := ExperimentTaskDef(mkObjective(), constraint, 11, 0)
	if err := rt.Register(def); err != nil {
		t.Fatal(err)
	}
	startStudyWorkers(t, rt, 2, ExperimentTaskDef(mkObjective(), constraint, 11, 0))

	space := tinySpace(t)
	st, err := NewStudy(StudyOptions{
		Sampler:    NewGridSearch(space),
		Objective:  mkObjective(), // unused remotely, kept for validation
		Runtime:    rt,
		Constraint: constraint,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()

	if len(res.Trials) != 4 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if tr.Err != "" {
			t.Fatalf("trial %d failed remotely: %s", tr.ID, tr.Err)
		}
		if tr.BestAcc <= 0.2 {
			t.Fatalf("trial %d accuracy %v — result did not survive the wire", tr.ID, tr.BestAcc)
		}
		if len(tr.ValAccHistory) == 0 {
			t.Fatalf("trial %d history lost in gob transfer", tr.ID)
		}
	}
}

func TestDistributedStudyTargetStopsFromResults(t *testing.T) {
	// Without epoch streaming, the study must still stop from returned
	// results reaching the target.
	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		t.Fatal(err)
	}
	constraint := runtime.Constraint{Cores: 1}
	obj := &FuncObjective{
		ObjName: "easy",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			return TrialMetrics{BestAcc: 0.99, FinalAcc: 0.99, Epochs: 1, ValAccHistory: []float64{0.99}}, nil
		},
	}
	def := ExperimentTaskDef(obj, constraint, 1, 0.9)
	if err := rt.Register(def); err != nil {
		t.Fatal(err)
	}
	startStudyWorkers(t, rt, 1, def)

	st, err := NewStudy(StudyOptions{
		Sampler:        NewGridSearch(tinySpace(t)),
		Objective:      obj,
		Runtime:        rt,
		Constraint:     constraint,
		TargetAccuracy: 0.9,
		BatchSize:      1, // round per trial so the stop check engages
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if !res.Stopped {
		t.Fatal("study should stop after the first over-target result")
	}
	if len(res.Trials) >= 4 {
		t.Fatalf("ran %d trials despite early stop", len(res.Trials))
	}
}

func TestStudyVisualisePipeline(t *testing.T) {
	space := tinySpace(t)
	rt := newStudyRuntime(t, 4)
	obj := &FuncObjective{
		ObjName: "fast",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			acc := 0.5 + 0.01*float64(ctx.Config.Int("num_epochs", 0))
			return TrialMetrics{BestAcc: acc, FinalAcc: acc, Epochs: 1, ValAccHistory: []float64{acc}}, nil
		},
	}
	st, err := NewStudy(StudyOptions{
		Sampler: NewGridSearch(space), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1},
		Visualise:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if !strings.Contains(res.Plot, "=== study plot ===") {
		t.Fatalf("plot missing header:\n%s", res.Plot)
	}
	// One line per trial in the plot body.
	lines := strings.Split(strings.TrimSpace(res.Plot), "\n")
	if len(lines) != 5 { // header + 4 trials
		t.Fatalf("plot lines = %d:\n%s", len(lines), res.Plot)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "best 0.5") {
			t.Fatalf("plot line malformed: %q", l)
		}
	}
}

func TestStudyCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "study.json")
	space := tinySpace(t)

	var calls atomic.Int32
	obj := &FuncObjective{
		ObjName: "count",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			calls.Add(1)
			acc := 0.4 + 0.1*float64(ctx.Config.Int("num_epochs", 0)%4)
			return TrialMetrics{BestAcc: acc, FinalAcc: acc, Epochs: 2, ValAccHistory: []float64{acc / 2, acc}}, nil
		},
	}
	runStudy := func() *StudyResult {
		rt := newStudyRuntime(t, 2)
		defer rt.Shutdown()
		st, err := NewStudy(StudyOptions{
			Sampler: NewGridSearch(space), Objective: obj, Runtime: rt,
			Constraint:     runtime.Constraint{Cores: 1},
			CheckpointPath: ckpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := runStudy()
	if first.Resumed != 0 || calls.Load() != 4 {
		t.Fatalf("first run: resumed=%d calls=%d", first.Resumed, calls.Load())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	second := runStudy()
	if second.Resumed != 4 {
		t.Fatalf("second run resumed %d/4 trials", second.Resumed)
	}
	if calls.Load() != 4 {
		t.Fatalf("objective re-ran on resume: %d calls", calls.Load())
	}
	if len(second.Trials) != 4 || second.Best == nil {
		t.Fatalf("resumed result incomplete: %d trials", len(second.Trials))
	}
	// Accuracy curves survive the JSON round trip.
	for _, tr := range second.Trials {
		if len(tr.ValAccHistory) != 2 {
			t.Fatalf("trial %d history = %v", tr.ID, tr.ValAccHistory)
		}
	}
}

func TestCheckpointSkipsFailures(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "study.json")
	space := tinySpace(t)

	var attempt atomic.Int32
	obj := &FuncObjective{
		ObjName: "flaky",
		Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
			n := attempt.Add(1)
			if ctx.Config.Str("optimizer", "") == "SGD" && n <= 4 {
				return TrialMetrics{}, errInjected
			}
			return TrialMetrics{BestAcc: 0.8, FinalAcc: 0.8, Epochs: 1, ValAccHistory: []float64{0.8}}, nil
		},
	}
	runStudy := func() *StudyResult {
		rt := newStudyRuntime(t, 1)
		defer rt.Shutdown()
		st, _ := NewStudy(StudyOptions{
			Sampler: NewGridSearch(space), Objective: obj, Runtime: rt,
			Constraint: runtime.Constraint{Cores: 1}, CheckpointPath: ckpt,
		})
		res, err := st.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := runStudy()
	failed := 0
	for _, tr := range first.Trials {
		if tr.Err != "" {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("first run failures = %d, want 2", failed)
	}
	// Failed trials are rerun on resume; successful ones are not.
	second := runStudy()
	if second.Resumed != 2 {
		t.Fatalf("resumed = %d, want only the 2 successes", second.Resumed)
	}
	for _, tr := range second.Trials {
		if tr.Err != "" {
			t.Fatalf("failure persisted after resume: %+v", tr)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "study.json")
	if err := os.WriteFile(ckpt, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rt := newStudyRuntime(t, 1)
	defer rt.Shutdown()
	obj := &FuncObjective{ObjName: "x", Fn: func(ObjectiveContext) (TrialMetrics, error) {
		return TrialMetrics{}, nil
	}}
	st, _ := NewStudy(StudyOptions{
		Sampler: NewGridSearch(tinySpace(t)), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1}, CheckpointPath: ckpt,
	})
	if _, err := st.Run(); err == nil {
		t.Fatal("expected error for corrupt checkpoint")
	}
}

func TestCheckpointVersionCheck(t *testing.T) {
	if _, err := store.DecodeCheckpoint([]byte(`{"version": 99, "trials": []}`)); err == nil {
		t.Fatal("expected version error")
	}
}
