package hpo

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ObjectiveContext carries everything one trial needs.
type ObjectiveContext struct {
	// Config is the hyperparameter assignment under evaluation.
	Config Config
	// Parallelism is the number of computing units granted to the task;
	// objectives should bound their internal parallelism by it.
	Parallelism int
	// Seed makes the trial deterministic.
	Seed uint64
	// Report, when non-nil, streams per-epoch validation accuracy to the
	// study (drives the dashboard, pruning and study-level early stopping).
	Report func(epoch int, valAcc float64)
	// TargetAccuracy stops the trial itself once reached (0 = disabled).
	TargetAccuracy float64
	// Halt, when non-nil, is polled at epoch boundaries; a non-empty
	// return stops the trial early with that reason (master-side pruning
	// or cancellation). Objectives that ignore Halt still terminate — the
	// master's cancel stays cooperative — but they waste the epochs a
	// compliant objective would skip.
	Halt func() string
	// Proceed, when non-nil, is the trial's rung gate: consulted after each
	// epoch once the initial budget (num_epochs) is consumed, it blocks
	// until the master either promotes the trial to a higher budget
	// (returns true — keep training the same model) or halts it (returns
	// false — stop with a partial result). Objectives that ignore Proceed
	// simply finish at their initial budget and forfeit continuation.
	Proceed func(epochsDone int) bool
	// EpochCeiling, when > num_epochs and Proceed is set, is the most
	// epochs the trial may ever be promoted to — the objective should plan
	// its training loop for EpochCeiling total epochs, gated by Proceed.
	EpochCeiling int
}

// TrialMetrics is what an objective returns.
type TrialMetrics struct {
	FinalAcc  float64
	BestAcc   float64
	FinalLoss float64
	Epochs    int
	// ValAccHistory is the per-epoch validation accuracy curve plotted by
	// Figures 7-8.
	ValAccHistory []float64
	Stopped       bool
	StopReason    string
}

// Objective evaluates one configuration — the create_model + model.train
// body of the paper's experiment task (Listing 2).
type Objective interface {
	Name() string
	Run(ctx ObjectiveContext) (TrialMetrics, error)
}

// DefaultHidden returns the default hidden-layer widths used when a caller
// leaves them unset. Objective construction and memo-scope rendering must
// use the same value (a scope claiming one architecture while training
// another would poison cross-study memoization), so both go through here.
func DefaultHidden() []int { return []int{32} }

// MLObjective trains a neural network on a dataset, playing the role of the
// paper's TensorFlow training. Hyperparameters read from the config:
//
//	optimizer     string  ("Adam" | "SGD" | "RMSprop")
//	num_epochs    int
//	batch_size    int
//	learning_rate float64 (optional; optimiser default when absent)
//	hidden_units  int     (optional; width of the hidden layer)
//	model         string  (optional; "mlp" default, or "cnn" for a small
//	                       conv → pool → dense network over the dataset's
//	                       image geometry)
//	filters       int     (optional; CNN conv filters, default 8)
type MLObjective struct {
	// Dataset is the full labelled set; each trial re-splits it with its
	// own seed.
	Dataset *datasets.Dataset
	// Hidden is the default hidden layer widths (config may override the
	// first width via hidden_units).
	Hidden []int
	// TrainFrac is the train/validation split fraction (default 0.8).
	TrainFrac float64
}

// Name implements Objective.
func (o *MLObjective) Name() string { return "ml/" + o.Dataset.Name }

// Run implements Objective.
func (o *MLObjective) Run(ctx ObjectiveContext) (TrialMetrics, error) {
	cfg := ctx.Config
	epochs := cfg.Int("num_epochs", 10)
	batch := cfg.Int("batch_size", 32)
	optName := cfg.Str("optimizer", "Adam")
	lr := cfg.Float("learning_rate", 0)
	if epochs <= 0 || batch <= 0 {
		return TrialMetrics{}, fmt.Errorf("hpo: invalid config %s", cfg)
	}

	opt, err := nn.NewOptimizer(optName, lr)
	if err != nil {
		return TrialMetrics{}, err
	}

	frac := o.TrainFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.8
	}
	splitRNG := tensor.NewRNG(ctx.Seed)
	train, val := o.Dataset.Split(frac, splitRNG)

	hidden := append([]int(nil), o.Hidden...)
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	if hu := cfg.Int("hidden_units", 0); hu > 0 {
		hidden[0] = hu
	}

	modelRNG := tensor.NewRNG(ctx.Seed ^ 0xabcdef)
	var model *nn.Sequential
	switch kind := cfg.Str("model", "mlp"); kind {
	case "mlp":
		model = nn.NewMLP(modelRNG, o.Dataset.Features(), hidden, o.Dataset.Classes)
	case "cnn":
		shape := o.Dataset.ImageShape
		if shape[0] == 0 || shape[1] == 0 || shape[2] == 0 {
			return TrialMetrics{}, fmt.Errorf("hpo: dataset %s has no image geometry for a CNN", o.Dataset.Name)
		}
		filters := cfg.Int("filters", 8)
		model = nn.NewCNN(modelRNG, shape[0], shape[1], shape[2], filters, hidden[0], o.Dataset.Classes)
	default:
		return TrialMetrics{}, fmt.Errorf("hpo: unknown model kind %q", kind)
	}
	if ctx.Parallelism > 0 {
		model.SetParallelism(ctx.Parallelism)
	}

	// Rung-driven continuation: plan the loop for the promotion ceiling and
	// let the Proceed gate decide, epoch by epoch past the initial budget,
	// whether training continues on the same model.
	total := epochs
	if ctx.Proceed != nil && ctx.EpochCeiling > total {
		total = ctx.EpochCeiling
	}

	var callbacks []nn.Callback
	if ctx.Report != nil {
		callbacks = append(callbacks, &nn.EpochReporter{Report: func(epoch int, vl, va float64) {
			ctx.Report(epoch, va)
		}})
	}
	if ctx.TargetAccuracy > 0 {
		callbacks = append(callbacks, &nn.TargetAccuracy{Target: ctx.TargetAccuracy})
	}
	if ctx.Proceed != nil {
		// After the report: the rung boundary's epoch is streamed before
		// the gate decides the trial's fate on it.
		callbacks = append(callbacks, &budgetGateCallback{total: total, proceed: ctx.Proceed})
	}
	if ctx.Halt != nil {
		// Last: the epoch that triggered a prune is still reported above.
		callbacks = append(callbacks, &haltCallback{halt: ctx.Halt})
	}

	h, err := model.Fit(train.X, train.Y, val.X, val.Y, nn.FitConfig{
		Epochs: total, BatchSize: batch, Optimizer: opt,
		Shuffle: true, RNG: modelRNG, Callbacks: callbacks,
		Pool: tensor.NewPool(),
	})
	if err != nil {
		return TrialMetrics{}, err
	}
	return TrialMetrics{
		FinalAcc:      h.Final(),
		BestAcc:       h.BestValAcc(),
		FinalLoss:     h.ValLoss[len(h.ValLoss)-1],
		Epochs:        h.Epochs,
		ValAccHistory: append([]float64(nil), h.ValAcc...),
		Stopped:       h.Stopped,
		StopReason:    h.StopReason,
	}, nil
}

// budgetGateCallback adapts ObjectiveContext.Proceed to the nn callback
// contract: once the trial's granted budget is consumed it blocks until the
// master promotes (continue) or halts (clean stop) the trial. The final
// planned epoch never consults the gate — training ends naturally there.
type budgetGateCallback struct {
	total   int
	proceed func(epochsDone int) bool
}

// OnEpochEnd implements nn.Callback.
func (c *budgetGateCallback) OnEpochEnd(epoch int, h *nn.History) error {
	if done := epoch + 1; done < c.total && !c.proceed(done) {
		return fmt.Errorf("epoch budget exhausted: %w", nn.ErrStopTraining)
	}
	return nil
}

// haltCallback adapts ObjectiveContext.Halt to the nn callback contract:
// a non-empty halt reason ends training cleanly at the epoch boundary.
type haltCallback struct{ halt func() string }

// OnEpochEnd implements nn.Callback.
func (c *haltCallback) OnEpochEnd(epoch int, h *nn.History) error {
	if reason := c.halt(); reason != "" {
		return fmt.Errorf("%s: %w", reason, nn.ErrStopTraining)
	}
	return nil
}

// FuncObjective adapts a plain function, for tests and synthetic benchmark
// surfaces.
type FuncObjective struct {
	ObjName string
	Fn      func(ctx ObjectiveContext) (TrialMetrics, error)
}

// Name implements Objective.
func (f *FuncObjective) Name() string { return f.ObjName }

// Run implements Objective.
func (f *FuncObjective) Run(ctx ObjectiveContext) (TrialMetrics, error) { return f.Fn(ctx) }
