package hpo

import (
	"testing"
)

func TestNewPrunerByName(t *testing.T) {
	if p, err := NewPruner("", 0, 0); err != nil || p != nil {
		t.Fatalf("empty name = %v, %v; want nil pruner", p, err)
	}
	if p, err := NewPruner("none", 0, 0); err != nil || p != nil {
		t.Fatalf("none = %v, %v; want nil pruner", p, err)
	}
	if p, err := NewPruner("median", 0, 0); err != nil || p == nil || p.Name() != "median" {
		t.Fatalf("median = %v, %v", p, err)
	}
	if p, err := NewPruner("asha", 0, 0); err != nil || p == nil || p.Name() != "asha" {
		t.Fatalf("asha = %v, %v", p, err)
	}
	if _, err := NewPruner("bogus", 0, 0); err == nil {
		t.Fatal("unknown pruner accepted")
	}
}

func TestMedianStopPrunesBelowMedian(t *testing.T) {
	m := NewMedianStop(1, 2)
	// Epoch 0 is warmup: nobody is pruned regardless of values.
	for id, v := range []float64{0.9, 0.8, 0.1} {
		if m.Observe(id, 0, v) {
			t.Fatalf("trial %d pruned during warmup", id)
		}
	}
	// Epoch 1: the two good trials report first, then the laggard.
	if m.Observe(0, 1, 0.92) {
		t.Fatal("trial 0 pruned with no peers at epoch 1")
	}
	if m.Observe(1, 1, 0.85) {
		t.Fatal("trial 1 pruned with one peer (< MinTrials)")
	}
	if !m.Observe(2, 1, 0.12) {
		t.Fatal("losing trial 2 not pruned below the median")
	}
	// A trial at the median survives (strictly-below rule).
	if m.Observe(3, 1, 0.885) {
		t.Fatal("median-straddling trial pruned")
	}
}

func TestMedianStopMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestASHARungRanking(t *testing.T) {
	a := NewASHA(2, 1) // rungs at 1, 2, 4, 8... epochs
	// First arrival at rung 0 always survives (keep >= 1).
	if a.Observe(0, 0, 0.1) {
		t.Fatal("first arrival pruned")
	}
	// A better later arrival survives; the earlier one is now bottom, but
	// decisions are made per arrival — only the arriving trial is judged.
	if a.Observe(1, 0, 0.5) {
		t.Fatal("rank-1 arrival pruned")
	}
	// n=3, keep=1: arriving mid-pack ranks 2 → pruned.
	if !a.Observe(2, 0, 0.3) {
		t.Fatal("rank-2 arrival not pruned at rung 0")
	}
	// Non-rung epochs never prune (resource 3 is not a power-of-2 rung).
	if a.Observe(1, 2, 0.01) {
		t.Fatal("non-rung epoch pruned")
	}
	// Rung 1 (resource 2): fresh ranking.
	if a.Observe(1, 1, 0.6) {
		t.Fatal("first arrival at rung 1 pruned")
	}
	if !a.Observe(0, 1, 0.2) {
		t.Fatal("bottom arrival at rung 1 (n=2, keep=1) not pruned")
	}
}

func TestASHARungIndex(t *testing.T) {
	a := NewASHA(3, 1)
	want := map[int]int{1: 0, 3: 1, 9: 2, 27: 3}
	for res, k := range want {
		if got := a.rungIndex(res); got != k {
			t.Fatalf("rungIndex(%d) = %d, want %d", res, got, k)
		}
	}
	for _, res := range []int{0, 2, 4, 8, 10} {
		if got := a.rungIndex(res); got != -1 {
			t.Fatalf("rungIndex(%d) = %d, want -1", res, got)
		}
	}
}

// TestHyperbandRungMath pins the bracket arithmetic for R=9, eta=3 (Li et
// al.): three brackets with initial sizes 9, 5, 3; rung populations per
// budget must come out exactly 9@1, (3+5)@3 and (1+1+3)@9.
func TestHyperbandRungMath(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{"x": {"type": "float", "min": 0, "max": 1}}`))
	h := NewHyperband(s, 9, 3, 7)

	if len(h.brackets) != 3 {
		t.Fatalf("brackets = %d, want 3 (sMax=2)", len(h.brackets))
	}
	wantInit := []int{9, 5, 3}
	wantBudget := []int{1, 3, 9}
	for i, b := range h.brackets {
		if len(b.alive) != wantInit[i] {
			t.Fatalf("bracket %d starts with %d configs, want %d", i, len(b.alive), wantInit[i])
		}
		if b.budget != wantBudget[i] {
			t.Fatalf("bracket %d first budget = %d, want %d", i, b.budget, wantBudget[i])
		}
	}

	id := 0
	totalByBudget := map[int]int{}
	rungSizes := []int{}
	for !h.Done() {
		cfgs := h.Ask(0)
		if len(cfgs) == 0 {
			if h.Done() {
				break
			}
			t.Fatal("hyperband stalled")
		}
		rungSizes = append(rungSizes, len(cfgs))
		var results []TrialResult
		for _, c := range cfgs {
			budget := c.Int("num_epochs", -1)
			totalByBudget[budget] += 1
			results = append(results, TrialResult{ID: id, Config: c,
				TrialMetrics: TrialMetrics{BestAcc: c.Float("x", 0)}})
			id++
		}
		h.Tell(results)
	}

	want := map[int]int{1: 9, 3: 8, 9: 5}
	for budget, n := range want {
		if totalByBudget[budget] != n {
			t.Fatalf("trials at budget %d = %d, want %d (all: %v)", budget, totalByBudget[budget], n, totalByBudget)
		}
	}
	// Promotion counts: bracket 0 runs rungs of 9 → 3 → 1, bracket 1 runs
	// 5 → 1, bracket 2 runs 3.
	wantRungs := []int{9, 3, 1, 5, 1, 3}
	if len(rungSizes) != len(wantRungs) {
		t.Fatalf("rung count = %d (%v), want %v", len(rungSizes), rungSizes, wantRungs)
	}
	for i, n := range wantRungs {
		if rungSizes[i] != n {
			t.Fatalf("rung %d size = %d, want %d (%v)", i, rungSizes[i], n, rungSizes)
		}
	}
}

// TestHyperbandPrunedTrialsLoseTheRung: a pruned trial must never be
// promoted as a success, however good its partial accuracy looked.
func TestHyperbandPrunedTrialsLoseTheRung(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{"x": {"type": "float", "min": 0, "max": 1}}`))
	h := NewHyperband(s, 9, 3, 8)
	first := h.Ask(0)
	if len(first) != 9 {
		t.Fatalf("first rung = %d", len(first))
	}
	// The pruned trial reports the best accuracy of the rung; everyone
	// else completes with mediocre ones.
	var results []TrialResult
	prunedID, _ := first[0]["_hb"].(string)
	for i, c := range first {
		tr := TrialResult{ID: i, Config: c, TrialMetrics: TrialMetrics{BestAcc: 0.5}}
		if i == 0 {
			tr.BestAcc = 0.99
			tr.Pruned = true
			tr.PruneReason = "median pruner: losing at epoch 1"
		}
		results = append(results, tr)
	}
	h.Tell(results)
	second := h.Ask(0)
	if len(second) == 0 {
		t.Fatal("no promotion rung")
	}
	for _, c := range second {
		if id, _ := c["_hb"].(string); id == prunedID {
			t.Fatal("pruned trial promoted despite losing its rung")
		}
	}
}

// TestSamplersIgnorePrunedTrials: model-based samplers must not feed pruned
// partial results into their surrogates.
func TestSamplersIgnorePrunedTrials(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{"x": {"type": "float", "min": 0, "max": 1}}`))
	tpe := NewTPE(s, 10, 1)
	bayes := NewBayesOpt(s, 10, 1)
	pruned := TrialResult{ID: 0, Config: Config{"x": 0.5}, Pruned: true,
		TrialMetrics: TrialMetrics{BestAcc: 0.99}}
	canceled := TrialResult{ID: 1, Config: Config{"x": 0.6}, Canceled: true,
		TrialMetrics: TrialMetrics{BestAcc: 0.98}}
	tpe.Tell([]TrialResult{pruned, canceled})
	bayes.Tell([]TrialResult{pruned, canceled})
	if len(tpe.xs) != 0 || len(tpe.ys) != 0 {
		t.Fatalf("TPE absorbed pruned/canceled trials: %d observations", len(tpe.xs))
	}
	if len(bayes.xs) != 0 || len(bayes.ys) != 0 {
		t.Fatalf("BayesOpt absorbed pruned/canceled trials: %d observations", len(bayes.xs))
	}
}
