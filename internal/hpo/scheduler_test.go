package hpo

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/runtime"
	"repro/internal/store"
)

// rungSpace is a continuous space: every sampled config gets a distinct
// "acc" driving a strict, deterministic quality ordering.
func rungSpace(t *testing.T) *Space {
	t.Helper()
	s, err := ParseSpaceJSON([]byte(`{"acc": {"type": "float", "min": 0.1, "max": 0.9}}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// rungValue is the deterministic metric both implementations see: monotone
// in epochs, ordered by the config's acc.
func rungValue(cfg Config, epoch, maxR int) float64 {
	return cfg.Float("acc", 0) * float64(epoch+1) / float64(maxR)
}

// batchRungLog drives the batch Hyperband through ask/tell and records, per
// (fingerprint, budget), every evaluation it schedules — the re-submit
// baseline's rung structure.
func batchRungLog(t *testing.T, maxR, eta int, seed uint64, space *Space) map[string]int {
	t.Helper()
	h := NewHyperband(space, maxR, eta, seed)
	evals := make(map[string]int) // "fingerprint@budget" → count
	id := 0
	for rounds := 0; !h.Done() && rounds < 1000; rounds++ {
		batch := h.Ask(0)
		if len(batch) == 0 {
			if h.Done() {
				break
			}
			t.Fatal("batch hyperband stalled")
		}
		var results []TrialResult
		for _, cfg := range batch {
			budget := cfg.Int("num_epochs", 0)
			evals[fmt.Sprintf("%v@%d", cfg["acc"], budget)]++
			best := rungValue(cfg, budget-1, maxR)
			results = append(results, TrialResult{ID: id, Config: cfg,
				TrialMetrics: TrialMetrics{BestAcc: best, FinalAcc: best, Epochs: budget}})
			id++
		}
		h.Tell(results)
	}
	return evals
}

// TestRungHyperbandConformance pins the rung-driven scheduler to the batch
// implementation: same seed → identical bracket sizes (9/5/3 for R=9,η=3),
// identical rung budgets, identical promotion sets — while the executed
// epoch count drops strictly below the re-submit baseline.
func TestRungHyperbandConformance(t *testing.T) {
	const maxR, eta, seed = 9, 3, 42
	space := rungSpace(t)

	// --- Structure: 9/5/3 brackets with rung ladders [1,3,9]/[3,9]/[9].
	rh := NewRungHyperband(space, maxR, eta, seed)
	var sizes []int
	var ladders [][]int
	for _, b := range rh.brackets {
		sizes = append(sizes, len(b.members))
		ladders = append(ladders, b.budgets)
	}
	if fmt.Sprint(sizes) != "[9 5 3]" {
		t.Fatalf("bracket sizes = %v, want [9 5 3]", sizes)
	}
	if fmt.Sprint(ladders) != "[[1 3 9] [3 9] [9]]" {
		t.Fatalf("rung ladders = %v, want [[1 3 9] [3 9] [9]]", ladders)
	}
	if rh.MinSlots() != 9 {
		t.Fatalf("MinSlots = %d, want 9", rh.MinSlots())
	}

	// --- Batch baseline evaluations.
	batch := batchRungLog(t, maxR, eta, seed, space)
	batchEpochs := 0
	for key := range batch {
		var budget int
		fmt.Sscanf(key[lastAt(key)+1:], "%d", &budget)
		batchEpochs += budget * batch[key]
	}

	// --- Drive the rung scheduler through a simulated live report stream.
	type live struct {
		cfg     Config
		limit   int
		ceiling int
		epoch   int // epochs executed so far
		best    float64
	}
	trials := make(map[int]*live)
	rungEpochs := 0
	promotions := make(map[string]int) // fingerprint@budget → granted
	rungEvals := make(map[string]int)  // fingerprint@budget → rung reached
	nextID := 0

	var apply func(decisions []SchedDecision)
	apply = func(decisions []SchedDecision) {
		for _, d := range decisions {
			tr := trials[d.TrialID]
			if tr == nil {
				t.Fatalf("decision for unknown trial %d", d.TrialID)
			}
			if d.Budget == 0 {
				// Halted through the prune path: exits with partial metrics.
				res := TrialResult{ID: d.TrialID, Config: tr.cfg, Pruned: true,
					TrialMetrics: TrialMetrics{BestAcc: tr.best, Epochs: tr.epoch}}
				delete(trials, d.TrialID)
				apply(rh.Complete(d.TrialID, &res))
				continue
			}
			if d.Budget <= tr.limit {
				t.Fatalf("trial %d re-granted %d (already %d)", d.TrialID, d.Budget, tr.limit)
			}
			promotions[fmt.Sprintf("%v@%d", tr.cfg["acc"], d.Budget)]++
			rungEvals[fmt.Sprintf("%v@%d", tr.cfg["acc"], d.Budget)]++
			tr.limit = d.Budget
		}
	}

	for rounds := 0; !rh.Done() && rounds < 100; rounds++ {
		configs := rh.Ask(0)
		if len(configs) == 0 {
			if rh.Done() {
				break
			}
			t.Fatal("rung hyperband stalled")
		}
		for _, cfg := range configs {
			id := nextID
			nextID++
			base := cfg.Int("num_epochs", 0)
			ceiling := cfg.Int("_hb_max", base)
			rh.Admit(id, base, cfg)
			trials[id] = &live{cfg: cfg, limit: base, ceiling: ceiling}
			rungEvals[fmt.Sprintf("%v@%d", cfg["acc"], base)]++
		}
		// Run the bracket: every live trial trains to its current limit,
		// streaming per-epoch reports; decisions raise limits or halt.
		for progress := true; progress; {
			progress = false
			for id, tr := range trials {
				for tr.epoch < tr.limit {
					progress = true
					v := rungValue(tr.cfg, tr.epoch, maxR)
					if v > tr.best {
						tr.best = v
					}
					tr.epoch++
					rungEpochs++
					if tr.epoch > tr.limit {
						t.Fatalf("trial %d trained past its budget", id)
					}
					apply(rh.Observe(id, tr.epoch-1, v))
					if trials[id] == nil {
						break // halted mid-loop
					}
				}
				if trials[id] == nil {
					continue
				}
				if tr.epoch == tr.ceiling {
					// Trained to the ceiling: completes naturally.
					res := TrialResult{ID: id, Config: tr.cfg,
						TrialMetrics: TrialMetrics{BestAcc: tr.best, Epochs: tr.epoch}}
					delete(trials, id)
					progress = true
					apply(rh.Complete(id, &res))
				}
			}
		}
		if len(trials) != 0 {
			t.Fatalf("%d trials left paused with no pending decision (deadlock)", len(trials))
		}
	}

	// --- Conformance: every (config, budget) the batch implementation
	// evaluated is exactly the set the rung scheduler reached.
	for key, n := range batch {
		if rungEvals[key] < n {
			t.Errorf("batch evaluated %s ×%d, rung reached it ×%d", key, n, rungEvals[key])
		}
	}
	for key := range rungEvals {
		if batch[key] == 0 {
			t.Errorf("rung reached %s which the batch implementation never scheduled", key)
		}
	}
	// Pinned promotion counts: bracket0 promotes 3 then 1, bracket1
	// promotes 1, bracket2 none — 5 total.
	if len(promotions) != 5 {
		t.Errorf("promotions = %v, want exactly 5 grants", promotions)
	}
	// Epoch savings: promoted trials never re-run completed epochs, so the
	// rung-driven total is strictly below the re-submit baseline.
	if batchEpochs != 78 {
		t.Errorf("batch baseline executed %d epochs, want 78 (9+9+9 + 15+9 + 27)", batchEpochs)
	}
	if rungEpochs >= batchEpochs {
		t.Errorf("rung-driven executed %d epochs, want strictly < batch %d", rungEpochs, batchEpochs)
	}
	if rungEpochs != 69 {
		t.Errorf("rung-driven executed %d epochs, want 69", rungEpochs)
	}
}

func lastAt(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '@' {
			return i
		}
	}
	return -1
}

// gatedObjective honours the full trial-continuation contract: it plans for
// the promotion ceiling, consults Proceed at each boundary, streams every
// epoch and counts executed epochs globally.
func gatedObjective(maxR int, counter *atomic.Int64) *FuncObjective {
	return &FuncObjective{ObjName: "gated", Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
		total := ctx.Config.Int("num_epochs", 1)
		if ctx.Proceed != nil && ctx.EpochCeiling > total {
			total = ctx.EpochCeiling
		}
		var m TrialMetrics
		for e := 0; e < total; e++ {
			if ctx.Halt != nil {
				if reason := ctx.Halt(); reason != "" {
					m.Stopped, m.StopReason = true, reason
					return m, nil
				}
			}
			v := rungValue(ctx.Config, e, maxR)
			counter.Add(1)
			m.Epochs = e + 1
			m.FinalAcc, m.BestAcc = v, v
			m.ValAccHistory = append(m.ValAccHistory, v)
			if ctx.Report != nil {
				ctx.Report(e, v)
			}
			if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
				m.Stopped, m.StopReason = true, "epoch budget exhausted"
				return m, nil
			}
		}
		return m, nil
	}}
}

// TestRungHyperbandRemoteE2E is the tentpole acceptance test: rung-driven
// Hyperband on the real TCP Remote backend must execute strictly fewer
// total epochs than the batch re-submit baseline, select the same winning
// config, and promote trials past their initial budget without re-running
// completed epochs.
func TestRungHyperbandRemoteE2E(t *testing.T) {
	const maxR, eta, seed = 9, 3, 42
	space := rungSpace(t)
	var executed atomic.Int64

	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	makeObjective := func() (Objective, error) { return gatedObjective(maxR, &executed), nil }
	// 3 workers × 3 cores: exactly the 9 slots the largest bracket needs.
	if err := ServeWorkers(rt, makeObjective, runtime.Constraint{Cores: 1}, 1, 0, 3, 3, func(err error) {
		t.Errorf("worker exited: %v", err)
	}); err != nil {
		t.Fatal(err)
	}
	obj, _ := makeObjective()

	// --- Batch baseline: budgets re-submitted per rung.
	baseStudy, err := NewStudy(StudyOptions{
		Sampler: NewHyperband(space, maxR, eta, seed), Objective: obj, Runtime: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := baseStudy.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseline := executed.Load()

	// --- Rung-driven run with journaled promotions.
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "rung.journal"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	if err := journal.CreateStudy(store.StudyMeta{ID: "rung"}); err != nil {
		t.Fatal(err)
	}
	rh := NewRungHyperband(space, maxR, eta, seed)
	st, err := NewStudy(StudyOptions{
		Sampler:   rh,
		Scheduler: rh,
		Objective: obj,
		Runtime:   rt,
		Recorder:  journal.Recorder("rung", "rung-e2e"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rungExecuted := executed.Load() - baseline

	// Strictly fewer epochs, identical winner.
	if rungExecuted >= baseline {
		t.Fatalf("rung-driven executed %d epochs, want strictly < batch baseline %d", rungExecuted, baseline)
	}
	if baseRes.Best == nil || res.Best == nil {
		t.Fatalf("missing winners: batch %+v rung %+v", baseRes.Best, res.Best)
	}
	if bw, rw := baseRes.Best.Config.Float("acc", -1), res.Best.Config.Float("acc", -2); bw != rw {
		t.Fatalf("winners differ: batch acc=%v (%.4f) vs rung acc=%v (%.4f)",
			bw, baseRes.Best.BestAcc, rw, res.Best.BestAcc)
	}

	// Promoted trials continued past their initial budget on the same
	// worker: no epoch was executed twice, so the global counter equals
	// the per-trial sum exactly.
	var sum int64
	promoted := 0
	for _, tr := range res.Trials {
		sum += int64(tr.Epochs)
		if tr.Epochs > tr.Config.Int("num_epochs", 0) {
			promoted++
			if !tr.Succeeded() && !tr.Pruned {
				t.Fatalf("promoted trial ended badly: %+v", tr)
			}
		}
	}
	if sum != rungExecuted {
		t.Fatalf("executed %d epochs but trials account for %d — some epochs re-ran", rungExecuted, sum)
	}
	if promoted == 0 {
		t.Fatal("no trial continued past its initial budget")
	}
	if res.Best.Epochs != maxR || res.Best.Config.Int("num_epochs", 0) >= maxR {
		t.Fatalf("winner should have been promoted to R=%d epochs: %+v", maxR, res.Best)
	}

	// Promotions were journaled for resume.
	if promos := journal.StudyPromotes("rung"); len(promos) != 5 {
		t.Fatalf("journal recorded %d promotions, want 5 (3+1 bracket0, 1 bracket1)", len(promos))
	}
}

// TestRungHyperbandRejectsUndersizedRuntime: fewer slots than the largest
// bracket must fail fast instead of deadlocking paused trials against
// queued ones.
func TestRungHyperbandRejectsUndersizedRuntime(t *testing.T) {
	rt := newStudyRuntime(t, 4) // 4 slots < 9-member bracket
	defer rt.Shutdown()
	var executed atomic.Int64
	rh := NewRungHyperband(rungSpace(t), 9, 3, 1)
	st, err := NewStudy(StudyOptions{
		Sampler: rh, Scheduler: rh,
		Objective: gatedObjective(9, &executed), Runtime: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err == nil {
		t.Fatal("undersized runtime accepted — would deadlock")
	}
}

// TestSchedulerValidation: scheduler requires a streaming backend and is
// mutually exclusive with a pruner.
func TestSchedulerValidation(t *testing.T) {
	rh := NewRungHyperband(rungSpace(t), 9, 3, 1)
	var executed atomic.Int64
	obj := gatedObjective(9, &executed)
	rt := newStudyRuntime(t, 9)
	defer rt.Shutdown()
	if _, err := NewStudy(StudyOptions{
		Sampler: rh, Scheduler: rh, Objective: obj, Runtime: rt,
		Pruner: NewMedianStop(0, 0),
	}); err == nil {
		t.Fatal("Scheduler+Pruner combination accepted")
	}
	if _, _, err := NewTrialScheduler("hyperband", "random", rungSpace(t), 9, 3, 1, 1, ""); err == nil {
		t.Fatal("hyperband scheduler accepted a non-hyperband algo")
	}
	if _, _, err := NewTrialScheduler("bogus", "", rungSpace(t), 9, 3, 1, 1, ""); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	s, sch, err := NewTrialScheduler("", "", rungSpace(t), 9, 3, 1, 1, "")
	if err != nil || s != nil || sch != nil {
		t.Fatalf("empty scheduler = (%v, %v, %v), want all nil", s, sch, err)
	}
	if _, _, err := NewTrialScheduler("hyperband", "", rungSpace(t), 9, 3, 1, 1, "bogus"); err == nil {
		t.Fatal("unknown rung mode accepted")
	}
	if _, _, err := NewTrialScheduler("", "", rungSpace(t), 9, 3, 1, 1, RungAsync); err == nil {
		t.Fatal("explicit rung mode without a scheduler accepted — would silently run the batch path")
	}
	if _, _, err := NewTrialScheduler("none", "", rungSpace(t), 9, 3, 1, 1, RungSync); err == nil {
		t.Fatal("explicit rung mode with scheduler none accepted")
	}
	if _, _, err := NewTrialScheduler("asha", "random", rungSpace(t), 9, 3, 1, 1, RungSync); err == nil {
		t.Fatal("asha accepted a synchronous rung mode (its decisions are per-arrival)")
	}
	if hb, sched, err := NewTrialScheduler("hyperband", "", rungSpace(t), 9, 3, 1, 1, RungAsync); err != nil {
		t.Fatalf("async hyperband scheduler: %v", err)
	} else if rh, ok := hb.(*RungHyperband); !ok || !rh.Async() || sched != hb.(TrialScheduler) {
		t.Fatalf("async hyperband = (%T async=%v, %T), want one async RungHyperband in both roles", hb, rh.Async(), sched)
	}
}

// TestASHASchedulerPromotesAndHalts: per-arrival decisions — the sole
// occupant of a rung is promoted, a clearly losing later arrival halts.
func TestASHASchedulerPromotesAndHalts(t *testing.T) {
	a := NewASHAScheduler(3, 1, 27)
	a.Admit(1, 1, Config{})
	a.Admit(2, 1, Config{})
	a.Admit(3, 1, Config{})

	// First arrival at rung 0: alone, rank 1, keep 1 → promoted 1 → 3.
	d := a.Observe(1, 0, 0.9)
	if len(d) != 1 || d[0].Budget != 3 {
		t.Fatalf("first arrival decisions = %+v, want promotion to 3", d)
	}
	// Second arrival, worse: rank 2, keep 1 → still keep=len/eta=0→1 but
	// rank 2 > 1 → halted.
	d = a.Observe(2, 0, 0.1)
	if len(d) != 1 || d[0].Budget != 0 {
		t.Fatalf("losing arrival decisions = %+v, want halt", d)
	}
	// Third arrival, middling: rank 2 of 3, keep 1 → halted.
	d = a.Observe(3, 0, 0.5)
	if len(d) != 1 || d[0].Budget != 0 {
		t.Fatalf("third arrival decisions = %+v, want halt", d)
	}
	// The promoted trial reaches its new boundary: rung 1, alone → 3 → 9.
	d = a.Observe(1, 2, 0.95)
	if len(d) != 1 || d[0].Budget != 9 {
		t.Fatalf("rung-1 arrival decisions = %+v, want promotion to 9", d)
	}
	// Ceiling: at budget 27... promote caps at MaxB, and at the ceiling no
	// decision fires.
	d = a.Observe(1, 8, 0.99)
	if len(d) != 1 || d[0].Budget != 27 {
		t.Fatalf("rung-2 arrival decisions = %+v, want promotion to 27", d)
	}
	if d = a.Observe(1, 26, 1.0); d != nil {
		t.Fatalf("at the ceiling decisions = %+v, want none", d)
	}
	// Completed trials stop deciding.
	a.Complete(2, nil)
	if d = a.Observe(2, 0, 0.99); d != nil {
		t.Fatalf("completed trial decided %+v", d)
	}
}

// TestBudgetGateStopBeatsExtend pins the promote-vs-cancel race at the gate
// level: once stopped (cancel delivered), a later extension must not revive
// the trial.
func TestBudgetGateStopBeatsExtend(t *testing.T) {
	g := runtime.NewBudgetGate()
	g.SetLimit(2)
	if !g.Allow(1) {
		t.Fatal("under-limit Allow blocked")
	}
	g.Stop()
	g.Extend(9)
	if g.Allow(2) {
		t.Fatal("stopped gate allowed continuation after a late extend")
	}
	// And the reverse order: a paused trial extended then stopped unblocks
	// into a refusal.
	g2 := runtime.NewBudgetGate()
	g2.SetLimit(1)
	var wg sync.WaitGroup
	wg.Add(1)
	allowed := make(chan bool, 1)
	go func() {
		defer wg.Done()
		allowed <- g2.Allow(1)
	}()
	g2.Stop()
	wg.Wait()
	if <-allowed {
		t.Fatal("stopped gate released a paused trial as allowed")
	}
}
