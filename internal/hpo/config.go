package hpo

import (
	"repro/internal/store"
)

// Config is one hyperparameter assignment — the "config" passed to each
// experiment task in the paper's Listing 2. Keys beginning with "_" are
// sampler-internal bookkeeping and are ignored by objectives and displays.
type Config map[string]interface{}

// Int reads an integer-valued parameter, accepting int or float64 storage;
// def is returned when the key is absent.
func (c Config) Int(key string, def int) int {
	v, ok := c[key]
	if !ok {
		return def
	}
	if f, ok := toFloat(v); ok {
		return int(f)
	}
	return def
}

// Float reads a float parameter with a default.
func (c Config) Float(key string, def float64) float64 {
	v, ok := c[key]
	if !ok {
		return def
	}
	if f, ok := toFloat(v); ok {
		return f
	}
	return def
}

// Str reads a string parameter with a default.
func (c Config) Str(key, def string) string {
	if v, ok := c[key].(string); ok {
		return v
	}
	return def
}

// Clone returns a shallow copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Fingerprint returns a deterministic string identity for the visible
// (non-underscore) parameters, used for deduplication, display and result
// memoization. The canonical implementation lives in the store so studies
// and persisted trials can never disagree on config identity.
func (c Config) Fingerprint() string { return store.Fingerprint(c) }

// String renders the config for tables and logs.
func (c Config) String() string { return "{" + c.Fingerprint() + "}" }
