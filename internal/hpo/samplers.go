package hpo

import (
	"fmt"

	"repro/internal/tensor"
)

// Sampler proposes configurations to evaluate. Static samplers (grid,
// random) ignore Tell; model-based samplers (Bayes, TPE, Hyperband) use the
// reported results to steer later proposals.
type Sampler interface {
	// Name identifies the algorithm ("grid", "random", ...).
	Name() string
	// Ask returns up to n new configs, or an empty slice when the sampler
	// is exhausted for now; a sampler is finished when Ask returns empty
	// AND Done reports true.
	Ask(n int) []Config
	// Tell reports completed trials.
	Tell(trials []TrialResult)
	// Done reports whether the sampler will never propose again.
	Done() bool
}

// NewSampler builds a sampler by name with the common knobs; budget is the
// maximum number of trials for random/model-based samplers (grid ignores
// it, hyperband interprets it as the maximum resource R).
func NewSampler(name string, space *Space, budget int, seed uint64) (Sampler, error) {
	switch name {
	case "grid":
		return NewGridSearch(space), nil
	case "random":
		return NewRandomSearch(space, budget, seed), nil
	case "bayes":
		return NewBayesOpt(space, budget, seed), nil
	case "tpe":
		return NewTPE(space, budget, seed), nil
	case "hyperband":
		return NewHyperband(space, budget, 3, seed), nil
	default:
		return nil, fmt.Errorf("hpo: unknown sampler %q (want grid, random, bayes, tpe or hyperband)", name)
	}
}

// GridSearch enumerates the full cross product of the space exactly once —
// "Exhaustive Grid search involves trying out all possible combinations"
// (§2.1). Order is row-major in parameter declaration order.
type GridSearch struct {
	space  *Space
	values [][]interface{}
	index  []int
	done   bool
}

// NewGridSearch builds a grid sampler over the space.
func NewGridSearch(space *Space) *GridSearch {
	g := &GridSearch{space: space, index: make([]int, len(space.Params))}
	for _, p := range space.Params {
		g.values = append(g.values, p.GridValues())
	}
	return g
}

// Name implements Sampler.
func (g *GridSearch) Name() string { return "grid" }

// Ask implements Sampler.
func (g *GridSearch) Ask(n int) []Config {
	var out []Config
	for !g.done && (n <= 0 || len(out) < n) {
		cfg := Config{}
		for i, p := range g.space.Params {
			cfg[p.Name()] = g.values[i][g.index[i]]
		}
		out = append(out, cfg)
		// Odometer increment, last parameter fastest.
		i := len(g.index) - 1
		for i >= 0 {
			g.index[i]++
			if g.index[i] < len(g.values[i]) {
				break
			}
			g.index[i] = 0
			i--
		}
		if i < 0 {
			g.done = true
		}
	}
	return out
}

// Tell implements Sampler (no-op: grid is non-adaptive).
func (g *GridSearch) Tell([]TrialResult) {}

// Done implements Sampler.
func (g *GridSearch) Done() bool { return g.done }

// RandomSearch draws budget independent uniform samples (Bergstra & Bengio
// 2012, the paper's §2.1 "superior algorithm in many cases").
type RandomSearch struct {
	space  *Space
	budget int
	drawn  int
	rng    *tensor.RNG
	// dedup avoids re-proposing identical configs on small spaces.
	seen map[string]bool
}

// NewRandomSearch builds a random sampler with the given trial budget.
func NewRandomSearch(space *Space, budget int, seed uint64) *RandomSearch {
	return &RandomSearch{space: space, budget: budget, rng: tensor.NewRNG(seed), seen: map[string]bool{}}
}

// Name implements Sampler.
func (r *RandomSearch) Name() string { return "random" }

// Ask implements Sampler.
func (r *RandomSearch) Ask(n int) []Config {
	var out []Config
	for r.drawn < r.budget && (n <= 0 || len(out) < n) {
		cfg := r.space.Sample(r.rng)
		fp := cfg.Fingerprint()
		// Retry a few times to avoid duplicates; accept one if the space is
		// nearly exhausted.
		for tries := 0; r.seen[fp] && tries < 20; tries++ {
			cfg = r.space.Sample(r.rng)
			fp = cfg.Fingerprint()
		}
		r.seen[fp] = true
		out = append(out, cfg)
		r.drawn++
	}
	return out
}

// Tell implements Sampler (no-op).
func (r *RandomSearch) Tell([]TrialResult) {}

// Done implements Sampler.
func (r *RandomSearch) Done() bool { return r.drawn >= r.budget }
