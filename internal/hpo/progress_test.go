package hpo

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasets"
	"repro/internal/runtime"
)

func TestProgressBoardRecordsAndRenders(t *testing.T) {
	b := NewProgressBoard(nil, 0.9)
	b.OnEpoch(0, 0, 0.3)
	b.OnEpoch(0, 1, 0.7)
	b.OnEpoch(1, 0, 0.5)
	b.OnEpoch(0, 2, 0.6) // regression: best stays 0.7

	if b.Trials() != 2 {
		t.Fatalf("trials = %d", b.Trials())
	}
	if b.Best() != 0.7 {
		t.Fatalf("best = %v", b.Best())
	}
	out := b.Render(40)
	if !strings.Contains(out, "live progress (2 trials)") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "(best 0.700)") {
		t.Fatalf("best marker missing:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("target marker missing:\n%s", out)
	}
}

func TestProgressBoardFlush(t *testing.T) {
	var buf bytes.Buffer
	b := NewProgressBoard(&buf, 0)
	b.OnEpoch(3, 0, 0.42)
	b.Flush(30)
	if !strings.Contains(buf.String(), "trial   3") {
		t.Fatalf("flush output: %q", buf.String())
	}
	// Nil writer must be a no-op.
	NewProgressBoard(nil, 0).Flush(30)
}

func TestProgressBoardConcurrent(t *testing.T) {
	b := NewProgressBoard(nil, 0)
	var wg sync.WaitGroup
	for trial := 0; trial < 8; trial++ {
		wg.Add(1)
		go func(trial int) {
			defer wg.Done()
			for e := 0; e < 50; e++ {
				b.OnEpoch(trial, e, float64(e)/50)
			}
		}(trial)
	}
	wg.Wait()
	if b.Trials() != 8 {
		t.Fatalf("trials = %d", b.Trials())
	}
	if b.Best() < 0.97 {
		t.Fatalf("best = %v", b.Best())
	}
}

func TestProgressBoardWiredIntoStudy(t *testing.T) {
	board := NewProgressBoard(nil, 0)
	space := tinySpace(t)
	rt := newStudyRuntime(t, 2)
	obj := &MLObjective{Dataset: datasets.MNISTLike(100, 6), Hidden: []int{8}}
	st, err := NewStudy(StudyOptions{
		Sampler: NewRandomSearch(space, 2, 1), Objective: obj, Runtime: rt,
		Constraint: runtime.Constraint{Cores: 1},
		OnEpoch:    board.OnEpoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()
	if board.Trials() != 2 || board.Best() == 0 {
		t.Fatalf("board saw %d trials, best %v", board.Trials(), board.Best())
	}
}

func TestMLObjectiveCNNModel(t *testing.T) {
	obj := &MLObjective{Dataset: datasets.MNISTLike(120, 9), Hidden: []int{8}}
	m, err := obj.Run(ObjectiveContext{
		Config: Config{"model": "cnn", "filters": 2, "num_epochs": 2, "batch_size": 24, "optimizer": "Adam"},
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs != 2 || m.FinalAcc <= 0.1 {
		t.Fatalf("CNN objective metrics = %+v", m)
	}
	if _, err := obj.Run(ObjectiveContext{
		Config: Config{"model": "transformer", "num_epochs": 1, "batch_size": 8},
		Seed:   9,
	}); err == nil {
		t.Fatal("expected error for unknown model kind")
	}
}
