package hpo

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/store"
)

func TestTrialStateMachine(t *testing.T) {
	tr := newTrial(3, Config{"x": 1})
	if tr.State() != TrialPending || tr.State().Terminal() {
		t.Fatalf("new trial state = %v", tr.State())
	}
	tr.markRunning(17)
	if tr.State() != TrialRunning || tr.TaskID() != 17 {
		t.Fatalf("running trial = %v task %d", tr.State(), tr.TaskID())
	}
	if !tr.observe(0, 0.5) || !tr.observe(1, 0.6) {
		t.Fatal("running trial rejected reports")
	}
	if got := tr.Reports(); len(got) != 2 || got[1] != (EpochReport{Epoch: 1, Value: 0.6}) {
		t.Fatalf("reports = %v", got)
	}
	if !tr.requestPrune("losing") {
		t.Fatal("running trial not prunable")
	}
	if tr.requestPrune("again") || tr.requestCancel("late") {
		t.Fatal("terminal trial re-transitioned")
	}
	if tr.observe(2, 0.7) {
		t.Fatal("pruned trial accepted a late report")
	}
	res := TrialResult{ID: 3, Config: tr.Config, TrialMetrics: TrialMetrics{BestAcc: 0.6, Epochs: 2}}
	tr.finalize(&res)
	if !res.Pruned || res.PruneReason != "losing" || res.Succeeded() {
		t.Fatalf("finalized pruned result = %+v", res)
	}
	if tr.State() != TrialPruned || tr.Result() == nil || !tr.Result().Pruned {
		t.Fatalf("terminal state = %v result = %+v", tr.State(), tr.Result())
	}

	// Failure and cancellation renderings.
	f := newTrial(4, Config{})
	f.markRunning(18)
	fres := TrialResult{ID: 4, Err: "boom"}
	f.finalize(&fres)
	if f.State() != TrialFailed {
		t.Fatalf("failed state = %v", f.State())
	}
	c := newTrial(5, Config{})
	c.markRunning(19)
	if !c.requestCancel("operator") {
		t.Fatal("running trial not cancelable")
	}
	cres := TrialResult{ID: 5}
	c.finalize(&cres)
	if !cres.Canceled || c.State() != TrialCanceled {
		t.Fatalf("canceled rendering = %+v state %v", cres, c.State())
	}
}

func TestStudyRejectsStreamingOnSimBackend(t *testing.T) {
	// Sim cannot stream epoch reports; OnEpoch and Pruner must fail loudly
	// instead of silently no-opping (the old remote-backend behaviour).
	simRT, err := runtime.New(runtime.Options{
		Cluster: cluster.Local(4), Backend: runtime.Sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := &FuncObjective{ObjName: "x", Fn: nil}
	_, err = NewStudy(StudyOptions{
		Sampler: NewGridSearch(tinySpace(t)), Objective: obj, Runtime: simRT,
		OnEpoch: func(int, int, float64) {},
	})
	if err == nil {
		t.Fatal("OnEpoch accepted on a non-streaming backend")
	}
	_, err = NewStudy(StudyOptions{
		Sampler: NewGridSearch(tinySpace(t)), Objective: obj, Runtime: simRT,
		Pruner: NewMedianStop(0, 0),
	})
	if err == nil {
		t.Fatal("Pruner accepted on a non-streaming backend")
	}
}

// pacedObjective streams one report per epoch at a per-config pace: better
// configs train faster, so winners anchor each epoch's median before losers
// arrive — making pruning decisions deterministic under scheduling jitter.
// It honours Halt at epoch boundaries and counts every epoch executed.
func pacedObjective(epochs int, counter *atomic.Int64) *FuncObjective {
	return &FuncObjective{ObjName: "paced", Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
		final := ctx.Config.Float("acc", 0)
		pace := time.Duration(2+int((1-final)*6)) * time.Millisecond
		var m TrialMetrics
		for e := 0; e < epochs; e++ {
			if ctx.Halt != nil {
				if reason := ctx.Halt(); reason != "" {
					m.Stopped, m.StopReason = true, reason
					return m, nil
				}
			}
			v := final * float64(e+1) / float64(epochs)
			m.Epochs = e + 1
			m.ValAccHistory = append(m.ValAccHistory, v)
			m.FinalAcc, m.BestAcc = v, v
			if ctx.Report != nil {
				ctx.Report(e, v)
			}
			counter.Add(1)
			time.Sleep(pace)
		}
		return m, nil
	}}
}

// accSpace is a 4-config space whose "acc" value is each trial's final
// accuracy, giving a strict quality ordering.
func accSpace(t *testing.T) *Space {
	t.Helper()
	s, err := ParseSpaceJSON([]byte(`{"acc": [0.2, 0.4, 0.6, 0.8]}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyMedianPruningSavesEpochsLocally(t *testing.T) {
	const epochs = 12
	var executed atomic.Int64
	rt := newStudyRuntime(t, 4)
	st, err := NewStudy(StudyOptions{
		Sampler:   NewGridSearch(accSpace(t)),
		Objective: pacedObjective(epochs, &executed),
		Runtime:   rt,
		Pruner:    NewMedianStop(2, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	rt.Shutdown()

	if res.Pruned < 1 {
		t.Fatal("no trial was pruned")
	}
	if res.Best == nil || res.Best.Pruned || res.Best.Config.Float("acc", 0) != 0.8 {
		t.Fatalf("best = %+v, want the 0.8 config unpruned", res.Best)
	}
	baseline := int64(len(res.Trials) * epochs)
	if got := executed.Load(); got >= baseline {
		t.Fatalf("executed %d epochs, want < unpruned baseline %d", got, baseline)
	}
	for _, tr := range res.Trials {
		if tr.Pruned {
			if tr.PruneReason == "" || tr.Succeeded() {
				t.Fatalf("pruned trial malformed: %+v", tr)
			}
			if tr.Epochs >= epochs {
				t.Fatalf("pruned trial ran all %d epochs", tr.Epochs)
			}
		}
	}
	// The lifecycle view agrees with the results.
	pruned, reported := 0, 0
	for _, h := range st.Trials() {
		switch h.State() {
		case TrialPruned:
			pruned++
			if len(h.Reports()) == 0 {
				t.Fatal("pruned trial streamed no reports")
			}
		case TrialReported:
			reported++
		default:
			t.Fatalf("trial %d ended %v", h.ID, h.State())
		}
	}
	if pruned != res.Pruned || reported != len(res.Trials)-res.Pruned {
		t.Fatalf("handle states pruned=%d reported=%d vs results %d/%d",
			pruned, reported, res.Pruned, len(res.Trials))
	}
}

// TestRemotePruningStreamsEpochsAndSavesWork is the cross-layer acceptance
// test: a study on the TCP Remote backend with a pruner. Intermediate epoch
// metrics must stream from the workers to the master (and into the journal's
// event log), at least one trial must be pruned mid-training, and the total
// executed epochs must come out strictly lower than the unpruned baseline
// run on the same workers.
func TestRemotePruningStreamsEpochsAndSavesWork(t *testing.T) {
	const epochs = 12
	var executed atomic.Int64
	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	makeObjective := func() (Objective, error) { return pacedObjective(epochs, &executed), nil }
	// Real TCP workers (ServeWorkers listens on 127.0.0.1:0 and dials it).
	if err := ServeWorkers(rt, makeObjective, runtime.Constraint{Cores: 1}, 1, 0, 2, 2, func(err error) {
		t.Errorf("worker exited: %v", err)
	}); err != nil {
		t.Fatal(err)
	}
	obj, _ := makeObjective()

	// --- Unpruned baseline: every trial runs every epoch.
	baselineStudy, err := NewStudy(StudyOptions{
		Sampler: NewGridSearch(accSpace(t)), Objective: obj, Runtime: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := baselineStudy.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseline := executed.Load()
	if want := int64(len(baseRes.Trials) * epochs); baseline != want {
		t.Fatalf("baseline executed %d epochs, want %d", baseline, want)
	}

	// --- Pruned run, journaling trials, metrics and prune decisions.
	journal, err := store.OpenJournal(filepath.Join(t.TempDir(), "e2e.journal"), store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	if err := journal.CreateStudy(store.StudyMeta{ID: "e2e", Name: "e2e"}); err != nil {
		t.Fatal(err)
	}
	st, err := NewStudy(StudyOptions{
		Sampler:   NewGridSearch(accSpace(t)),
		Objective: obj,
		Runtime:   rt,
		Pruner:    NewMedianStop(2, 2),
		Recorder:  journal.Recorder("e2e", "remote-e2e"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	prunedEpochs := executed.Load() - baseline

	if res.Pruned < 1 {
		t.Fatal("no trial was pruned on the remote backend")
	}
	if prunedEpochs >= baseline {
		t.Fatalf("pruned run executed %d epochs, want strictly < baseline %d", prunedEpochs, baseline)
	}
	if res.Best == nil || res.Best.Pruned || res.Best.Config.Float("acc", 0) != 0.8 {
		t.Fatalf("best = %+v", res.Best)
	}

	// The journal saw the full lifecycle: streamed intermediate metrics,
	// at least one prune decision, and the trial records themselves.
	events, _ := journal.EventsSince("e2e", 0)
	metrics, prunes, trials, prunedTrials := 0, 0, 0, 0
	for _, ev := range events {
		switch ev.Type {
		case "metric":
			metrics++
			if ev.Metric == nil || ev.Metric.Epoch < 0 {
				t.Fatalf("malformed metric event %+v", ev)
			}
		case "prune":
			prunes++
			if ev.Prune == nil || ev.Prune.Reason == "" {
				t.Fatalf("malformed prune event %+v", ev)
			}
		case "trial":
			trials++
			if ev.Trial.Pruned {
				prunedTrials++
			}
		}
	}
	if metrics == 0 {
		t.Fatal("no intermediate metric events reached the journal from remote workers")
	}
	if prunes != res.Pruned || prunedTrials != res.Pruned {
		t.Fatalf("journal recorded %d prune events / %d pruned trials, study pruned %d",
			prunes, prunedTrials, res.Pruned)
	}
	if trials != len(res.Trials) {
		t.Fatalf("journal trials = %d, want %d", trials, len(res.Trials))
	}
}
