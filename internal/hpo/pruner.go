package hpo

import (
	"fmt"
	"sort"
	"sync"
)

// Pruner decides, from the intermediate metrics streamed by running trials,
// whether a trial should be stopped early — the generalisation of the
// paper's "the process can be stopped as soon as one task achieves a
// specified accuracy" (§6.1) from a study-global flag into a per-trial
// decision. Implementations must be safe for concurrent use: reports arrive
// from task goroutines (local backend) and transport read loops (remote
// backend) at once. Higher values are better (validation accuracy).
type Pruner interface {
	// Name identifies the rule ("median", "asha", ...).
	Name() string
	// Observe records trial's metric at epoch and reports whether the
	// trial should be pruned now.
	Observe(trialID, epoch int, value float64) bool
	// Complete marks a trial terminal (reported, pruned, failed or
	// canceled) so the pruner can settle its bookkeeping; its observed
	// curve keeps anchoring future decisions.
	Complete(trialID int)
}

// NewPruner builds a pruner by name. "" and "none" mean no pruning (nil
// pruner, nil error); eta and warmup are interpreted per rule and may be 0
// for defaults.
func NewPruner(name string, eta, warmup int) (Pruner, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "median":
		return NewMedianStop(warmup, 0), nil
	case "asha":
		return NewASHA(eta, warmup), nil
	default:
		return nil, fmt.Errorf("hpo: unknown pruner %q (want none, median or asha)", name)
	}
}

// MedianStop implements the median stopping rule (Golovin et al., Google
// Vizier): a trial is pruned at epoch e when its reported value is strictly
// below the median of all other trials' values at the same epoch. Cheap,
// model-free, and a strong baseline.
type MedianStop struct {
	// Warmup is the number of epochs a trial is immune (default 1): epoch
	// indices below Warmup never prune.
	Warmup int
	// MinTrials is how many other trials must have reported the same epoch
	// before the median engages (default 2).
	MinTrials int

	mu     sync.Mutex
	curves map[int][]float64 // trialID → value per epoch index (NaN-free, grown as reported)
	seen   map[int][]bool    // trialID → epoch reported?
}

// NewMedianStop builds the rule; zero arguments select the defaults.
func NewMedianStop(warmup, minTrials int) *MedianStop {
	if warmup < 1 {
		warmup = 1
	}
	if minTrials < 1 {
		minTrials = 2
	}
	return &MedianStop{
		Warmup: warmup, MinTrials: minTrials,
		curves: make(map[int][]float64),
		seen:   make(map[int][]bool),
	}
}

// Name implements Pruner.
func (m *MedianStop) Name() string { return "median" }

// Observe implements Pruner.
func (m *MedianStop) Observe(trialID, epoch int, value float64) bool {
	if epoch < 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, s := m.curves[trialID], m.seen[trialID]
	for len(c) <= epoch {
		c = append(c, 0)
		s = append(s, false)
	}
	c[epoch], s[epoch] = value, true
	m.curves[trialID], m.seen[trialID] = c, s

	if epoch < m.Warmup {
		return false
	}
	var others []float64
	//lint:ignore replaydet guarded collect of peer curve values; DecideMedianStop reduces them via the median, which is order-insensitive
	for id, oc := range m.curves {
		if id == trialID || len(oc) <= epoch || !m.seen[id][epoch] {
			continue
		}
		others = append(others, oc[epoch])
	}
	return DecideMedianStop(value, others, m.MinTrials)
}

// Complete implements Pruner: finished curves stay as median anchors.
func (m *MedianStop) Complete(trialID int) {}

// median returns the middle value (mean of the two middles for even n).
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ASHA implements the Asynchronous Successive Halving pruning rule (Li et
// al.): rungs sit at MinResource·Eta^k epochs; a trial reaching a rung
// continues only while it ranks in the top 1/Eta of all values observed at
// that rung so far. Unlike synchronous Hyperband it never waits for a rung
// to fill — decisions are made per arrival, which is what lets remote
// trials stream in at their own pace.
type ASHA struct {
	// Eta is the halving factor (default 3).
	Eta int
	// MinResource is the first rung's epoch count (default 1).
	MinResource int

	mu    sync.Mutex
	rungs map[int]map[int]float64 // rung index → trialID → value
}

// NewASHA builds the rule; zero arguments select the defaults.
func NewASHA(eta, minResource int) *ASHA {
	if eta < 2 {
		eta = 3
	}
	if minResource < 1 {
		minResource = 1
	}
	return &ASHA{Eta: eta, MinResource: minResource, rungs: make(map[int]map[int]float64)}
}

// Name implements Pruner.
func (a *ASHA) Name() string { return "asha" }

// rungIndex returns k when resource == MinResource·Eta^k, else -1.
func (a *ASHA) rungIndex(resource int) int {
	if resource < a.MinResource {
		return -1
	}
	r, k := a.MinResource, 0
	for r <= resource {
		if r == resource {
			return k
		}
		r *= a.Eta
		k++
	}
	return -1
}

// Observe implements Pruner. epoch is 0-based; the resource consumed after
// it is epoch+1 training epochs.
func (a *ASHA) Observe(trialID, epoch int, value float64) bool {
	k := a.rungIndex(epoch + 1)
	if k < 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rung := a.rungs[k]
	if rung == nil {
		rung = make(map[int]float64)
		a.rungs[k] = rung
	}
	rung[trialID] = value

	keep := len(rung) / a.Eta
	if keep < 1 {
		keep = 1
	}
	rank := 1
	//lint:ignore replaydet pure count of better-scoring incumbents; summation order cannot change the rank
	for id, v := range rung {
		if id == trialID {
			continue
		}
		if v > value {
			rank++
		}
	}
	return rank > keep
}

// Complete implements Pruner: rung entries persist as ranking anchors.
func (a *ASHA) Complete(trialID int) {}
