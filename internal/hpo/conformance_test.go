package hpo

import (
	"testing"

	"repro/internal/tensor"
)

// allSamplers builds one of each algorithm over the given space with a
// uniform budget.
func allSamplers(space *Space, budget int, seed uint64) []Sampler {
	return []Sampler{
		NewGridSearch(space),
		NewRandomSearch(space, budget, seed),
		NewBayesOpt(space, budget, seed),
		NewTPE(space, budget, seed),
		NewHyperband(space, budget, 3, seed),
	}
}

// evaluate scores a config deterministically so Tell has realistic data.
func evaluate(space *Space, cfg Config, id int) TrialResult {
	x := space.Encode(cfg)
	acc := 0.5
	for _, xi := range x {
		acc += 0.1 * xi
	}
	return TrialResult{ID: id, Config: cfg, TrialMetrics: TrialMetrics{BestAcc: acc, FinalAcc: acc, Epochs: 1}}
}

// TestSamplerConformance drives every algorithm through the full ask/tell
// protocol and checks the shared invariants:
//  1. every proposed config assigns every space parameter a legal value;
//  2. Ask respects its batch cap;
//  3. the sampler terminates (Done or no proposals) within a generous round
//     budget;
//  4. once Done, Ask keeps returning empty.
func TestSamplerConformance(t *testing.T) {
	space, err := ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [3, 9, 27],
	  "lr": {"type": "float", "min": 0.001, "max": 0.1, "log": true},
	  "width": {"type": "int", "min": 4, "max": 32, "step": 14}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	legalEpoch := map[int]bool{3: true, 9: true, 27: true}

	for _, sm := range allSamplers(space, 20, 99) {
		t.Run(sm.Name(), func(t *testing.T) {
			id := 0
			rounds := 0
			for !sm.Done() && rounds < 200 {
				rounds++
				batch := sm.Ask(5)
				if len(batch) > 5 {
					t.Fatalf("Ask(5) returned %d configs", len(batch))
				}
				if len(batch) == 0 {
					if sm.Done() {
						break
					}
					// Waiting samplers (hyperband mid-rung) must have told
					// results pending; with none in flight this would be a
					// stall, which the study loop reports as an error.
					t.Fatalf("%s stalled: empty Ask while not Done", sm.Name())
				}
				var results []TrialResult
				for _, cfg := range batch {
					// (1) legality of every parameter.
					opt := cfg.Str("optimizer", "")
					if opt != "Adam" && opt != "SGD" && opt != "RMSprop" {
						t.Fatalf("illegal optimizer %q", opt)
					}
					// Hyperband overrides num_epochs with rung budgets;
					// other samplers must stay on the grid.
					if sm.Name() != "hyperband" {
						if !legalEpoch[cfg.Int("num_epochs", -1)] {
							t.Fatalf("illegal num_epochs %v", cfg["num_epochs"])
						}
					} else if e := cfg.Int("num_epochs", -1); e < 1 || e > 20 {
						t.Fatalf("hyperband budget %d out of [1,R]", e)
					}
					if lr := cfg.Float("lr", -1); lr < 0.001-1e-12 || lr > 0.1+1e-12 {
						t.Fatalf("lr %v out of range", lr)
					}
					if w := cfg.Int("width", -1); w < 4 || w > 32 {
						t.Fatalf("width %v out of range", w)
					}
					results = append(results, evaluate(space, cfg, id))
					id++
				}
				sm.Tell(results)
			}
			if rounds >= 200 {
				t.Fatalf("%s did not terminate in 200 rounds", sm.Name())
			}
			// (4) exhausted samplers stay exhausted.
			if extra := sm.Ask(3); len(extra) != 0 {
				t.Fatalf("%s proposed %d configs after Done", sm.Name(), len(extra))
			}
			if id == 0 {
				t.Fatalf("%s never proposed anything", sm.Name())
			}
		})
	}
}

// TestSamplerDeterminismConformance: same seed → identical proposal
// streams for every stochastic sampler under an identical tell stream.
func TestSamplerDeterminismConformance(t *testing.T) {
	space := paperSpace(t)
	for _, name := range []string{"random", "bayes", "tpe", "hyperband"} {
		run := func(seed uint64) []string {
			sm, err := NewSampler(name, space, 12, seed)
			if err != nil {
				t.Fatal(err)
			}
			var fingerprints []string
			id := 0
			for rounds := 0; !sm.Done() && rounds < 100; rounds++ {
				batch := sm.Ask(4)
				if len(batch) == 0 {
					break
				}
				var results []TrialResult
				for _, cfg := range batch {
					fingerprints = append(fingerprints, cfg.Fingerprint())
					results = append(results, evaluate(space, cfg, id))
					id++
				}
				sm.Tell(results)
			}
			return fingerprints
		}
		a, b := run(7), run(7)
		if len(a) != len(b) {
			t.Fatalf("%s: stream lengths differ (%d vs %d)", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: proposal %d differs: %s vs %s", name, i, a[i], b[i])
			}
		}
		c := run(8)
		same := 0
		for i := range a {
			if i < len(c) && a[i] == c[i] {
				same++
			}
		}
		if len(a) > 3 && same == len(a) {
			t.Fatalf("%s: different seeds gave identical streams", name)
		}
	}
}

// TestSamplerSeedIndependence: tensor RNG streams feeding samplers do not
// alias across instances created from the same seed constant.
func TestSamplerSeedIndependence(t *testing.T) {
	space := paperSpace(t)
	a := NewRandomSearch(space, 5, 3)
	b := NewRandomSearch(space, 5, 3)
	_ = a.Ask(2) // advance a
	bFull := b.Ask(0)
	if len(bFull) != 5 {
		t.Fatalf("b produced %d", len(bFull))
	}
	// a's remaining draws must equal b's tail (no shared state).
	aRest := a.Ask(0)
	for i, cfg := range aRest {
		if cfg.Fingerprint() != bFull[i+2].Fingerprint() {
			t.Fatalf("instances share or desync state at %d", i)
		}
	}
	_ = tensor.NewRNG // keep import if asserts change
}
