package hpo

import (
	"math"
	"sort"

	"repro/internal/tensor"
)

// TPE implements the Tree-structured Parzen Estimator (Bergstra et al. 2011,
// the paper's reference [4]): observed trials are split into a "good" set
// (top Gamma quantile by accuracy) and a "bad" set; each Ask samples
// candidates from a Parzen density fitted to the good set and keeps the
// candidate maximising the density ratio l(x)/g(x).
type TPE struct {
	space  *Space
	budget int
	drawn  int
	rng    *tensor.RNG

	// Warmup random trials before the estimator activates.
	Warmup int
	// Gamma is the good-set quantile (default 0.25).
	Gamma float64
	// Candidates per proposal.
	Candidates int
	// Bandwidth of the per-dimension Gaussian kernels in encoded space.
	Bandwidth float64

	xs [][]float64
	ys []float64
}

// NewTPE builds a TPE sampler with the given trial budget.
func NewTPE(space *Space, budget int, seed uint64) *TPE {
	return &TPE{
		space: space, budget: budget, rng: tensor.NewRNG(seed),
		Warmup: 5, Gamma: 0.25, Candidates: 64, Bandwidth: 0.15,
	}
}

// Name implements Sampler.
func (t *TPE) Name() string { return "tpe" }

// Done implements Sampler.
func (t *TPE) Done() bool { return t.drawn >= t.budget }

// Tell implements Sampler.
func (t *TPE) Tell(trials []TrialResult) {
	for _, tr := range trials {
		if !tr.Succeeded() {
			continue // failed/pruned/canceled trials carry no full-budget signal
		}
		t.xs = append(t.xs, t.space.Encode(tr.Config))
		t.ys = append(t.ys, tr.BestAcc)
	}
}

// Ask implements Sampler.
func (t *TPE) Ask(n int) []Config {
	var out []Config
	for t.drawn < t.budget && (n <= 0 || len(out) < n) {
		var cfg Config
		if len(t.xs) < t.Warmup {
			cfg = t.space.Sample(t.rng)
		} else {
			cfg = t.propose()
		}
		out = append(out, cfg)
		t.drawn++
	}
	return out
}

func (t *TPE) propose() Config {
	good, bad := t.split()
	// Anneal the kernel bandwidth as evidence accumulates so proposals
	// sharpen around the good region (standard Parzen-window shrinkage).
	bw := t.Bandwidth * math.Pow(float64(len(t.xs)), -0.25)
	if bw < 0.02 {
		bw = 0.02
	}
	bestScore := math.Inf(-1)
	var bestX []float64
	for c := 0; c < t.Candidates; c++ {
		// Sample from the good density: pick a good point, jitter it.
		base := good[t.rng.Intn(len(good))]
		x := make([]float64, len(base))
		for i := range x {
			v := base[i] + t.rng.NormFloat64()*bw
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			x[i] = v
		}
		score := parzenLogDensity(x, good, bw) - parzenLogDensity(x, bad, bw)
		if score > bestScore {
			bestScore, bestX = score, x
		}
	}
	return t.space.Decode(bestX)
}

// split partitions observations into good (top Gamma fraction by accuracy)
// and bad sets; both are guaranteed non-empty.
func (t *TPE) split() (good, bad [][]float64) {
	idx := make([]int, len(t.ys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.ys[idx[a]] > t.ys[idx[b]] })
	nGood := int(math.Ceil(t.Gamma * float64(len(idx))))
	if nGood < 1 {
		nGood = 1
	}
	if nGood >= len(idx) {
		nGood = len(idx) - 1
		if nGood < 1 {
			nGood = 1
		}
	}
	for i, j := range idx {
		if i < nGood {
			good = append(good, t.xs[j])
		} else {
			bad = append(bad, t.xs[j])
		}
	}
	if len(bad) == 0 {
		bad = good
	}
	return good, bad
}

// parzenLogDensity evaluates a log kernel-density estimate with isotropic
// Gaussian kernels at the sample points.
func parzenLogDensity(x []float64, pts [][]float64, bw float64) float64 {
	if len(pts) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, p := range pts {
		d2 := 0.0
		for i := range x {
			d := x[i] - p[i]
			d2 += d * d
		}
		sum += math.Exp(-d2 / (2 * bw * bw))
	}
	return math.Log(sum/float64(len(pts)) + 1e-300)
}
