package hpo

import (
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/store"
)

// TestAsyncRungHyperbandCapacityOneE2E is the tentpole acceptance test for
// asynchronous rung mode: the exact cluster-smaller-than-the-bracket
// scenario the synchronous mode rejects. On a 1-slot runtime the batch
// sampler still works (78 epochs at R=9, η=3), sync rung mode fails fast
// at MinSlots, and async rung mode completes — per-arrival decisions never
// barrier a rung — selecting the same winner within the batch epoch
// budget.
func TestAsyncRungHyperbandCapacityOneE2E(t *testing.T) {
	const maxR, eta, seed = 9, 3, 42
	space := rungSpace(t)
	var executed atomic.Int64
	obj := gatedObjective(maxR, &executed)

	// --- Batch baseline: capacity does not matter for re-submitted rungs.
	rtBatch := newStudyRuntime(t, 1)
	defer rtBatch.Shutdown()
	baseStudy, err := NewStudy(StudyOptions{
		Sampler: NewHyperband(space, maxR, eta, seed), Objective: obj, Runtime: rtBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := baseStudy.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseline := executed.Load()
	if baseline != 78 {
		t.Fatalf("batch baseline executed %d epochs, want 78", baseline)
	}

	// --- Sync rung mode still refuses: one slot cannot hold a 9-member
	// rung at its barrier.
	rtSync := newStudyRuntime(t, 1)
	defer rtSync.Shutdown()
	rhSync := NewRungHyperband(space, maxR, eta, seed)
	stSync, err := NewStudy(StudyOptions{
		Sampler: rhSync, Scheduler: rhSync, Objective: obj, Runtime: rtSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stSync.Run(); err == nil {
		t.Fatal("sync rung mode accepted a 1-slot runtime — would deadlock")
	}
	if got := executed.Load(); got != baseline {
		t.Fatalf("failed sync run executed %d epochs", got-baseline)
	}

	// --- Async rung mode completes on the 1-slot runtime.
	rtAsync := newStudyRuntime(t, 1)
	defer rtAsync.Shutdown()
	rh := NewRungHyperbandAsync(space, maxR, eta, seed)
	st, err := NewStudy(StudyOptions{
		Sampler: rh, Scheduler: rh, Objective: obj, Runtime: rtAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	asyncExecuted := executed.Load() - baseline

	// Same winner as the batch sampler, within its epoch budget.
	if baseRes.Best == nil || res.Best == nil {
		t.Fatalf("missing winners: batch %+v async %+v", baseRes.Best, res.Best)
	}
	if bw, aw := baseRes.Best.Config.Float("acc", -1), res.Best.Config.Float("acc", -2); bw != aw {
		t.Fatalf("winners differ: batch acc=%v vs async acc=%v", bw, aw)
	}
	if asyncExecuted > baseline {
		t.Fatalf("async mode executed %d epochs, want <= the %d-epoch batch baseline", asyncExecuted, baseline)
	}
	if res.Best.Epochs != maxR {
		t.Fatalf("async winner trained %d epochs, want promoted to R=%d", res.Best.Epochs, maxR)
	}

	// Trials were submitted once and continued in place: the global epoch
	// counter equals the per-trial sum (nothing re-ran), and at least one
	// trial was promoted past its submitted budget.
	var sum int64
	promoted := 0
	for _, tr := range res.Trials {
		sum += int64(tr.Epochs)
		if tr.Epochs > tr.Config.Int("num_epochs", 0) {
			promoted++
		}
	}
	if sum != asyncExecuted {
		t.Fatalf("executed %d epochs but trials account for %d — some epochs re-ran", asyncExecuted, sum)
	}
	if promoted == 0 {
		t.Fatal("no trial continued past its initial budget")
	}
}

// fakeClockRun drives an async RungHyperband on a simulated slot-limited
// executor with a fake clock: each epoch costs one tick, slots admit from
// the scheduler's waiting room the moment they free up, and decisions
// apply instantly. Returns the simulated makespan, the total executed
// epochs and the best final value.
func fakeClockRun(t *testing.T, rh *RungHyperband, slots, maxR int) (makespan, totalEpochs int, best float64) {
	t.Helper()
	type live struct {
		cfg   Config
		limit int
		epoch int
		best  float64
	}
	running := map[int]*live{}
	nextID := 0
	rh.SetCapacity(slots)

	var complete func(id int, pruned bool)
	apply := func(decisions []SchedDecision) {
		for _, d := range decisions {
			tr := running[d.TrialID]
			if tr == nil {
				t.Fatalf("decision for unknown trial %d: %+v", d.TrialID, d)
			}
			if d.Budget == 0 {
				complete(d.TrialID, true)
				continue
			}
			if d.Budget <= tr.limit {
				t.Fatalf("trial %d re-granted %d (already %d)", d.TrialID, d.Budget, tr.limit)
			}
			tr.limit = d.Budget
		}
	}
	complete = func(id int, pruned bool) {
		tr := running[id]
		res := TrialResult{ID: id, Config: tr.cfg, Pruned: pruned,
			TrialMetrics: TrialMetrics{BestAcc: tr.best, Epochs: tr.epoch}}
		if tr.best > best && !pruned {
			best = tr.best
		}
		delete(running, id)
		apply(rh.Complete(id, &res))
	}

	for tick := 0; ; tick++ {
		if tick > 10000 {
			t.Fatal("fake clock ran away")
		}
		// Admit members as slots free up.
		for free := slots - len(running); free > 0; free = slots - len(running) {
			cfgs := rh.Ask(free)
			if len(cfgs) == 0 {
				break
			}
			for _, cfg := range cfgs {
				id := nextID
				nextID++
				base := cfg.Int("num_epochs", 0)
				rh.Admit(id, base, cfg)
				running[id] = &live{cfg: cfg, limit: base}
			}
		}
		if len(running) == 0 {
			if !rh.Done() {
				t.Fatal("fake clock stalled: nothing running, scheduler not done")
			}
			return tick, totalEpochs, best
		}
		// One tick: every running trial trains one epoch; boundary
		// arrivals are decided on the spot.
		ids := make([]int, 0, len(running))
		for id := range running {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			tr := running[id]
			if tr == nil {
				continue
			}
			v := rungValue(tr.cfg, tr.epoch, maxR)
			if v > tr.best {
				tr.best = v
			}
			tr.epoch++
			totalEpochs++
			apply(rh.Observe(id, tr.epoch-1, v))
			if tr := running[id]; tr != nil && tr.epoch >= tr.limit {
				complete(id, false)
			}
		}
	}
}

// TestAsyncParallelBracketsBeatSequentialWallClock: with per-bracket
// parallel execution, members of later brackets fill the slots a draining
// bracket leaves idle, so the simulated makespan drops strictly below the
// sequential bracket drain — with identical total work, because rung
// decisions only rank members within their own bracket and the
// within-bracket arrival order is unchanged.
func TestAsyncParallelBracketsBeatSequentialWallClock(t *testing.T) {
	const maxR, eta, seed, slots = 9, 3, 42, 4
	space := rungSpace(t)

	seq := NewRungHyperbandAsync(space, maxR, eta, seed)
	seq.SetBracketParallel(false)
	seqSpan, seqEpochs, seqBest := fakeClockRun(t, seq, slots, maxR)

	par := NewRungHyperbandAsync(space, maxR, eta, seed)
	parSpan, parEpochs, parBest := fakeClockRun(t, par, slots, maxR)

	if parSpan >= seqSpan {
		t.Fatalf("parallel brackets took %d ticks, want strictly < sequential drain's %d", parSpan, seqSpan)
	}
	if parEpochs != seqEpochs {
		t.Fatalf("parallel brackets executed %d epochs vs sequential %d — interleaving changed rung decisions", parEpochs, seqEpochs)
	}
	if parBest != seqBest {
		t.Fatalf("parallel winner %v differs from sequential %v", parBest, seqBest)
	}
}

// TestAsyncLoopBackfillsFreedSlots pins the non-barrier drain on the real
// execution path (not just the fake-clock harness): on a 2-slot runtime,
// when one admitted member exits early, the next waiting-room member must
// be admitted while the other admitted member is still running. The slow
// member blocks until the backfilled member starts — under a round-barrier
// loop that admission never happens and the slow member trips its escape
// timeout, failing the test.
func TestAsyncLoopBackfillsFreedSlots(t *testing.T) {
	rt := newStudyRuntime(t, 2)
	defer rt.Shutdown()

	started := make(chan struct{})
	var startedOnce sync.Once
	var timedOut atomic.Bool
	// Bracket structure at R=3, η=3: [b1-0 b1-1 b1-2] with ladder [1,3],
	// then [b0-3 b0-4] with ladder [3]. Values keyed off the hidden member
	// id give a fixed quality order without depending on sampled params.
	values := map[string]float64{"b1-0": 0.9, "b1-1": 0.1, "b1-2": 0.2, "b0-3": 0.3, "b0-4": 0.4}

	obj := &FuncObjective{ObjName: "backfill", Fn: func(ctx ObjectiveContext) (TrialMetrics, error) {
		key := ctx.Config.Str("_hb", "")
		total := ctx.Config.Int("num_epochs", 1)
		if ctx.Proceed != nil && ctx.EpochCeiling > total {
			total = ctx.EpochCeiling
		}
		if key == "b1-2" {
			startedOnce.Do(func() { close(started) })
		}
		var m TrialMetrics
		for e := 0; e < total; e++ {
			if ctx.Halt != nil && ctx.Halt() != "" {
				m.Stopped = true
				return m, nil
			}
			if key == "b1-0" && e == 1 {
				// Promoted past the first rung: hold this slot until the
				// third member of the bracket has been admitted.
				select {
				case <-started:
				case <-time.After(10 * time.Second):
					timedOut.Store(true)
				}
			}
			v := values[key] * float64(e+1) / 3
			m.Epochs, m.BestAcc, m.FinalAcc = e+1, v, v
			if ctx.Report != nil {
				ctx.Report(e, v)
			}
			if e+1 < total && ctx.Proceed != nil && !ctx.Proceed(e+1) {
				m.Stopped = true
				return m, nil
			}
		}
		return m, nil
	}}

	rh := NewRungHyperbandAsync(rungSpace(t), 3, 3, 7)
	st, err := NewStudy(StudyOptions{
		Sampler: rh, Scheduler: rh, Objective: obj, Runtime: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if timedOut.Load() {
		t.Fatal("waiting-room member was not admitted while a slot sat free — the async loop round-barriered")
	}
	if len(res.Trials) != 5 {
		t.Fatalf("res has %d trials, want all 5 bracket members", len(res.Trials))
	}
}

// TestAsyncRungRestartDoesNotDoublePromote pins the worker-death contract
// of async rungs: a re-queued attempt restarts from scratch and re-reports
// its boundary epochs, and those duplicate arrivals must neither rank a
// second time nor emit a second promotion.
func TestAsyncRungRestartDoesNotDoublePromote(t *testing.T) {
	rh := NewRungHyperbandAsync(rungSpace(t), 9, 3, 42)
	cfgs := rh.Ask(0)
	if len(cfgs) != 17 {
		t.Fatalf("async Ask handed %d members, want all 17 (9+5+3 brackets in parallel)", len(cfgs))
	}
	// First member belongs to bracket 0 (ladder [1,3,9]).
	rh.Admit(0, cfgs[0].Int("num_epochs", 0), cfgs[0])

	d := rh.Observe(0, 0, 0.9)
	if len(d) != 1 || d[0].Budget != 3 {
		t.Fatalf("first arrival = %+v, want promotion to 3", d)
	}
	// The worker dies; the fresh attempt re-reports epoch 0.
	if d := rh.Observe(0, 0, 0.9); len(d) != 0 {
		t.Fatalf("restarted attempt re-decided rung 0: %+v", d)
	}
	// Mid-rung epochs decide nothing.
	if d := rh.Observe(0, 1, 0.91); len(d) != 0 {
		t.Fatalf("mid-rung epoch decided: %+v", d)
	}
	// The next boundary decides exactly once.
	d = rh.Observe(0, 2, 0.95)
	if len(d) != 1 || d[0].Budget != 9 {
		t.Fatalf("rung-1 arrival = %+v, want promotion to 9", d)
	}
	if d := rh.Observe(0, 2, 0.95); len(d) != 0 {
		t.Fatalf("duplicate rung-1 arrival re-decided: %+v", d)
	}

	// A clearly losing later arrival at rung 0 halts per-arrival (keep is
	// max(1, 2/3) = 1 and the first arrival's 0.9 holds the spot).
	rh.Admit(1, cfgs[1].Int("num_epochs", 0), cfgs[1])
	d = rh.Observe(1, 0, 0.1)
	if len(d) != 1 || d[0].Budget != 0 {
		t.Fatalf("losing arrival = %+v, want halt", d)
	}
	// A halted member never decides again, even at a later epoch.
	if d := rh.Observe(1, 2, 0.99); len(d) != 0 {
		t.Fatalf("halted member decided: %+v", d)
	}
}

// TestAsyncRungZeroCapacityFailsFast: an async rung study on a runtime
// with zero healthy nodes (a Remote backend no worker ever attached to)
// must return a clean error instead of queueing trials that can never run.
func TestAsyncRungZeroCapacityFailsFast(t *testing.T) {
	rt, err := runtime.New(runtime.Options{Backend: runtime.Remote})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	var executed atomic.Int64
	rh := NewRungHyperbandAsync(rungSpace(t), 9, 3, 1)
	st, err := NewStudy(StudyOptions{
		Sampler: rh, Scheduler: rh,
		Objective: gatedObjective(9, &executed), Runtime: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := st.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("zero-capacity runtime accepted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("zero-capacity study hung instead of erroring")
	}
	if executed.Load() != 0 {
		t.Fatalf("zero-capacity study executed %d epochs", executed.Load())
	}
}

// TestAsyncRungResumeSkipsFinishedTrials: an async rung study journals its
// trials and promotions; re-running over the same journal resumes every
// success — resumed members anchor the rung ranking pools so the replay
// never re-executes a finished winner, even though promote records were
// written per-arrival rather than rung-by-rung.
func TestAsyncRungResumeSkipsFinishedTrials(t *testing.T) {
	const maxR, eta, seed, scope = 9, 3, 42, "async-resume"
	dir := filepath.Join(t.TempDir(), "j")
	space := rungSpace(t)
	var executed atomic.Int64

	runStudy := func(j *store.Journal) *StudyResult {
		t.Helper()
		rt := newStudyRuntime(t, 2)
		defer rt.Shutdown()
		rh := NewRungHyperbandAsync(space, maxR, eta, seed)
		st, err := NewStudy(StudyOptions{
			Sampler: rh, Scheduler: rh,
			Objective: gatedObjective(maxR, &executed),
			Runtime:   rt,
			Recorder:  j.Recorder("rung", scope),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	j1, err := store.OpenJournal(dir, store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.CreateStudy(store.StudyMeta{ID: "rung"}); err != nil {
		t.Fatal(err)
	}
	res1 := runStudy(j1)
	first := executed.Load()
	if len(j1.StudyPromotes("rung")) == 0 {
		t.Fatal("first run journaled no promotions")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := store.OpenJournal(dir, store.JournalOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	res2 := runStudy(j2)
	second := executed.Load() - first

	succeeded := 0
	for _, tr := range res1.Trials {
		if tr.Succeeded() {
			succeeded++
		}
	}
	if res2.Resumed != succeeded {
		t.Fatalf("second run resumed %d trials, want all %d successes of the first", res2.Resumed, succeeded)
	}
	if second >= first {
		t.Fatalf("second run executed %d epochs, want strictly < first run's %d", second, first)
	}
	if w1, w2 := res1.Best.Config.Float("acc", -1), res2.Best.Config.Float("acc", -2); w1 != w2 {
		t.Fatalf("resume changed the winner: %v vs %v", w1, w2)
	}
}
