package hpo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// paperSpaceJSON is the paper's Listing 1 config file, verbatim.
const paperSpaceJSON = `{
  "optimizer": ["Adam", "SGD", "RMSprop"],
  "num_epochs": [20, 50, 100],
  "batch_size": [32, 64, 128]
}`

func paperSpace(t *testing.T) *Space {
	t.Helper()
	s, err := ParseSpaceJSON([]byte(paperSpaceJSON))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParsePaperListing1(t *testing.T) {
	s := paperSpace(t)
	if len(s.Params) != 3 {
		t.Fatalf("params = %d", len(s.Params))
	}
	if s.Size() != 27 {
		t.Fatalf("grid size = %d, want 27 (paper: '27 different experiments are created')", s.Size())
	}
	// JSON integers must come back as ints, not float64.
	epochs := s.ByName("num_epochs")
	if epochs == nil {
		t.Fatal("num_epochs missing")
	}
	if _, ok := epochs.GridValues()[0].(int); !ok {
		t.Fatalf("epochs decoded as %T, want int", epochs.GridValues()[0])
	}
	opt := s.ByName("optimizer")
	if opt.GridValues()[0].(string) != "Adam" {
		t.Fatalf("optimizer[0] = %v", opt.GridValues()[0])
	}
}

func TestParseExtendedTypes(t *testing.T) {
	src := `{
	  "learning_rate": {"type": "float", "min": 0.0001, "max": 0.1, "log": true},
	  "hidden_units": {"type": "int", "min": 16, "max": 128, "step": 16}
	}`
	s, err := ParseSpaceJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	hu := s.ByName("hidden_units")
	vals := hu.GridValues()
	if len(vals) != 8 || vals[0].(int) != 16 || vals[7].(int) != 128 {
		t.Fatalf("hidden grid = %v", vals)
	}
	lr := s.ByName("learning_rate").(FloatRange)
	if !lr.Log {
		t.Fatal("log flag lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"x": []}`,
		`{"x": {"type": "banana", "min": 0, "max": 1}}`,
		`{"x": {"type": "float", "min": 5, "max": 1}}`,
		`{"x": {"type": "float", "min": 0, "max": 1, "log": true}}`,
	}
	for _, c := range cases {
		if _, err := ParseSpaceJSON([]byte(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestCategoricalEncodeDecodeRoundTrip(t *testing.T) {
	c := Categorical{Key: "opt", Values: []interface{}{"Adam", "SGD", "RMSprop"}}
	for _, v := range c.Values {
		x := c.Encode(v)
		if got := c.DecodeNearest(x); got != v {
			t.Fatalf("round trip %v → %v → %v", v, x, got)
		}
	}
}

func TestIntRangeEncodeDecode(t *testing.T) {
	p := IntRange{Key: "n", Min: 10, Max: 20}
	if p.Encode(10) != 0 || p.Encode(20) != 1 {
		t.Fatal("endpoints encode to 0/1")
	}
	if p.DecodeNearest(0.5).(int) != 15 {
		t.Fatalf("decode(0.5) = %v", p.DecodeNearest(0.5))
	}
	if p.DecodeNearest(2.0).(int) != 20 {
		t.Fatal("decode should clamp")
	}
}

func TestFloatRangeLogScale(t *testing.T) {
	p := FloatRange{Key: "lr", Min: 1e-4, Max: 1e-1, Log: true}
	mid := p.DecodeNearest(0.5).(float64)
	// Log midpoint of [1e-4, 1e-1] is 10^-2.5.
	want := math.Pow(10, -2.5)
	if math.Abs(mid-want)/want > 1e-9 {
		t.Fatalf("log midpoint = %v, want %v", mid, want)
	}
	if x := p.Encode(mid); math.Abs(x-0.5) > 1e-9 {
		t.Fatalf("encode(midpoint) = %v", x)
	}
}

func TestSpaceSampleInRange(t *testing.T) {
	s := paperSpace(t)
	rng := tensor.NewRNG(1)
	for i := 0; i < 100; i++ {
		cfg := s.Sample(rng)
		if cfg.Int("num_epochs", -1) == -1 {
			t.Fatalf("sample missing num_epochs: %v", cfg)
		}
		e := cfg.Int("num_epochs", 0)
		if e != 20 && e != 50 && e != 100 {
			t.Fatalf("epochs = %d not in grid", e)
		}
		o := cfg.Str("optimizer", "")
		if o != "Adam" && o != "SGD" && o != "RMSprop" {
			t.Fatalf("optimizer = %q", o)
		}
	}
}

// Property: Encode ∘ DecodeNearest maps every point back into [0,1] and
// decoding is idempotent (decode(encode(decode(x))) == decode(x)).
func TestEncodeDecodeIdempotentProperty(t *testing.T) {
	s, err := ParseSpaceJSON([]byte(`{
	  "a": ["x", "y", "z"],
	  "b": {"type": "int", "min": 0, "max": 9},
	  "c": {"type": "float", "min": 0.5, "max": 2.0}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []float64) bool {
		x := make([]float64, len(s.Params))
		for i := range x {
			if i < len(raw) {
				x[i] = math.Abs(math.Mod(raw[i], 1))
			}
		}
		cfg := s.Decode(x)
		enc := s.Encode(cfg)
		cfg2 := s.Decode(enc)
		return cfg.Fingerprint() == cfg2.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{"a": 5, "b": 2.5, "c": "hi", "_hidden": 1}
	if cfg.Int("a", 0) != 5 || cfg.Int("missing", 7) != 7 {
		t.Fatal("Int getter wrong")
	}
	if cfg.Float("b", 0) != 2.5 {
		t.Fatal("Float getter wrong")
	}
	if cfg.Str("c", "") != "hi" || cfg.Str("missing", "d") != "d" {
		t.Fatal("Str getter wrong")
	}
	fp := cfg.Fingerprint()
	if fp != "a=5,b=2.5,c=hi" {
		t.Fatalf("fingerprint = %q (hidden keys must be excluded)", fp)
	}
	clone := cfg.Clone()
	clone["a"] = 6
	if cfg.Int("a", 0) != 5 {
		t.Fatal("Clone should not alias")
	}
}
