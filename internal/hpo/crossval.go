package hpo

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// CVObjective evaluates a configuration with k-fold cross-validation, the
// estimator scikit-learn's grid/random search uses (§2.2: "uses cross
// validation to evaluate the best performing parameters"). The reported
// accuracy is the mean validation accuracy across folds, which is less
// noisy than a single split — useful for the model-based samplers.
type CVObjective struct {
	// Dataset is the full labelled set.
	Dataset *datasets.Dataset
	// Folds is k (default 5, minimum 2).
	Folds int
	// Hidden mirrors MLObjective.
	Hidden []int
}

// Name implements Objective.
func (o *CVObjective) Name() string {
	return fmt.Sprintf("cv%d/%s", o.folds(), o.Dataset.Name)
}

func (o *CVObjective) folds() int {
	if o.Folds < 2 {
		return 5
	}
	return o.Folds
}

// Run implements Objective: it trains one model per fold and averages.
// The per-epoch report streams the running mean across completed folds'
// curves (folds may stop early; shorter curves stop contributing).
func (o *CVObjective) Run(ctx ObjectiveContext) (TrialMetrics, error) {
	cfg := ctx.Config
	epochs := cfg.Int("num_epochs", 10)
	batch := cfg.Int("batch_size", 32)
	optName := cfg.Str("optimizer", "Adam")
	lr := cfg.Float("learning_rate", 0)
	if epochs <= 0 || batch <= 0 {
		return TrialMetrics{}, fmt.Errorf("hpo: invalid config %s", cfg)
	}

	k := o.folds()
	n := o.Dataset.Len()
	if n < k {
		return TrialMetrics{}, fmt.Errorf("hpo: %d samples cannot form %d folds", n, k)
	}
	perm := tensor.NewRNG(ctx.Seed).Perm(n)

	hidden := append([]int(nil), o.Hidden...)
	if len(hidden) == 0 {
		hidden = []int{32}
	}
	if hu := cfg.Int("hidden_units", 0); hu > 0 {
		hidden[0] = hu
	}

	var curves [][]float64
	var sumFinal, sumBest, sumLoss float64
	maxEpochs := 0
	for fold := 0; fold < k; fold++ {
		trainIdx, valIdx := foldSplit(perm, k, fold)
		train := subsetOf(o.Dataset, trainIdx)
		val := subsetOf(o.Dataset, valIdx)

		opt, err := nn.NewOptimizer(optName, lr)
		if err != nil {
			return TrialMetrics{}, err
		}
		modelRNG := tensor.NewRNG(ctx.Seed ^ (uint64(fold)+1)*0x5bd1e995)
		model := nn.NewMLP(modelRNG, o.Dataset.Features(), hidden, o.Dataset.Classes)
		if ctx.Parallelism > 0 {
			model.SetParallelism(ctx.Parallelism)
		}
		var callbacks []nn.Callback
		if ctx.TargetAccuracy > 0 {
			callbacks = append(callbacks, &nn.TargetAccuracy{Target: ctx.TargetAccuracy})
		}
		if ctx.Halt != nil {
			callbacks = append(callbacks, &haltCallback{halt: ctx.Halt})
		}
		h, err := model.Fit(train.X, train.Y, val.X, val.Y, nn.FitConfig{
			Epochs: epochs, BatchSize: batch, Optimizer: opt,
			Shuffle: true, RNG: modelRNG, Callbacks: callbacks,
		})
		if err != nil {
			return TrialMetrics{}, err
		}
		curves = append(curves, h.ValAcc)
		if len(h.ValAcc) > maxEpochs {
			maxEpochs = len(h.ValAcc)
		}
		sumFinal += h.Final()
		sumBest += h.BestValAcc()
		sumLoss += h.ValLoss[len(h.ValLoss)-1]
	}

	mean := make([]float64, maxEpochs)
	for e := 0; e < maxEpochs; e++ {
		sum, cnt := 0.0, 0
		for _, c := range curves {
			if e < len(c) {
				sum += c[e]
				cnt++
			}
		}
		mean[e] = sum / float64(cnt)
		if ctx.Report != nil {
			ctx.Report(e, mean[e])
		}
	}
	kf := float64(k)
	return TrialMetrics{
		FinalAcc:      sumFinal / kf,
		BestAcc:       sumBest / kf,
		FinalLoss:     sumLoss / kf,
		Epochs:        maxEpochs,
		ValAccHistory: mean,
	}, nil
}

// foldSplit partitions a permutation into the fold'th validation block and
// the remaining training indices.
func foldSplit(perm []int, k, fold int) (train, val []int) {
	n := len(perm)
	lo := fold * n / k
	hi := (fold + 1) * n / k
	val = perm[lo:hi]
	train = append(append([]int(nil), perm[:lo]...), perm[hi:]...)
	return train, val
}

// subsetOf gathers dataset rows by index.
func subsetOf(d *datasets.Dataset, rows []int) *datasets.Dataset {
	cols := d.Features()
	x := tensor.New(len(rows), cols)
	y := make([]int, len(rows))
	sd, xd := d.X.Data(), x.Data()
	for i, r := range rows {
		copy(xd[i*cols:(i+1)*cols], sd[r*cols:(r+1)*cols])
		y[i] = d.Y[r]
	}
	return &datasets.Dataset{Name: d.Name + "/fold", X: x, Y: y, Classes: d.Classes, ImageShape: d.ImageShape}
}
