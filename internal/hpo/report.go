package hpo

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteReport renders a complete Markdown study report — the shareable
// artifact a researcher keeps from an HPO run: summary, leaderboard,
// accuracy curves, per-optimizer aggregates and failure list.
func WriteReport(w io.Writer, res *StudyResult) error {
	var b strings.Builder

	fmt.Fprintf(&b, "# HPO study report — %s search\n\n", res.Algorithm)
	fmt.Fprintf(&b, "- trials: %d (%d resumed from checkpoint)\n", len(res.Trials), res.Resumed)
	fmt.Fprintf(&b, "- wall time: %v\n", res.Duration.Round(time.Millisecond))
	if res.Stopped {
		fmt.Fprintf(&b, "- stopped early: target accuracy reached\n")
	}
	if res.Canceled {
		fmt.Fprintf(&b, "- canceled: %s\n", res.CancelReason)
	}
	if res.Pruned > 0 {
		fmt.Fprintf(&b, "- pruned: %d trials stopped mid-training\n", res.Pruned)
	}
	if res.Best != nil {
		fmt.Fprintf(&b, "- best: **%.4f** with `%s` (trial %d, %d epochs)\n",
			res.Best.BestAcc, res.Best.Config.Fingerprint(), res.Best.ID, res.Best.Epochs)
	}
	b.WriteString("\n## Leaderboard\n\n```\n")
	b.WriteString(RenderTable(res.Trials))
	b.WriteString("```\n\n## Accuracy curves\n\n```\n")
	b.WriteString(RenderCurves(res.Trials, 72, 16))
	b.WriteString("```\n")

	// Per-categorical-value aggregates for every string-valued parameter
	// (e.g. mean accuracy per optimizer) — the comparison Figures 7-8
	// invite the reader to make.
	aggregates := categoricalAggregates(res.Trials)
	if len(aggregates) > 0 {
		b.WriteString("\n## Parameter aggregates (mean best accuracy)\n\n")
		keys := make([]string, 0, len(aggregates))
		for k := range aggregates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, param := range keys {
			fmt.Fprintf(&b, "### %s\n\n", param)
			vals := aggregates[param]
			names := make([]string, 0, len(vals))
			for v := range vals {
				names = append(names, v)
			}
			sort.Strings(names)
			for _, v := range names {
				a := vals[v]
				fmt.Fprintf(&b, "- `%s`: %.4f over %d trials\n", v, a.sum/float64(a.n), a.n)
			}
			b.WriteString("\n")
		}
	}

	var failures []TrialResult
	for _, t := range res.Trials {
		if t.Err != "" && !t.Canceled {
			failures = append(failures, t)
		}
	}
	if len(failures) > 0 {
		b.WriteString("## Failures\n\n")
		for _, t := range failures {
			fmt.Fprintf(&b, "- trial %d `%s`: %s\n", t.ID, t.Config.Fingerprint(), t.Err)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

type agg struct {
	sum float64
	n   int
}

func categoricalAggregates(trials []TrialResult) map[string]map[string]agg {
	out := map[string]map[string]agg{}
	for _, t := range trials {
		if t.Err != "" {
			continue
		}
		for k, v := range t.Config {
			s, ok := v.(string)
			if !ok || strings.HasPrefix(k, "_") {
				continue
			}
			if out[k] == nil {
				out[k] = map[string]agg{}
			}
			a := out[k][s]
			a.sum += t.BestAcc
			a.n++
			out[k][s] = a
		}
	}
	return out
}
