package hpo

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
)

// SchedDecision is one rung verdict emitted by a TrialScheduler: Budget > 0
// promotes the trial to that epoch budget (the study extends its running
// task so it keeps training the same model); Budget == 0 halts it through
// the prune path. Epoch is the boundary the decision was made at.
type SchedDecision struct {
	TrialID int
	Budget  int
	Epoch   int
	Reason  string
}

// TrialScheduler drives rung-based successive halving over the live trial
// report stream: instead of re-submitting configs with larger budgets per
// bracket, trials are submitted once with a small initial budget, observed
// epoch by epoch, halted at rung boundaries when they lose, and promoted —
// continued past their initial budget on the same worker — when they win.
// Implementations must be safe for concurrent use: reports arrive from task
// goroutines and transport read loops at once.
type TrialScheduler interface {
	// Name identifies the scheduler ("hyperband-rung", "asha-promote").
	Name() string
	// MaxBudget is the epoch ceiling any trial may be promoted to; the
	// study stamps it into submitted configs (hidden "_hb_max" key) so the
	// executing task plans its loop for it.
	MaxBudget() int
	// Admit binds a submitted trial id to its config and initial epoch
	// budget before the first report can arrive.
	Admit(trialID, budget int, cfg Config)
	// Observe records trial's metric at epoch (0-based) and returns any
	// rung decisions that became ready.
	Observe(trialID, epoch int, value float64) []SchedDecision
	// Complete marks a trial terminal with its final result (nil when the
	// task produced none); exits can complete a rung, so decisions may be
	// returned here too.
	Complete(trialID int, res *TrialResult) []SchedDecision
}

// KnownScheduler reports whether name is a recognised trial-scheduler name
// (daemon flags validate at boot without building one).
func KnownScheduler(name string) bool {
	switch name {
	case "", "none", "hyperband", "asha":
		return true
	}
	return false
}

// Rung modes: how a rung-driven Hyperband settles its rung boundaries.
//
//	sync  — barrier rungs: every member of a rung must reach its boundary
//	        before any promotion/halt is decided. Bit-for-bit conformant
//	        with the batch Hyperband (same promotion sets), but requires
//	        the runtime to hold a whole bracket concurrently (MinSlots).
//	async — non-barrier (ASHA-style) rungs: each member is decided the
//	        moment it arrives at its boundary, ranked against the values
//	        recorded at that rung so far. Runs on any capacity — down to a
//	        single slot — and lets independent brackets execute in
//	        parallel, at the cost of slightly greedier early promotions.
const (
	RungSync  = "sync"
	RungAsync = "async"
)

// KnownRungMode reports whether mode is a recognised rung mode ("" means
// "use the default", currently sync).
func KnownRungMode(mode string) bool {
	switch mode {
	case "", RungSync, RungAsync:
		return true
	}
	return false
}

// NewTrialScheduler builds a rung-driven scheduler by name. "" and "none"
// mean no scheduler (all nils). "hyperband" returns a RungHyperband, which
// is both the study's sampler and its scheduler — algo must be "hyperband"
// (the batch sampler is replaced); budget is R and eta the halving factor;
// mode selects barrier ("sync", the default) or non-barrier ("async") rung
// decisions. "asha" returns a sampler-agnostic ASHA promotion scheduler
// (the returned sampler is nil: keep the configured one); minResource is
// the first rung and budget the promotion ceiling. ASHA is inherently
// asynchronous, so requesting mode "sync" for it is an error.
func NewTrialScheduler(name, algo string, space *Space, budget, eta, minResource int, seed uint64, mode string) (Sampler, TrialScheduler, error) {
	if !KnownRungMode(mode) {
		return nil, nil, fmt.Errorf("hpo: unknown rung mode %q (want sync or async)", mode)
	}
	switch name {
	case "", "none":
		if mode != "" {
			// An explicit rung mode with no scheduler to apply it to is a
			// misconfiguration (most likely a forgotten -scheduler flag),
			// not something to drop silently.
			return nil, nil, fmt.Errorf("hpo: rung mode %q needs an active rung scheduler (hyperband or asha), got %q", mode, name)
		}
		return nil, nil, nil
	case "hyperband":
		if algo != "" && algo != "hyperband" {
			return nil, nil, fmt.Errorf("hpo: scheduler %q replaces the sampler and requires algo hyperband, got %q", name, algo)
		}
		if mode == RungAsync {
			rh := NewRungHyperbandAsync(space, budget, eta, seed)
			return rh, rh, nil
		}
		rh := NewRungHyperband(space, budget, eta, seed)
		return rh, rh, nil
	case "asha":
		if mode == RungSync {
			return nil, nil, fmt.Errorf("hpo: scheduler %q has no synchronous mode (its decisions are per-arrival)", name)
		}
		return nil, NewASHAScheduler(eta, minResource, budget), nil
	default:
		return nil, nil, fmt.Errorf("hpo: unknown scheduler %q (want none, hyperband or asha)", name)
	}
}

// ---------------------------------------------------------------------------
// Rung-driven Hyperband
// ---------------------------------------------------------------------------

// RungHyperband is Hyperband rebuilt as a rung-driven scheduler: it samples
// the exact bracket structure of the batch Hyperband (same seed → same
// configs, same rung budgets, same promotion counts — a conformance test
// pins this), but each trial is submitted once with the bracket's first
// rung as its budget and the bracket's last rung as its ceiling. The
// scheduler watches the live epoch stream; when a rung's members have all
// reported their boundary epoch (or exited), it halts the losers through
// the prune path and promotes the top 1/eta to the next rung's budget via
// task extension — survivors keep training the same model, so every epoch
// below a rung is executed exactly once instead of once per rung.
//
// In the default synchronous mode rungs are barriers, so every member of a
// bracket must be able to run concurrently: Study.Run fails fast when the
// runtime has fewer task slots than the largest bracket (MinSlots), which
// would otherwise deadlock paused trials against queued ones. The
// asynchronous mode (NewRungHyperbandAsync) removes the barrier — members
// are decided per-arrival at their rung boundary, ASHA-style — so the same
// bracket structure runs on any capacity, down to a single slot, and
// independent brackets interleave on the runtime instead of draining
// sequentially.
type RungHyperband struct {
	space *Space
	// MaxR is the largest per-trial epoch budget (R).
	MaxR int
	// Eta is the halving factor.
	Eta int

	mu       sync.Mutex
	brackets []*rungBracket
	cur      int
	finished bool
	byKey    map[string]*rungMember
	byTrial  map[int]*rungMember

	// Async-mode state: members wait in a scheduler-side queue (the
	// waiting room) and are handed out by Ask as capacity frees up.
	async    bool
	parallel bool // brackets interleave instead of draining in order
	capacity int  // admission ceiling (0 = unbounded); see SetCapacity
	queue    []*rungMember
	released int // brackets whose members have entered the queue
	inFlight int // admitted members not yet exited
	exitedN  int
	total    int
}

// rungBracket is one successive-halving bracket driven through rungs.
type rungBracket struct {
	members []*rungMember
	// budgets holds each rung's epoch budget, ascending; built with exactly
	// the batch implementation's promotion rule, so the last entry is the
	// bracket's ceiling.
	budgets   []int
	handed    bool
	evaluated []bool // per non-final rung: decisions emitted? (sync mode)
	// arrivals records, per non-final rung, the values of members that
	// reached the rung boundary so far — the ranking pool for async
	// per-arrival decisions.
	arrivals [][]float64
}

// rungMember is one configuration's life across a bracket's rungs.
type rungMember struct {
	key     string
	cfg     Config
	bracket *rungBracket
	trialID int
	// rung indexes the member's current rung in budgets (advanced on
	// promotion — including for members that exited with a full result).
	rung int
	// best is the running maximum of observed epoch values (the same
	// quantity the batch sampler ranks: BestAcc); hasValue guards the first
	// observation. Members that exit without a usable value rank as -1,
	// exactly like failed trials in the batch implementation.
	best     float64
	hasValue bool
	// observed[k] reports the member reported its boundary epoch of rung k.
	observed []bool
	// decided[k] reports an async per-arrival decision was already taken at
	// rung k — the guard that makes a restarted attempt's re-reported
	// boundary epoch a no-op instead of a double promotion.
	decided []bool
	exited  bool
	halted  bool
}

// NewRungHyperband builds the rung-driven sampler/scheduler. The bracket
// structure (and the RNG consumption order) is identical to NewHyperband's,
// so identical seeds propose identical configurations.
func NewRungHyperband(space *Space, maxBudget, eta int, seed uint64) *RungHyperband {
	if maxBudget < 1 {
		maxBudget = 27
	}
	if eta < 2 {
		eta = 3
	}
	h := &RungHyperband{
		space: space, MaxR: maxBudget, Eta: eta,
		byKey:   make(map[string]*rungMember),
		byTrial: make(map[int]*rungMember),
	}
	rng := tensor.NewRNG(seed)
	sMax := int(math.Floor(math.Log(float64(maxBudget)) / math.Log(float64(eta))))
	nextID := 0
	for s := sMax; s >= 0; s-- {
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(float64(eta), float64(s))))
		budget := maxBudget / intPow(eta, s)
		if budget < 1 {
			budget = 1
		}
		b := &rungBracket{budgets: []int{budget}}
		// Mirror the batch promotion rule to precompute the rung ladder:
		// keep the top 1/eta with eta× budget while both survive the caps.
		// baseline accumulates the epochs the batch implementation would
		// execute for this ladder (every rung re-trained from scratch) —
		// the comparison point for hpo_study_epochs_total.
		baseline := n * budget
		for alive, bud := n, budget; ; {
			keep, next := alive/eta, bud*eta
			if keep < 1 || next > maxBudget {
				break
			}
			b.budgets = append(b.budgets, next)
			baseline += keep * next
			alive, bud = keep, next
		}
		obsBaselineEpochs.Add(uint64(baseline))
		b.evaluated = make([]bool, len(b.budgets))
		b.arrivals = make([][]float64, len(b.budgets))
		for i := 0; i < n; i++ {
			cfg := space.Sample(rng)
			key := fmt.Sprintf("b%d-%d", s, nextID)
			nextID++
			cfg["_hb"] = key
			m := &rungMember{key: key, cfg: cfg, bracket: b, trialID: -1,
				observed: make([]bool, len(b.budgets)),
				decided:  make([]bool, len(b.budgets))}
			b.members = append(b.members, m)
			h.byKey[key] = m
			h.total++
		}
		h.brackets = append(h.brackets, b)
	}
	return h
}

// NewRungHyperbandAsync builds the same bracket structure (identical seeds
// propose identical configurations) in asynchronous, non-barrier mode:
// members are admitted from a waiting-room queue as capacity frees up,
// promotion decisions are taken per-arrival at rung boundaries (ASHA's
// rule, Li et al., Massively Parallel Hyperparameter Tuning), and
// independent brackets execute in parallel. Async mode needs no minimum
// concurrency — it runs correctly on a single task slot.
func NewRungHyperbandAsync(space *Space, maxBudget, eta int, seed uint64) *RungHyperband {
	h := NewRungHyperband(space, maxBudget, eta, seed)
	h.async = true
	h.parallel = true
	return h
}

// Async reports whether the scheduler runs non-barrier rungs.
func (h *RungHyperband) Async() bool { return h.async }

// AsyncRungs implements the capacity probe Study.Run uses to decide whether
// the MinSlots fail-fast applies: async rungs never deadlock on capacity.
func (h *RungHyperband) AsyncRungs() bool { return h.async }

// SetBracketParallel toggles per-bracket parallel execution in async mode
// (on by default): when off, a bracket's members only enter the waiting
// room once every earlier bracket has fully exited — the sequential drain
// the synchronous mode is restricted to. No-op in sync mode.
func (h *RungHyperband) SetBracketParallel(on bool) {
	h.mu.Lock()
	h.parallel = on
	h.mu.Unlock()
}

// SetCapacity tells the async waiting room how many members may be in
// flight at once — the runtime's Slots for the study's constraint.
// Ask then admits members only as slots free up instead of flooding the
// runtime queue. Zero means unbounded (admit everything on request).
// No-op in sync mode, where Ask must hand out whole brackets.
func (h *RungHyperband) SetCapacity(slots int) {
	h.mu.Lock()
	h.capacity = slots
	h.mu.Unlock()
}

// Name implements Sampler and TrialScheduler.
func (h *RungHyperband) Name() string { return "hyperband-rung" }

// MaxBudget implements TrialScheduler. (Ask stamps per-bracket ceilings
// itself; this is the global R.)
func (h *RungHyperband) MaxBudget() int { return h.MaxR }

// MinSlots returns the largest bracket's size: the concurrency a runtime
// must provide so a whole rung can reach its boundary together.
func (h *RungHyperband) MinSlots() int {
	slots := 0
	for _, b := range h.brackets {
		if len(b.members) > slots {
			slots = len(b.members)
		}
	}
	return slots
}

// RungMemberInfo describes one bracket member of a RungHyperband for
// offline consumers (internal/replay): its hidden binding key, its
// submission config (clone; carries "_hb", num_epochs and "_hb_max") and
// its bracket's full rung budget ladder.
type RungMemberInfo struct {
	Key     string
	Config  Config
	Budgets []int
}

// Members lists every bracket member in the canonical global order — the
// order the sync mode submits brackets and the async waiting room releases
// them. Identical seeds build identical member lists, which is what lets a
// replay engine rebind journal trial ids to bracket members.
func (h *RungHyperband) Members() []RungMemberInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]RungMemberInfo, 0, h.total)
	for _, b := range h.brackets {
		for _, m := range b.members {
			out = append(out, RungMemberInfo{
				Key:     m.key,
				Config:  memberConfig(m, b),
				Budgets: append([]int(nil), b.budgets...),
			})
		}
	}
	return out
}

// Done implements Sampler.
func (h *RungHyperband) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.finished
}

// Ask implements Sampler. In synchronous mode it hands out the current
// bracket in full — every member carries the first rung's budget as
// num_epochs and the bracket's ceiling as the hidden "_hb_max" — and
// returns empty while the bracket is in flight; the batch cap is
// deliberately ignored, because a partially submitted bracket could never
// complete a rung. In asynchronous mode it pops members from the waiting
// room instead, honouring both the batch cap and the admission capacity
// (SetCapacity), since per-arrival decisions never wait on unadmitted
// members.
func (h *RungHyperband) Ask(n int) []Config {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.async {
		return h.askAsyncLocked(n)
	}
	if h.finished || h.cur >= len(h.brackets) {
		h.finished = true
		return nil
	}
	b := h.brackets[h.cur]
	if b.handed {
		return nil
	}
	b.handed = true
	out := make([]Config, 0, len(b.members))
	for _, m := range b.members {
		out = append(out, memberConfig(m, b))
	}
	return out
}

// memberConfig renders a member's submission config: the first rung as its
// budget and the bracket ceiling as the hidden promotion bound.
func memberConfig(m *rungMember, b *rungBracket) Config {
	cfg := m.cfg.Clone()
	cfg["num_epochs"] = b.budgets[0]
	if last := b.budgets[len(b.budgets)-1]; last > b.budgets[0] {
		cfg["_hb_max"] = last
	}
	return cfg
}

// askAsyncLocked serves the waiting room: release brackets into the queue
// (all at once when brackets run in parallel, in drain order otherwise),
// then admit at most min(batch cap, free capacity) members. Callers hold
// h.mu.
func (h *RungHyperband) askAsyncLocked(n int) []Config {
	h.releaseLocked()
	take := len(h.queue)
	if h.capacity > 0 {
		if free := h.capacity - h.inFlight; free < take {
			take = free
		}
	}
	if n > 0 && n < take {
		take = n
	}
	if take <= 0 {
		h.checkFinishedLocked()
		return nil
	}
	out := make([]Config, 0, take)
	for _, m := range h.queue[:take] {
		out = append(out, memberConfig(m, m.bracket))
	}
	h.queue = append([]*rungMember(nil), h.queue[take:]...)
	obsWaitingRoom.Set(float64(len(h.queue)))
	return out
}

// releaseLocked tops up the waiting room. Parallel mode releases every
// bracket immediately; sequential mode releases bracket i only once all
// members of brackets < i have exited. Callers hold h.mu.
func (h *RungHyperband) releaseLocked() {
	for h.released < len(h.brackets) {
		if !h.parallel && h.released > 0 && !h.bracketExitedLocked(h.brackets[h.released-1]) {
			return
		}
		b := h.brackets[h.released]
		b.handed = true
		h.queue = append(h.queue, b.members...)
		h.released++
		obsWaitingRoom.Set(float64(len(h.queue)))
	}
}

// bracketExitedLocked reports every member of b is terminal.
func (h *RungHyperband) bracketExitedLocked(b *rungBracket) bool {
	for _, m := range b.members {
		if !m.exited {
			return false
		}
	}
	return true
}

// checkFinishedLocked marks the async run done once every member exited and
// nothing waits for admission. Callers hold h.mu.
func (h *RungHyperband) checkFinishedLocked() {
	if h.exitedN == h.total && len(h.queue) == 0 && h.released == len(h.brackets) {
		h.finished = true
	}
}

// Tell implements Sampler: a no-op — the scheduler half already learned
// every outcome through Complete.
func (h *RungHyperband) Tell([]TrialResult) {}

// Admit implements TrialScheduler: the hidden "_hb" key binds the trial to
// its bracket member.
func (h *RungHyperband) Admit(trialID, budget int, cfg Config) {
	key, _ := cfg["_hb"].(string)
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.byKey[key]; m != nil {
		m.trialID = trialID
		h.byTrial[trialID] = m
		h.inFlight++
	}
}

// Observe implements TrialScheduler.
func (h *RungHyperband) Observe(trialID, epoch int, value float64) []SchedDecision {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.byTrial[trialID]
	if m == nil || m.exited {
		return nil
	}
	if !m.hasValue || value > m.best {
		m.best, m.hasValue = value, true
	}
	if h.async {
		return h.observeAsyncLocked(m, epoch)
	}
	b := m.bracket
	// A restarted attempt re-reports earlier epochs; only the member's
	// current rung boundary matters.
	if m.rung < len(b.budgets) && epoch+1 == b.budgets[m.rung] {
		m.observed[m.rung] = true
	}
	return h.evaluateLocked()
}

// observeAsyncLocked is the per-arrival (non-barrier) decision: a member
// reaching its current rung boundary is ranked against every value
// recorded at that rung so far and immediately promoted (top 1/eta) or
// halted — no waiting for the rest of the rung. decided[k] makes the rule
// idempotent per rung: a worker-death restart re-reports its boundary
// epoch, and the duplicate arrival must not rank (or promote) twice.
// Callers hold h.mu.
func (h *RungHyperband) observeAsyncLocked(m *rungMember, epoch int) []SchedDecision {
	b := m.bracket
	k := m.rung
	if m.halted || k+1 >= len(b.budgets) || epoch+1 != b.budgets[k] || m.decided[k] {
		return nil
	}
	if promoted, rank, n := h.arriveLocked(m, k); promoted {
		return []SchedDecision{{
			TrialID: m.trialID, Budget: b.budgets[k+1], Epoch: epoch,
			Reason: ReasonRungAsyncPromote(rank, n, k, b.budgets[k], b.budgets[k+1]),
		}}
	} else {
		return []SchedDecision{{
			TrialID: m.trialID, Budget: 0, Epoch: epoch,
			Reason: ReasonRungAsyncHalt(rank, n, k, b.budgets[k], m.rankValue()),
		}}
	}
}

// arriveLocked records m's arrival at rung k and applies the pure
// per-arrival rule (DecideRungArrival — the ASHA keep rule, ties ranking
// behind earlier arrivals so a plateaued objective cannot promote every
// arrival). It advances or halts the member and returns the verdict with
// its rank context. Callers hold h.mu.
func (h *RungHyperband) arriveLocked(m *rungMember, k int) (promoted bool, rank, n int) {
	b := m.bracket
	m.decided[k] = true
	value := m.rankValue()
	v := DecideRungArrival(b.arrivals[k], value, h.Eta)
	b.arrivals[k] = append(b.arrivals[k], value)
	if v.Promote {
		m.rung = k + 1
		return true, v.Rank, v.N
	}
	m.halted = true
	return false, v.Rank, v.N
}

// Complete implements TrialScheduler.
func (h *RungHyperband) Complete(trialID int, res *TrialResult) []SchedDecision {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.byTrial[trialID]
	if m == nil || m.exited {
		return nil
	}
	m.exited = true
	if res != nil && res.Succeeded() {
		if !m.hasValue || res.BestAcc > m.best {
			m.best, m.hasValue = res.BestAcc, true
		}
	}
	if h.async {
		h.completeAsyncLocked(m, res)
		return nil
	}
	return h.evaluateLocked()
}

// completeAsyncLocked retires a member from the waiting-room accounting
// and, for members that exited with a full result without streaming
// (checkpoint resumes, memo hits), replays their arrivals through the
// rungs their recorded epochs actually reached — anchoring the ranking
// pools so later live arrivals rank against resumed values, without
// emitting decisions for a trial that is already terminal. Callers hold
// h.mu.
func (h *RungHyperband) completeAsyncLocked(m *rungMember, res *TrialResult) {
	h.exitedN++
	if h.inFlight > 0 {
		h.inFlight--
	}
	if res != nil && res.Succeeded() && !m.halted {
		b := m.bracket
		for k := m.rung; k+1 < len(b.budgets) && !m.decided[k] && res.Epochs >= b.budgets[k]; k++ {
			if promoted, _, _ := h.arriveLocked(m, k); !promoted {
				break
			}
		}
	}
	h.releaseLocked()
	h.checkFinishedLocked()
}

// evaluateLocked settles every rung that became decidable and advances the
// bracket cursor past fully exited brackets. Callers hold h.mu.
func (h *RungHyperband) evaluateLocked() []SchedDecision {
	var out []SchedDecision
	for h.cur < len(h.brackets) {
		b := h.brackets[h.cur]
		if !b.handed {
			break
		}
		out = append(out, h.evaluateBracketLocked(b)...)
		done := true
		for _, m := range b.members {
			if !m.exited {
				done = false
				break
			}
		}
		if !done {
			break
		}
		h.cur++
	}
	if h.cur >= len(h.brackets) {
		h.finished = true
	}
	return out
}

// evaluateBracketLocked emits decisions for each rung whose members have
// all reached the boundary or exited, cascading so resume-time exits can
// settle several rungs at once. Callers hold h.mu.
func (h *RungHyperband) evaluateBracketLocked(b *rungBracket) []SchedDecision {
	var out []SchedDecision
	for k := 0; k+1 < len(b.budgets); k++ {
		if b.evaluated[k] {
			continue
		}
		var alive []*rungMember
		ready := true
		for _, m := range b.members {
			if m.rung != k || m.halted {
				continue
			}
			alive = append(alive, m)
			if !m.exited && !m.observed[k] {
				ready = false
			}
		}
		if !ready || len(alive) == 0 {
			break
		}
		b.evaluated[k] = true
		// Rank through the pure barrier rule (RankSyncRung): value desc,
		// key asc — exactly like the batch sampler; members without a
		// usable value (failed/canceled before the boundary) lose with -1.
		contenders := make([]RungContender, len(alive))
		for i, m := range alive {
			contenders[i] = RungContender{Key: m.key, Value: m.rankValue()}
		}
		order, keep := RankSyncRung(contenders, h.Eta)
		next := b.budgets[k+1]
		for i, idx := range order {
			m := alive[idx]
			switch {
			case i < keep:
				m.rung = k + 1
				if !m.exited {
					out = append(out, SchedDecision{
						TrialID: m.trialID, Budget: next, Epoch: b.budgets[k] - 1,
						Reason: ReasonRungSyncPromote(k, b.budgets[k], next),
					})
				}
			case m.exited:
				m.halted = true
			default:
				m.halted = true
				out = append(out, SchedDecision{
					TrialID: m.trialID, Budget: 0, Epoch: b.budgets[k] - 1,
					Reason: ReasonRungSyncHalt(k, b.budgets[k], m.rankValue()),
				})
			}
		}
	}
	return out
}

// rankValue is the member's ranking key: its best observed (or final)
// value, or -1 when it never produced one — the batch rule for failures.
func (m *rungMember) rankValue() float64 {
	if !m.hasValue {
		return -1
	}
	return m.best
}

// ---------------------------------------------------------------------------
// ASHA with promotion
// ---------------------------------------------------------------------------

// ASHAScheduler is the Asynchronous Successive Halving rule upgraded from
// prune-only (the ASHA Pruner) to promote-capable: trials start at their
// configured num_epochs budget; when one reaches its budget boundary it is
// ranked against every value recorded at that rung so far — the top 1/Eta
// continue to an eta× budget (capped at MaxB) on the same worker, the rest
// halt. Decisions are per-arrival, never waiting for a rung to fill, which
// is what lets remote trials stream at their own pace.
type ASHAScheduler struct {
	// Eta is the halving factor (default 3).
	Eta int
	// MinResource anchors the rung ladder (default 1).
	MinResource int
	// MaxB is the promotion ceiling in epochs.
	MaxB int

	mu      sync.Mutex
	budgets map[int]int             // trialID → granted epoch budget
	rungs   map[int]map[int]float64 // rung index → trialID → value at arrival
	exited  map[int]bool
}

// NewASHAScheduler builds the promotion rule; zero eta/minResource select
// the defaults, maxBudget must be the study's epoch ceiling.
func NewASHAScheduler(eta, minResource, maxBudget int) *ASHAScheduler {
	if eta < 2 {
		eta = 3
	}
	if minResource < 1 {
		minResource = 1
	}
	if maxBudget < 1 {
		maxBudget = 27
	}
	return &ASHAScheduler{
		Eta: eta, MinResource: minResource, MaxB: maxBudget,
		budgets: make(map[int]int),
		rungs:   make(map[int]map[int]float64),
		exited:  make(map[int]bool),
	}
}

// Name implements TrialScheduler.
func (a *ASHAScheduler) Name() string { return "asha-promote" }

// MaxBudget implements TrialScheduler.
func (a *ASHAScheduler) MaxBudget() int { return a.MaxB }

// AsyncRungs reports that ASHA's decisions are always per-arrival: the
// scheduler never barriers a rung, so it has no minimum-capacity need.
func (a *ASHAScheduler) AsyncRungs() bool { return true }

// Admit implements TrialScheduler.
func (a *ASHAScheduler) Admit(trialID, budget int, cfg Config) {
	if budget < 1 {
		budget = a.MinResource
	}
	a.mu.Lock()
	a.budgets[trialID] = budget
	a.mu.Unlock()
}

// rungIndex maps a budget onto the ladder: the highest k with
// MinResource·Eta^k ≤ budget.
func (a *ASHAScheduler) rungIndex(budget int) int {
	k, r := 0, a.MinResource
	for r*a.Eta <= budget {
		r *= a.Eta
		k++
	}
	return k
}

// Observe implements TrialScheduler: decisions fire exactly when a trial
// reaches its current budget boundary below the ceiling.
func (a *ASHAScheduler) Observe(trialID, epoch int, value float64) []SchedDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.exited[trialID] {
		return nil
	}
	budget, ok := a.budgets[trialID]
	if !ok || epoch+1 != budget || budget >= a.MaxB {
		return nil
	}
	k := a.rungIndex(budget)
	rung := a.rungs[k]
	if rung == nil {
		rung = make(map[int]float64)
		a.rungs[k] = rung
	}
	// Rank against the incumbents through the pure per-arrival rule (ties
	// rank behind earlier arrivals, like RungHyperband's async rule), then
	// record this arrival in the pool.
	pool := make([]float64, 0, len(rung))
	//lint:ignore replaydet guarded collect of incumbent scores; DecideRungArrival ranks by counting, which is order-insensitive
	for id, v := range rung {
		if id != trialID {
			pool = append(pool, v)
		}
	}
	rung[trialID] = value
	verdict := DecideRungArrival(pool, value, a.Eta)
	if !verdict.Promote {
		return []SchedDecision{{
			TrialID: trialID, Budget: 0, Epoch: epoch,
			Reason: ReasonASHAHalt(verdict.Rank, verdict.N, k, budget, value),
		}}
	}
	next := budget * a.Eta
	if next > a.MaxB {
		next = a.MaxB
	}
	a.budgets[trialID] = next
	return []SchedDecision{{
		TrialID: trialID, Budget: next, Epoch: epoch,
		Reason: ReasonASHAPromote(verdict.Rank, verdict.N, k, budget, next),
	}}
}

// Complete implements TrialScheduler: rung entries persist as ranking
// anchors, like the prune-only ASHA.
func (a *ASHAScheduler) Complete(trialID int, res *TrialResult) []SchedDecision {
	a.mu.Lock()
	a.exited[trialID] = true
	a.mu.Unlock()
	return nil
}
