package hpo

import (
	"testing"
	"testing/quick"

	"repro/internal/datasets"
	"repro/internal/tensor"
)

func TestCVObjectiveRuns(t *testing.T) {
	obj := &CVObjective{Dataset: datasets.MNISTLike(150, 13), Folds: 3, Hidden: []int{8}}
	var reported int
	m, err := obj.Run(ObjectiveContext{
		Config: Config{"optimizer": "Adam", "num_epochs": 2, "batch_size": 25},
		Seed:   13,
		Report: func(epoch int, acc float64) { reported++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs != 2 || len(m.ValAccHistory) != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.BestAcc <= 0.2 {
		t.Fatalf("CV accuracy = %v", m.BestAcc)
	}
	if reported != 2 {
		t.Fatalf("reported %d mean epochs", reported)
	}
	if obj.Name() != "cv3/mnist-like" {
		t.Fatalf("name = %q", obj.Name())
	}
}

func TestCVObjectiveDefaultsAndErrors(t *testing.T) {
	obj := &CVObjective{Dataset: datasets.MNISTLike(20, 1)}
	if obj.folds() != 5 {
		t.Fatalf("default folds = %d", obj.folds())
	}
	if _, err := obj.Run(ObjectiveContext{Config: Config{"num_epochs": 0, "batch_size": 8}}); err == nil {
		t.Fatal("expected invalid-config error")
	}
	small := &CVObjective{Dataset: datasets.MNISTLike(3, 1), Folds: 5}
	if _, err := small.Run(ObjectiveContext{Config: Config{"num_epochs": 1, "batch_size": 1}}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	bad := &CVObjective{Dataset: datasets.MNISTLike(50, 1), Folds: 2}
	if _, err := bad.Run(ObjectiveContext{Config: Config{"optimizer": "Adagrad", "num_epochs": 1, "batch_size": 8}}); err == nil {
		t.Fatal("expected unknown-optimizer error")
	}
}

func TestCVLessNoisyThanSingleSplit(t *testing.T) {
	// Variance of the CV estimate across seeds should not exceed the
	// single-split estimate's variance (the point of cross-validation).
	ds := datasets.MNISTLike(200, 30)
	cfg := Config{"optimizer": "SGD", "num_epochs": 2, "batch_size": 20}
	variance := func(obj Objective) float64 {
		var accs []float64
		for seed := uint64(0); seed < 4; seed++ {
			m, err := obj.Run(ObjectiveContext{Config: cfg, Seed: seed*7 + 1})
			if err != nil {
				t.Fatal(err)
			}
			accs = append(accs, m.FinalAcc)
		}
		mean := 0.0
		for _, a := range accs {
			mean += a
		}
		mean /= float64(len(accs))
		v := 0.0
		for _, a := range accs {
			v += (a - mean) * (a - mean)
		}
		return v / float64(len(accs))
	}
	vCV := variance(&CVObjective{Dataset: ds, Folds: 4, Hidden: []int{8}})
	vSingle := variance(&MLObjective{Dataset: ds, Hidden: []int{8}, TrainFrac: 0.75})
	if vCV > vSingle*2 {
		t.Fatalf("CV variance %v much larger than single-split %v", vCV, vSingle)
	}
}

// Property: fold splits partition the index set exactly — no loss, no
// duplication, correct validation block sizes.
func TestFoldSplitPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(90)
		k := 2 + rng.Intn(5)
		perm := rng.Perm(n)
		seen := make([]int, n)
		totalVal := 0
		for fold := 0; fold < k; fold++ {
			train, val := foldSplit(perm, k, fold)
			if len(train)+len(val) != n {
				return false
			}
			totalVal += len(val)
			for _, v := range val {
				seen[v]++
			}
			// train and val are disjoint.
			inVal := map[int]bool{}
			for _, v := range val {
				inVal[v] = true
			}
			for _, tr := range train {
				if inVal[tr] {
					return false
				}
			}
		}
		if totalVal != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false // every sample validates exactly once
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
