package hpo

import (
	"errors"
	"fmt"
)

// Admission-control sentinels. The runner's waiting room (AdmissionQueue)
// returns these, and the HTTP layer maps them onto status codes — check
// with errors.Is, never by string.
var (
	// ErrQuotaExceeded reports a reservation denied because the tenant is
	// at one of its configured quotas (concurrent studies, total epoch
	// budget, event-stream fan-out). The request is well-formed and will
	// succeed once the tenant's usage drops: HTTP 429 with Retry-After.
	ErrQuotaExceeded = errors.New("hpo: tenant quota exceeded")
	// ErrBackpressure reports that the shared waiting room is full — the
	// daemon cannot keep up with admission demand across all tenants. The
	// caller should back off and retry: HTTP 503 with Retry-After.
	ErrBackpressure = errors.New("hpo: admission queue full")
	// ErrBackpressureTimeout reports a blocking reservation (ReserveWait)
	// that waited its full deadline for waiting-room space and never got
	// it: HTTP 503. Distinct from ErrBackpressure so callers can tell an
	// immediate rejection from an exhausted wait.
	ErrBackpressureTimeout = errors.New("hpo: admission wait timed out under backpressure")
	// ErrAdmissionAborted reports a waiting reservation withdrawn before
	// its grant (study canceled, queue shut down). The study's journaled
	// state — not this error — decides what happens next.
	ErrAdmissionAborted = errors.New("hpo: admission reservation aborted")
)

// QuotaError is the detail-carrying form of ErrQuotaExceeded: which tenant
// hit which quota, and where usage stood. errors.Is(err, ErrQuotaExceeded)
// matches through Unwrap, so callers can switch on the sentinel and still
// render the specifics.
type QuotaError struct {
	Tenant   string // tenant id (never the bearer token)
	Resource string // "concurrent_studies" | "total_epochs" | "event_subscribers"
	Used     int
	Limit    int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("%v: tenant %q at %d/%d %s", ErrQuotaExceeded, e.Tenant, e.Used, e.Limit, e.Resource)
}

func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }
