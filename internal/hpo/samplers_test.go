package hpo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGridCoversFullCrossProductExactlyOnce(t *testing.T) {
	s := paperSpace(t)
	g := NewGridSearch(s)
	cfgs := g.Ask(0) // 0 = no limit
	if len(cfgs) != 27 {
		t.Fatalf("grid produced %d configs, want 27", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		fp := c.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate config %s", fp)
		}
		seen[fp] = true
	}
	if !g.Done() {
		t.Fatal("grid should be done")
	}
	if extra := g.Ask(10); len(extra) != 0 {
		t.Fatalf("exhausted grid still produced %d configs", len(extra))
	}
}

func TestGridBatchedAskIsComplete(t *testing.T) {
	s := paperSpace(t)
	g := NewGridSearch(s)
	seen := map[string]bool{}
	for {
		batch := g.Ask(4)
		if len(batch) == 0 {
			break
		}
		if len(batch) > 4 {
			t.Fatalf("batch of %d exceeds cap", len(batch))
		}
		for _, c := range batch {
			seen[c.Fingerprint()] = true
		}
	}
	if len(seen) != 27 {
		t.Fatalf("batched grid covered %d/27 configs", len(seen))
	}
}

// Property: grid cardinality equals the product of axis sizes for random
// spaces, with no duplicates.
func TestGridCardinalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		dims := 1 + rng.Intn(3)
		space := &Space{}
		want := 1
		for d := 0; d < dims; d++ {
			k := 1 + rng.Intn(4)
			vals := make([]interface{}, k)
			for i := range vals {
				vals[i] = rng.Intn(1000)
			}
			// Values may repeat across positions; dedupe to keep the
			// fingerprint-based uniqueness check meaningful.
			uniq := map[interface{}]bool{}
			var dedup []interface{}
			for _, v := range vals {
				if !uniq[v] {
					uniq[v] = true
					dedup = append(dedup, v)
				}
			}
			space.Params = append(space.Params, Categorical{Key: string(rune('a' + d)), Values: dedup})
			want *= len(dedup)
		}
		cfgs := NewGridSearch(space).Ask(0)
		if len(cfgs) != want {
			return false
		}
		seen := map[string]bool{}
		for _, c := range cfgs {
			fp := c.Fingerprint()
			if seen[fp] {
				return false
			}
			seen[fp] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSearchBudgetAndRanges(t *testing.T) {
	s := paperSpace(t)
	r := NewRandomSearch(s, 10, 42)
	cfgs := r.Ask(0)
	if len(cfgs) != 10 {
		t.Fatalf("random produced %d, want 10", len(cfgs))
	}
	if !r.Done() {
		t.Fatal("random should be done after budget")
	}
	for _, c := range cfgs {
		if e := c.Int("num_epochs", -1); e != 20 && e != 50 && e != 100 {
			t.Fatalf("epochs %d out of space", e)
		}
	}
}

func TestRandomSearchDeterministicPerSeed(t *testing.T) {
	s := paperSpace(t)
	a := NewRandomSearch(s, 5, 7).Ask(0)
	b := NewRandomSearch(s, 5, 7).Ask(0)
	for i := range a {
		if a[i].Fingerprint() != b[i].Fingerprint() {
			t.Fatal("same seed should reproduce samples")
		}
	}
	c := NewRandomSearch(s, 5, 8).Ask(0)
	same := 0
	for i := range a {
		if a[i].Fingerprint() == c[i].Fingerprint() {
			same++
		}
	}
	if same == 5 {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestRandomSearchAvoidsDuplicates(t *testing.T) {
	// Space with 27 combos, ask for 20: dedup should give mostly distinct.
	s := paperSpace(t)
	cfgs := NewRandomSearch(s, 20, 3).Ask(0)
	seen := map[string]bool{}
	for _, c := range cfgs {
		seen[c.Fingerprint()] = true
	}
	if len(seen) < 15 {
		t.Fatalf("only %d/20 distinct configs", len(seen))
	}
}

func TestNewSamplerByName(t *testing.T) {
	s := paperSpace(t)
	for _, name := range []string{"grid", "random", "bayes", "tpe", "hyperband"} {
		sm, err := NewSampler(name, s, 10, 1)
		if err != nil {
			t.Fatalf("NewSampler(%s): %v", name, err)
		}
		if sm.Name() != name {
			t.Fatalf("name = %q", sm.Name())
		}
	}
	if _, err := NewSampler("simulated-annealing", s, 10, 1); err == nil {
		t.Fatal("expected error for unknown sampler")
	}
}

// quadratic objective over encoded space: peak accuracy at x=0.7 per dim.
func quadTrial(s *Space, cfg Config, id int) TrialResult {
	x := s.Encode(cfg)
	acc := 1.0
	for _, xi := range x {
		acc -= (xi - 0.7) * (xi - 0.7)
	}
	return TrialResult{ID: id, Config: cfg, TrialMetrics: TrialMetrics{BestAcc: acc, FinalAcc: acc}}
}

func runSamplerOnQuadratic(t *testing.T, sm Sampler, s *Space, rounds, batch int) float64 {
	t.Helper()
	best := math.Inf(-1)
	id := 0
	for r := 0; r < rounds; r++ {
		cfgs := sm.Ask(batch)
		if len(cfgs) == 0 {
			break
		}
		var results []TrialResult
		for _, c := range cfgs {
			tr := quadTrial(s, c, id)
			id++
			if tr.BestAcc > best {
				best = tr.BestAcc
			}
			results = append(results, tr)
		}
		sm.Tell(results)
	}
	return best
}

func TestBayesOptImprovesOverWarmup(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{
	  "x": {"type": "float", "min": 0, "max": 1},
	  "y": {"type": "float", "min": 0, "max": 1}
	}`))
	b := NewBayesOpt(s, 40, 11)
	best := runSamplerOnQuadratic(t, b, s, 40, 1)
	if best < 0.98 {
		t.Fatalf("bayes best = %v, want > 0.98 on smooth quadratic", best)
	}
	if !b.Done() {
		t.Fatal("budget should be exhausted")
	}
}

func TestBayesBeatsRandomOnAverage(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{
	  "x": {"type": "float", "min": 0, "max": 1},
	  "y": {"type": "float", "min": 0, "max": 1}
	}`))
	var bayesSum, randSum float64
	const reps = 3
	for rep := 0; rep < reps; rep++ {
		seed := uint64(100 + rep)
		bayesSum += runSamplerOnQuadratic(t, NewBayesOpt(s, 25, seed), s, 25, 1)
		randSum += runSamplerOnQuadratic(t, NewRandomSearch(s, 25, seed), s, 1, 25)
	}
	if bayesSum < randSum-0.05*reps {
		t.Fatalf("bayes (%v) clearly worse than random (%v)", bayesSum/reps, randSum/reps)
	}
}

func TestTPEImproves(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{
	  "x": {"type": "float", "min": 0, "max": 1},
	  "y": {"type": "float", "min": 0, "max": 1}
	}`))
	tp := NewTPE(s, 40, 13)
	best := runSamplerOnQuadratic(t, tp, s, 40, 1)
	if best < 0.95 {
		t.Fatalf("tpe best = %v, want > 0.95", best)
	}
}

func TestSamplersIgnoreFailedTrials(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{"x": {"type": "float", "min": 0, "max": 1}}`))
	for _, sm := range []Sampler{NewBayesOpt(s, 10, 1), NewTPE(s, 10, 1)} {
		sm.Tell([]TrialResult{{Config: Config{"x": 0.5}, Err: "exploded"}})
		// Must not panic on next Ask, and must still work from warmup.
		if got := sm.Ask(1); len(got) != 1 {
			t.Fatalf("%s Ask after failed Tell = %d configs", sm.Name(), len(got))
		}
	}
}

func TestGPPredictionSanity(t *testing.T) {
	// GP posterior at an observed point should be close to the observation
	// with near-zero variance.
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	ys := []float64{1.0, 2.0, 1.5}
	g := newGP(xs, ys, 0.25, 1e-6)
	mu, sigma := g.predict([]float64{0.5})
	if math.Abs(mu-2.0) > 0.05 {
		t.Fatalf("posterior mean at observation = %v, want ≈2", mu)
	}
	if sigma > 0.1 {
		t.Fatalf("posterior sigma at observation = %v, want ≈0", sigma)
	}
	// Far from data the variance must grow.
	_, farSigma := g.predict([]float64{5.0})
	if farSigma < 0.5 {
		t.Fatalf("far-field sigma = %v, want near prior (1)", farSigma)
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	// Solve A x = b for A = I (plus tiny noise): x == b.
	a := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	l := cholesky(a)
	b := []float64{3, -1, 2}
	x := choleskySolve(l, b)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-9 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// Zero variance → zero EI.
	if ei := expectedImprovement(1.0, 0, 0.5, 0.01); ei != 0 {
		t.Fatalf("EI with sigma=0 = %v", ei)
	}
	// Higher mean → higher EI at equal sigma.
	lo := expectedImprovement(0.4, 0.1, 0.5, 0.01)
	hi := expectedImprovement(0.7, 0.1, 0.5, 0.01)
	if hi <= lo {
		t.Fatalf("EI not monotone in mean: %v vs %v", lo, hi)
	}
	// EI is non-negative.
	if lo < 0 {
		t.Fatalf("negative EI %v", lo)
	}
}

func TestHyperbandBracketsAndPromotion(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{"x": {"type": "float", "min": 0, "max": 1}}`))
	h := NewHyperband(s, 9, 3, 5)
	id := 0
	totalByBudget := map[int]int{}
	for !h.Done() {
		cfgs := h.Ask(0)
		if len(cfgs) == 0 {
			if h.Done() {
				break
			}
			t.Fatal("hyperband stalled")
		}
		var results []TrialResult
		for _, c := range cfgs {
			budget := c.Int("num_epochs", -1)
			if budget <= 0 || budget > 9 {
				t.Fatalf("budget %d out of range", budget)
			}
			totalByBudget[budget]++
			// Accuracy proportional to x: survivor set is predictable.
			acc := c.Float("x", 0)
			results = append(results, TrialResult{ID: id, Config: c, TrialMetrics: TrialMetrics{BestAcc: acc}})
			id++
		}
		h.Tell(results)
	}
	if len(totalByBudget) < 2 {
		t.Fatalf("hyperband used budgets %v, want several rungs", totalByBudget)
	}
	// More trials must run at small budgets than at the full budget.
	if totalByBudget[1] > 0 && totalByBudget[9] > 0 && totalByBudget[1] < totalByBudget[9] {
		t.Fatalf("rung sizes inverted: %v", totalByBudget)
	}
}

func TestHyperbandSurvivorsAreBest(t *testing.T) {
	s, _ := ParseSpaceJSON([]byte(`{"x": {"type": "float", "min": 0, "max": 1}}`))
	h := NewHyperband(s, 9, 3, 6)
	// First rung of first bracket.
	first := h.Ask(0)
	var results []TrialResult
	for i, c := range first {
		results = append(results, TrialResult{ID: i, Config: c, TrialMetrics: TrialMetrics{BestAcc: c.Float("x", 0)}})
	}
	h.Tell(results)
	second := h.Ask(0)
	if len(second) == 0 {
		t.Fatal("no second rung")
	}
	if len(second) >= len(first) {
		t.Fatalf("rung did not shrink: %d → %d", len(first), len(second))
	}
	// Survivors must be the top-x configs of the first rung.
	minSurvivor := 2.0
	for _, c := range second {
		if v := c.Float("x", 0); v < minSurvivor {
			minSurvivor = v
		}
	}
	better := 0
	for _, c := range first {
		if c.Float("x", 0) > minSurvivor {
			better++
		}
	}
	if better > len(second) {
		t.Fatalf("%d first-rung configs beat the weakest survivor (rung size %d)", better, len(second))
	}
}
