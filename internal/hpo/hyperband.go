package hpo

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Hyperband implements Hyperband (Li et al.) via successive halving: random
// configurations start with a small epoch budget; each rung keeps the top
// 1/eta fraction and multiplies their budget by eta. It generalises the
// paper's early-stopping discussion (§6.2) into a principled budget
// allocation and plugs into the same Study machinery because the epoch
// budget travels inside the config ("num_epochs").
type Hyperband struct {
	space *Space
	// MaxBudget R is the largest per-trial epoch budget.
	MaxBudget int
	// Eta is the halving factor (default 3).
	Eta int
	rng *tensor.RNG

	brackets []*shaBracket
	cur      int
	finished bool
	nextID   int
}

// shaBracket is one successive-halving bracket.
type shaBracket struct {
	// configs still alive in the current rung, keyed by hidden _hb id.
	alive map[string]Config
	// results collected for the current rung.
	results map[string]float64
	// expected number of results to finish the rung.
	expect int
	// budget is the per-trial epoch budget of the current rung.
	budget int
	// queue holds the current rung's configs not yet handed out, so Ask
	// can respect its batch cap.
	queue []Config
	// asked reports whether the current rung's queue was built.
	asked bool
	eta   int
	maxR  int
}

// NewHyperband builds a Hyperband sampler. maxBudget is R (largest epoch
// budget per trial); eta the halving factor.
func NewHyperband(space *Space, maxBudget, eta int, seed uint64) *Hyperband {
	if maxBudget < 1 {
		maxBudget = 27
	}
	if eta < 2 {
		eta = 3
	}
	h := &Hyperband{space: space, MaxBudget: maxBudget, Eta: eta, rng: tensor.NewRNG(seed)}
	sMax := int(math.Floor(math.Log(float64(maxBudget)) / math.Log(float64(eta))))
	for s := sMax; s >= 0; s-- {
		n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(float64(eta), float64(s))))
		budget := maxBudget / intPow(eta, s)
		if budget < 1 {
			budget = 1
		}
		b := &shaBracket{
			alive:   make(map[string]Config, n),
			results: make(map[string]float64),
			budget:  budget,
			eta:     eta,
			maxR:    maxBudget,
		}
		for i := 0; i < n; i++ {
			cfg := space.Sample(h.rng)
			id := fmt.Sprintf("b%d-%d", s, h.nextID)
			h.nextID++
			cfg["_hb"] = id
			b.alive[id] = cfg
		}
		h.brackets = append(h.brackets, b)
	}
	return h
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// Name implements Sampler.
func (h *Hyperband) Name() string { return "hyperband" }

// Done implements Sampler.
func (h *Hyperband) Done() bool { return h.finished }

// Ask implements Sampler. It hands out the current rung of the current
// bracket (budget embedded as "num_epochs"), at most n configs per call,
// and returns empty while waiting for that rung's results.
func (h *Hyperband) Ask(n int) []Config {
	if h.finished || h.cur >= len(h.brackets) {
		h.finished = true
		return nil
	}
	b := h.brackets[h.cur]
	if !b.asked {
		b.asked = true
		b.expect = len(b.alive)
		b.results = make(map[string]float64)
		ids := make([]string, 0, len(b.alive))
		for id := range b.alive {
			ids = append(ids, id)
		}
		sort.Strings(ids) // determinism
		b.queue = b.queue[:0]
		for _, id := range ids {
			cfg := b.alive[id].Clone()
			cfg["num_epochs"] = b.budget
			b.queue = append(b.queue, cfg)
		}
	}
	if len(b.queue) == 0 {
		return nil // rung fully handed out; wait for Tell
	}
	take := len(b.queue)
	if n > 0 && take > n {
		take = n
	}
	out := b.queue[:take]
	b.queue = b.queue[take:]
	return out
}

// Tell implements Sampler: it records rung results and, when the rung
// completes, promotes the top 1/eta configs with eta× budget.
func (h *Hyperband) Tell(trials []TrialResult) {
	if h.cur >= len(h.brackets) {
		return
	}
	b := h.brackets[h.cur]
	for _, t := range trials {
		id, _ := t.Config["_hb"].(string)
		if id == "" {
			continue
		}
		if _, mine := b.alive[id]; !mine {
			continue
		}
		acc := t.BestAcc
		if !t.Succeeded() {
			acc = -1 // failed, pruned and canceled trials lose the rung
		}
		b.results[id] = acc
	}
	if len(b.results) < b.expect {
		return // rung incomplete
	}

	// Promote survivors.
	type scored struct {
		id  string
		acc float64
	}
	var ranked []scored
	for id, acc := range b.results {
		ranked = append(ranked, scored{id, acc})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].acc != ranked[j].acc {
			return ranked[i].acc > ranked[j].acc
		}
		return ranked[i].id < ranked[j].id
	})
	keep := len(ranked) / b.eta
	nextBudget := b.budget * b.eta
	if keep < 1 || nextBudget > b.maxR {
		// Bracket finished; move on.
		h.cur++
		if h.cur >= len(h.brackets) {
			h.finished = true
		}
		return
	}
	survivors := make(map[string]Config, keep)
	for _, s := range ranked[:keep] {
		survivors[s.id] = b.alive[s.id]
	}
	b.alive = survivors
	b.budget = nextBudget
	b.asked = false
}
