package hpo

import "repro/internal/obs"

// Scheduler and study instrumentation: rung verdicts by scheduler, the
// async waiting room, and the epochs-executed vs batch-baseline pair that
// quantifies what rung-driven promotion saves (every epoch below a rung
// runs once instead of once per rung).
var (
	obsSchedPromotions = obs.Default().CounterVec("hpo_sched_promotions_total",
		"Rung promotions granted, by scheduler.", "scheduler")
	obsSchedHalts = obs.Default().CounterVec("hpo_sched_halts_total",
		"Trials halted at a rung boundary, by scheduler.", "scheduler")
	obsWaitingRoom = obs.Default().Gauge("hpo_sched_waiting_room_depth",
		"Members queued in async rung schedulers awaiting admission.")
	obsBaselineEpochs = obs.Default().Counter("hpo_sched_baseline_epochs_total",
		"Epochs the equivalent batch Hyperband would execute (re-training each rung from scratch).")
	obsStudyEpochs = obs.Default().Counter("hpo_study_epochs_total",
		"Training epochs actually executed (one per streamed trial report).")
	obsStudyTrials = obs.Default().CounterVec("hpo_study_trials_total",
		"Trials settled, by outcome.", "outcome")
	obsTrialsSucceeded = obsStudyTrials.With("succeeded")
	obsTrialsPruned    = obsStudyTrials.With("pruned")
	obsTrialsCanceled  = obsStudyTrials.With("canceled")
	obsTrialsFailed    = obsStudyTrials.With("failed")
)
