package hpo

import (
	"errors"

	"repro/internal/obs"
)

// Scheduler and study instrumentation: rung verdicts by scheduler, the
// async waiting room, and the epochs-executed vs batch-baseline pair that
// quantifies what rung-driven promotion saves (every epoch below a rung
// runs once instead of once per rung).
var (
	obsSchedPromotions = obs.Default().CounterVec("hpo_sched_promotions_total",
		"Rung promotions granted, by scheduler.", "scheduler")
	obsSchedHalts = obs.Default().CounterVec("hpo_sched_halts_total",
		"Trials halted at a rung boundary, by scheduler.", "scheduler")
	obsWaitingRoom = obs.Default().Gauge("hpo_sched_waiting_room_depth",
		"Members queued in async rung schedulers awaiting admission.")
	obsBaselineEpochs = obs.Default().Counter("hpo_sched_baseline_epochs_total",
		"Epochs the equivalent batch Hyperband would execute (re-training each rung from scratch).")
	obsStudyEpochs = obs.Default().Counter("hpo_study_epochs_total",
		"Training epochs actually executed (one per streamed trial report).")
	obsStudyTrials = obs.Default().CounterVec("hpo_study_trials_total",
		"Trials settled, by outcome.", "outcome")
	obsTrialsSucceeded = obsStudyTrials.With("succeeded")
	obsTrialsPruned    = obsStudyTrials.With("pruned")
	obsTrialsCanceled  = obsStudyTrials.With("canceled")
	obsTrialsFailed    = obsStudyTrials.With("failed")
)

// Admission-control instrumentation. Tenant labels always carry tenant
// ids, never bearer tokens; the single-tenant daemon reports under
// "default". Cardinality is bounded by the static tenant registry.
var (
	obsAdmissionDepth = obs.Default().Gauge("hpo_admission_queue_depth",
		"Studies admitted into the runner's waiting room but not yet granted an execution slot.")
	obsAdmissionOldestWait = obs.Default().Gauge("hpo_admission_queue_oldest_wait_seconds",
		"Age of the longest-waiting admission reservation (0 when the waiting room is empty).")
	obsTenantAdmitted = obs.Default().CounterVec("hpo_tenant_admitted_total",
		"Studies granted an execution slot, by tenant.", "tenant")
	obsTenantRejected = obs.Default().CounterVec("hpo_tenant_rejected_total",
		"Admission requests rejected, by tenant and reason.", "tenant", "reason")
	obsTenantInflight = obs.Default().GaugeVec("hpo_tenant_studies_inflight",
		"Studies admitted and not yet finished (waiting + executing), by tenant.", "tenant")
	obsTenantSubscribers = obs.Default().GaugeVec("hpo_tenant_sse_subscribers",
		"SSE event-stream subscribers currently connected, by tenant.", "tenant")
	obsTenantEpochsUsed = obs.Default().GaugeVec("hpo_tenant_epochs_used",
		"Journal-derived training epochs consumed against the tenant's lifetime budget.", "tenant")
)

// tenantLabel maps the registry-less empty tenant onto a readable series.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// CountRejection classifies an admission error onto the per-tenant
// rejection counter. The HTTP layer reuses it for quota rejections it
// raises itself (SSE fan-out caps).
func CountRejection(tenant string, err error) {
	reason := ""
	var qe *QuotaError
	switch {
	case errors.Is(err, ErrBackpressureTimeout):
		reason = "backpressure_timeout"
	case errors.Is(err, ErrBackpressure):
		reason = "backpressure"
	case errors.As(err, &qe):
		reason = qe.Resource
	case errors.Is(err, ErrQuotaExceeded):
		reason = "quota"
	default:
		return
	}
	obsTenantRejected.With(tenantLabel(tenant), reason).Inc()
}

// countRejection is CountRejection for the queue's internal call sites.
func countRejection(tenant string, err error) { CountRejection(tenant, err) }

// AddTenantSubscribers moves a tenant's SSE subscriber gauge (the HTTP
// layer owns the connections; the family lives here with the rest of the
// per-tenant series).
func AddTenantSubscribers(tenant string, d float64) {
	obsTenantSubscribers.With(tenantLabel(tenant)).Add(d)
}

// SetTenantEpochsUsed publishes a tenant's journal-derived epoch usage
// (refreshed at scrape time by the daemon).
func SetTenantEpochsUsed(tenant string, n int) {
	obsTenantEpochsUsed.With(tenantLabel(tenant)).Set(float64(n))
}

// registerAdmissionScrape keeps the oldest-wait gauge honest at scrape
// time (it ages continuously while the room is non-empty). Keyed
// registration: the newest queue owns the hook.
func registerAdmissionScrape(q *AdmissionQueue) {
	obs.Default().OnScrape("hpo.admission", func() {
		obsAdmissionOldestWait.Set(q.OldestWait().Seconds())
	})
}
