package hpo

import (
	"fmt"
	"sync"
)

// TrialState is the lifecycle of one trial handle:
//
//	pending → running → reported | pruned | failed | canceled
//
// Memoized and checkpoint-resumed trials jump straight from pending to
// reported without ever running.
type TrialState int

// Trial lifecycle states.
const (
	// TrialPending: created but not executing yet.
	TrialPending TrialState = iota
	// TrialRunning: submitted to the runtime and possibly streaming
	// intermediate epoch reports.
	TrialRunning
	// TrialReported: finished normally with final metrics.
	TrialReported
	// TrialPruned: stopped mid-training by a pruner decision; metrics are
	// partial.
	TrialPruned
	// TrialFailed: the objective (or its task) errored.
	TrialFailed
	// TrialCanceled: dropped by study-level early stop or cancellation.
	TrialCanceled
)

// String renders the state for logs and status APIs.
func (s TrialState) String() string {
	switch s {
	case TrialPending:
		return "pending"
	case TrialRunning:
		return "running"
	case TrialReported:
		return "reported"
	case TrialPruned:
		return "pruned"
	case TrialFailed:
		return "failed"
	case TrialCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the trial reached an end state.
func (s TrialState) Terminal() bool {
	return s == TrialReported || s == TrialPruned || s == TrialFailed || s == TrialCanceled
}

// EpochReport is one intermediate metric point streamed by a running trial.
type EpochReport struct {
	Epoch int
	Value float64
}

// Trial is the first-class handle of one configuration evaluation: identity,
// lifecycle state machine, the stream of intermediate epoch metrics observed
// so far, and — once terminal — the final result. The study run loop, the
// pruners and the runtime's report/cancel plumbing all speak in Trial
// handles; []TrialResult is only the terminal rendering handed to samplers
// and persistence.
type Trial struct {
	// ID is the study-scoped trial id (stable across resume).
	ID int
	// Config is the hyperparameter assignment under evaluation.
	Config Config

	mu      sync.Mutex
	state   TrialState
	taskID  int // runtime invocation id; 0 until submitted
	reports []EpochReport
	reason  string // why the trial was pruned or canceled
	result  *TrialResult
}

// newTrial builds a pending handle.
func newTrial(id int, cfg Config) *Trial { return &Trial{ID: id, Config: cfg} }

// State returns the current lifecycle state.
func (t *Trial) State() TrialState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// TaskID returns the runtime invocation executing this trial (0 when the
// trial never ran).
func (t *Trial) TaskID() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.taskID
}

// Reports returns a copy of the intermediate metric stream observed so far.
func (t *Trial) Reports() []EpochReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]EpochReport(nil), t.reports...)
}

// Reason returns why the trial was pruned or canceled ("" otherwise).
func (t *Trial) Reason() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reason
}

// Result returns the final result once the trial is terminal, else nil.
func (t *Trial) Result() *TrialResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result
}

// markRunning transitions pending → running and records the executing task.
func (t *Trial) markRunning(taskID int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.taskID = taskID
	if t.state == TrialPending {
		t.state = TrialRunning
	}
}

// observe appends one intermediate metric point (running trials only; late
// reports from an already-terminal trial are dropped). It reports whether
// the point was accepted.
func (t *Trial) observe(epoch int, value float64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != TrialRunning {
		return false
	}
	t.reports = append(t.reports, EpochReport{Epoch: epoch, Value: value})
	return true
}

// requestPrune transitions running → pruned exactly once; the caller then
// delivers the actual cancellation to the runtime. False means the trial was
// no longer prunable (already terminal or never started).
func (t *Trial) requestPrune(reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != TrialRunning {
		return false
	}
	t.state = TrialPruned
	t.reason = reason
	return true
}

// requestCancel transitions pending/running → canceled exactly once.
func (t *Trial) requestCancel(reason string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state.Terminal() {
		return false
	}
	t.state = TrialCanceled
	t.reason = reason
	return true
}

// finalize merges the trial's lifecycle into the raw task result and locks
// in the terminal state: a prune/cancel requested while the task was
// in-flight overrides whatever the (cooperatively stopped) task returned.
func (t *Trial) finalize(res *TrialResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case t.state == TrialPruned:
		res.Pruned = true
		res.PruneReason = t.reason
	case t.state == TrialCanceled:
		res.Canceled = true
	case res.Canceled:
		t.state = TrialCanceled
	case res.Err != "":
		t.state = TrialFailed
	default:
		t.state = TrialReported
	}
	r := *res
	t.result = &r
}
