package hpo

import (
	"math"

	"repro/internal/tensor"
)

// BayesOpt is Gaussian-process Bayesian optimisation with the expected
// improvement acquisition function (Snoek et al., the paper's reference
// [19]): configs are encoded into the unit hypercube, a GP with an RBF
// kernel models validation accuracy, and each Ask proposes the candidates
// maximising EI over a random candidate pool.
type BayesOpt struct {
	space  *Space
	budget int
	drawn  int
	rng    *tensor.RNG

	// Warmup random trials before the surrogate takes over.
	Warmup int
	// Candidates is the size of the random pool scored per proposal.
	Candidates int
	// LengthScale and Noise are the RBF kernel hyperparameters.
	LengthScale float64
	Noise       float64
	// Xi is the EI exploration bonus.
	Xi float64

	xs [][]float64
	ys []float64
}

// NewBayesOpt builds a Bayesian-optimisation sampler with the given trial
// budget.
func NewBayesOpt(space *Space, budget int, seed uint64) *BayesOpt {
	return &BayesOpt{
		space: space, budget: budget, rng: tensor.NewRNG(seed),
		Warmup: 5, Candidates: 256, LengthScale: 0.25, Noise: 1e-4, Xi: 0.01,
	}
}

// Name implements Sampler.
func (b *BayesOpt) Name() string { return "bayes" }

// Done implements Sampler.
func (b *BayesOpt) Done() bool { return b.drawn >= b.budget }

// Tell implements Sampler.
func (b *BayesOpt) Tell(trials []TrialResult) {
	for _, t := range trials {
		if !t.Succeeded() {
			continue // failed/pruned/canceled trials carry no signal for the surrogate
		}
		b.xs = append(b.xs, b.space.Encode(t.Config))
		b.ys = append(b.ys, t.BestAcc)
	}
}

// Ask implements Sampler.
func (b *BayesOpt) Ask(n int) []Config {
	var out []Config
	for b.drawn < b.budget && (n <= 0 || len(out) < n) {
		var cfg Config
		if len(b.xs) < b.Warmup {
			cfg = b.space.Sample(b.rng)
		} else {
			cfg = b.propose()
		}
		out = append(out, cfg)
		b.drawn++
	}
	return out
}

// propose scores a random candidate pool by expected improvement under the
// current GP posterior and returns the best.
func (b *BayesOpt) propose() Config {
	gp := newGP(b.xs, b.ys, b.LengthScale, b.Noise)
	best := b.ys[0]
	for _, y := range b.ys[1:] {
		if y > best {
			best = y
		}
	}
	var bestCfg Config
	bestEI := math.Inf(-1)
	for i := 0; i < b.Candidates; i++ {
		cfg := b.space.Sample(b.rng)
		x := b.space.Encode(cfg)
		mu, sigma := gp.predict(x)
		ei := expectedImprovement(mu, sigma, best, b.Xi)
		if ei > bestEI {
			bestEI, bestCfg = ei, cfg
		}
	}
	return bestCfg
}

// expectedImprovement for maximisation.
func expectedImprovement(mu, sigma, best, xi float64) float64 {
	if sigma < 1e-12 {
		return 0
	}
	z := (mu - best - xi) / sigma
	return (mu-best-xi)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// gp is a minimal Gaussian-process regressor with an RBF kernel, fitted by
// Cholesky factorisation of the kernel matrix.
type gp struct {
	xs    [][]float64
	l     [][]float64 // Cholesky factor of K + noise·I
	alpha []float64   // (K + noise·I)⁻¹ y
	scale float64     // RBF length scale
	mean  float64     // constant prior mean (sample mean of y)
}

func newGP(xs [][]float64, ys []float64, lengthScale, noise float64) *gp {
	n := len(xs)
	g := &gp{xs: xs, scale: lengthScale}
	for _, y := range ys {
		g.mean += y
	}
	g.mean /= float64(n)

	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(xs[i], xs[j], lengthScale)
		}
		k[i][i] += noise
	}
	g.l = cholesky(k)

	centred := make([]float64, n)
	for i, y := range ys {
		centred[i] = y - g.mean
	}
	g.alpha = choleskySolve(g.l, centred)
	return g
}

// predict returns the posterior mean and standard deviation at x.
func (g *gp) predict(x []float64) (mu, sigma float64) {
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = rbf(x, xi, g.scale)
	}
	mu = g.mean
	for i := range kstar {
		mu += kstar[i] * g.alpha[i]
	}
	// v = L⁻¹ k*, var = k(x,x) − vᵀv.
	v := forwardSolve(g.l, kstar)
	variance := rbf(x, x, g.scale)
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mu, math.Sqrt(variance)
}

func rbf(a, b []float64, scale float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * scale * scale))
}

// cholesky returns the lower-triangular factor L with A = L·Lᵀ. The kernel
// matrix is symmetric positive definite by construction (noise on the
// diagonal), so the factorisation exists; tiny negatives from rounding are
// clamped.
func cholesky(a [][]float64) [][]float64 {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum < 1e-12 {
					sum = 1e-12
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l
}

// forwardSolve solves L·x = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// backSolve solves Lᵀ·x = b for lower-triangular L.
func backSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// choleskySolve solves (L·Lᵀ)·x = b.
func choleskySolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}
