package hpo

import (
	"fmt"
	"sort"
)

// This file isolates every scheduler verdict as a pure function of its
// explicit inputs — no clocks, no locks, no scheduler state. The live
// schedulers (RungHyperband sync+async, ASHAScheduler) and the journal
// replay engine (internal/replay) both call these, so a replayed decision
// is byte-identical to the live one by construction rather than by a
// parallel reimplementation that could drift.

// RungArrival is the verdict of one per-arrival (non-barrier) rung
// decision: the arriving member's rank within the rung's pool, the pool
// size after arrival, the keep count and whether the member is promoted.
type RungArrival struct {
	Promote bool
	// Rank is the member's 1-based rank among the pool plus itself.
	Rank int
	// N is the pool size including the arriving member.
	N int
	// Keep is max(1, N/eta): ranks <= Keep promote.
	Keep int
}

// DecideRungArrival applies the ASHA keep rule (Li et al., Massively
// Parallel Hyperparameter Tuning) to a member arriving at a rung whose
// pool already recorded the given values: rank counts incumbents at or
// above the arriving value (ties rank behind earlier arrivals — an equal
// value never displaces an incumbent), and the member promotes when it
// ranks within the top max(1, n/eta) of the n values now at the rung.
func DecideRungArrival(pool []float64, value float64, eta int) RungArrival {
	rank := 1
	for _, v := range pool {
		if v >= value {
			rank++
		}
	}
	n := len(pool) + 1
	keep := n / eta
	if keep < 1 {
		keep = 1
	}
	return RungArrival{Promote: rank <= keep, Rank: rank, N: n, Keep: keep}
}

// RungContender is one member of a settled synchronous rung: its stable
// tie-break key and its ranking value (best observed, or -1 for members
// that never produced one).
type RungContender struct {
	Key   string
	Value float64
}

// RankSyncRung orders a settled synchronous rung exactly like the batch
// Hyperband: value descending, key ascending on ties. order[i] is the
// index into contenders of the i-th ranked member; the first keep =
// len(contenders)/eta of them are promoted (keep may be 0: the rung can
// halt everyone).
func RankSyncRung(contenders []RungContender, eta int) (order []int, keep int) {
	order = make([]int, len(contenders))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := contenders[order[a]], contenders[order[b]]
		if ca.Value != cb.Value {
			return ca.Value > cb.Value
		}
		return ca.Key < cb.Key
	})
	return order, len(contenders) / eta
}

// DecideMedianStop applies the median stopping rule (Golovin et al.,
// Google Vizier) to one report: prune when at least minTrials other
// curves reported the same epoch and the value falls strictly below
// their median.
func DecideMedianStop(value float64, others []float64, minTrials int) bool {
	if len(others) < minTrials {
		return false
	}
	return value < median(others)
}

// Reason formatters: the canonical decision strings persisted in
// prune/promote journal records. Replay byte-compares its re-derived
// reasons against the recorded ones, so every call site — live or replay
// — must build them here.

// ReasonRungAsyncPromote is an async rung promotion.
func ReasonRungAsyncPromote(rank, n, rung, budget, next int) string {
	return fmt.Sprintf("hyperband-rung/async: rank %d/%d at rung %d (budget %d), promoted to %d",
		rank, n, rung, budget, next)
}

// ReasonRungAsyncHalt is an async rung halt.
func ReasonRungAsyncHalt(rank, n, rung, budget int, value float64) string {
	return fmt.Sprintf("hyperband-rung/async: rank %d/%d at rung %d (budget %d, value %.4f)",
		rank, n, rung, budget, value)
}

// ReasonRungSyncPromote is a barrier-rung win.
func ReasonRungSyncPromote(rung, budget, next int) string {
	return fmt.Sprintf("hyperband-rung: won rung %d (budget %d), promoted to %d", rung, budget, next)
}

// ReasonRungSyncHalt is a barrier-rung loss.
func ReasonRungSyncHalt(rung, budget int, value float64) string {
	return fmt.Sprintf("hyperband-rung: lost rung %d (budget %d, value %.4f)", rung, budget, value)
}

// ReasonASHAHalt is an ASHA-promote scheduler halt.
func ReasonASHAHalt(rank, n, rung, budget int, value float64) string {
	return fmt.Sprintf("asha-promote: rank %d/%d at rung %d (budget %d, value %.4f)", rank, n, rung, budget, value)
}

// ReasonASHAPromote is an ASHA-promote scheduler promotion.
func ReasonASHAPromote(rank, n, rung, from, to int) string {
	return fmt.Sprintf("asha-promote: rank %d/%d at rung %d, promoted %d → %d epochs", rank, n, rung, from, to)
}

// ReasonPrunerLosing is the study's prune record for a Pruner verdict.
func ReasonPrunerLosing(name string, epoch int, value float64) string {
	return fmt.Sprintf("%s pruner: losing at epoch %d (value %.4f)", name, epoch, value)
}
