package hpo

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/store"
)

// TrialResult is the terminal rendering of one trial — what samplers are
// told and what persistence stores. Live trials are represented by Trial
// handles; a TrialResult only exists once the trial is terminal.
type TrialResult struct {
	ID     int
	Config Config
	TrialMetrics
	Duration time.Duration
	// Err is the failure text ("" on success); kept as a string so results
	// cross gob transports.
	Err string
	// Canceled marks trials dropped by study-level early stopping or an
	// operator cancellation.
	Canceled bool
	// Pruned marks trials stopped mid-training by the study's pruner; their
	// metrics cover only the epochs run before losing. Pruned trials never
	// count as successes.
	Pruned      bool
	PruneReason string
	// Promoted marks trials a rung scheduler continued past their
	// configured num_epochs budget: their metrics cover more epochs than
	// the config says, so they resume within their own study but are
	// excluded from cross-study memoization (a budget-1 lookup must not be
	// answered with a budget-9 result).
	Promoted bool
}

// Succeeded reports whether the trial ran to completion with a usable
// result. Pruned and canceled trials are not successes: they must never
// win a study or seed a sampler's model as if they had finished.
func (t TrialResult) Succeeded() bool { return t.Err == "" && !t.Canceled && !t.Pruned }

// StudyResult aggregates a finished study.
type StudyResult struct {
	Algorithm string
	Trials    []TrialResult
	// Best is the successful trial with the highest BestAcc.
	Best *TrialResult
	// Stopped reports study-level early stopping (target accuracy reached).
	Stopped bool
	// Canceled reports the study was stopped by Stop (operator
	// cancellation); CancelReason carries the reason given.
	Canceled     bool
	CancelReason string
	Duration     time.Duration
	// Plot holds the final plot task's output when Visualise was set.
	Plot string
	// Resumed counts trials restored from the checkpoint instead of run.
	Resumed int
	// Memoized counts trials answered from another study's persisted
	// results via the store's fingerprint index (Hippo-style reuse).
	Memoized int
	// Pruned counts trials stopped mid-training by the pruner.
	Pruned int
}

// BestAccuracy returns the best accuracy or 0.
func (r *StudyResult) BestAccuracy() float64 {
	if r.Best == nil {
		return 0
	}
	return r.Best.BestAcc
}

// StudyOptions configures Run.
type StudyOptions struct {
	// Space defines the hyperparameters (used by samplers; Grid/Random
	// already hold it, so this may be nil).
	Space *Space
	// Sampler proposes configurations.
	Sampler Sampler
	// Objective evaluates them.
	Objective Objective
	// Runtime executes experiment tasks; the study registers its task
	// definitions on it. Must use a Real or Remote backend (training needs
	// to actually run).
	Runtime *runtime.Runtime
	// Constraint is the per-experiment resource requirement, the paper's
	// @constraint decorator.
	Constraint runtime.Constraint
	// BatchSize bounds how many configs are in flight between Ask/Tell
	// cycles; 0 means "everything the sampler offers at once", the natural
	// choice for grid/random (the paper submits all tasks in one loop).
	BatchSize int
	// TargetAccuracy, when > 0, stops the study as soon as any trial
	// reports it (§6.1: "the process can be stopped as soon as one task
	// achieves a specified accuracy"). Running trials also stop themselves.
	TargetAccuracy float64
	// Seed drives per-trial seeds.
	Seed uint64
	// OnEpoch, when non-nil, observes streamed per-epoch accuracy from all
	// trials (trialID, epoch, accuracy). Guaranteed on every backend that
	// can stream reports — Real in-process and Remote over the worker
	// transport; NewStudy rejects the combination with a backend that
	// cannot (Sim) instead of silently dropping epochs.
	OnEpoch func(trial, epoch int, acc float64)
	// Pruner, when non-nil, consumes the same intermediate epoch stream
	// and cancels losing trials mid-training (MedianStop, ASHA). Requires
	// a streaming backend, like OnEpoch.
	Pruner Pruner
	// Scheduler, when non-nil, drives rung-based successive halving over
	// the live report stream: trials are admitted once with their config's
	// num_epochs as the initial budget, losers are halted at rung
	// boundaries through the prune path, and survivors are promoted past
	// their initial budget via runtime task extension — TCP workers keep
	// training the same config instead of restarting it. Requires a
	// streaming backend; mutually exclusive with Pruner (the scheduler
	// already halts losers).
	Scheduler TrialScheduler
	// Visualise, when true, rebuilds the paper's Figure-3 application
	// shape for real: each experiment feeds a visualisation task and a
	// final plot task aggregates them; the plot output lands in
	// StudyResult.Plot. Real backend only.
	Visualise bool
	// CheckpointPath, when non-empty, persists finished trials as JSON
	// after every round and resumes from it on the next Run — master-side
	// fault tolerance complementing the runtime's task retries. Shorthand
	// for Recorder = store.NewFileRecorder(path); ignored when Recorder is
	// set.
	CheckpointPath string
	// Recorder, when non-nil, persists finished trials after every round
	// and restores them on the next Run. A journal-backed recorder
	// (store.Journal.Recorder) additionally memoizes (configs already
	// solved by any persisted study return their cached result instead of
	// re-executing) and journals intermediate epoch metrics and prune
	// decisions as they stream in.
	Recorder store.Recorder
}

// Study orchestrates an HPO run on the task runtime: one task per config,
// exactly the application structure of the paper's Figure 2. Each in-flight
// configuration is a Trial handle moving through the lifecycle
// running → reported/pruned/failed/canceled; intermediate epoch metrics
// stream from the executing backend (local or remote) into the study's
// report handler, which feeds OnEpoch observers, the journal's metric
// events, target-accuracy early stopping and the pruner.
type Study struct {
	opts     StudyOptions
	recorder store.Recorder
	// telemetry is the recorder's optional metric/prune sink.
	telemetry store.MetricRecorder

	// decisionMu serializes the journal's record appends with the
	// scheduler/pruner observations that produce them: a metric record, the
	// Observe it feeds and the prune/promote records that Observe emits form
	// one atomic section, so the journal's record order is exactly the order
	// the decisions were taken in. internal/replay's determinism contract
	// (re-driving the scheduler over the record stream reproduces the
	// recorded decisions byte-identically) depends on this invariant; without
	// it two concurrent reports could journal in one order and observe in the
	// other. Lock order: decisionMu may acquire mu inside, never the reverse.
	decisionMu sync.Mutex

	mu           sync.Mutex
	trials       []*Trial
	byTask       map[int]*Trial // runtime task id → live trial
	byID         map[int]*Trial // trial id → handle (scheduler decisions)
	granted      map[int]int    // trial id → highest promoted epoch budget
	baseBudget   map[int]int    // trial id → initial (submitted) epoch budget
	results      []TrialResult
	stopped      bool
	canceled     bool
	cancelReason string
	nextID       int
}

// NewStudy validates options and builds a study.
func NewStudy(opts StudyOptions) (*Study, error) {
	if opts.Sampler == nil {
		return nil, errors.New("hpo: study needs a Sampler")
	}
	if opts.Objective == nil {
		return nil, errors.New("hpo: study needs an Objective")
	}
	if opts.Runtime == nil {
		return nil, errors.New("hpo: study needs a Runtime")
	}
	if (opts.OnEpoch != nil || opts.Pruner != nil || opts.Scheduler != nil) && !opts.Runtime.CanStreamReports() {
		return nil, errors.New("hpo: OnEpoch/Pruner/Scheduler need a backend that streams epoch reports (Real or Remote, not Sim)")
	}
	if opts.Scheduler != nil && opts.Pruner != nil {
		return nil, errors.New("hpo: Scheduler and Pruner are mutually exclusive (the scheduler already halts rung losers)")
	}
	rec := opts.Recorder
	if rec == nil && opts.CheckpointPath != "" {
		rec = store.NewFileRecorder(opts.CheckpointPath)
	}
	s := &Study{opts: opts, recorder: rec,
		byTask: make(map[int]*Trial), byID: make(map[int]*Trial),
		granted: make(map[int]int), baseBudget: make(map[int]int)}
	if mr, ok := rec.(store.MetricRecorder); ok {
		s.telemetry = mr
	}
	return s, nil
}

// taskName is the registered experiment task type.
const taskName = "experiment"

// Trials returns the study's trial handles in creation order (live view;
// states advance as the study runs).
func (s *Study) Trials() []*Trial {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Trial(nil), s.trials...)
}

// Run executes the study to completion (or early stop/cancellation) and
// returns the aggregated result.
func (s *Study) Run() (*StudyResult, error) {
	rt := s.opts.Runtime
	// In distributed deployments the master pre-registers the experiment
	// task via ExperimentTaskDef; otherwise register the local equivalent —
	// the identical task body, so local and remote trials stream and halt
	// the same way.
	if !rt.Registered(taskName) {
		def := ExperimentTaskDef(s.opts.Objective, s.opts.Constraint, s.opts.Seed, s.opts.TargetAccuracy)
		if err := rt.Register(def); err != nil {
			return nil, err
		}
	}
	if s.opts.Visualise {
		if err := s.registerPipeline(); err != nil {
			return nil, err
		}
	}
	rt.SetTaskReportHandler(s.onTaskReport)
	defer rt.SetTaskReportHandler(nil)

	asyncRungs := false
	if sched := s.opts.Scheduler; sched != nil {
		slots := rt.Slots(s.opts.Constraint)
		if slots < 1 {
			// No healthy node can host even one trial (zero workers
			// attached, every node down, or a constraint larger than any
			// node): error out instead of queueing work that can never run.
			return nil, fmt.Errorf("hpo: %s needs at least one task slot, but the runtime has no healthy capacity for %d-core tasks",
				sched.Name(), s.opts.Constraint.Normalise().Cores)
		}
		if ar, ok := sched.(interface{ AsyncRungs() bool }); ok {
			asyncRungs = ar.AsyncRungs()
		}
		if !asyncRungs {
			// Synchronous rungs pause every member at the boundary until the
			// whole rung reports: with fewer slots than the largest bracket
			// the paused members would deadlock against the queued ones, so
			// fail fast instead of hanging. Async rungs decide per-arrival
			// and run on any capacity.
			if ms, ok := sched.(interface{ MinSlots() int }); ok && slots < ms.MinSlots() {
				return nil, fmt.Errorf("hpo: %s needs %d concurrent task slots for its largest bracket; the runtime provides %d (use async rung mode for smaller clusters)",
					sched.Name(), ms.MinSlots(), slots)
			}
		} else if cs, ok := sched.(interface{ SetCapacity(int) }); ok {
			// Capacity feedback: the async waiting room admits members only
			// as slots free up instead of flooding the runtime queue.
			cs.SetCapacity(slots)
		}
	}

	checkpoint, err := s.loadCheckpoint()
	if err != nil {
		return nil, err
	}
	resumed, memoized := 0, 0
	start := time.Now()

	var visFuts []*runtime.Future
	batch := s.opts.BatchSize
	if asyncRungs {
		if err := s.runAsyncLoop(checkpoint, &resumed, &memoized, &visFuts, batch); err != nil {
			return nil, err
		}
	} else if err := s.runRoundLoop(checkpoint, &resumed, &memoized, &visFuts, batch); err != nil {
		return nil, err
	}

	var plot string
	if s.opts.Visualise && len(visFuts) > 0 {
		args := make([]interface{}, len(visFuts))
		for i, f := range visFuts {
			args[i] = f
		}
		plotFut, err := rt.Submit1(plotTaskName, args...)
		if err != nil {
			return nil, err
		}
		if vals, err := rt.WaitOn(plotFut); err == nil {
			plot, _ = vals[0].(string)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	out := &StudyResult{
		Algorithm:    s.opts.Sampler.Name(),
		Trials:       append([]TrialResult(nil), s.results...),
		Stopped:      s.stopped,
		Canceled:     s.canceled,
		CancelReason: s.cancelReason,
		Duration:     time.Since(start),
		Plot:         plot,
		Resumed:      resumed,
		Memoized:     memoized,
	}
	sort.Slice(out.Trials, func(i, j int) bool { return out.Trials[i].ID < out.Trials[j].ID })
	for i := range out.Trials {
		t := &out.Trials[i]
		if t.Pruned {
			out.Pruned++
		}
		if t.Succeeded() && (out.Best == nil || t.BestAcc > out.Best.BestAcc) {
			out.Best = t
		}
	}
	return out, nil
}

// runRoundLoop is the barrier execution loop: ask a round, run it to
// completion, tell the sampler, repeat. Batch samplers and synchronous
// rung schedulers need the barrier — a sync rung cannot settle until the
// whole round reports.
func (s *Study) runRoundLoop(checkpoint map[string]TrialResult, resumed, memoized *int, visFuts *[]*runtime.Future, batch int) error {
	rt := s.opts.Runtime
	for {
		s.mu.Lock()
		halted := s.stopped || s.canceled
		s.mu.Unlock()
		if halted {
			return nil
		}
		configs := s.opts.Sampler.Ask(batch)
		if len(configs) == 0 {
			if s.opts.Sampler.Done() {
				return nil
			}
			// Sampler is waiting on results it has not seen; nothing in
			// flight means a stuck sampler, which is a bug worth surfacing.
			return fmt.Errorf("hpo: sampler %q stalled (asked nothing while idle)", s.opts.Sampler.Name())
		}
		futs, roundTrials, roundResults, err := s.admitConfigs(configs, checkpoint, resumed, memoized, visFuts)
		if err != nil {
			return err
		}
		vals, _ := rt.WaitOn(futs...) // per-trial errors live in the results
		for i, v := range vals {
			roundResults = append(roundResults, s.settleTrial(roundTrials[i], v))
		}
		if err := s.commitResults(roundResults); err != nil {
			return err
		}
	}
}

// runAsyncLoop is the non-barrier execution loop used with asynchronous
// rung schedulers: each finished trial is settled the moment its future
// resolves, freeing its slot so the scheduler's waiting room tops the
// runtime up immediately — no slot idles behind the slowest member of a
// round. Correctness does not depend on it (async decisions are
// per-arrival either way); wall-clock does.
func (s *Study) runAsyncLoop(checkpoint map[string]TrialResult, resumed, memoized *int, visFuts *[]*runtime.Future, batch int) error {
	rt := s.opts.Runtime
	type liveSub struct {
		fut   *runtime.Future
		trial *Trial
	}
	var inflight []liveSub
	for {
		s.mu.Lock()
		halted := s.stopped || s.canceled
		s.mu.Unlock()
		var settled []TrialResult
		if !halted {
			configs := s.opts.Sampler.Ask(batch)
			if len(configs) == 0 && len(inflight) == 0 {
				if s.opts.Sampler.Done() {
					return nil
				}
				return fmt.Errorf("hpo: sampler %q stalled (asked nothing while idle)", s.opts.Sampler.Name())
			}
			futs, trials, immediate, err := s.admitConfigs(configs, checkpoint, resumed, memoized, visFuts)
			if err != nil {
				return err
			}
			settled = immediate
			for i := range futs {
				inflight = append(inflight, liveSub{futs[i], trials[i]})
			}
		}
		if halted && len(inflight) == 0 {
			return nil
		}
		if len(inflight) > 0 {
			futs := make([]*runtime.Future, len(inflight))
			for i, sub := range inflight {
				futs[i] = sub.fut
			}
			resolved := make(map[int]bool)
			if halted {
				// Stop already delivered the cancellations; drain the rest.
				_, _ = rt.WaitOn(futs...)
				for i := range inflight {
					resolved[i] = true
				}
			} else {
				for _, i := range rt.WaitAny(futs...) {
					resolved[i] = true
				}
			}
			keep := inflight[:0]
			for i, sub := range inflight {
				if !resolved[i] {
					keep = append(keep, sub)
					continue
				}
				vals, _ := rt.WaitOn(sub.fut) // resolved: returns immediately
				settled = append(settled, s.settleTrial(sub.trial, vals[0]))
			}
			inflight = keep
		}
		if err := s.commitResults(settled); err != nil {
			return err
		}
	}
}

// admitConfigs turns one batch of sampler configs into runtime
// submissions plus the immediate results of configs that never run:
// checkpoint hits resume instantly, memo hits reuse another study's
// persisted result — the scheduler is informed either way so its rung
// accounting stays complete.
func (s *Study) admitConfigs(configs []Config, checkpoint map[string]TrialResult, resumed, memoized *int, visFuts *[]*runtime.Future) (futs []*runtime.Future, trials []*Trial, immediate []TrialResult, err error) {
	rt := s.opts.Runtime
	sched := s.opts.Scheduler
	for _, cfg := range configs {
		if sched != nil {
			// Samplers unaware of rung scheduling (everything but
			// RungHyperband, which stamps per-bracket ceilings itself)
			// get the scheduler's global promotion ceiling.
			if base := cfg.Int("num_epochs", 0); cfg.Int("_hb_max", 0) == 0 &&
				base > 0 && sched.MaxBudget() > base {
				cfg["_hb_max"] = sched.MaxBudget()
			}
		}
		fp := cfg.Fingerprint()
		if cached, ok := checkpoint[fp]; ok {
			// Persisted configs are stripped of sampler-internal ("_")
			// keys; hand the sampler back its own config so bookkeeping
			// like Hyperband's _hb bracket binding survives a resume.
			cached.Config = cfg
			s.adoptFinished(cached)
			if sched != nil {
				// The scheduler must account for every bracket member;
				// a resumed result exits immediately with its final
				// value, settling its rungs without re-execution.
				s.decisionMu.Lock()
				sched.Admit(cached.ID, cfg.Int("num_epochs", 0), cfg)
				s.applyDecisions(sched.Complete(cached.ID, &cached))
				s.decisionMu.Unlock()
			}
			immediate = append(immediate, cached)
			*resumed++
			continue
		}
		s.mu.Lock()
		id := s.nextID
		s.nextID++
		s.mu.Unlock()
		if memo, ok := s.memoLookup(fp); ok {
			// Another persisted study already evaluated this exact
			// config: reuse its result under a fresh trial id.
			memo.ID = id
			memo.Config = cfg
			s.adoptFinished(memo)
			if sched != nil {
				s.decisionMu.Lock()
				sched.Admit(id, cfg.Int("num_epochs", 0), cfg)
				s.applyDecisions(sched.Complete(id, &memo))
				s.decisionMu.Unlock()
			}
			immediate = append(immediate, memo)
			*memoized++
			continue
		}
		trial := newTrial(id, cfg)
		if sched != nil {
			// Admit before Submit: the task may stream its first report
			// the instant it launches, and Observe must already know the
			// trial.
			base := cfg.Int("num_epochs", 0)
			sched.Admit(id, base, cfg)
			s.mu.Lock()
			s.baseBudget[id] = base
			s.mu.Unlock()
		}
		// Submit under s.mu: the task may stream its first report the
		// instant it launches, and onTaskReport must already find the
		// byTask mapping (it blocks on s.mu until we finish here).
		s.mu.Lock()
		fut, serr := rt.Submit1(taskName, id, cfg)
		if serr != nil {
			s.mu.Unlock()
			return nil, nil, nil, serr
		}
		trial.markRunning(fut.TaskID())
		s.trials = append(s.trials, trial)
		s.byTask[fut.TaskID()] = trial
		s.byID[id] = trial
		s.mu.Unlock()
		futs = append(futs, fut)
		trials = append(trials, trial)
		if s.opts.Visualise {
			vf, verr := rt.Submit1(visTaskName, fut)
			if verr != nil {
				return nil, nil, nil, verr
			}
			*visFuts = append(*visFuts, vf)
		}
	}
	return futs, trials, immediate, nil
}

// settleTrial renders one resolved task value into the trial's terminal
// result — synthesising one when the task failed or was canceled before
// producing any — finalizes the handle and informs the pruner and
// scheduler of the exit.
func (s *Study) settleTrial(trial *Trial, v interface{}) TrialResult {
	var res TrialResult
	if tr, ok := v.(TrialResult); ok {
		res = tr
	} else {
		res = TrialResult{ID: trial.ID, Config: trial.Config}
		s.mu.Lock()
		stopped, canceled, reason := s.stopped, s.canceled, s.cancelReason
		s.mu.Unlock()
		switch {
		case canceled:
			res.Canceled = true
			res.Err = "canceled: " + reason
		case stopped:
			res.Canceled = true
			res.Err = "canceled: study target reached"
		default:
			res.Err = "task failed"
		}
	}
	s.mu.Lock()
	if s.granted[trial.ID] > 0 {
		// The scheduler extended this trial past its configured
		// budget; the result must say so (memo exclusion).
		res.Promoted = true
	}
	s.mu.Unlock()
	trial.finalize(&res)
	if s.opts.Pruner != nil {
		s.opts.Pruner.Complete(trial.ID)
	}
	s.mu.Lock()
	delete(s.byTask, trial.TaskID())
	s.mu.Unlock()
	if sched := s.opts.Scheduler; sched != nil {
		// A member's exit can settle its rung (and, on resume,
		// cascade through several).
		s.decisionMu.Lock()
		s.applyDecisions(sched.Complete(trial.ID, &res))
		s.decisionMu.Unlock()
	}
	return res
}

// commitResults appends settled results to the study, persists them
// through the recorder, tells the sampler and applies target-accuracy
// stopping. Streaming already stops the study mid-epoch; honouring the
// target on completed results makes resumed/memoized rounds count too.
func (s *Study) commitResults(settled []TrialResult) error {
	if len(settled) == 0 {
		return nil
	}
	s.mu.Lock()
	s.results = append(s.results, settled...)
	s.mu.Unlock()
	for _, res := range settled {
		switch {
		case res.Pruned:
			obsTrialsPruned.Inc()
		case res.Canceled:
			obsTrialsCanceled.Inc()
		case res.Err != "":
			obsTrialsFailed.Inc()
		default:
			obsTrialsSucceeded.Inc()
		}
	}
	if err := s.recordRound(settled); err != nil {
		return err
	}
	s.opts.Sampler.Tell(settled)
	if s.opts.TargetAccuracy > 0 {
		for _, res := range settled {
			if res.Succeeded() && res.BestAcc >= s.opts.TargetAccuracy {
				s.triggerStop()
				break
			}
		}
	}
	return nil
}

// adoptFinished registers a handle for a trial that never ran (checkpoint
// resume or memo hit) so the lifecycle view stays complete.
func (s *Study) adoptFinished(res TrialResult) {
	trial := newTrial(res.ID, res.Config)
	trial.finalize(&res)
	s.mu.Lock()
	s.trials = append(s.trials, trial)
	s.byID[res.ID] = trial
	s.mu.Unlock()
}

// applyDecisions carries a scheduler's rung verdicts into the runtime:
// halts ride the existing prune path (cooperative per-task cancellation),
// promotions extend the running task's budget gate so the worker keeps
// training the same model. Both are journaled when the recorder supports
// lifecycle telemetry. A promotion whose extension cannot be delivered
// (task finished, worker died) is not an error: the runtime re-queues dead
// workers' tasks from scratch, and the grant is re-issued when the fresh
// attempt streams its reports (restart fallback, see onTaskReport).
func (s *Study) applyDecisions(decisions []SchedDecision) {
	for _, d := range decisions {
		s.mu.Lock()
		trial := s.byID[d.TrialID]
		s.mu.Unlock()
		if trial == nil {
			continue
		}
		if d.Budget <= 0 {
			if trial.requestPrune(d.Reason) {
				obsSchedHalts.With(s.opts.Scheduler.Name()).Inc()
				if s.telemetry != nil {
					_ = s.telemetry.RecordPrune(trial.ID, d.Epoch, d.Reason)
				}
				s.opts.Runtime.CancelTask(trial.TaskID())
			}
			continue
		}
		s.mu.Lock()
		if d.Budget > s.granted[d.TrialID] {
			s.granted[d.TrialID] = d.Budget
		}
		s.mu.Unlock()
		obsSchedPromotions.With(s.opts.Scheduler.Name()).Inc()
		if s.telemetry != nil {
			_ = s.telemetry.RecordPromote(trial.ID, d.Epoch, d.Budget, d.Reason)
		}
		s.opts.Runtime.ExtendTask(trial.TaskID(), d.Budget)
	}
}

// onTaskReport is the study's central intermediate-metric sink: every
// running trial's per-epoch accuracy lands here, whether the task executes
// in-process or streams over a worker transport. It feeds (in order) the
// trial's report history, the OnEpoch observer, the journal's metric
// events, target-accuracy early stopping and the pruner.
func (s *Study) onTaskReport(taskID, epoch int, value float64) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return // a diverged epoch carries no signal for observers or pruners
	}
	s.mu.Lock()
	trial := s.byTask[taskID]
	s.mu.Unlock()
	if trial == nil {
		return
	}
	if !trial.observe(epoch, value) {
		return // trial already terminal (late report after prune/cancel)
	}
	obsStudyEpochs.Inc()
	if s.opts.OnEpoch != nil {
		s.opts.OnEpoch(trial.ID, epoch, value)
	}
	// From the journal append to the decisions it triggers is one atomic
	// section (see decisionMu): record order must equal observation order.
	s.decisionMu.Lock()
	defer s.decisionMu.Unlock()
	if s.telemetry != nil {
		_ = s.telemetry.RecordMetric(trial.ID, epoch, value)
	}
	if s.opts.TargetAccuracy > 0 && value >= s.opts.TargetAccuracy {
		s.triggerStop()
		return
	}
	if sched := s.opts.Scheduler; sched != nil {
		// Restart fallback: a worker death re-queues the task, and the
		// fresh attempt restarts at the config's initial budget, blind to
		// earlier promotions. A restarted attempt always pauses at its
		// initial gate, so re-issuing the grant exactly at that boundary —
		// whenever the grant exceeds it — releases the pause without
		// per-epoch chatter (idempotent: the gate ceiling is monotonic).
		// A first attempt never matches: its grant is only issued by the
		// Observe below, after its boundary report.
		s.mu.Lock()
		g := s.granted[trial.ID]
		resend := g > epoch+1 && epoch+1 == s.baseBudget[trial.ID]
		s.mu.Unlock()
		if resend {
			s.opts.Runtime.ExtendTask(taskID, g)
		}
		s.applyDecisions(sched.Observe(trial.ID, epoch, value))
	}
	if s.opts.Pruner != nil && s.opts.Pruner.Observe(trial.ID, epoch, value) {
		reason := ReasonPrunerLosing(s.opts.Pruner.Name(), epoch, value)
		if trial.requestPrune(reason) {
			if s.telemetry != nil {
				_ = s.telemetry.RecordPrune(trial.ID, epoch, reason)
			}
			s.opts.Runtime.CancelTask(taskID)
		}
	}
}

// triggerStop cancels all pending work once (study-level early stop).
// Running trials stop themselves via their TargetAccuracy callback.
func (s *Study) triggerStop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.opts.Runtime.CancelPending()
}

// Stop cancels the study from outside (the control plane's POST /cancel):
// pending work is dropped, running trials receive cooperative per-task
// cancellation (local and remote) and are marked canceled, and the run
// loop exits after the in-flight round drains. Idempotent.
func (s *Study) Stop(reason string) {
	s.mu.Lock()
	if s.canceled {
		s.mu.Unlock()
		return
	}
	s.canceled = true
	s.cancelReason = reason
	live := make([]*Trial, 0, len(s.byTask))
	for _, t := range s.byTask {
		live = append(live, t)
	}
	s.mu.Unlock()
	for _, t := range live {
		if t.requestCancel(reason) {
			s.opts.Runtime.CancelTask(t.TaskID())
		}
	}
	s.opts.Runtime.CancelPending()
}
