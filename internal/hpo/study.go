package hpo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/store"
)

// TrialResult is the outcome of one experiment task.
type TrialResult struct {
	ID     int
	Config Config
	TrialMetrics
	Duration time.Duration
	// Err is the failure text ("" on success); kept as a string so results
	// cross gob transports.
	Err string
	// Canceled marks trials dropped by study-level early stopping.
	Canceled bool
}

// StudyResult aggregates a finished study.
type StudyResult struct {
	Algorithm string
	Trials    []TrialResult
	// Best is the successful trial with the highest BestAcc.
	Best *TrialResult
	// Stopped reports study-level early stopping (target accuracy reached).
	Stopped  bool
	Duration time.Duration
	// Plot holds the final plot task's output when Visualise was set.
	Plot string
	// Resumed counts trials restored from the checkpoint instead of run.
	Resumed int
	// Memoized counts trials answered from another study's persisted
	// results via the store's fingerprint index (Hippo-style reuse).
	Memoized int
}

// BestAccuracy returns the best accuracy or 0.
func (r *StudyResult) BestAccuracy() float64 {
	if r.Best == nil {
		return 0
	}
	return r.Best.BestAcc
}

// StudyOptions configures Run.
type StudyOptions struct {
	// Space defines the hyperparameters (used by samplers; Grid/Random
	// already hold it, so this may be nil).
	Space *Space
	// Sampler proposes configurations.
	Sampler Sampler
	// Objective evaluates them.
	Objective Objective
	// Runtime executes experiment tasks; the study registers its task
	// definitions on it. Must use a Real or Remote backend (training needs
	// to actually run).
	Runtime *runtime.Runtime
	// Constraint is the per-experiment resource requirement, the paper's
	// @constraint decorator.
	Constraint runtime.Constraint
	// BatchSize bounds how many configs are in flight between Ask/Tell
	// cycles; 0 means "everything the sampler offers at once", the natural
	// choice for grid/random (the paper submits all tasks in one loop).
	BatchSize int
	// TargetAccuracy, when > 0, stops the study as soon as any trial
	// reports it (§6.1: "the process can be stopped as soon as one task
	// achieves a specified accuracy"). Running trials also stop themselves.
	TargetAccuracy float64
	// Seed drives per-trial seeds.
	Seed uint64
	// OnEpoch, when non-nil, observes streamed per-epoch accuracy from all
	// trials (trialID, epoch, accuracy). Local backends only — epoch
	// streams do not cross Remote transports.
	OnEpoch func(trial, epoch int, acc float64)
	// Visualise, when true, rebuilds the paper's Figure-3 application
	// shape for real: each experiment feeds a visualisation task and a
	// final plot task aggregates them; the plot output lands in
	// StudyResult.Plot. Real backend only.
	Visualise bool
	// CheckpointPath, when non-empty, persists finished trials as JSON
	// after every round and resumes from it on the next Run — master-side
	// fault tolerance complementing the runtime's task retries. Shorthand
	// for Recorder = store.NewFileRecorder(path); ignored when Recorder is
	// set.
	CheckpointPath string
	// Recorder, when non-nil, persists finished trials after every round
	// and restores them on the next Run. A journal-backed recorder
	// (store.Journal.Recorder) additionally memoizes: configs already
	// solved by any persisted study return their cached result instead of
	// re-executing.
	Recorder store.Recorder
}

// Study orchestrates an HPO run on the task runtime: one task per config,
// exactly the application structure of the paper's Figure 2.
type Study struct {
	opts     StudyOptions
	recorder store.Recorder

	mu      sync.Mutex
	results []TrialResult
	stopped bool
	nextID  int
}

// NewStudy validates options and builds a study.
func NewStudy(opts StudyOptions) (*Study, error) {
	if opts.Sampler == nil {
		return nil, errors.New("hpo: study needs a Sampler")
	}
	if opts.Objective == nil {
		return nil, errors.New("hpo: study needs an Objective")
	}
	if opts.Runtime == nil {
		return nil, errors.New("hpo: study needs a Runtime")
	}
	rec := opts.Recorder
	if rec == nil && opts.CheckpointPath != "" {
		rec = store.NewFileRecorder(opts.CheckpointPath)
	}
	return &Study{opts: opts, recorder: rec}, nil
}

// taskName is the registered experiment task type.
const taskName = "experiment"

// Run executes the study to completion (or early stop) and returns the
// aggregated result.
func (s *Study) Run() (*StudyResult, error) {
	rt := s.opts.Runtime
	// In distributed deployments the master pre-registers the experiment
	// task via ExperimentTaskDef; otherwise register the local wrapper.
	if !rt.Registered(taskName) {
		def := runtime.TaskDef{
			Name:       taskName,
			Returns:    1,
			Constraint: s.opts.Constraint,
			Fn:         s.experimentTask,
		}
		if err := rt.Register(def); err != nil {
			return nil, err
		}
	}
	if s.opts.Visualise {
		if err := s.registerPipeline(); err != nil {
			return nil, err
		}
	}

	checkpoint, err := s.loadCheckpoint()
	if err != nil {
		return nil, err
	}
	resumed, memoized := 0, 0
	start := time.Now()

	var visFuts []*runtime.Future
	batch := s.opts.BatchSize
	for {
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			break
		}
		configs := s.opts.Sampler.Ask(batch)
		if len(configs) == 0 {
			if s.opts.Sampler.Done() {
				break
			}
			// Sampler is waiting on results it has not seen; nothing in
			// flight means a stuck sampler, which is a bug worth surfacing.
			return nil, fmt.Errorf("hpo: sampler %q stalled (asked nothing while idle)", s.opts.Sampler.Name())
		}

		roundResults := make([]TrialResult, 0, len(configs))
		futs := make([]*runtime.Future, 0, len(configs))
		ids := make([]int, 0, len(configs))
		pendingCfgs := make([]Config, 0, len(configs))
		for _, cfg := range configs {
			fp := cfg.Fingerprint()
			if cached, ok := checkpoint[fp]; ok {
				roundResults = append(roundResults, cached)
				resumed++
				continue
			}
			s.mu.Lock()
			id := s.nextID
			s.nextID++
			s.mu.Unlock()
			if memo, ok := s.memoLookup(fp); ok {
				// Another persisted study already evaluated this exact
				// config: reuse its result under a fresh trial id.
				memo.ID = id
				memo.Config = cfg
				roundResults = append(roundResults, memo)
				memoized++
				continue
			}
			fut, err := rt.Submit1(taskName, id, cfg)
			if err != nil {
				return nil, err
			}
			futs = append(futs, fut)
			ids = append(ids, id)
			pendingCfgs = append(pendingCfgs, cfg)
			if s.opts.Visualise {
				vf, err := rt.Submit1(visTaskName, fut)
				if err != nil {
					return nil, err
				}
				visFuts = append(visFuts, vf)
			}
		}

		vals, _ := rt.WaitOn(futs...) // per-trial errors live in the results
		for i, v := range vals {
			var res TrialResult
			if tr, ok := v.(TrialResult); ok {
				res = tr
			} else {
				// Task failed or was canceled: synthesise a result.
				res = TrialResult{ID: ids[i], Config: pendingCfgs[i]}
				s.mu.Lock()
				stopped := s.stopped
				s.mu.Unlock()
				if stopped {
					res.Canceled = true
					res.Err = "canceled: study target reached"
				} else {
					res.Err = "task failed"
				}
			}
			roundResults = append(roundResults, res)
		}

		s.mu.Lock()
		s.results = append(s.results, roundResults...)
		s.mu.Unlock()
		if err := s.recordRound(roundResults); err != nil {
			return nil, err
		}
		s.opts.Sampler.Tell(roundResults)

		// Remote backends cannot stream epochs, so also honour the target
		// on completed results.
		if s.opts.TargetAccuracy > 0 {
			for _, res := range roundResults {
				if res.Err == "" && res.BestAcc >= s.opts.TargetAccuracy {
					s.triggerStop()
					break
				}
			}
		}
	}

	var plot string
	if s.opts.Visualise && len(visFuts) > 0 {
		args := make([]interface{}, len(visFuts))
		for i, f := range visFuts {
			args[i] = f
		}
		plotFut, err := rt.Submit1(plotTaskName, args...)
		if err != nil {
			return nil, err
		}
		if vals, err := rt.WaitOn(plotFut); err == nil {
			plot, _ = vals[0].(string)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	out := &StudyResult{
		Algorithm: s.opts.Sampler.Name(),
		Trials:    append([]TrialResult(nil), s.results...),
		Stopped:   s.stopped,
		Duration:  time.Since(start),
		Plot:      plot,
		Resumed:   resumed,
		Memoized:  memoized,
	}
	sort.Slice(out.Trials, func(i, j int) bool { return out.Trials[i].ID < out.Trials[j].ID })
	for i := range out.Trials {
		t := &out.Trials[i]
		if t.Err == "" && (out.Best == nil || t.BestAcc > out.Best.BestAcc) {
			out.Best = t
		}
	}
	return out, nil
}

// experimentTask is the runtime task body wrapping the objective — the
// analogue of the paper's decorated experiment() function.
func (s *Study) experimentTask(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
	trialID := args[0].(int)
	cfg := args[1].(Config)
	t0 := time.Now()

	metrics, err := s.opts.Objective.Run(ObjectiveContext{
		Config:         cfg,
		Parallelism:    ctx.Cores,
		Seed:           s.opts.Seed + uint64(trialID)*0x9e37,
		TargetAccuracy: s.opts.TargetAccuracy,
		Report: func(epoch int, acc float64) {
			if s.opts.OnEpoch != nil {
				s.opts.OnEpoch(trialID, epoch, acc)
			}
			if s.opts.TargetAccuracy > 0 && acc >= s.opts.TargetAccuracy {
				s.triggerStop()
			}
		},
	})
	res := TrialResult{
		ID: trialID, Config: cfg, TrialMetrics: metrics,
		Duration: time.Since(t0),
	}
	if err != nil {
		res.Err = err.Error()
	}
	// The task never errors at the runtime level for objective failures:
	// a failed experiment is a result, not a scheduling fault (a Python
	// exception in one training would not crash the COMPSs master).
	return []interface{}{res}, nil
}

// triggerStop cancels all pending work once (study-level early stop).
func (s *Study) triggerStop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.opts.Runtime.CancelPending()
}
