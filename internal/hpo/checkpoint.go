package hpo

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// checkpointFile is the JSON schema of a study checkpoint.
type checkpointFile struct {
	Version int               `json:"version"`
	Trials  []checkpointTrial `json:"trials"`
}

// checkpointTrial flattens TrialResult for stable JSON.
type checkpointTrial struct {
	ID            int                    `json:"id"`
	Config        map[string]interface{} `json:"config"`
	FinalAcc      float64                `json:"final_acc"`
	BestAcc       float64                `json:"best_acc"`
	FinalLoss     float64                `json:"final_loss"`
	Epochs        int                    `json:"epochs"`
	ValAccHistory []float64              `json:"val_acc_history,omitempty"`
	Stopped       bool                   `json:"stopped,omitempty"`
	StopReason    string                 `json:"stop_reason,omitempty"`
	DurationNS    int64                  `json:"duration_ns"`
	Err           string                 `json:"err,omitempty"`
	Canceled      bool                   `json:"canceled,omitempty"`
}

func encodeCheckpoint(trials []TrialResult) ([]byte, error) {
	f := checkpointFile{Version: 1}
	for _, t := range trials {
		f.Trials = append(f.Trials, checkpointTrial{
			ID: t.ID, Config: t.Config,
			FinalAcc: t.FinalAcc, BestAcc: t.BestAcc, FinalLoss: t.FinalLoss,
			Epochs: t.Epochs, ValAccHistory: t.ValAccHistory,
			Stopped: t.Stopped, StopReason: t.StopReason,
			DurationNS: int64(t.Duration), Err: t.Err, Canceled: t.Canceled,
		})
	}
	return json.MarshalIndent(f, "", "  ")
}

func decodeCheckpoint(raw []byte) ([]TrialResult, error) {
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("hpo: parsing checkpoint: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("hpo: unsupported checkpoint version %d", f.Version)
	}
	out := make([]TrialResult, 0, len(f.Trials))
	for _, t := range f.Trials {
		out = append(out, TrialResult{
			ID:     t.ID,
			Config: normaliseConfig(t.Config),
			TrialMetrics: TrialMetrics{
				FinalAcc: t.FinalAcc, BestAcc: t.BestAcc, FinalLoss: t.FinalLoss,
				Epochs: t.Epochs, ValAccHistory: t.ValAccHistory,
				Stopped: t.Stopped, StopReason: t.StopReason,
			},
			Duration: time.Duration(t.DurationNS),
			Err:      t.Err,
			Canceled: t.Canceled,
		})
	}
	return out, nil
}

// normaliseConfig restores integer types lost by JSON (20 → 20.0), keeping
// fingerprints identical across a save/load cycle.
func normaliseConfig(m map[string]interface{}) Config {
	cfg := make(Config, len(m))
	for k, v := range m {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1e15 {
			cfg[k] = int(f)
			continue
		}
		cfg[k] = v
	}
	return cfg
}
