package hpo

import (
	"time"

	"repro/internal/comm"
	"repro/internal/runtime"
)

// ServeWorkers is the shared scale-out bootstrap used by cmd/hpo and
// cmd/hpod: it registers the distributed experiment task on the Remote
// master rt, starts n in-process TCP workers (each holding its own
// objective copy, as COMPSs workers read from the parallel filesystem)
// and attaches them. On error every resource acquired here is released;
// the caller still owns rt. onWorkerExit, when non-nil, observes worker
// serve-loop errors.
func ServeWorkers(rt *runtime.Runtime, makeObjective func() (Objective, error),
	constraint runtime.Constraint, seed uint64, target float64,
	workers, coresPerWorker int, onWorkerExit func(error)) error {

	RegisterWireTypes()
	masterObj, err := makeObjective()
	if err != nil {
		return err
	}
	if err := rt.Register(ExperimentTaskDef(masterObj, constraint, seed, target)); err != nil {
		return err
	}
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	for i := 0; i < workers; i++ {
		obj, err := makeObjective()
		if err != nil {
			ln.Close()
			return err
		}
		w := runtime.NewWorker(coresPerWorker, 0)
		if err := w.Register(ExperimentTaskDef(obj, constraint, seed, target)); err != nil {
			ln.Close()
			return err
		}
		go func() {
			if err := w.ConnectAndServe(ln.Addr()); err != nil && onWorkerExit != nil {
				onWorkerExit(err)
			}
		}()
	}
	if err := rt.ListenAndAttach(ln, workers); err != nil {
		ln.Close()
		return err
	}
	// All workers are attached over accepted connections; the listener
	// itself is no longer needed and would otherwise leak one fd per study
	// execution in the long-lived daemon.
	ln.Close()
	return nil
}

// RegisterWireTypes registers the HPO types that cross gob transports when
// a study runs on the Remote backend. Call once in both master and worker
// processes before attaching workers.
func RegisterWireTypes() {
	comm.RegisterGobTypes(Config{}, TrialResult{}, TrialMetrics{})
}

// ExperimentTaskDef builds the "experiment" task definition used by both
// local studies and distributed workers: the same (trialID, config) →
// TrialResult contract, executed against the given objective (each worker
// holds its own dataset copy, as COMPSs workers read from the PFS).
//
// Per-epoch metrics stream back to the master through TaskContext.Report —
// in-process on the Real backend, over the worker transport on Remote — so
// the master-side Study can prune losing trials and stop at the target
// accuracy off-node, not just locally. Cancellation arrives cooperatively
// through TaskContext.Canceled and stops the training at the next epoch
// boundary with a partial result.
func ExperimentTaskDef(obj Objective, constraint runtime.Constraint, seed uint64, targetAcc float64) runtime.TaskDef {
	return runtime.TaskDef{
		Name:       taskName,
		Returns:    1,
		Constraint: constraint,
		Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
			return runExperimentBody(obj, seed, targetAcc, ctx, args)
		},
	}
}

// runExperimentBody executes one trial against the objective, wiring the
// task context's streaming and cancellation into the objective contract.
// The task never errors at the runtime level for objective failures: a
// failed experiment is a result, not a scheduling fault (a Python exception
// in one training would not crash the COMPSs master).
func runExperimentBody(obj Objective, seed uint64, targetAcc float64,
	ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {

	trialID := args[0].(int)
	cfg := args[1].(Config)
	t0 := time.Now()

	octx := ObjectiveContext{
		Config:         cfg,
		Parallelism:    ctx.Cores,
		Seed:           seed + uint64(trialID)*0x9e37,
		TargetAccuracy: targetAcc,
	}
	if report := ctx.Report; report != nil {
		octx.Report = func(epoch int, acc float64) { report(epoch, acc) }
	}
	if done := ctx.Canceled; done != nil {
		octx.Halt = func() string {
			select {
			case <-done:
				return "canceled by master"
			default:
				return ""
			}
		}
	}
	// Rung-driven trials carry their promotion ceiling in the hidden
	// "_hb_max" key: activate the runtime's budget gate at the configured
	// num_epochs so the master can halt or extend the trial at rung
	// boundaries without re-submitting it. Backends without gates (and
	// configs without a ceiling) train exactly num_epochs, as before.
	if gate := ctx.Budget; gate != nil {
		base := cfg.Int("num_epochs", 0)
		if maxB := cfg.Int("_hb_max", 0); base > 0 && maxB > base {
			gate.SetLimit(base)
			octx.EpochCeiling = maxB
			octx.Proceed = gate.Allow
		}
	}

	metrics, err := obj.Run(octx)
	res := TrialResult{
		ID: trialID, Config: cfg, TrialMetrics: metrics,
		Duration: time.Since(t0),
	}
	if err != nil {
		res.Err = err.Error()
	}
	return []interface{}{res}, nil
}
