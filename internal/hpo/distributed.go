package hpo

import (
	"time"

	"repro/internal/comm"
	"repro/internal/runtime"
)

// RegisterWireTypes registers the HPO types that cross gob transports when
// a study runs on the Remote backend. Call once in both master and worker
// processes before attaching workers.
func RegisterWireTypes() {
	comm.RegisterGobTypes(Config{}, TrialResult{}, TrialMetrics{})
}

// ExperimentTaskDef builds the worker-side "experiment" task definition for
// distributed studies: the same (trialID, config) → TrialResult contract the
// Study submits, executed against a worker-local objective (each worker
// holds its own dataset copy, as COMPSs workers read from the PFS).
//
// Per-epoch streaming callbacks do not cross the wire; trials still stop
// themselves at targetAcc, and the master-side Study stops the whole run
// when a returned result reaches its target.
func ExperimentTaskDef(obj Objective, constraint runtime.Constraint, seed uint64, targetAcc float64) runtime.TaskDef {
	return runtime.TaskDef{
		Name:       taskName,
		Returns:    1,
		Constraint: constraint,
		Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
			trialID := args[0].(int)
			cfg := args[1].(Config)
			t0 := time.Now()
			metrics, err := obj.Run(ObjectiveContext{
				Config:         cfg,
				Parallelism:    ctx.Cores,
				Seed:           seed + uint64(trialID)*0x9e37,
				TargetAccuracy: targetAcc,
			})
			res := TrialResult{
				ID: trialID, Config: cfg, TrialMetrics: metrics,
				Duration: time.Since(t0),
			}
			if err != nil {
				res.Err = err.Error()
			}
			return []interface{}{res}, nil
		},
	}
}
