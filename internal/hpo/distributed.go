package hpo

import (
	"time"

	"repro/internal/comm"
	"repro/internal/runtime"
)

// ServeWorkers is the shared scale-out bootstrap used by cmd/hpo and
// cmd/hpod: it registers the distributed experiment task on the Remote
// master rt, starts n in-process TCP workers (each holding its own
// objective copy, as COMPSs workers read from the parallel filesystem)
// and attaches them. On error every resource acquired here is released;
// the caller still owns rt. onWorkerExit, when non-nil, observes worker
// serve-loop errors.
func ServeWorkers(rt *runtime.Runtime, makeObjective func() (Objective, error),
	constraint runtime.Constraint, seed uint64, target float64,
	workers, coresPerWorker int, onWorkerExit func(error)) error {

	RegisterWireTypes()
	masterObj, err := makeObjective()
	if err != nil {
		return err
	}
	if err := rt.Register(ExperimentTaskDef(masterObj, constraint, seed, target)); err != nil {
		return err
	}
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	for i := 0; i < workers; i++ {
		obj, err := makeObjective()
		if err != nil {
			ln.Close()
			return err
		}
		w := runtime.NewWorker(coresPerWorker, 0)
		if err := w.Register(ExperimentTaskDef(obj, constraint, seed, target)); err != nil {
			ln.Close()
			return err
		}
		go func() {
			if err := w.ConnectAndServe(ln.Addr()); err != nil && onWorkerExit != nil {
				onWorkerExit(err)
			}
		}()
	}
	if err := rt.ListenAndAttach(ln, workers); err != nil {
		ln.Close()
		return err
	}
	// All workers are attached over accepted connections; the listener
	// itself is no longer needed and would otherwise leak one fd per study
	// execution in the long-lived daemon.
	ln.Close()
	return nil
}

// RegisterWireTypes registers the HPO types that cross gob transports when
// a study runs on the Remote backend. Call once in both master and worker
// processes before attaching workers.
func RegisterWireTypes() {
	comm.RegisterGobTypes(Config{}, TrialResult{}, TrialMetrics{})
}

// ExperimentTaskDef builds the worker-side "experiment" task definition for
// distributed studies: the same (trialID, config) → TrialResult contract the
// Study submits, executed against a worker-local objective (each worker
// holds its own dataset copy, as COMPSs workers read from the PFS).
//
// Per-epoch streaming callbacks do not cross the wire; trials still stop
// themselves at targetAcc, and the master-side Study stops the whole run
// when a returned result reaches its target.
func ExperimentTaskDef(obj Objective, constraint runtime.Constraint, seed uint64, targetAcc float64) runtime.TaskDef {
	return runtime.TaskDef{
		Name:       taskName,
		Returns:    1,
		Constraint: constraint,
		Fn: func(ctx *runtime.TaskContext, args []interface{}) ([]interface{}, error) {
			trialID := args[0].(int)
			cfg := args[1].(Config)
			t0 := time.Now()
			metrics, err := obj.Run(ObjectiveContext{
				Config:         cfg,
				Parallelism:    ctx.Cores,
				Seed:           seed + uint64(trialID)*0x9e37,
				TargetAccuracy: targetAcc,
			})
			res := TrialResult{
				ID: trialID, Config: cfg, TrialMetrics: metrics,
				Duration: time.Since(t0),
			}
			if err != nil {
				res.Err = err.Error()
			}
			return []interface{}{res}, nil
		},
	}
}
