package paperrepro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// --- A1: scheduler policy ablation ---

// SchedAblationResult compares makespans of the scheduling policies on a
// contended node (8 cores, 27 mixed-duration tasks), where queue ordering
// matters.
type SchedAblationResult struct {
	Policies  []string
	Makespans []time.Duration
}

// String implements fmt.Stringer.
func (r SchedAblationResult) String() string {
	var rows [][]string
	for i := range r.Policies {
		rows = append(rows, []string{r.Policies[i], formatDuration(r.Makespans[i])})
	}
	return "Ablation A1 — scheduler policy (27 MNIST tasks on 8 cores)\n" +
		table([]string{"policy", "makespan"}, rows)
}

// AblationScheduler runs the grid under each policy. The priority run marks
// the 100-epoch tasks priority=true, approximating longest-processing-time
// ordering, which should not be worse than plain FIFO.
func AblationScheduler() (SchedAblationResult, error) {
	var r SchedAblationResult
	for _, policy := range []runtime.Policy{runtime.PolicyFIFO, runtime.PolicyLIFO, runtime.PolicyPriority, runtime.PolicyLocality} {
		ms, err := schedRun(policy)
		if err != nil {
			return r, err
		}
		r.Policies = append(r.Policies, policy.String())
		r.Makespans = append(r.Makespans, ms)
	}
	return r, nil
}

func schedRun(policy runtime.Policy) (time.Duration, error) {
	rt, err := runtime.New(runtime.Options{
		Cluster: cluster.Uniform("small", 1, 8, 0, 1, 1),
		Backend: runtime.Sim,
		Policy:  policy,
	})
	if err != nil {
		return 0, err
	}
	base := runtime.TaskDef{
		Name:       "experiment",
		Constraint: runtime.Constraint{Cores: 1},
		Cost:       costFor("mnist"),
	}
	hi := base
	hi.Name = "experiment_hi"
	hi.Priority = true
	rt.MustRegister(base)
	rt.MustRegister(hi)

	cfgs, err := gridConfigs()
	if err != nil {
		return 0, err
	}
	for _, cfg := range cfgs {
		name := "experiment"
		if policy == runtime.PolicyPriority && cfg.Int("num_epochs", 0) == 100 {
			name = "experiment_hi"
		}
		if _, err := rt.Submit(name, cfg); err != nil {
			return 0, err
		}
	}
	rt.Barrier()
	ms := rt.Stats().Makespan
	rt.Shutdown()
	return ms, nil
}

// --- A2: early stopping ablation ---

// EarlyStopAblationResult quantifies the §6.2 claim that early stopping is
// "of paramount significance" for MNIST-style workloads.
type EarlyStopAblationResult struct {
	TrialsWithout  int
	TrialsWith     int
	EpochsWithout  int
	EpochsWith     int
	BestAccWithout float64
	BestAccWith    float64
	CanceledTrials int
}

// String implements fmt.Stringer.
func (r EarlyStopAblationResult) String() string {
	return fmt.Sprintf("Ablation A2 — study-level early stopping (target 90%% val acc)\n"+
		"  without: %d trials, %d total epochs, best %.3f\n"+
		"  with:    %d trials ran (+%d canceled), %d total epochs, best %.3f\n"+
		"  epoch savings: %.0f%%\n",
		r.TrialsWithout, r.EpochsWithout, r.BestAccWithout,
		r.TrialsWith, r.CanceledTrials, r.EpochsWith, r.BestAccWith,
		100*(1-float64(r.EpochsWith)/float64(max(1, r.EpochsWithout))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationEarlyStopping runs the same real MNIST study with and without a
// target accuracy and compares epochs spent.
func AblationEarlyStopping() (EarlyStopAblationResult, error) {
	var r EarlyStopAblationResult
	run := func(target float64) (trials, epochs, canceled int, best float64, err error) {
		space := &hpo.Space{Params: []hpo.Param{
			hpo.Categorical{Key: "optimizer", Values: []interface{}{"Adam", "SGD", "RMSprop"}},
			hpo.Categorical{Key: "num_epochs", Values: []interface{}{6, 10}},
			hpo.Categorical{Key: "batch_size", Values: []interface{}{16, 32}},
		}}
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(2), Backend: runtime.Real})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		st, err := hpo.NewStudy(hpo.StudyOptions{
			Sampler:        hpo.NewGridSearch(space),
			Objective:      &hpo.MLObjective{Dataset: datasets.MNISTLike(500, 17), Hidden: []int{24}},
			Runtime:        rt,
			Constraint:     runtime.Constraint{Cores: 1},
			TargetAccuracy: target,
			Seed:           3,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		res, err := st.Run()
		rt.Shutdown()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		for _, t := range res.Trials {
			if t.Canceled {
				canceled++
				continue
			}
			trials++
			epochs += t.Epochs
			if t.BestAcc > best {
				best = t.BestAcc
			}
		}
		return trials, epochs, canceled, best, nil
	}
	var err error
	r.TrialsWithout, r.EpochsWithout, _, r.BestAccWithout, err = run(0)
	if err != nil {
		return r, err
	}
	r.TrialsWith, r.EpochsWith, r.CanceledTrials, r.BestAccWith, err = run(0.9)
	return r, err
}

// --- A3: tracing overhead ablation ---

// TraceOverheadResult measures the recorder's cost on a task-dense workload
// (the paper disables tracing for its timing runs, §5).
type TraceOverheadResult struct {
	Tasks          int
	WallUntraced   time.Duration
	WallTraced     time.Duration
	OverheadPct    float64
	RecordsWritten int
}

// String implements fmt.Stringer.
func (r TraceOverheadResult) String() string {
	return fmt.Sprintf("Ablation A3 — tracing overhead (%d no-op tasks, Real backend)\n"+
		"  untraced: %v\n  traced:   %v (%d records)\n  overhead: %.1f%%\n",
		r.Tasks, r.WallUntraced, r.WallTraced, r.RecordsWritten, r.OverheadPct)
}

// AblationTracing times a burst of trivial tasks with tracing on and off.
func AblationTracing() (TraceOverheadResult, error) {
	const tasks = 400
	run := func(rec *trace.Recorder) (time.Duration, error) {
		rt, err := runtime.New(runtime.Options{
			Cluster:  cluster.Local(8),
			Backend:  runtime.Real,
			Recorder: rec,
		})
		if err != nil {
			return 0, err
		}
		rt.MustRegister(runtime.TaskDef{
			Name: "noop",
			Fn:   func(*runtime.TaskContext, []interface{}) ([]interface{}, error) { return nil, nil },
		})
		start := time.Now()
		for i := 0; i < tasks; i++ {
			if _, err := rt.Submit("noop"); err != nil {
				return 0, err
			}
		}
		rt.Barrier()
		wall := time.Since(start)
		rt.Shutdown()
		return wall, nil
	}
	untraced, err := run(nil)
	if err != nil {
		return TraceOverheadResult{}, err
	}
	rec := trace.NewRecorder()
	traced, err := run(rec)
	if err != nil {
		return TraceOverheadResult{}, err
	}
	overhead := 0.0
	if untraced > 0 {
		overhead = (float64(traced)/float64(untraced) - 1) * 100
	}
	return TraceOverheadResult{
		Tasks:          tasks,
		WallUntraced:   untraced,
		WallTraced:     traced,
		OverheadPct:    overhead,
		RecordsWritten: len(rec.Intervals()) + len(rec.Events()),
	}, nil
}

// --- A4: fault tolerance ablation ---

// FaultAblationResult measures the makespan penalty of injected node
// faults under the retry/resubmit policy (§3).
type FaultAblationResult struct {
	CleanMakespan  time.Duration
	FaultyMakespan time.Duration
	Retries        int
	Failed         int
	PenaltyPct     float64
	InjectedFaults int
}

// String implements fmt.Stringer.
func (r FaultAblationResult) String() string {
	return fmt.Sprintf("Ablation A4 — fault tolerance (27 CIFAR tasks on 13 nodes, every 5th task's\n"+
		"first attempt killed)\n"+
		"  clean:  %s\n  faulty: %s (%d retries, %d injected faults, %d permanent failures)\n"+
		"  makespan penalty: %.1f%%\n",
		formatDuration(r.CleanMakespan), formatDuration(r.FaultyMakespan),
		r.Retries, r.InjectedFaults, r.Failed, r.PenaltyPct)
}

// AblationFaultTolerance compares the 13-node CIFAR run with and without
// injected first-attempt failures; all tasks must still complete.
func AblationFaultTolerance() (FaultAblationResult, error) {
	clean, _, err := simGrid(cluster.MareNostrum4(13), 48, 0, "cifar", runtime.PolicyFIFO, nil)
	if err != nil {
		return FaultAblationResult{}, err
	}
	injected := 0
	faults := func(task, attempt, node int) error {
		if task%5 == 0 && attempt == 0 {
			injected++
			return errors.New("injected node fault")
		}
		return nil
	}
	faulty, _, err := simGrid(cluster.MareNostrum4(13), 48, 0, "cifar", runtime.PolicyFIFO, faults)
	if err != nil {
		return FaultAblationResult{}, err
	}
	return FaultAblationResult{
		CleanMakespan:  clean.Makespan,
		FaultyMakespan: faulty.Makespan,
		Retries:        faulty.Retried,
		Failed:         faulty.Failed,
		InjectedFaults: injected,
		PenaltyPct:     (float64(faulty.Makespan)/float64(clean.Makespan) - 1) * 100,
	}, nil
}
