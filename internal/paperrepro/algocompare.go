package paperrepro

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
)

// AlgoCompareResult quantifies the paper's §6.2 remark that "random search
// would be a better alternative as it's possible to determine a good set of
// hyperparameters with just a few experiments": the full 27-trial grid
// versus a 9-trial random search on the CIFAR-like benchmark, real training.
type AlgoCompareResult struct {
	GridTrials   int
	GridBest     float64
	RandomTrials int
	RandomBest   float64
	// Fraction of the grid's best accuracy that a third of the trials
	// recovers.
	RecoveredFrac float64
}

// String implements fmt.Stringer.
func (r AlgoCompareResult) String() string {
	return fmt.Sprintf("Algorithm comparison — §6.2 'random search would be a better alternative'\n"+
		"  grid:   %2d trials → best %.4f\n"+
		"  random: %2d trials → best %.4f (%.0f%% of grid best at 1/3 the trials)\n",
		r.GridTrials, r.GridBest, r.RandomTrials, r.RandomBest, r.RecoveredFrac*100)
}

// AlgorithmComparison runs both searches over the same scaled-down paper
// space with identical per-trial seeds.
func AlgorithmComparison() (AlgoCompareResult, error) {
	space := &hpo.Space{Params: []hpo.Param{
		hpo.Categorical{Key: "optimizer", Values: []interface{}{"Adam", "SGD", "RMSprop"}},
		hpo.Categorical{Key: "num_epochs", Values: []interface{}{4, 8, 12}},
		hpo.Categorical{Key: "batch_size", Values: []interface{}{16, 32, 64}},
	}}
	run := func(sampler hpo.Sampler) (int, float64, error) {
		rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(8), Backend: runtime.Real})
		if err != nil {
			return 0, 0, err
		}
		study, err := hpo.NewStudy(hpo.StudyOptions{
			Sampler:    sampler,
			Objective:  &hpo.MLObjective{Dataset: datasets.CIFARLike(500, 61), Hidden: []int{32}},
			Runtime:    rt,
			Constraint: runtime.Constraint{Cores: 1},
			Seed:       61,
		})
		if err != nil {
			return 0, 0, err
		}
		res, err := study.Run()
		rt.Shutdown()
		if err != nil {
			return 0, 0, err
		}
		return len(res.Trials), res.BestAccuracy(), nil
	}

	var r AlgoCompareResult
	var err error
	r.GridTrials, r.GridBest, err = run(hpo.NewGridSearch(space))
	if err != nil {
		return r, err
	}
	r.RandomTrials, r.RandomBest, err = run(hpo.NewRandomSearch(space, 9, 62))
	if err != nil {
		return r, err
	}
	if r.GridBest > 0 {
		r.RecoveredFrac = r.RandomBest / r.GridBest
	}
	return r, nil
}
