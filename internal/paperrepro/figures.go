package paperrepro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/hpo"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// --- Figure 3: dynamic task graph ---

// Fig3Result holds the reproduced task graph of the HPO application
// (experiment → visualisation per trial, then a sync and a final plot).
type Fig3Result struct {
	DOT       string
	Tasks     int
	Edges     int
	SyncNodes int
}

// String implements fmt.Stringer.
func (r Fig3Result) String() string {
	return fmt.Sprintf("Figure 3 — task graph: %d task nodes, %d edges, %d sync node(s)\n%s",
		r.Tasks, r.Edges, r.SyncNodes, r.DOT)
}

// Figure3 reproduces the paper's Figure 3: the dependency graph PyCOMPSs
// builds for the HPO application, with versioned data edges (d1v2, ...) and
// a synchronisation before the final plot.
func Figure3() (Fig3Result, error) {
	rt, err := runtime.New(runtime.Options{
		Cluster: cluster.MareNostrum4(1),
		Backend: runtime.Sim,
		Graph:   true,
	})
	if err != nil {
		return Fig3Result{}, err
	}
	quick := func(d time.Duration) runtime.CostFunc {
		return func([]interface{}, runtime.SimResources) time.Duration { return d }
	}
	rt.MustRegister(runtime.TaskDef{Name: "experiment", Returns: 1, Cost: quick(time.Minute)})
	rt.MustRegister(runtime.TaskDef{Name: "visualisation", Returns: 1, Cost: quick(time.Second)})
	rt.MustRegister(runtime.TaskDef{Name: "plot", Returns: 1, Cost: quick(time.Second)})

	const experiments = 10
	var visFuts []*runtime.Future
	for i := 0; i < experiments; i++ {
		e, err := rt.Submit1("experiment", hpo.Config{"trial": i})
		if err != nil {
			return Fig3Result{}, err
		}
		v, err := rt.Submit1("visualisation", e)
		if err != nil {
			return Fig3Result{}, err
		}
		visFuts = append(visFuts, v)
	}
	if _, err := rt.WaitOn(visFuts...); err != nil {
		return Fig3Result{}, err
	}
	args := make([]interface{}, len(visFuts))
	for i, f := range visFuts {
		args[i] = f
	}
	p, err := rt.Submit1("plot", args...)
	if err != nil {
		return Fig3Result{}, err
	}
	if _, err := rt.WaitOn(p); err != nil {
		return Fig3Result{}, err
	}
	dot, err := rt.ExportDOT("hpo")
	rt.Shutdown()
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{
		DOT:       dot,
		Tasks:     2*experiments + 1,
		Edges:     strings.Count(dot, "->"),
		SyncNodes: strings.Count(dot, "octagon"),
	}, nil
}

// --- Figure 4: one task, one core, affinity ---

// Fig4Result reproduces the single-task affinity experiment.
type Fig4Result struct {
	TaskDuration time.Duration
	BusyCores    int
	NodeCores    int
	Gantt        string
}

// String implements fmt.Stringer.
func (r Fig4Result) String() string {
	return fmt.Sprintf("Figure 4 — single MNIST task, 1 core on a %d-core node\n"+
		"  task duration: %s (paper: ≈29 min)\n  cores busy: %d (affinity enforced)\n%s",
		r.NodeCores, formatDuration(r.TaskDuration), r.BusyCores, r.Gantt)
}

// Figure4 runs one MNIST training task constrained to a single core on a
// 48-core MareNostrum 4 node and verifies only that core is used.
func Figure4() (Fig4Result, error) {
	rec := trace.NewRecorder()
	rt, err := runtime.New(runtime.Options{
		Cluster:  cluster.MareNostrum4(1),
		Backend:  runtime.Sim,
		Recorder: rec,
	})
	if err != nil {
		return Fig4Result{}, err
	}
	rt.MustRegister(runtime.TaskDef{
		Name:       "experiment",
		Constraint: runtime.Constraint{Cores: 1},
		Cost:       costFor("mnist"),
	})
	if _, err := rt.Submit("experiment", hpo.Config{"num_epochs": 20, "batch_size": 64, "optimizer": "Adam"}); err != nil {
		return Fig4Result{}, err
	}
	rt.Barrier()
	st := rt.Stats()
	rt.Shutdown()

	busy := map[int]bool{}
	for _, iv := range rec.Intervals() {
		if iv.State == trace.StateRunning {
			busy[iv.Core] = true
		}
	}
	return Fig4Result{
		TaskDuration: st.Makespan,
		BusyCores:    len(busy),
		NodeCores:    48,
		Gantt:        trace.RenderGantt(rec, trace.GanttOptions{Width: 64, MaxRows: 4, ShowEvents: true}),
	}, nil
}

// --- Figure 5: 27 tasks on one node ---

// Fig5Result reproduces the single-node grid experiment.
type Fig5Result struct {
	Makespan       time.Duration
	StartedAtZero  int
	WorkerCores    int
	Tasks          int
	BackfillStarts int
	PaperMakespan  time.Duration
	UtilisationPct float64
	Gantt          string
}

// String implements fmt.Stringer.
func (r Fig5Result) String() string {
	return fmt.Sprintf("Figure 5 — %d-task MNIST grid on one node (%d task cores)\n"+
		"  makespan: %s (paper: %s)\n  tasks started immediately: %d (paper: 24)\n"+
		"  backfilled starts: %d\n  core utilisation: %.1f%%\n%s",
		r.Tasks, r.WorkerCores, formatDuration(r.Makespan), formatDuration(r.PaperMakespan),
		r.StartedAtZero, r.BackfillStarts, r.UtilisationPct, r.Gantt)
}

// Figure5 runs the full 27-experiment MNIST grid on a single node whose
// worker occupies half the 48 cores, leaving 24 for tasks (paper §5): 24
// tasks start at once and the remaining three backfill as cores free up.
func Figure5() (Fig5Result, error) {
	// 24 task cores: the COMPSs worker reserves half the node.
	spec := cluster.Uniform("MareNostrum4-half", 1, 24, 0, 1.0, 1.0)
	st, rec, err := simGrid(spec, 1, 0, "mnist", runtime.PolicyFIFO, nil)
	if err != nil {
		return Fig5Result{}, err
	}
	stats := rec.ComputeStats()
	return Fig5Result{
		Makespan:       st.Makespan,
		StartedAtZero:  startedAtZero(rec),
		WorkerCores:    24,
		Tasks:          27,
		BackfillStarts: 27 - startedAtZero(rec),
		PaperMakespan:  207 * time.Minute,
		UtilisationPct: stats.Utilisation * 100,
		Gantt:          trace.RenderGantt(rec, trace.GanttOptions{Width: 64, MaxRows: 26, ShowEvents: true}),
	}, nil
}

// --- Figure 6: multiple nodes, 28 vs 14 ---

// Fig6Result reproduces the multi-node CIFAR experiment.
type Fig6Result struct {
	MakespanFull time.Duration // 28 nodes requested → 27 usable
	MakespanHalf time.Duration // 14 nodes requested → 13 usable
	Ratio        float64
}

// String implements fmt.Stringer.
func (r Fig6Result) String() string {
	return fmt.Sprintf("Figure 6 — 27 CIFAR tasks × 48 cores, multi-node\n"+
		"  (a) 28 nodes (27 usable): %s\n  (b) 14 nodes (13 usable): %s\n"+
		"  half/full ratio: %.2f (paper: 'almost the same amount of time', well under 2×)\n",
		formatDuration(r.MakespanFull), formatDuration(r.MakespanHalf), r.Ratio)
}

// Figure6 runs 27 CIFAR tasks, each taking a whole 48-core node, on the
// paper's two reservations: 28 nodes (one for the worker → 27 usable) and
// 14 nodes (13 usable). Because tasks finish at different times, the
// half-size run costs much less than 2× the full run.
func Figure6() (Fig6Result, error) {
	full, _, err := simGrid(cluster.MareNostrum4(27), 48, 0, "cifar", runtime.PolicyFIFO, nil)
	if err != nil {
		return Fig6Result{}, err
	}
	half, _, err := simGrid(cluster.MareNostrum4(13), 48, 0, "cifar", runtime.PolicyFIFO, nil)
	if err != nil {
		return Fig6Result{}, err
	}
	return Fig6Result{
		MakespanFull: full.Makespan,
		MakespanHalf: half.Makespan,
		Ratio:        float64(half.Makespan) / float64(full.Makespan),
	}, nil
}

// --- Figures 7 and 8: HPO accuracy curves (real training) ---

// FigAccResult holds a real grid-search study's accuracy curves.
type FigAccResult struct {
	Figure     string
	Dataset    string
	Trials     []hpo.TrialResult
	Above90Pct float64
	BestAcc    float64
	Curves     string
	Table      string
}

// String implements fmt.Stringer.
func (r FigAccResult) String() string {
	return fmt.Sprintf("%s — %s grid search (%d trials, real training)\n"+
		"  best accuracy: %.3f\n  trials above 90%%: %.0f%%\n%s\n%s",
		r.Figure, r.Dataset, len(r.Trials), r.BestAcc, r.Above90Pct*100, r.Curves, r.Table)
}

// accuracyStudy runs a real 27-config grid study on a dataset. Epoch counts
// are scaled down from the paper's {20,50,100} so the experiment fits a test
// budget while keeping three distinct training lengths.
func accuracyStudy(name string, ds *datasets.Dataset, epochs []int) (FigAccResult, error) {
	space := &hpo.Space{Params: []hpo.Param{
		hpo.Categorical{Key: "optimizer", Values: []interface{}{"Adam", "SGD", "RMSprop"}},
		hpo.Categorical{Key: "num_epochs", Values: []interface{}{epochs[0], epochs[1], epochs[2]}},
		hpo.Categorical{Key: "batch_size", Values: []interface{}{16, 32, 64}},
	}}
	rt, err := runtime.New(runtime.Options{Cluster: cluster.Local(8), Backend: runtime.Real})
	if err != nil {
		return FigAccResult{}, err
	}
	study, err := hpo.NewStudy(hpo.StudyOptions{
		Sampler:    hpo.NewGridSearch(space),
		Objective:  &hpo.MLObjective{Dataset: ds, Hidden: []int{32}},
		Runtime:    rt,
		Constraint: runtime.Constraint{Cores: 1},
		Seed:       7,
	})
	if err != nil {
		return FigAccResult{}, err
	}
	res, err := study.Run()
	rt.Shutdown()
	if err != nil {
		return FigAccResult{}, err
	}
	above, best := 0, 0.0
	for _, t := range res.Trials {
		if t.BestAcc > 0.9 {
			above++
		}
		if t.BestAcc > best {
			best = t.BestAcc
		}
	}
	return FigAccResult{
		Dataset:    ds.Name,
		Trials:     res.Trials,
		Above90Pct: float64(above) / float64(len(res.Trials)),
		BestAcc:    best,
		Curves:     hpo.RenderCurves(res.Trials, 64, 14),
		Table:      hpo.RenderTable(res.Trials),
	}, nil
}

// Figure7 reproduces the MNIST grid-search accuracy curves: most
// combinations exceed 90% validation accuracy (paper §6.2).
func Figure7() (FigAccResult, error) {
	r, err := accuracyStudy("mnist", datasets.MNISTLike(800, 41), []int{4, 8, 12})
	r.Figure = "Figure 7"
	return r, err
}

// Figure8 reproduces the CIFAR-10 curves: a harder benchmark where curves
// sit lower and improve more slowly.
func Figure8() (FigAccResult, error) {
	r, err := accuracyStudy("cifar", datasets.CIFARLike(600, 42), []int{4, 8, 12})
	r.Figure = "Figure 8"
	return r, err
}

// --- Figure 9: time vs cores ---

// Fig9Result holds the three sweeps of the paper's Figure 9.
type Fig9Result struct {
	OneNode  Series // MNIST grid, 1 CPU node (24 task cores)
	TwoNodes Series // MNIST grid, 2 CPU nodes (48 task cores)
	GPUNode  Series // CIFAR grid, POWER9 node, 4 GPUs, cores/task swept
}

// String implements fmt.Stringer.
func (r Fig9Result) String() string {
	var rows [][]string
	for i := range r.OneNode.X {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.OneNode.X[i]),
			fmt.Sprintf("%.1f", r.OneNode.Y[i]),
			fmt.Sprintf("%.1f", r.TwoNodes.Y[i]),
		})
	}
	var gpuRows [][]string
	for i := range r.GPUNode.X {
		gpuRows = append(gpuRows, []string{
			fmt.Sprintf("%.0f", r.GPUNode.X[i]),
			fmt.Sprintf("%.1f", r.GPUNode.Y[i]),
		})
	}
	return "Figure 9 — time vs cores per task\n" +
		table([]string{"cores/task", "1 node (min)", "2 nodes (min)"}, rows) +
		"\nGPU node (CIFAR, 1 GPU per task, 4 parallel tasks):\n" +
		table([]string{"cores/task", "GPU node (min)"}, gpuRows) +
		"\nExpected shape: 1-node curve has a minimum then rises (resource\n" +
		"contention); 2-node curve dominates it; GPU node with 1 core is slower\n" +
		"than the CPU node (preprocessing-starved V100) and drops below an hour\n" +
		"with many cores.\n"
}

// Figure9 sweeps cores-per-task for the MNIST grid on one and two CPU nodes
// and for the CIFAR grid on a 4-GPU POWER9 node.
func Figure9() (Fig9Result, error) {
	cpuSweep := []int{1, 2, 4, 8, 16, 24}
	var r Fig9Result
	r.OneNode.Label = "MNIST, 1 node"
	r.TwoNodes.Label = "MNIST, 2 nodes"
	r.GPUNode.Label = "CIFAR, GPU node"

	for _, c := range cpuSweep {
		one, _, err := simGrid(cluster.Uniform("mn4-half", 1, 24, 0, 1, 1), c, 0, "mnist", runtime.PolicyFIFO, nil)
		if err != nil {
			return r, err
		}
		two, _, err := simGrid(cluster.Uniform("mn4-half", 2, 24, 0, 1, 1), c, 0, "mnist", runtime.PolicyFIFO, nil)
		if err != nil {
			return r, err
		}
		r.OneNode.X = append(r.OneNode.X, float64(c))
		r.OneNode.Y = append(r.OneNode.Y, one.Makespan.Minutes())
		r.TwoNodes.X = append(r.TwoNodes.X, float64(c))
		r.TwoNodes.Y = append(r.TwoNodes.Y, two.Makespan.Minutes())
	}

	for _, c := range []int{1, 2, 4, 8, 16, 32, 40} {
		gpu, _, err := simGrid(cluster.Power9(1), c, 1, "cifar", runtime.PolicyFIFO, nil)
		if err != nil {
			return r, err
		}
		r.GPUNode.X = append(r.GPUNode.X, float64(c))
		r.GPUNode.Y = append(r.GPUNode.Y, gpu.Makespan.Minutes())
	}
	return r, nil
}

// --- Scalability table (§6.3) ---

// ScalResult is the node-count sweep behind the paper's scalability claim.
type ScalResult struct {
	Nodes    []int
	Makespan []time.Duration
	Speedup  []float64
}

// String implements fmt.Stringer.
func (r ScalResult) String() string {
	var rows [][]string
	for i, n := range r.Nodes {
		eff := r.Speedup[i] / float64(n) * 100
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			formatDuration(r.Makespan[i]),
			fmt.Sprintf("%.2f×", r.Speedup[i]),
			fmt.Sprintf("%.0f%%", eff),
		})
	}
	return "Scalability — 27 CIFAR experiments, 48 cores/task, node sweep (§6.3)\n" +
		table([]string{"nodes", "makespan", "speedup", "efficiency"}, rows)
}

// Scalability sweeps the node count for the whole-node CIFAR grid,
// reproducing the paper's claim that HPO time drops from days to hours as
// nodes are added (tested to 27 nodes).
func Scalability() (ScalResult, error) {
	var r ScalResult
	var base time.Duration
	for _, n := range []int{1, 2, 4, 7, 9, 14, 27} {
		st, _, err := simGrid(cluster.MareNostrum4(n), 48, 0, "cifar", runtime.PolicyFIFO, nil)
		if err != nil {
			return r, err
		}
		if n == 1 {
			base = st.Makespan
		}
		r.Nodes = append(r.Nodes, n)
		r.Makespan = append(r.Makespan, st.Makespan)
		r.Speedup = append(r.Speedup, float64(base)/float64(st.Makespan))
	}
	return r, nil
}
