package paperrepro

import (
	"strings"
	"testing"
	"time"
)

func TestFigure3GraphShape(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks != 21 { // 10 experiments + 10 visualisations + 1 plot
		t.Fatalf("tasks = %d", r.Tasks)
	}
	if r.SyncNodes < 2 { // one WaitOn over visualisations, one over plot
		t.Fatalf("sync nodes = %d", r.SyncNodes)
	}
	for _, want := range []string{"experiment", "visualisation", "plot", "d1v1"} {
		if !strings.Contains(r.DOT, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestFigure4SingleCoreAffinity(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if r.BusyCores != 1 {
		t.Fatalf("busy cores = %d, want 1 (affinity)", r.BusyCores)
	}
	// Paper anchor: ≈29 minutes.
	if r.TaskDuration < 25*time.Minute || r.TaskDuration > 35*time.Minute {
		t.Fatalf("task duration = %v, want ≈29 min", r.TaskDuration)
	}
}

func TestFigure5SingleNodeGrid(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if r.StartedAtZero != 24 {
		t.Fatalf("started at zero = %d, want 24 (paper: '24 tasks were started at the same time')", r.StartedAtZero)
	}
	if r.BackfillStarts != 3 {
		t.Fatalf("backfill = %d, want 3", r.BackfillStarts)
	}
	// Paper: 207 minutes. Same order of magnitude required (hours not days).
	if r.Makespan < 120*time.Minute || r.Makespan > 300*time.Minute {
		t.Fatalf("makespan = %v, want within [2h, 5h] of paper's 207 min", r.Makespan)
	}
}

func TestFigure6HalfNodesCheaperThanTwice(t *testing.T) {
	r, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.MakespanHalf <= r.MakespanFull {
		t.Fatalf("half run (%v) should be slower than full (%v)", r.MakespanHalf, r.MakespanFull)
	}
	// Paper: "almost the same amount of time" — certainly well under 2×.
	if r.Ratio >= 2.0 {
		t.Fatalf("half/full ratio = %.2f, want < 2 (idle-node effect)", r.Ratio)
	}
	if r.Ratio > 1.6 {
		t.Fatalf("ratio = %.2f, want 'almost the same' (≤1.6)", r.Ratio)
	}
}

func TestFigure7MNISTMostlyAbove90(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper reproduction; skipped in -short (race CI) runs")
	}
	r, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 27 {
		t.Fatalf("trials = %d", len(r.Trials))
	}
	// Paper §6.2: "Most of the combinations ... attain above 90% accuracy".
	if r.Above90Pct < 0.5 {
		t.Fatalf("only %.0f%% of trials above 90%%, want most", r.Above90Pct*100)
	}
	if r.BestAcc < 0.9 {
		t.Fatalf("best accuracy = %v", r.BestAcc)
	}
}

func TestFigure8CIFARHarderThanMNIST(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper reproduction; skipped in -short (race CI) runs")
	}
	r8, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r8.Trials) != 27 {
		t.Fatalf("trials = %d", len(r8.Trials))
	}
	// Real learning happens (well above 10% chance) but the benchmark is
	// harder: fewer trials reach 90% than on MNIST.
	if r8.BestAcc < 0.3 {
		t.Fatalf("best CIFAR-like accuracy = %v, should beat chance clearly", r8.BestAcc)
	}
	r7, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if r8.Above90Pct >= r7.Above90Pct {
		t.Fatalf("CIFAR-like (%.2f above 90%%) should be harder than MNIST-like (%.2f)",
			r8.Above90Pct, r7.Above90Pct)
	}
}

func TestFigure9Shapes(t *testing.T) {
	r, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	one, two, gpu := r.OneNode.Y, r.TwoNodes.Y, r.GPUNode.Y

	// (1) The single-node curve must fall to a minimum and then rise
	// (paper: "the time starts to increase after 4 cores").
	minIdx := 0
	for i, v := range one {
		if v < one[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(one)-1 {
		t.Fatalf("1-node curve has no interior minimum: %v", one)
	}
	if one[len(one)-1] <= one[minIdx] {
		t.Fatalf("1-node curve does not rise after its minimum: %v", one)
	}

	// (2) Two nodes dominate one node everywhere ("the time taken ...
	// continues to decrease" when nodes are added).
	for i := range one {
		if two[i] > one[i]+1e-9 {
			t.Fatalf("2-node curve above 1-node at %v cores: %v vs %v",
				r.OneNode.X[i], two[i], one[i])
		}
	}
	// And the two-node minimum sits at >= the one-node minimum's cores.
	minIdx2 := 0
	for i, v := range two {
		if v < two[minIdx2] {
			minIdx2 = i
		}
	}
	if minIdx2 < minIdx {
		t.Fatalf("adding a node moved the optimum to fewer cores (%v vs %v)",
			r.TwoNodes.X[minIdx2], r.OneNode.X[minIdx])
	}

	// (3) GPU node with one core is slower than the best CPU-node time
	// ("the time taken is even higher than that of CPU node").
	bestCPU := one[minIdx]
	if gpu[0] <= bestCPU {
		t.Fatalf("1-core GPU run (%v min) should exceed best CPU run (%v min)", gpu[0], bestCPU)
	}
	// (4) With many cores the GPU grid drops below an hour ("brings down
	// the time for the entire HPO process to less than an hour").
	if last := gpu[len(gpu)-1]; last >= 60 {
		t.Fatalf("GPU node with max cores = %v min, want < 60", last)
	}
	// (5) GPU curve is monotone non-increasing in cores.
	for i := 1; i < len(gpu); i++ {
		if gpu[i] > gpu[i-1]+1e-9 {
			t.Fatalf("GPU curve rises at %v cores: %v", r.GPUNode.X[i], gpu)
		}
	}
}

func TestScalabilitySpeedup(t *testing.T) {
	r, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Nodes) - 1
	if r.Nodes[last] != 27 {
		t.Fatalf("sweep should reach 27 nodes, got %d", r.Nodes[last])
	}
	// Makespan must be non-increasing in node count.
	for i := 1; i < len(r.Makespan); i++ {
		if r.Makespan[i] > r.Makespan[i-1] {
			t.Fatalf("makespan rose with more nodes: %v", r.Makespan)
		}
	}
	// Meaningful speedup at 27 nodes; it cannot exceed the wave bound (27×)
	// and with heterogeneous tasks stays below it.
	if r.Speedup[last] < 5 || r.Speedup[last] > 27 {
		t.Fatalf("27-node speedup = %.2f", r.Speedup[last])
	}
}

func TestAblationScheduler(t *testing.T) {
	r, err := AblationScheduler()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 4 {
		t.Fatalf("policies = %v", r.Policies)
	}
	byName := map[string]time.Duration{}
	for i, p := range r.Policies {
		if r.Makespans[i] <= 0 {
			t.Fatalf("policy %s has zero makespan", p)
		}
		byName[p] = r.Makespans[i]
	}
	// LPT-style priority on the long tasks must not lose to FIFO on a
	// contended node.
	if byName["priority"] > byName["fifo"] {
		t.Fatalf("priority (%v) worse than fifo (%v)", byName["priority"], byName["fifo"])
	}
}

func TestAblationEarlyStopping(t *testing.T) {
	r, err := AblationEarlyStopping()
	if err != nil {
		t.Fatal(err)
	}
	if r.TrialsWithout != 12 {
		t.Fatalf("baseline trials = %d, want 12", r.TrialsWithout)
	}
	if r.EpochsWith >= r.EpochsWithout {
		t.Fatalf("early stopping saved nothing: %d vs %d epochs", r.EpochsWith, r.EpochsWithout)
	}
	if r.BestAccWith < 0.9 {
		t.Fatalf("early-stopped study best = %v, must still reach target", r.BestAccWith)
	}
}

func TestAblationTracing(t *testing.T) {
	r, err := AblationTracing()
	if err != nil {
		t.Fatal(err)
	}
	if r.RecordsWritten < r.Tasks {
		t.Fatalf("records = %d for %d tasks", r.RecordsWritten, r.Tasks)
	}
	// No strict bound on overhead (scheduler noise dominates at no-op task
	// scale), but the traced run must complete and record everything.
	if r.WallTraced <= 0 || r.WallUntraced <= 0 {
		t.Fatal("zero wall time")
	}
}

func TestAblationFaultTolerance(t *testing.T) {
	r, err := AblationFaultTolerance()
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != 0 {
		t.Fatalf("%d tasks failed permanently; retries must absorb injected faults", r.Failed)
	}
	if r.Retries == 0 || r.InjectedFaults == 0 {
		t.Fatalf("no faults exercised: %+v", r)
	}
	if r.FaultyMakespan <= r.CleanMakespan {
		t.Fatal("faults should cost some makespan")
	}
	if r.PenaltyPct > 100 {
		t.Fatalf("penalty = %.1f%%, retries should cost far less than a rerun", r.PenaltyPct)
	}
}

func TestRenderings(t *testing.T) {
	// Smoke-test every String() on cheap sim results.
	r5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r5.String(), "Figure 5") {
		t.Fatal("Fig5 rendering")
	}
	r6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r6.String(), "ratio") {
		t.Fatal("Fig6 rendering")
	}
	r9, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r9.String(), "cores/task") {
		t.Fatal("Fig9 rendering")
	}
	sc, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sc.String(), "efficiency") {
		t.Fatal("scalability rendering")
	}
}

func TestGPUComparisonOrdering(t *testing.T) {
	r, err := GPUComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Machines) != 3 {
		t.Fatalf("machines = %v", r.Machines)
	}
	mn4, k80, v100 := r.Makespans[0], r.Makespans[1], r.Makespans[2]
	if v100 >= k80 || v100 >= mn4 {
		t.Fatalf("POWER9 (%v) must be fastest: k80 %v, cpu %v", v100, k80, mn4)
	}
	// V100 node should beat the K80 node by a large factor (paper's V100
	// vs K80 generational gap plus 4 vs 2 GPUs).
	if float64(k80)/float64(v100) < 4 {
		t.Fatalf("V100/K80 gap = %.2f×, want ≥ 4×", float64(k80)/float64(v100))
	}
}

func TestAlgorithmComparisonRandomRecoversMost(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper reproduction; skipped in -short (race CI) runs")
	}
	r, err := AlgorithmComparison()
	if err != nil {
		t.Fatal(err)
	}
	if r.GridTrials != 27 || r.RandomTrials != 9 {
		t.Fatalf("trial counts = %d/%d", r.GridTrials, r.RandomTrials)
	}
	// §6.2: a few random trials find hyperparameters nearly as good as the
	// exhaustive grid.
	if r.RecoveredFrac < 0.85 {
		t.Fatalf("random recovered only %.0f%% of grid best", r.RecoveredFrac*100)
	}
	if r.GridBest <= 0.2 || r.RandomBest <= 0.2 {
		t.Fatalf("searches did not learn: grid %v random %v", r.GridBest, r.RandomBest)
	}
}
