// Package paperrepro regenerates every table and figure of the paper's
// evaluation (§5-§6) plus the ablations called out in DESIGN.md. Each
// Figure*/Ablation* function runs the corresponding experiment end-to-end —
// node-scale runs on the discrete-event simulator with the calibrated cost
// model, training-accuracy runs with real training on the goroutine backend
// — and returns a result whose String() prints the same rows/series the
// paper reports.
package paperrepro

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpo"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// Grid27 returns the paper's Listing-1 search space (3 optimizers × 3 epoch
// counts × 3 batch sizes = 27 experiments).
func Grid27() (*hpo.Space, error) {
	return hpo.ParseSpaceJSON([]byte(`{
	  "optimizer": ["Adam", "SGD", "RMSprop"],
	  "num_epochs": [20, 50, 100],
	  "batch_size": [32, 64, 128]
	}`))
}

// gridConfigs enumerates Grid27 in submission order.
func gridConfigs() ([]hpo.Config, error) {
	s, err := Grid27()
	if err != nil {
		return nil, err
	}
	return hpo.NewGridSearch(s).Ask(0), nil
}

// costFor builds the sim cost function for a dataset workload. The config
// travels as the task argument, exactly like the paper's experiment(config).
func costFor(dataset string) runtime.CostFunc {
	return func(args []interface{}, res runtime.SimResources) time.Duration {
		cfg := args[0].(hpo.Config)
		epochs := cfg.Int("num_epochs", 20)
		batch := cfg.Int("batch_size", 64)
		var c perfmodel.TaskCost
		if dataset == "cifar" {
			c = perfmodel.CIFARCost(epochs, batch)
		} else {
			c = perfmodel.MNISTCost(epochs, batch)
		}
		return c.Duration(perfmodel.Resources{
			Cores: res.Cores, GPUs: res.GPUs,
			CoreSpeed: res.CoreSpeed, GPUSpeed: res.GPUSpeed,
		})
	}
}

// simGrid runs the 27-task grid on the simulator and returns the runtime
// stats, trace recorder and makespan.
//
// spec is the cluster; cores/gpus are the per-task constraint; dataset
// selects the cost model; policy the scheduler policy; faults an optional
// injector.
func simGrid(spec cluster.Spec, cores, gpus int, dataset string, policy runtime.Policy,
	faults func(task, attempt, node int) error) (runtime.Stats, *trace.Recorder, error) {

	rec := trace.NewRecorder()
	rt, err := runtime.New(runtime.Options{
		Cluster:       spec,
		Backend:       runtime.Sim,
		Policy:        policy,
		Recorder:      rec,
		FaultInjector: faults,
	})
	if err != nil {
		return runtime.Stats{}, nil, err
	}
	if err := rt.Register(runtime.TaskDef{
		Name:       "experiment",
		Constraint: runtime.Constraint{Cores: cores, GPUs: gpus},
		Cost:       costFor(dataset),
	}); err != nil {
		return runtime.Stats{}, nil, err
	}
	cfgs, err := gridConfigs()
	if err != nil {
		return runtime.Stats{}, nil, err
	}
	for _, cfg := range cfgs {
		if _, err := rt.Submit("experiment", cfg); err != nil {
			return runtime.Stats{}, nil, err
		}
	}
	rt.Barrier()
	st := rt.Stats()
	rt.Shutdown()
	return st, rec, nil
}

// Series is one plotted line: label plus (x, y) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// formatDuration prints durations in minutes, the unit the paper uses.
func formatDuration(d time.Duration) string {
	return fmt.Sprintf("%.1f min", d.Minutes())
}

// table renders aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// startedAtZero counts tasks whose start event is at virtual time zero.
func startedAtZero(rec *trace.Recorder) int {
	n := 0
	for _, ev := range rec.Events() {
		if ev.Type == trace.EventTaskStart && ev.At == 0 {
			n++
		}
	}
	return n
}

// sortedStartTimes returns distinct task start times in order.
func sortedStartTimes(rec *trace.Recorder) []time.Duration {
	var ts []time.Duration
	for _, ev := range rec.Events() {
		if ev.Type == trace.EventTaskStart {
			ts = append(ts, ev.At)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}
