package paperrepro

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/runtime"
)

// GPUCompareResult reproduces the paper's "we also repeat the experiments
// with different GPU and CPU configurations" (§5): the same CIFAR grid on
// the two GPU machines the paper used — MinoTauro (2× K80, 16 Haswell
// cores) and CTE-POWER9 (4× V100, 160 threads) — plus the CPU-only
// MareNostrum 4 node for reference.
type GPUCompareResult struct {
	Machines  []string
	CoresUsed []int
	Makespans []time.Duration
}

// String implements fmt.Stringer.
func (r GPUCompareResult) String() string {
	var rows [][]string
	for i := range r.Machines {
		rows = append(rows, []string{
			r.Machines[i],
			fmt.Sprintf("%d", r.CoresUsed[i]),
			formatDuration(r.Makespans[i]),
		})
	}
	return "GPU/CPU machine comparison — 27 CIFAR experiments, best per-machine config\n" +
		table([]string{"machine", "cores/task", "makespan"}, rows) +
		"\nExpected ordering: POWER9 (4×V100) fastest by a wide margin; MinoTauro's\n" +
		"two K80s edge out a single CPU node; one MareNostrum node running\n" +
		"whole-node tasks serially is slowest.\n"
}

// GPUComparison runs the 27-task CIFAR grid on each machine with a sensible
// per-machine task shape: whole-node CPU tasks on MareNostrum, one GPU plus
// an equal share of the node's cores on the GPU machines.
func GPUComparison() (GPUCompareResult, error) {
	var r GPUCompareResult
	type machine struct {
		name  string
		spec  cluster.Spec
		cores int
		gpus  int
	}
	machines := []machine{
		// 27 whole-node CPU tasks across 27 nodes is the paper's Figure-6
		// setting; a fairer single-node comparison gives each machine one
		// node, so tasks share it.
		{"MareNostrum4 (1 node, CPU)", cluster.MareNostrum4(1), 48, 0},
		{"MinoTauro (1 node, 2×K80)", cluster.MinoTauro(1), 8, 1}, // 16 cores / 2 GPUs
		{"POWER9 (1 node, 4×V100)", cluster.Power9(1), 40, 1},     // 160 cores / 4 GPUs
	}
	for _, m := range machines {
		st, _, err := simGrid(m.spec, m.cores, m.gpus, "cifar", runtime.PolicyFIFO, nil)
		if err != nil {
			return r, err
		}
		r.Machines = append(r.Machines, m.name)
		r.CoresUsed = append(r.CoresUsed, m.cores)
		r.Makespans = append(r.Makespans, st.Makespan)
	}
	return r, nil
}
