package comm

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"
)

// FuzzDecodeMessage hammers the wire decoder of the master/worker protocol
// with arbitrary bytes — exactly what a TCP transport's Recv loop feeds a
// gob.Decoder. The invariants: malformed input must produce an error, never
// a panic or a hang; and whatever decodes successfully must survive the
// Send path (re-encoding) and leave the decoder usable for the next frame,
// because one Recv loop decodes a whole connection's stream.
func FuzzDecodeMessage(f *testing.F) {
	// Seed corpus: one valid wire encoding per message type, covering every
	// payload field the protocol uses.
	seeds := []Message{
		{Type: MsgRegister, WorkerID: 3, Units: 4, GPUs: 1},
		{Type: MsgRegisterAck, WorkerID: 3},
		{Type: MsgSubmitTask, TaskID: 7, TaskName: "experiment", Units: 2,
			Args: []interface{}{1, "adam", 0.125, []float64{0.5, 0.75}, map[string]interface{}{"num_epochs": 3}}},
		{Type: MsgTaskDone, TaskID: 7, Args: []interface{}{map[string]interface{}{"best_acc": 0.9}}},
		{Type: MsgTaskFailed, TaskID: 7, Err: "diverged"},
		{Type: MsgHeartbeat, WorkerID: 3, Seq: 42},
		{Type: MsgCancelTask, TaskID: 7},
		{Type: MsgShutdown},
		{Type: MsgDataTransfer, Payload: []byte{0x01, 0x02, 0x03}},
		{Type: MsgEpochReport, TaskID: 7, Epoch: 2, Value: 0.75},
		{Type: MsgExtendTask, TaskID: 7, Budget: 9},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A two-frame stream seeds the keep-decoding property.
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	for _, m := range []Message{{Type: MsgHeartbeat, Seq: 1}, {Type: MsgEpochReport, TaskID: 1, Epoch: 0, Value: 0.5}} {
		if err := enc.Encode(&m); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 16; i++ { // bound frames per input like a Recv loop bounds per call
			var m Message
			if err := dec.Decode(&m); err != nil {
				return // malformed input errors cleanly — that is the contract
			}
			// Decoded messages must be loggable and re-encodable: the
			// master formats m.Type for diagnostics and may relay payloads
			// over another transport.
			_ = m.Type.String()
			if err := gob.NewEncoder(io.Discard).Encode(&m); err != nil {
				// gob cannot re-encode a nil interface element; a decoder
				// cannot produce one, so this is a real asymmetry.
				t.Fatalf("decoded message failed to re-encode: %v (%+v)", err, m)
			}
		}
	})
}
