package comm

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// ErrClosed is returned by Send/Recv after the transport closes.
var ErrClosed = errors.New("comm: transport closed")

// Transport is a bidirectional, message-oriented connection between a master
// and a worker. Implementations must be safe for one concurrent sender and
// one concurrent receiver.
type Transport interface {
	Send(*Message) error
	// Recv blocks until a message arrives or the transport closes.
	Recv() (*Message, error)
	Close() error
}

// --- In-memory transport ---

// memShared is the state shared by both endpoints of an in-memory pair;
// close-once must be shared so closing either (or both) endpoints is safe.
type memShared struct {
	done chan struct{}
	once sync.Once
}

func (s *memShared) close() { s.once.Do(func() { close(s.done) }) }

// memTransport is one endpoint of an in-process channel pair.
type memTransport struct {
	out    chan *Message
	in     chan *Message
	shared *memShared
}

// NewMemPair returns two connected in-memory transports: whatever one sends,
// the other receives. buffer sets the channel depth (0 = synchronous).
// Closing either endpoint closes the pair.
func NewMemPair(buffer int) (a, b Transport) {
	ab := make(chan *Message, buffer)
	ba := make(chan *Message, buffer)
	shared := &memShared{done: make(chan struct{})}
	return &memTransport{out: ab, in: ba, shared: shared},
		&memTransport{out: ba, in: ab, shared: shared}
}

func (t *memTransport) Send(m *Message) error {
	// Check closedness first: a send attempted after Close must fail
	// deterministically (the two-way select below picks randomly when both
	// cases are ready, which would let messages leak past a dead link).
	select {
	case <-t.shared.done:
		return ErrClosed
	default:
	}
	select {
	case <-t.shared.done:
		return ErrClosed
	case t.out <- m:
		return nil
	}
}

func (t *memTransport) Recv() (*Message, error) {
	select {
	case <-t.shared.done:
		// Drain any message racing with close so shutdown is not lossy.
		select {
		case m := <-t.in:
			return m, nil
		default:
			return nil, ErrClosed
		}
	case m := <-t.in:
		return m, nil
	}
}

func (t *memTransport) Close() error {
	t.shared.close()
	return nil
}

// --- TCP transport ---

// tcpTransport frames messages with encoding/gob over a net.Conn.
type tcpTransport struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
	once sync.Once
}

// NewConnTransport wraps an established connection (either side).
func NewConnTransport(conn net.Conn) Transport {
	return &tcpTransport{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

func (t *tcpTransport) Send(m *Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if err := t.enc.Encode(m); err != nil {
		return fmt.Errorf("comm: send: %w", err)
	}
	return nil
}

func (t *tcpTransport) Recv() (*Message, error) {
	var m Message
	if err := t.dec.Decode(&m); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("comm: recv: %w", err)
	}
	return &m, nil
}

func (t *tcpTransport) Close() error {
	var err error
	t.once.Do(func() { err = t.conn.Close() })
	return err
}

// Listener accepts worker connections for a master.
type Listener struct {
	ln net.Listener
}

// Listen starts a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// port).
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept blocks for the next worker connection.
func (l *Listener) Accept() (Transport, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return NewConnTransport(conn), nil
}

// Close stops accepting connections.
func (l *Listener) Close() error { return l.ln.Close() }

// Dial connects a worker to a master at addr.
func Dial(addr string) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	return NewConnTransport(conn), nil
}
