// Package comm implements the wire protocol between the runtime master and
// its workers: message types for task submission, completion, failure,
// heartbeats and shutdown, plus two interchangeable transports — an
// in-memory channel pair for single-process deployments and a TCP transport
// (gob-encoded) that ships tasks across a real byte boundary, standing in
// for the COMPSs master/worker communication layer.
package comm

import (
	"encoding/gob"
	"fmt"
)

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message types.
const (
	MsgRegister MsgType = iota + 1
	MsgRegisterAck
	MsgSubmitTask
	MsgTaskDone
	MsgTaskFailed
	MsgHeartbeat
	MsgCancelTask
	MsgShutdown
	MsgDataTransfer
	// MsgEpochReport streams one intermediate (epoch, value) metric of a
	// running task from worker to master, so the master can prune losing
	// trials mid-flight. Appended after the original types so wire values
	// stay stable across mixed versions.
	MsgEpochReport
	// MsgExtendTask raises a running task's epoch budget (master to worker):
	// the continuation half of rung-driven successive halving. A task paused
	// at its budget gate resumes training the same in-memory model instead
	// of being re-submitted from scratch. Budget carries the new epoch
	// ceiling. Appended last so wire values stay stable.
	MsgExtendTask
)

// String names the message type for logs.
func (m MsgType) String() string {
	switch m {
	case MsgRegister:
		return "Register"
	case MsgRegisterAck:
		return "RegisterAck"
	case MsgSubmitTask:
		return "SubmitTask"
	case MsgTaskDone:
		return "TaskDone"
	case MsgTaskFailed:
		return "TaskFailed"
	case MsgHeartbeat:
		return "Heartbeat"
	case MsgCancelTask:
		return "CancelTask"
	case MsgShutdown:
		return "Shutdown"
	case MsgDataTransfer:
		return "DataTransfer"
	case MsgEpochReport:
		return "EpochReport"
	case MsgExtendTask:
		return "ExtendTask"
	default:
		return fmt.Sprintf("MsgType(%d)", int(m))
	}
}

// Message is the protocol envelope. Exactly one payload field is meaningful
// per message type; the envelope is kept flat so gob encoding stays simple.
type Message struct {
	Type MsgType
	// WorkerID identifies the sending or target worker.
	WorkerID int
	// TaskID identifies the task for Submit/Done/Failed/Cancel.
	TaskID int
	// TaskName is the registered task-definition name for SubmitTask.
	TaskName string
	// Args carries gob-encoded task arguments for SubmitTask and results
	// for TaskDone. Values must be gob-encodable; RegisterGobTypes registers
	// the concrete types used by this repository.
	Args []interface{}
	// Err carries the failure description for TaskFailed.
	Err string
	// Units/GPUs carry resource grants with SubmitTask.
	Units int
	GPUs  int
	// Payload carries opaque bytes for DataTransfer.
	Payload []byte
	// Seq is a heartbeat sequence number.
	Seq int64
	// Epoch and Value carry one intermediate metric point for EpochReport.
	Epoch int
	Value float64
	// Budget carries the new epoch ceiling for ExtendTask.
	Budget int
}

// RegisterGobTypes registers the concrete argument/result types that cross
// the TCP transport. Call before first use of a gob transport; it is safe to
// call multiple times with the same types.
func RegisterGobTypes(values ...interface{}) {
	for _, v := range values {
		gob.Register(v)
	}
}

func init() {
	// Types every deployment needs.
	RegisterGobTypes(
		int(0), int64(0), float64(0), "", true,
		[]float64(nil), []int(nil), []string(nil),
		map[string]interface{}(nil), []interface{}(nil),
	)
}
