package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMsgTypeStrings(t *testing.T) {
	types := []MsgType{MsgRegister, MsgRegisterAck, MsgSubmitTask, MsgTaskDone,
		MsgTaskFailed, MsgHeartbeat, MsgCancelTask, MsgShutdown, MsgDataTransfer}
	seen := map[string]bool{}
	for _, m := range types {
		s := m.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown type should render")
	}
}

func TestMemPairRoundTrip(t *testing.T) {
	a, b := NewMemPair(1)
	want := &Message{Type: MsgSubmitTask, TaskID: 7, TaskName: "experiment", Units: 4}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskID != 7 || got.TaskName != "experiment" || got.Units != 4 {
		t.Fatalf("got %+v", got)
	}
	// And the reverse direction.
	if err := b.Send(&Message{Type: MsgTaskDone, TaskID: 7}); err != nil {
		t.Fatal(err)
	}
	if got, err = a.Recv(); err != nil || got.Type != MsgTaskDone {
		t.Fatalf("reverse direction: %+v, %v", got, err)
	}
}

func TestMemPairCloseUnblocksRecv(t *testing.T) {
	a, b := NewMemPair(0)
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv error = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := a.Send(&Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v", err)
	}
}

func TestMemPairConcurrentTraffic(t *testing.T) {
	a, b := NewMemPair(16)
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(&Message{Type: MsgHeartbeat, Seq: int64(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	seen := 0
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			m, err := b.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if m.Seq != int64(i) {
				t.Errorf("out of order: got %d want %d", m.Seq, i)
				return
			}
			seen++
		}
	}()
	wg.Wait()
	if seen != n {
		t.Fatalf("received %d/%d", seen, n)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverSide := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		serverSide <- tr
	}()

	client, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-serverSide
	defer server.Close()

	want := &Message{
		Type: MsgSubmitTask, TaskID: 3, TaskName: "experiment",
		Args:  []interface{}{map[string]interface{}{"optimizer": "Adam", "batch_size": 64}},
		Units: 2, GPUs: 1,
	}
	if err := client.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskName != "experiment" || got.Units != 2 || got.GPUs != 1 {
		t.Fatalf("got %+v", got)
	}
	cfg, ok := got.Args[0].(map[string]interface{})
	if !ok {
		t.Fatalf("args decoded as %T", got.Args[0])
	}
	if cfg["optimizer"] != "Adam" {
		t.Fatalf("config = %v", cfg)
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err == nil {
			acc <- tr
		}
	}()
	client, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-acc
	client.Close()
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer close = %v, want ErrClosed", err)
	}
	server.Close()
}

func TestTCPConcurrentSenders(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err == nil {
			acc <- tr
		}
	}()
	client, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acc
	defer server.Close()

	const senders, per = 4, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := client.Send(&Message{Type: MsgHeartbeat, WorkerID: s, Seq: int64(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	got := 0
	recvDone := make(chan bool)
	go func() {
		for got < senders*per {
			if _, err := server.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				break
			}
			got++
		}
		recvDone <- true
	}()
	wg.Wait()
	select {
	case <-recvDone:
	case <-time.After(5 * time.Second):
		t.Fatalf("timeout: received %d/%d", got, senders*per)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected connection error")
	}
}
