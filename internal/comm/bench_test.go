package comm

import (
	"testing"
)

// BenchmarkMemRoundTrip measures the in-process transport's message cost —
// the floor for single-machine master/worker traffic.
func BenchmarkMemRoundTrip(b *testing.B) {
	a, w := NewMemPair(1)
	defer a.Close()
	msg := &Message{Type: MsgSubmitTask, TaskID: 1, TaskName: "experiment", Units: 1}
	done := &Message{Type: MsgTaskDone, TaskID: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Recv(); err != nil {
			b.Fatal(err)
		}
		if err := w.Send(done); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPRoundTrip measures a gob-encoded task submission round trip
// over loopback TCP, the distributed deployment's per-task communication
// cost.
func BenchmarkTCPRoundTrip(b *testing.B) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err == nil {
			acc <- tr
		}
	}()
	client, err := Dial(ln.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	server := <-acc
	defer server.Close()

	msg := &Message{
		Type: MsgSubmitTask, TaskID: 1, TaskName: "experiment",
		Args:  []interface{}{map[string]interface{}{"optimizer": "Adam", "num_epochs": 50, "batch_size": 64}},
		Units: 1,
	}
	done := &Message{Type: MsgTaskDone, TaskID: 1, Args: []interface{}{0.97}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			b.Fatal(err)
		}
		if err := server.Send(done); err != nil {
			b.Fatal(err)
		}
		if _, err := client.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
