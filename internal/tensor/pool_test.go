package tensor

import (
	"sync"
	"testing"
)

func TestPoolReusesStorage(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 8)
	if a.Dim(0) != 4 || a.Dim(1) != 8 {
		t.Fatalf("Get shape = %v", a.Shape())
	}
	data := a.Data()
	p.Put(a)
	if p.Len() != 1 {
		t.Fatalf("pool Len = %d, want 1", p.Len())
	}
	// Same element count, different shape: storage must be recycled and the
	// tensor re-shaped.
	b := p.Get(8, 4)
	if b.Dim(0) != 8 || b.Dim(1) != 4 {
		t.Fatalf("recycled shape = %v", b.Shape())
	}
	if &b.Data()[0] != &data[0] {
		t.Fatal("pool did not reuse the backing array")
	}
	if p.Len() != 0 {
		t.Fatalf("pool Len = %d after Get, want 0", p.Len())
	}
}

func TestPoolMismatchedSizeAllocates(t *testing.T) {
	p := NewPool()
	p.Put(New(2, 2))
	got := p.Get(3, 3)
	if got.Size() != 9 {
		t.Fatalf("Get(3,3) size = %d", got.Size())
	}
	if p.Len() != 1 {
		t.Fatal("mismatched Get must not consume the pooled tensor")
	}
}

func TestNilPoolDegradesToAllocation(t *testing.T) {
	var p *Pool
	got := p.Get(2, 3)
	if got.Dim(0) != 2 || got.Dim(1) != 3 {
		t.Fatalf("nil pool Get shape = %v", got.Shape())
	}
	p.Put(got) // must not panic
	if p.Len() != 0 {
		t.Fatal("nil pool Len != 0")
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				x := p.Get(16, 16)
				x.Fill(1)
				p.Put(x)
			}
		}()
	}
	wg.Wait()
}

func TestParallelRangeCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, units int }{
		{0, 4}, {1, 4}, {7, 3}, {16, 1}, {16, 16}, {16, 100}, {1000, 7}, {5, 0},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		ParallelRange(tc.n, tc.units, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d units=%d: empty chunk [%d,%d)", tc.n, tc.units, lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d units=%d: index %d covered %d times", tc.n, tc.units, i, c)
			}
		}
	}
}
