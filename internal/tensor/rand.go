package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64). Every stochastic component in this repository (weight
// initialisation, dataset synthesis, random search, dropout) draws from an
// explicitly seeded RNG so that experiments are reproducible, which the
// paper's grid-search comparisons implicitly rely on.
//
// RNG is not safe for concurrent use; give each goroutine its own instance
// (see Split).
type RNG struct {
	state uint64
	// cached second normal variate for Box-Muller
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from the current one, suitable for
// handing to another goroutine or sub-experiment.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Rand returns a tensor with elements uniform in [0, 1).
func Rand(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Float64()
	}
	return t
}

// Randn returns a tensor with standard-normal elements.
func Randn(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.NormFloat64()
	}
	return t
}

// GlorotUniform returns a fanIn×fanOut weight matrix initialised with the
// Glorot/Xavier uniform scheme, the default used by Keras Dense layers in
// the paper's TensorFlow experiments.
func GlorotUniform(r *RNG, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	t := New(fanIn, fanOut)
	for i := range t.data {
		t.data[i] = r.Range(-limit, limit)
	}
	return t
}

// HeNormal returns a fanIn×fanOut weight matrix initialised with He-normal
// scaling, appropriate ahead of ReLU activations.
func HeNormal(r *RNG, fanIn, fanOut int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	t := New(fanIn, fanOut)
	for i := range t.data {
		t.data[i] = r.NormFloat64() * std
	}
	return t
}
