package tensor

import (
	"testing"
	"testing/quick"
)

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !c.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(1)
	a := Randn(r, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).AllClose(a, 1e-12) {
		t.Fatal("A×I != A")
	}
	if !MatMul(id, a).AllClose(a, 1e-12) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner dimension mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	r := NewRNG(7)
	for _, units := range []int{2, 3, 4, 8, 100} {
		a := Randn(r, 17, 13)
		b := Randn(r, 13, 9)
		serial := MatMulParallel(a, b, 1)
		par := MatMulParallel(a, b, units)
		if !serial.AllClose(par, 1e-9) {
			t.Fatalf("units=%d: parallel result differs from serial", units)
		}
	}
}

func TestMatMulEmpty(t *testing.T) {
	c := MatMul(New(0, 3), New(3, 4))
	if c.Dim(0) != 0 || c.Dim(1) != 4 {
		t.Fatalf("empty matmul shape = %v", c.Shape())
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{1, 1}, 2)
	y := MatVec(a, x)
	if y.Data()[0] != 3 || y.Data()[1] != 7 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ for random shapes and values.
func TestMatMulTransposeProperty(t *testing.T) {
	r := NewRNG(42)
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		m, k, n := 1+rr.Intn(8), 1+rr.Intn(8), 1+rr.Intn(8)
		a := Randn(r, m, k)
		b := Randn(r, k, n)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return lhs.AllClose(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition:
// A×(B+C) == A×B + A×C.
func TestMatMulDistributivityProperty(t *testing.T) {
	r := NewRNG(43)
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		m, k, n := 1+rr.Intn(6), 1+rr.Intn(6), 1+rr.Intn(6)
		a := Randn(r, m, k)
		b := Randn(r, k, n)
		c := Randn(r, k, n)
		lhs := MatMul(a, b.Add(c))
		rhs := MatMul(a, b).Add(MatMul(a, c))
		return lhs.AllClose(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel and serial matmul agree for arbitrary unit counts.
func TestMatMulParallelAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		m, k, n := 1+rr.Intn(12), 1+rr.Intn(12), 1+rr.Intn(12)
		units := 1 + rr.Intn(16)
		a := Randn(rr, m, k)
		b := Randn(rr, k, n)
		return MatMulParallel(a, b, units).AllClose(MatMulParallel(a, b, 1), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// matmulRef is the naive triple-loop reference the tiled kernels are checked
// against: an independent implementation, deliberately free of tiling,
// panels, or unrolling.
func matmulRef(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += ad[i*k+p] * bd[p*n+j]
			}
			od[i*n+j] = s
		}
	}
	return out
}

// edgeShapes exercises the kernel's remainder paths: empty output, k=1,
// single rows/columns, tall-skinny and short-fat panels, shapes straddling
// the 4×4 register tile and the 256-wide k panel, and non-divisible
// remainders in every dimension.
var edgeShapes = [][3]int{
	{0, 3, 4}, {3, 0, 4}, {3, 4, 0},
	{1, 1, 1}, {1, 7, 1}, {5, 1, 5},
	{4, 4, 4}, {5, 5, 5}, {7, 9, 11},
	{4, 256, 4}, {4, 257, 4}, {3, 511, 2},
	{129, 3, 2}, {2, 3, 129}, {65, 17, 33},
	{100, 1, 100}, {31, 258, 29},
}

// TestMatMulVariantsMatchReference pins every kernel entry point — serial
// tiled, parallel, TransA, TransB and the *Into forms — to the naive
// reference within 1e-9 across the edge shapes. Run under -race in CI, this
// also checks the row-panel fan-out for data races.
func TestMatMulVariantsMatchReference(t *testing.T) {
	r := NewRNG(99)
	for _, sh := range edgeShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := Randn(r, m, k)
		b := Randn(r, k, n)
		want := matmulRef(a, b)
		for _, units := range []int{1, 3, 8} {
			if got := MatMulParallel(a, b, units); !got.AllClose(want, 1e-9) {
				t.Fatalf("MatMulParallel(%v, units=%d) differs from reference", sh, units)
			}
			// Into on a dirty destination: stale contents must be overwritten.
			dst := Full(42, m, n)
			if got := MatMulInto(dst, a, b, units); !got.AllClose(want, 1e-9) {
				t.Fatalf("MatMulInto(%v, units=%d) differs from reference", sh, units)
			}
			// aᵀ×b via TransA, handing the kernel a k×m operand.
			at := a.Transpose()
			if got := MatMulTransA(at, b, units); !got.AllClose(want, 1e-9) {
				t.Fatalf("MatMulTransA(%v, units=%d) differs from reference", sh, units)
			}
			dst = Full(-7, m, n)
			if got := MatMulTransAInto(dst, at, b, units); !got.AllClose(want, 1e-9) {
				t.Fatalf("MatMulTransAInto(%v, units=%d) differs from reference", sh, units)
			}
			// a×bᵀ via TransB, handing the kernel an n×k operand.
			bt := b.Transpose()
			if got := MatMulTransB(a, bt, units); !got.AllClose(want, 1e-9) {
				t.Fatalf("MatMulTransB(%v, units=%d) differs from reference", sh, units)
			}
			dst = Full(1e9, m, n)
			if got := MatMulTransBInto(dst, a, bt, units); !got.AllClose(want, 1e-9) {
				t.Fatalf("MatMulTransBInto(%v, units=%d) differs from reference", sh, units)
			}
		}
	}
}

// Property: random shapes (biased to tile remainders) and unit counts agree
// with the reference for all variants.
func TestMatMulVariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		m, k, n := 1+rr.Intn(70), 1+rr.Intn(300), 1+rr.Intn(70)
		units := 1 + rr.Intn(8)
		a := Randn(rr, m, k)
		b := Randn(rr, k, n)
		want := matmulRef(a, b)
		return MatMulParallel(a, b, units).AllClose(want, 1e-9) &&
			MatMulTransA(a.Transpose(), b, units).AllClose(want, 1e-9) &&
			MatMulTransB(a, b.Transpose(), units).AllClose(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulTransShapeMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"TransA": func() { MatMulTransA(New(3, 2), New(4, 5), 1) },
		"TransB": func() { MatMulTransB(New(2, 3), New(5, 4), 1) },
		"Into":   func() { MatMulInto(New(9, 9), New(2, 3), New(3, 4), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic for shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func benchGFLOPS(b *testing.B, size int, fn func(x, y *Tensor)) {
	r := NewRNG(1)
	x := Randn(r, size, size)
	y := Randn(r, size, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(x, y)
	}
	flops := 2 * float64(size) * float64(size) * float64(size)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkMatMulNaive pins the pre-tiling reference kernel so the speedup
// of the blocked kernel stays visible in bench output.
func BenchmarkMatMulNaive(b *testing.B) {
	benchGFLOPS(b, 128, func(x, y *Tensor) { matmulRef(x, y) })
}

func BenchmarkMatMulTransA(b *testing.B) {
	benchGFLOPS(b, 128, func(x, y *Tensor) { MatMulTransA(x, y, 1) })
}

func BenchmarkMatMulTransB(b *testing.B) {
	benchGFLOPS(b, 128, func(x, y *Tensor) { MatMulTransB(x, y, 1) })
}

func BenchmarkMatMulSerial(b *testing.B) {
	benchGFLOPS(b, 128, func(x, y *Tensor) { MatMulParallel(x, y, 1) })
}

func BenchmarkMatMulParallel4(b *testing.B) {
	benchGFLOPS(b, 128, func(x, y *Tensor) { MatMulParallel(x, y, 4) })
}
